// E24/E27: sharded serving cluster under churn, with tail-latency
// attribution and distributed tracing. Partitions the fig5-style
// entity KG across 4 shard groups (primary + 1 WAL-shipped replica
// each) and replays a seeded Zipf query workload through the
// scatter-gather router while one member per window is killed and
// revived — odd windows a replica (exercising resubscribe/catch-up),
// even windows a primary (exercising breaker-driven failover to the
// replica). Every routed answer is compared against a single
// VersionedKgStore applying the same mutation stream: any divergence
// exits non-zero, as does a shed request, an unhealed replica lag after
// quiesce, or a pathological p99 cliff.
//
// The drill runs with stage timing on, so BENCH_cluster.json carries a
// per-stage p50/p99 breakdown (fan-out wait per class, cache probe per
// class, WAL append, overlay merge) next to the end-to-end numbers, and
// the worst requests land in a slow-query ring written out as
// BENCH_cluster_slow.json. A cluster-wide kIntrospect scrape over the
// wire must parse. Then a quiesced traced phase replays a serial query
// slice on a FixedTraceClock tracer at 1/2/8 server worker threads:
// every routed query must render as one connected span tree
// (route -> shard -> member -> store.execute), byte-identical across
// thread counts and across a second same-seed run
// (BENCH_cluster_trace.json).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/exec_policy.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "graph/knowledge_graph.h"
#include "obs/bench_sink.h"
#include "obs/introspect.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/frame.h"
#include "serve/query_engine.h"
#include "serve/serve_stats.h"
#include "store/versioned_store.h"
#include "store/wal.h"
#include "synth/entity_universe.h"

namespace {

using namespace kg;  // NOLINT

constexpr size_t kShards = 4;
constexpr size_t kReplicas = 1;
constexpr size_t kWindows = 12;
constexpr size_t kQueriesPerWindow = 500;
constexpr size_t kMutationsPerWindow = 24;
constexpr double kZipfExponent = 1.05;
constexpr size_t kLagSampleEvery = 50;
// Lenient cliff gate: routed point reads are in-process function calls,
// so a p99 past this is a scheduling pathology, not noise.
constexpr double kP99CeilingUs = 250000.0;

graph::KnowledgeGraph BuildKg(synth::EntityUniverse* universe) {
  synth::UniverseOptions uopt;
  uopt.num_people = 300;
  uopt.num_movies = 450;
  uopt.num_songs = 60;
  Rng rng(42);
  *universe = synth::EntityUniverse::Generate(uopt, rng);
  graph::KnowledgeGraph kg = universe->ToKnowledgeGraph();
  const graph::Provenance prov{"ground_truth", 1.0, 0};
  using graph::NodeKind;
  for (const auto& p : universe->people()) {
    kg.AddTriple(synth::EntityUniverse::PersonNodeName(p.id), "type",
                 "Person", NodeKind::kEntity, NodeKind::kClass, prov);
  }
  for (const auto& m : universe->movies()) {
    kg.AddTriple(synth::EntityUniverse::MovieNodeName(m.id), "type",
                 "Movie", NodeKind::kEntity, NodeKind::kClass, prov);
  }
  for (const auto& s : universe->songs()) {
    kg.AddTriple(synth::EntityUniverse::SongNodeName(s.id), "type", "Song",
                 NodeKind::kEntity, NodeKind::kClass, prov);
  }
  return kg;
}

// The bench_serve/bench_rpc query mix: 40% point lookups, 25%
// neighborhoods, 20% typed attribute scans, 15% top-k shelves.
std::vector<serve::Query> MakeWorkload(const synth::EntityUniverse& u,
                                       size_t n, Rng& rng) {
  const ZipfDistribution person_zipf(u.people().size(), kZipfExponent);
  const ZipfDistribution movie_zipf(u.movies().size(), kZipfExponent);
  const ZipfDistribution song_zipf(u.songs().size(), kZipfExponent);
  const std::vector<double> domain_weights = {
      static_cast<double>(u.people().size()),
      static_cast<double>(u.movies().size()),
      static_cast<double>(u.songs().size())};
  const std::vector<std::string> types = {"Person", "Movie", "Song"};
  static const std::vector<std::vector<std::string>> kPreds = {
      {"name", "birth_year", "nationality", "acted_in"},
      {"title", "release_year", "genre", "directed_by"},
      {"title", "performed_by", "song_year", "song_genre"},
  };
  auto sample_node = [&](size_t domain) -> std::string {
    switch (domain) {
      case 0:
        return synth::EntityUniverse::PersonNodeName(
            u.people()[person_zipf.Sample(rng)].id);
      case 1:
        return synth::EntityUniverse::MovieNodeName(
            u.movies()[movie_zipf.Sample(rng)].id);
      default:
        return synth::EntityUniverse::SongNodeName(
            u.songs()[song_zipf.Sample(rng)].id);
    }
  };
  std::vector<serve::Query> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double r = rng.UniformDouble();
    const size_t domain = rng.Weighted(domain_weights);
    const std::string pred =
        kPreds[domain][rng.UniformIndex(kPreds[domain].size())];
    if (r < 0.40) {
      out.push_back(serve::Query::PointLookup(sample_node(domain), pred));
    } else if (r < 0.65) {
      out.push_back(serve::Query::Neighborhood(sample_node(domain)));
    } else if (r < 0.85) {
      out.push_back(serve::Query::AttributeByType(types[domain], pred));
    } else {
      out.push_back(serve::Query::TopKRelated(
          sample_node(domain), 5 * (1 + rng.UniformIndex(4))));
    }
  }
  return out;
}

std::vector<store::Mutation> MakeBatch(const synth::EntityUniverse& u,
                                       size_t n, Rng& rng) {
  using graph::NodeKind;
  std::vector<store::Mutation> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string person = synth::EntityUniverse::PersonNodeName(
        u.people()[rng.UniformIndex(u.people().size())].id);
    const std::string movie = synth::EntityUniverse::MovieNodeName(
        u.movies()[rng.UniformIndex(u.movies().size())].id);
    if (rng.Bernoulli(0.2)) {
      batch.push_back(store::Mutation::Retract(
          person, "acted_in", movie, NodeKind::kEntity, NodeKind::kEntity));
    } else {
      batch.push_back(store::Mutation::Upsert(
          person, "acted_in", movie, NodeKind::kEntity, NodeKind::kEntity,
          graph::Provenance{"churn_feed", rng.UniformDouble(),
                            rng.UniformInt(0, 1000)}));
    }
  }
  return batch;
}

std::string JsonNumber(double v) { return FormatDouble(v, 3); }

// Worst-N retention for the churn drill: threshold 0 keeps the 32 worst
// routed requests regardless of absolute latency.
constexpr size_t kSlowRingCapacity = 32;
// The traced phase is serial, so keep it small: enough queries that all
// four classes appear, few enough that the span tree stays readable.
constexpr size_t kTraceQueries = 48;

struct StageRow {
  std::string stage;
  std::string query_class;  // empty for classless stages
  uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

// Reads back every stage histogram the drill could have filled and
// keeps the ones that saw samples. Registration is idempotent, so
// probing a stage the drill never hit just reads a zero-count histogram.
std::vector<StageRow> CollectStageRows(obs::MetricsRegistry& registry) {
  std::vector<StageRow> rows;
  auto add = [&rows](std::string_view stage, std::string_view query_class,
                     const obs::Histogram& h) {
    if (h.Count() == 0) return;
    rows.push_back({std::string(stage), std::string(query_class), h.Count(),
                    h.Quantile(0.50), h.Quantile(0.99)});
  };
  const obs::Stage per_class[] = {obs::Stage::kFanout,
                                  obs::Stage::kCacheProbe};
  for (obs::Stage stage : per_class) {
    for (size_t k = 0; k < serve::kNumQueryKinds; ++k) {
      const char* cls = serve::QueryKindName(static_cast<serve::QueryKind>(k));
      add(obs::StageName(stage), cls,
          obs::StageHistogram(registry, stage, cls));
    }
  }
  const obs::Stage classless[] = {obs::Stage::kWalAppend,
                                  obs::Stage::kOverlayMerge};
  for (obs::Stage stage : classless) {
    add(obs::StageName(stage), "", obs::StageHistogram(registry, stage));
  }
  return rows;
}

// Walks an exported trace document and checks the acceptance shape:
// every root is a "route.<class>" span, and every root that fanned out
// to a member reaches at least one "store.execute" descendant. Returns
// the number of route roots, or 0 on any violation.
bool SpanReachesStore(const obs::JsonValue& span) {
  if (const obs::JsonValue* name = span.Find("name");
      name != nullptr && name->string_value == "store.execute") {
    return true;
  }
  if (const obs::JsonValue* children = span.Find("children")) {
    for (const obs::JsonValue& child : children->array) {
      if (SpanReachesStore(child)) return true;
    }
  }
  return false;
}

size_t CountConnectedRouteTrees(const std::string& trace_json) {
  const auto doc = obs::ParseJson(trace_json);
  if (!doc.ok()) return 0;
  const obs::JsonValue* spans = doc->Find("spans");
  if (spans == nullptr || !spans->is_array()) return 0;
  size_t roots = 0;
  for (const obs::JsonValue& span : spans->array) {
    const obs::JsonValue* name = span.Find("name");
    if (name == nullptr || name->string_value.rfind("route.", 0) != 0) {
      return 0;  // a stray root means the tree is not connected
    }
    if (!SpanReachesStore(span)) return 0;
    ++roots;
  }
  return roots;
}

// One quiesced traced run: a fresh cluster (no kills, no mutations) on
// a FixedTraceClock tracer answers the same serial query slice, then
// exports its span forest. Span ids are pure functions of (seed,
// structure) and the router is in-process, so the bytes must not depend
// on the primaries' RPC worker-thread count — that is the gate.
std::string RunTracedPhase(const graph::KnowledgeGraph& kg,
                           const synth::EntityUniverse& universe,
                           size_t worker_threads) {
  obs::FixedTraceClock clock;
  obs::Tracer tracer(42, &clock);
  cluster::ClusterOptions copts;
  copts.num_shards = kShards;
  copts.replicas_per_shard = kReplicas;
  copts.tracer = &tracer;
  copts.server_worker_threads = worker_threads;
  copts.heartbeat_interval_ms = 2;
  copts.receiver.dial_retry_ms = 1;
  copts.receiver.max_dial_attempts = 100;
  auto cluster = cluster::Cluster::Create(kg, copts);
  KG_CHECK_OK(cluster.status());
  KG_CHECK((*cluster)->WaitForCatchUp(30000));

  Rng rng(9241);
  const std::vector<serve::Query> slice =
      MakeWorkload(universe, kTraceQueries, rng);
  for (const serve::Query& q : slice) {
    KG_CHECK_OK((*cluster)->Execute(q).status());
  }
  // Destroy the cluster before export so no member can still be
  // holding an open span.
  (*cluster).reset();
  return tracer.ToJson();
}

}  // namespace

int main() {
  std::cout << "E24: sharded cluster — " << kShards << " shards x "
            << (1 + kReplicas) << " members, " << kWindows << " windows x "
            << kQueriesPerWindow
            << " Zipf queries, one member killed per window (seed 42)\n";

  synth::EntityUniverse universe;
  const graph::KnowledgeGraph kg = BuildKg(&universe);

  auto reference = store::VersionedKgStore::Open(kg, {});
  KG_CHECK_OK(reference.status());

  obs::MetricsRegistry registry;
  obs::SlowQueryRing slow_ring(kSlowRingCapacity, /*threshold_us=*/0.0);
  cluster::ClusterOptions copts;
  copts.num_shards = kShards;
  copts.replicas_per_shard = kReplicas;
  copts.registry = &registry;
  copts.time_stages = true;
  copts.slow_ring = &slow_ring;
  copts.heartbeat_interval_ms = 2;
  copts.receiver.dial_retry_ms = 1;
  copts.receiver.max_dial_attempts = 100;
  copts.supervisor.interval_ms = 10;
  auto cluster = cluster::Cluster::Create(kg, copts);
  KG_CHECK_OK(cluster.status());

  Rng rng(271828);
  const std::vector<serve::Query> workload =
      MakeWorkload(universe, kWindows * kQueriesPerWindow, rng);

  size_t divergences = 0;
  size_t transport_failures = 0;
  size_t kill_cycles = 0;
  uint64_t max_lag_observed = 0;
  std::vector<double> latency_us;
  latency_us.reserve(workload.size());
  WallTimer serving_clock;
  double serving_seconds = 0.0;

  for (size_t w = 0; w < kWindows; ++w) {
    // Mutate through the router while every primary is up, so the
    // reference and the cluster see the identical committed stream.
    const auto batch = MakeBatch(universe, kMutationsPerWindow, rng);
    KG_CHECK_OK((*reference)->ApplyBatch(batch));
    KG_CHECK_OK((*cluster)->Apply(batch));
    // Quiesce before the kill: the window's serving phase starts from
    // caught-up replicas, so a query finding the primary's breaker
    // still open (from an earlier kill) always has a provably fresh
    // replica to fail over to — shed during the drill means *lost*.
    KG_CHECK((*cluster)->WaitForCatchUp(30000))
        << "replicas failed to catch up after window " << w << " batch";

    // Kill one member for the window: replicas on odd windows (the
    // primary proves freshness alone), primaries on even windows past
    // the first (the caught-up replica serves the shard).
    const size_t shard = w % kShards;
    const bool kill_primary = (w % 2 == 0) && w > 0;
    if (kill_primary) {
      (*cluster)->KillPrimary(shard);
      ++kill_cycles;
    } else if (w > 0) {
      (*cluster)->KillReplica(shard, 0);
      ++kill_cycles;
    }

    WallTimer window_clock;
    for (size_t i = 0; i < kQueriesPerWindow; ++i) {
      const serve::Query& q = workload[w * kQueriesPerWindow + i];
      const auto expected = (*reference)->TryExecute(q);
      WallTimer per_query;
      const auto actual = (*cluster)->Execute(q);
      latency_us.push_back(per_query.ElapsedSeconds() * 1e6);
      if (!expected.ok() || !actual.ok()) {
        ++transport_failures;
      } else if (*actual != *expected) {
        ++divergences;
      }
      if (i % kLagSampleEvery == 0) {
        max_lag_observed =
            std::max(max_lag_observed, (*cluster)->MaxReplicaLagBytes());
      }
    }
    serving_seconds += window_clock.ElapsedSeconds();

    if (kill_primary) {
      KG_CHECK_OK((*cluster)->RevivePrimary(shard));
    } else if (w > 0) {
      (*cluster)->ReviveReplica(shard, 0);
    }
  }
  const double wall_seconds = serving_clock.ElapsedSeconds();

  // Quiesce: every revived member must converge — replica lag is
  // bounded by churn, not growing without bound.
  const bool converged = (*cluster)->WaitForCatchUp(30000);
  const uint64_t final_lag = (*cluster)->MaxReplicaLagBytes();
  const auto router_stats = (*cluster)->router().stats();

  const double qps =
      serving_seconds > 0.0 ? latency_us.size() / serving_seconds : 0.0;
  const double p50_us = serve::Percentile(latency_us, 0.50);
  const double p99_us = serve::Percentile(latency_us, 0.99);

  PrintBanner(std::cout, "Cluster serving verdict");
  TablePrinter table({"metric", "value"});
  table.AddRow({"requests", std::to_string(latency_us.size())});
  table.AddRow({"qps", FormatDouble(qps, 0)});
  table.AddRow({"p50 us", FormatDouble(p50_us, 1)});
  table.AddRow({"p99 us", FormatDouble(p99_us, 1)});
  table.AddRow({"kill/revive cycles", std::to_string(kill_cycles)});
  table.AddRow({"failovers", std::to_string(router_stats.failovers)});
  table.AddRow({"shed", std::to_string(router_stats.shed)});
  table.AddRow({"stale rejects", std::to_string(router_stats.stale_rejects)});
  table.AddRow({"max lag observed B", std::to_string(max_lag_observed)});
  table.AddRow({"final lag B", std::to_string(final_lag)});
  table.AddRow({"divergences", std::to_string(divergences)});
  table.Print(std::cout);
  std::cout << "serving wall " << FormatDouble(wall_seconds, 3)
            << "s; every routed answer compared against the single-store "
               "reference\n";

  // Tail attribution: where the routed requests actually spent their
  // time, per stage and class.
  const std::vector<StageRow> stage_rows = CollectStageRows(registry);
  PrintBanner(std::cout, "Per-stage attribution");
  TablePrinter stage_table({"stage", "class", "count", "p50 us", "p99 us"});
  for (const StageRow& row : stage_rows) {
    stage_table.AddRow({row.stage, row.query_class.empty() ? "-"
                                                           : row.query_class,
                        std::to_string(row.count),
                        FormatDouble(row.p50_us, 1),
                        FormatDouble(row.p99_us, 1)});
  }
  stage_table.Print(std::cout);
  std::cout << "slow-query ring retained " << slow_ring.size() << "/"
            << slow_ring.capacity() << " worst requests\n";

  // Introspection over the wire: every shard primary must answer a
  // kIntrospect scrape, and the merged document must parse.
  const auto scrape =
      (*cluster)->ScrapeCluster(rpc::IntrospectWhat::kMetricsJson);
  const bool scrape_ok = scrape.ok() && obs::ParseJson(*scrape).ok();
  std::cout << "cluster-wide kIntrospect scrape: "
            << (scrape_ok ? "OK" : "FAIL") << "\n";

  // Gates. A shed request under this drill is a lost answer (at most
  // one member per shard group was ever down); a failover count of zero
  // would mean the primary-kill windows never actually exercised the
  // replica path.
  // Traced phase: same serial slice, fixed clock, three primary
  // worker-thread settings and a repeat run. All four exports must be
  // byte-identical, and run 1 must decompose into one connected
  // route->...->store.execute tree per routed query.
  std::cout << "\ntraced phase: " << kTraceQueries
            << " serial queries at 1/2/8 server worker threads + repeat\n";
  const std::string trace_1 = RunTracedPhase(kg, universe, 1);
  const std::string trace_2 = RunTracedPhase(kg, universe, 2);
  const std::string trace_8 = RunTracedPhase(kg, universe, 8);
  const std::string trace_repeat = RunTracedPhase(kg, universe, 1);
  const bool trace_threads_identical = trace_1 == trace_2 && trace_1 == trace_8;
  const bool trace_repeat_identical = trace_1 == trace_repeat;
  const size_t route_trees = CountConnectedRouteTrees(trace_1);
#ifdef KG_OBS_NOOP
  // Spans compile to nothing: the export is an empty forest, and that
  // is the expected shape.
  const bool trace_connected = route_trees == 0;
#else
  const bool trace_connected = route_trees == kTraceQueries;
#endif
  std::cout << "trace bytes across thread counts: "
            << (trace_threads_identical ? "IDENTICAL (OK)" : "DIVERGED (FAIL)")
            << "; repeat run: "
            << (trace_repeat_identical ? "IDENTICAL (OK)" : "DIVERGED (FAIL)")
            << "; connected route trees: " << route_trees << "/"
            << kTraceQueries << " "
            << (trace_connected ? "(OK)" : "(FAIL)") << "\n";

  const bool ok = divergences == 0 && transport_failures == 0 &&
                  router_stats.shed == 0 && router_stats.failovers > 0 &&
                  converged && final_lag == 0 && p99_us < kP99CeilingUs &&
                  scrape_ok && trace_threads_identical &&
                  trace_repeat_identical && trace_connected;
  std::cout << "sharded-vs-single: "
            << (divergences == 0 ? "IDENTICAL (OK)" : "DIVERGED (FAIL)")
            << "; convergence after churn: "
            << (converged && final_lag == 0 ? "OK" : "FAIL")
            << "; p99 cliff: " << (p99_us < kP99CeilingUs ? "OK" : "FAIL")
            << "\n";

  {
    std::ostringstream json;
    json << "{\"shards\":" << kShards << ",\"replicas\":" << kReplicas
         << ",\"windows\":" << kWindows
         << ",\"requests\":" << latency_us.size()
         << ",\"seconds\":" << JsonNumber(serving_seconds)
         << ",\"qps\":" << JsonNumber(qps)
         << ",\"p50_us\":" << JsonNumber(p50_us)
         << ",\"p99_us\":" << JsonNumber(p99_us)
         << ",\"kill_cycles\":" << kill_cycles
         << ",\"failovers\":" << router_stats.failovers
         << ",\"shed\":" << router_stats.shed
         << ",\"stale_rejects\":" << router_stats.stale_rejects
         << ",\"probes\":" << router_stats.probes
         << ",\"max_lag_bytes\":" << max_lag_observed
         << ",\"final_lag_bytes\":" << final_lag
         << ",\"divergences\":" << divergences
         << ",\"stages\":[";
    for (size_t i = 0; i < stage_rows.size(); ++i) {
      const StageRow& row = stage_rows[i];
      if (i > 0) json << ",";
      json << "{\"stage\":\"" << row.stage << "\"";
      if (!row.query_class.empty()) {
        json << ",\"class\":\"" << row.query_class << "\"";
      }
      json << ",\"count\":" << row.count
           << ",\"p50_us\":" << JsonNumber(row.p50_us)
           << ",\"p99_us\":" << JsonNumber(row.p99_us) << "}";
    }
    json << "],\"slow_ring_retained\":" << slow_ring.size()
         << ",\"trace_queries\":" << kTraceQueries
         << ",\"trace_threads_identical\":"
         << (trace_threads_identical ? "true" : "false")
         << ",\"trace_repeat_identical\":"
         << (trace_repeat_identical ? "true" : "false")
         << ",\"route_trees\":" << route_trees
         << ",\"gate\":\"" << (ok ? "ok" : "fail") << "\"}";
    const obs::JsonSink sink("cluster", 42,
                             ExecPolicy::Hardware().num_threads);
    KG_CHECK_OK(sink.WriteFile("BENCH_cluster.json", json.str()));
    // Forensic artifacts next to the headline report: the worst routed
    // requests with their per-stage breakdowns, and the deterministic
    // span forest the trace gates were judged on.
    KG_CHECK_OK(
        sink.WriteFile("BENCH_cluster_slow.json", slow_ring.ToJson()));
    std::ostringstream trace_payload;
    trace_payload << "{\"queries\":" << kTraceQueries
                  << ",\"worker_threads\":[1,2,8]"
                  << ",\"threads_identical\":"
                  << (trace_threads_identical ? "true" : "false")
                  << ",\"repeat_identical\":"
                  << (trace_repeat_identical ? "true" : "false")
                  << ",\"route_trees\":" << route_trees
                  << ",\"trace\":" << trace_1 << "}";
    KG_CHECK_OK(
        sink.WriteFile("BENCH_cluster_trace.json", trace_payload.str()));
  }

  // A divergence means sharding altered an answer; a shed request means
  // the group lost an answer it could have served. Both are correctness
  // bugs, not perf regressions.
  return ok ? 0 : 1;
}
