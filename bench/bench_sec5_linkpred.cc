// Reproduces the §5 reflection on link prediction: "Link prediction has
// not achieved the quality to reliably add inferred knowledge into KGs;
// another use of it, to detect incorrect information, has been
// incorporated into knowledge cleaning techniques."
//
// Two link predictors over the same KG — PRA (symbolic path features)
// and TransE (embeddings) — measured on (a) inferring held-out triples
// (the production bar for ADDING knowledge is 90%+ precision; neither
// clears it) and (b) ranking corrupted triples below true ones (the
// knowledge-cleaning use, where modest models already help).

#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "fuse/pra.h"
#include "graph/knowledge_graph.h"
#include "ml/metrics.h"
#include "ml/transe.h"
#include "synth/entity_universe.h"

namespace {

using namespace kg;  // NOLINT

}  // namespace

int main() {
  std::cout << "sec 5: link prediction — inferring vs cleaning (seed "
               "42)\n";
  synth::UniverseOptions uopt;
  uopt.num_people = 800;
  uopt.num_movies = 1000;
  uopt.num_songs = 100;
  Rng rng(42);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);

  // Build the KG, hold out 15% of directed_by edges.
  auto kg = universe.ToKnowledgeGraph();
  const auto directed = *kg.FindPredicate("directed_by");
  auto positives = kg.TriplesWithPredicate(directed);
  rng.Shuffle(&positives);
  const size_t holdout = positives.size() * 15 / 100;
  std::vector<graph::Triple> held;
  for (size_t i = 0; i < holdout; ++i) {
    held.push_back(kg.triple(positives[i]));
    kg.RemoveTriple(positives[i]);
  }

  // --- PRA ---------------------------------------------------------------
  fuse::PraModel pra;
  {
    fuse::PraModel::Options opt;
    opt.max_path_length = 3;
    Rng fit_rng(7);
    pra.Fit(kg, directed, opt, fit_rng);
  }

  // --- TransE -------------------------------------------------------------
  // Entity/relation id mapping over the live triples.
  std::vector<ml::IdTriple> triples;
  for (graph::TripleId t : kg.AllTriples()) {
    const auto& tr = kg.triple(t);
    triples.push_back({tr.subject, tr.predicate, tr.object});
  }
  ml::TransE transe;
  {
    ml::TransEOptions opt;
    opt.dim = 48;
    opt.epochs = 150;
    Rng fit_rng(7);
    transe.Fit(triples, static_cast<uint32_t>(kg.num_nodes()),
               static_cast<uint32_t>(kg.num_predicates()), opt, fit_rng);
  }

  // Evaluation set: held-out true triples + corrupted counterparts.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> eval_pairs;
  std::vector<int> gold;
  std::vector<graph::NodeId> directors;
  for (graph::TripleId t : kg.TriplesWithPredicate(directed)) {
    directors.push_back(kg.triple(t).object);
  }
  // Open-world regime: candidate inferred triples are overwhelmingly
  // false — 10 plausible corruptions per true held-out edge.
  for (const auto& t : held) {
    eval_pairs.push_back({t.subject, t.object});
    gold.push_back(1);
    for (int n = 0; n < 10; ++n) {
      eval_pairs.push_back(
          {t.subject, directors[rng.UniformIndex(directors.size())]});
      gold.push_back(0);
    }
  }

  auto evaluate = [&](auto scorer, const char* name) {
    std::vector<double> scores;
    scores.reserve(eval_pairs.size());
    for (const auto& [s, o] : eval_pairs) scores.push_back(scorer(s, o));
    const double auc = ml::RocAuc(scores, gold);
    // "Adding knowledge" regime: precision of the top-confidence slice
    // that would be auto-added (top 20% by score).
    std::vector<size_t> order(scores.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return scores[a] > scores[b];
    });
    // Auto-add slice sized to the true-edge count's fifth — the slice a
    // production gate would consider admitting.
    const size_t added = std::max<size_t>(1, held.size() / 5);
    size_t added_correct = 0;
    for (size_t i = 0; i < added; ++i) added_correct += gold[order[i]];
    // "Cleaning" regime: of the bottom 20%, how many are corrupted.
    // Cleaning slice: the bottom fifth of candidates; count how many are
    // indeed corrupted.
    const size_t cleaned = order.size() / 5;
    size_t flagged_wrong = 0;
    for (size_t i = order.size() - cleaned; i < order.size(); ++i) {
      flagged_wrong += gold[order[i]] == 0;
    }
    return std::tuple<std::string, double, double, double>(
        name, auc, static_cast<double>(added_correct) / added,
        static_cast<double>(flagged_wrong) / cleaned);
  };

  const auto pra_row = evaluate(
      [&](graph::NodeId s, graph::NodeId o) { return pra.Score(kg, s, o); },
      "PRA (path ranking)");
  const auto transe_row = evaluate(
      [&](graph::NodeId s, graph::NodeId o) {
        return transe.Score(s, directed, o);
      },
      "TransE (embeddings)");

  PrintBanner(std::cout, "Link prediction on held-out directed_by edges");
  TablePrinter table({"model", "ROC AUC", "precision of auto-added top-20%",
                      "cleaning precision of bottom-20%"});
  for (const auto& row : {pra_row, transe_row}) {
    table.AddRow({std::get<0>(row), FormatDouble(std::get<1>(row), 3),
                  FormatDouble(std::get<2>(row), 3),
                  FormatDouble(std::get<3>(row), 3)});
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "Reproduction verdict");
  const double best_add =
      std::max(std::get<2>(pra_row), std::get<2>(transe_row));
  const double best_clean =
      std::max(std::get<3>(pra_row), std::get<3>(transe_row));
  std::cout << "best auto-add precision " << FormatDouble(best_add, 3)
            << (best_add < 0.95 ? " — below" : " — above")
            << " the 90-99% production bar for adding knowledge (the "
               "paper's point: not production-ready for inference); "
               "best cleaning precision " << FormatDouble(best_clean, 3)
            << " — useful as a knowledge-cleaning signal.\n";
  return 0;
}
