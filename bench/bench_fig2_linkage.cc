// Reproduces Figure 2: "Entity linkage quality with random forest on
// movies and people between Freebase and IMDb. We are able to achieve
// over 99% precision and recall with 1.5M labels. When applying active
// learning to selectively introduce labels, we can achieve the same
// quality with 10K labels."
//
// Substitution: the Freebase/IMDb dumps are replaced by two noisy views
// of a synthetic entity universe (see DESIGN.md §6); label budgets scale
// down with the pool (the claim is the ~2-orders-of-magnitude gap, not
// the absolute counts).

#include <iostream>

#include "common/exec_policy.h"
#include "common/rng.h"
#include "common/stage_timer.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/conversions.h"
#include "integrate/linkage.h"
#include "ml/active_learning.h"
#include "synth/structured_source.h"

namespace {

using namespace kg;  // NOLINT

// Harness-level stage metrics (per-stage wall time and throughput),
// printed at the end of the run.
StageTimer g_metrics;

struct DomainRun {
  std::string domain_name;
  std::vector<ml::BudgetResult> random_results;
  std::vector<ml::BudgetResult> active_results;
};

DomainRun RunDomain(const synth::EntityUniverse& universe,
                    synth::SourceDomain domain,
                    const std::string& domain_name, uint64_t seed) {
  Rng rng(seed);
  synth::SourceOptions freebase_like, imdb_like;
  freebase_like.name = "freebase";
  freebase_like.domain = domain;
  freebase_like.coverage = 0.7;
  freebase_like.name_noise = 0.15;
  imdb_like.name = "imdb";
  imdb_like.domain = domain;
  imdb_like.coverage = 0.7;
  imdb_like.schema_dialect = 1;
  imdb_like.name_noise = 0.15;
  const auto t1 = synth::EmitSource(universe, freebase_like, rng);
  const auto t2 = synth::EmitSource(universe, imdb_like, rng);
  std::vector<uint32_t> truth1, truth2;
  const auto r1 =
      core::ToRecordSet(t1, core::ManualMappingFor(t1), &truth1);
  const auto r2 =
      core::ToRecordSet(t2, core::ManualMappingFor(t2), &truth2);
  const auto schema = core::LinkageSchemaFor(domain);
  // Pair featurization shards across hardware threads; the dataset is
  // bit-identical to the serial build (see core/conversions.h).
  ml::Dataset all_pairs;
  {
    StageTimer::Scope stage(&g_metrics, domain_name + ".pair_pool");
    all_pairs = core::BuildLinkagePairs(r1, truth1, r2, truth2, schema,
                                        ExecPolicy::Hardware());
    stage.AddItems(all_pairs.size());
  }

  // Production linkage follows blocking with a cheap similarity filter so
  // labelers are not drowned in trivially-negative pairs: keep candidates
  // whose best name similarity clears a low bar.
  {
    const auto names = integrate::LinkageFeatureNames(schema);
    std::vector<size_t> jw_indices;
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i].find(".jw") != std::string::npos) {
        jw_indices.push_back(i);
      }
    }
    ml::Dataset filtered;
    filtered.feature_names = all_pairs.feature_names;
    for (auto& ex : all_pairs.examples) {
      double best = 0.0;
      for (size_t i : jw_indices) best = std::max(best, ex.features[i]);
      if (best >= 0.75) filtered.examples.push_back(std::move(ex));
    }
    all_pairs = std::move(filtered);
  }

  ml::Dataset pool, test;
  ml::TrainTestSplit(all_pairs, 0.6, rng, &pool, &test);
  std::cout << domain_name << ": " << r1.records.size() << " + "
            << r2.records.size() << " records, "
            << FormatCount(static_cast<int64_t>(all_pairs.size()))
            << " candidate pairs after blocking (pool "
            << FormatCount(static_cast<int64_t>(pool.size())) << ", test "
            << FormatCount(static_cast<int64_t>(test.size())) << ")\n";

  DomainRun run;
  run.domain_name = domain_name;
  ml::ActiveLearningOptions options;
  options.forest.num_trees = 40;
  options.seed_labels = 100;
  options.label_budgets = {200, 600, 2000, 6000, 20000};
  while (options.label_budgets.back() > pool.size()) {
    options.label_budgets.pop_back();
  }
  {
    StageTimer::Scope stage(&g_metrics, domain_name + ".al_random",
                            pool.size());
    Rng al_rng(seed + 1);
    options.strategy = ml::AcquisitionStrategy::kRandom;
    run.random_results = RunActiveLearning(pool, test, options, al_rng);
  }
  {
    StageTimer::Scope stage(&g_metrics, domain_name + ".al_active",
                            pool.size());
    Rng al_rng(seed + 1);
    options.strategy = ml::AcquisitionStrategy::kUncertainty;
    run.active_results = RunActiveLearning(pool, test, options, al_rng);
  }
  return run;
}

void PrintRun(const DomainRun& run) {
  PrintBanner(std::cout, "Figure 2 — " + run.domain_name);
  TablePrinter table({"labels", "random P", "random R", "random F1",
                      "active P", "active R", "active F1"});
  for (size_t i = 0; i < run.random_results.size(); ++i) {
    const auto& r = run.random_results[i];
    const auto& a = run.active_results[i];
    table.AddRow({FormatCount(static_cast<int64_t>(r.labels)),
                  FormatDouble(r.precision, 3), FormatDouble(r.recall, 3),
                  FormatDouble(r.f1, 3), FormatDouble(a.precision, 3),
                  FormatDouble(a.recall, 3), FormatDouble(a.f1, 3)});
  }
  table.Print(std::cout);
}

// First budget reaching F1 >= bar, or 0.
size_t BudgetToReach(const std::vector<ml::BudgetResult>& results,
                     double bar) {
  for (const auto& r : results) {
    if (r.f1 >= bar) return r.labels;
  }
  return 0;
}

}  // namespace

int main() {
  std::cout << "E1 / Figure 2: RF entity linkage, random vs active "
               "labeling (seed 42)\n";
  synth::UniverseOptions uopt;
  uopt.num_people = 4000;
  uopt.num_movies = 3000;
  uopt.num_songs = 200;
  Rng universe_rng(42);
  const auto universe = synth::EntityUniverse::Generate(uopt, universe_rng);

  const auto movies = RunDomain(universe, synth::SourceDomain::kMovies,
                                "movies", 7);
  const auto people = RunDomain(universe, synth::SourceDomain::kPeople,
                                "people", 11);
  PrintRun(movies);
  PrintRun(people);

  PrintBanner(std::cout, "Reproduction verdict");
  for (const auto& run : {movies, people}) {
    const double top_f1 = run.random_results.back().f1;
    const size_t random_needed = BudgetToReach(run.random_results, 0.97);
    const size_t active_needed = BudgetToReach(run.active_results, 0.97);
    std::cout << run.domain_name << ": best random F1 "
              << FormatDouble(top_f1, 3) << "; F1>=0.97 at "
              << (random_needed ? FormatCount(static_cast<int64_t>(
                                      random_needed))
                                : std::string(">max"))
              << " random labels vs "
              << (active_needed ? FormatCount(static_cast<int64_t>(
                                      active_needed))
                                : std::string(">max"))
              << " active labels";
    if (active_needed && random_needed &&
        active_needed * 3 <= random_needed) {
      std::cout << "  [SHAPE OK: active learning saves >=3x labels]";
    }
    std::cout << "\n";
  }
  std::cout << "Paper: >99% P/R at 1.5M random labels; same quality at "
               "10K active labels (150x).\n";

  PrintBanner(std::cout, "Stage timing");
  g_metrics.Print(std::cout);
  return 0;
}
