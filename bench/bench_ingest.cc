// E26: streaming ingest + hybrid symbolic/ANN QA — the gen-1 -> gen-3
// loop closed end to end. Three phases:
//
//   A. Determinism sweep: 100 seeded mini-worlds x {1,2,8} workers with
//      chaos rates cycling 0..25%, a reader hammering the live store
//      during every run. Gates: the drained store fingerprint is
//      bit-identical across worker counts AND equals the serial offline
//      rebuild; committed mutations equal the oracle's (zero lost
//      upserts); probe answers never diverge from an engine over the
//      rebuild.
//   B. Throughput: one larger world through the pipeline at 8 workers,
//      wide-open and through a deliberately tiny queue (the
//      backpressure/shed regime). Reports unit/mutation qps, per-stage
//      p50/p99 from the obs histograms, and the shed rate.
//   C. Hybrid QA: a popularity-biased crawl (coverage ~half the
//      universe, head-skewed) ingested from an empty base, TransE +
//      HNSW over the result, KgAnswerer vs HybridAnswerer per
//      popularity bucket. Gates: ANN recall@10 >= 0.95 against brute
//      force on the real QA query points; hybrid accuracy >= symbolic
//      accuracy; symbolic accuracy ordered head >= torso >= tail (the
//      popularity-biased coverage shape the paper's §4 study rests on).
//
// Emits BENCH_ingest.json; any gate failure exits non-zero.

#include <algorithm>
#include <cstddef>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ann/hnsw.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "dual/answerers.h"
#include "dual/kg_embedding.h"
#include "dual/qa_eval.h"
#include "graph/knowledge_graph.h"
#include "ingest/crawl.h"
#include "ingest/pipeline.h"
#include "obs/bench_sink.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "store/versioned_store.h"
#include "synth/entity_universe.h"
#include "synth/qa_generator.h"

namespace {

using namespace kg;  // NOLINT

constexpr uint64_t kSeed = 42;
constexpr size_t kNumWorlds = 100;
const size_t kWorkerCounts[] = {1, 2, 8};
constexpr double kRecallFloor = 0.95;

// ---- Phase A ----------------------------------------------------------

struct MiniWorld {
  synth::EntityUniverse universe;
  graph::KnowledgeGraph base;
  ingest::CrawlPlan plan;
};

MiniWorld MakeMiniWorld(uint64_t seed) {
  synth::UniverseOptions uo;
  uo.num_people = 40;
  uo.num_movies = 20;
  uo.num_songs = 15;
  Rng rng(seed);
  MiniWorld w{synth::EntityUniverse::Generate(uo, rng), {}, {}};
  w.base = w.universe.ToKnowledgeGraph();
  ingest::CrawlPlanOptions po;
  po.num_catalog_sources = 3;
  po.records_per_chunk = 8;
  po.num_websites = 2;
  po.pages_per_site = 6;
  w.plan = ingest::BuildCrawlPlan(w.universe, po, rng);
  return w;
}

std::vector<serve::Query> ProbeQueries() {
  std::vector<serve::Query> probes;
  for (uint32_t id = 0; id < 4; ++id) {
    const std::string person = synth::EntityUniverse::PersonNodeName(id);
    probes.push_back(serve::Query::PointLookup(person, "name"));
    probes.push_back(serve::Query::Neighborhood(person));
  }
  probes.push_back(serve::Query::AttributeByType("Movie", "release_year"));
  probes.push_back(
      serve::Query::TopKRelated(synth::EntityUniverse::PersonNodeName(0), 5));
  return probes;
}

struct PhaseAResult {
  size_t worlds = 0;
  size_t runs = 0;
  size_t fingerprint_divergences = 0;
  size_t answer_divergences = 0;
  uint64_t lost_upserts = 0;
  size_t degraded_units = 0;
  double seconds = 0.0;
};

PhaseAResult RunPhaseA() {
  PhaseAResult out;
  const std::vector<serve::Query> probes = ProbeQueries();
  WallTimer clock;
  for (size_t world_i = 0; world_i < kNumWorlds; ++world_i) {
    const uint64_t seed = kSeed + world_i;
    const double chaos = static_cast<double>(world_i % 6) * 0.05;
    const MiniWorld w = MakeMiniWorld(seed);
    const ingest::SurfaceLinker linker(w.base);

    ingest::IngestOptions base_options;
    base_options.seed = seed;
    if (chaos > 0.0) base_options.faults = FaultPlan::Uniform(seed, chaos);

    ingest::UnitContext ctx;
    FaultInjector injector(base_options.faults);
    if (base_options.faults.active()) ctx.faults = &injector;
    ctx.retry = base_options.retry;
    ctx.seed = base_options.seed;
    uint64_t oracle_mutations = 0;
    const graph::KnowledgeGraph rebuilt = ingest::OfflineRebuild(
        w.plan, w.base, linker, ctx, nullptr, &oracle_mutations);
    const uint64_t oracle_fp = graph::TripleSetFingerprint(rebuilt);
    const serve::KgSnapshot oracle_snap = serve::KgSnapshot::Compile(rebuilt);
    const serve::QueryEngine oracle_engine(oracle_snap);

    for (size_t workers : kWorkerCounts) {
      auto store = store::VersionedKgStore::Open(w.base, store::StoreOptions{});
      KG_CHECK(store.ok()) << store.status().ToString();
      ingest::IngestOptions options = base_options;
      options.num_workers = workers;
      options.queue_capacity = 8;
      options.commit_unit_batch = 3;
      ingest::IngestPipeline pipeline(**store, linker, w.plan, options);

      // A reader keeps answering against live epochs during the run.
      std::atomic<bool> stop{false};
      std::thread reader([&] {
        size_t i = 0;
        while (!stop.load(std::memory_order_acquire)) {
          (void)(*store)->Execute(probes[i++ % probes.size()]);
        }
      });
      const ingest::IngestReport report = pipeline.RunAll();
      stop.store(true, std::memory_order_release);
      reader.join();

      ++out.runs;
      out.degraded_units += report.units_degraded;
      if (report.mutations_committed != oracle_mutations ||
          (*store)->applied_mutations() != oracle_mutations) {
        out.lost_upserts +=
            oracle_mutations > report.mutations_committed
                ? oracle_mutations - report.mutations_committed
                : 1;
      }
      if ((*store)->AuthoritativeFingerprint() != oracle_fp) {
        ++out.fingerprint_divergences;
      }
      for (const serve::Query& q : probes) {
        if ((*store)->Execute(q) != oracle_engine.Execute(q)) {
          ++out.answer_divergences;
        }
      }
    }
    ++out.worlds;
  }
  out.seconds = clock.ElapsedSeconds();
  return out;
}

// ---- Phase B ----------------------------------------------------------

struct PhaseBResult {
  size_t units = 0;
  uint64_t mutations = 0;
  double seconds = 0.0;
  double unit_qps = 0.0;
  double mutation_qps = 0.0;
  double fetch_p50_us = 0.0, fetch_p99_us = 0.0;
  double extract_p50_us = 0.0, extract_p99_us = 0.0;
  double link_p50_us = 0.0, link_p99_us = 0.0;
  double commit_p50_us = 0.0, commit_p99_us = 0.0;
  uint64_t sheds = 0;
  double shed_rate = 0.0;  ///< sheds / submission attempts, tiny queue.
};

PhaseBResult RunPhaseB() {
  synth::UniverseOptions uo;
  uo.num_people = 400;
  uo.num_movies = 200;
  uo.num_songs = 120;
  Rng rng(kSeed);
  const auto universe = synth::EntityUniverse::Generate(uo, rng);
  const graph::KnowledgeGraph base = universe.ToKnowledgeGraph();
  ingest::CrawlPlanOptions po;
  po.num_catalog_sources = 8;
  po.records_per_chunk = 16;
  po.num_websites = 6;
  po.pages_per_site = 40;
  const ingest::CrawlPlan plan = ingest::BuildCrawlPlan(universe, po, rng);
  const ingest::SurfaceLinker linker(base);

  PhaseBResult out;
  out.units = plan.num_units();

  // Wide-open run: the throughput measurement.
  obs::MetricsRegistry registry;
  {
    auto store = store::VersionedKgStore::Open(base, store::StoreOptions{});
    KG_CHECK(store.ok());
    ingest::IngestOptions options;
    options.num_workers = 8;
    options.queue_capacity = 64;
    options.seed = kSeed;
    options.registry = &registry;
    ingest::IngestPipeline pipeline(**store, linker, plan, options);
    WallTimer clock;
    const ingest::IngestReport report = pipeline.RunAll();
    out.seconds = clock.ElapsedSeconds();
    out.mutations = report.mutations_committed;
    out.unit_qps = static_cast<double>(report.units_processed) / out.seconds;
    out.mutation_qps =
        static_cast<double>(report.mutations_committed) / out.seconds;
  }
  const auto& buckets = obs::LatencyBucketsUs();
  const obs::Histogram& fetch =
      registry.GetHistogram("ingest.stage.fetch_us", buckets);
  const obs::Histogram& extract =
      registry.GetHistogram("ingest.stage.extract_us", buckets);
  const obs::Histogram& link =
      registry.GetHistogram("ingest.stage.link_us", buckets);
  const obs::Histogram& commit =
      registry.GetHistogram("ingest.stage.commit_us", buckets);
  out.fetch_p50_us = fetch.Quantile(0.5);
  out.fetch_p99_us = fetch.Quantile(0.99);
  out.extract_p50_us = extract.Quantile(0.5);
  out.extract_p99_us = extract.Quantile(0.99);
  out.link_p50_us = link.Quantile(0.5);
  out.link_p99_us = link.Quantile(0.99);
  out.commit_p50_us = commit.Quantile(0.5);
  out.commit_p99_us = commit.Quantile(0.99);

  // Backpressure run: a 2-slot queue and a single hot submitter. Every
  // TrySubmit that returns kUnavailable is a shed; the loop retries
  // until accepted, so nothing is lost — the shed rate prices the
  // backpressure, not data loss.
  {
    auto store = store::VersionedKgStore::Open(base, store::StoreOptions{});
    KG_CHECK(store.ok());
    ingest::IngestOptions options;
    options.num_workers = 2;
    options.queue_capacity = 2;
    options.seed = kSeed;
    ingest::IngestPipeline pipeline(**store, linker, plan, options);
    pipeline.Start();
    uint64_t attempts = 0;
    for (size_t i = 0; i < plan.num_units(); ++i) {
      while (true) {
        ++attempts;
        const Status s = pipeline.TrySubmit(i);
        if (s.ok()) break;
        KG_CHECK(IsRetriable(s.code())) << s.ToString();
        std::this_thread::yield();
      }
    }
    const ingest::IngestReport report = pipeline.Finish();
    out.sheds = report.sheds;
    out.shed_rate =
        attempts == 0 ? 0.0
                      : static_cast<double>(report.sheds) /
                            static_cast<double>(attempts);
    KG_CHECK(report.units_processed == plan.num_units());
  }
  return out;
}

// ---- Phase C ----------------------------------------------------------

struct BucketRow {
  std::string name;
  double kg_accuracy = 0.0;
  double hybrid_accuracy = 0.0;
  double kg_abstention = 0.0;
  double hybrid_abstention = 0.0;
};

struct PhaseCResult {
  double recall_at_10 = 0.0;
  size_t recall_queries = 0;
  double kg_accuracy = 0.0;
  double hybrid_accuracy = 0.0;
  std::vector<BucketRow> buckets;
  size_t ann_routed = 0;
  bool ordering_ok = false;
  bool recall_ok = false;
  bool hybrid_ok = false;
};

PhaseCResult RunPhaseC() {
  // A bigger universe crawled with popularity-biased partial coverage
  // from an EMPTY base: what the KG knows afterwards is head-skewed,
  // exactly the regime the §4 bucket study measures.
  synth::UniverseOptions uo;
  uo.num_people = 300;
  uo.num_movies = 150;
  uo.num_songs = 80;
  Rng rng(kSeed + 7);
  const auto universe = synth::EntityUniverse::Generate(uo, rng);
  ingest::CrawlPlanOptions po;
  po.num_catalog_sources = 6;
  po.records_per_chunk = 12;
  po.num_websites = 3;
  po.pages_per_site = 20;
  po.coverage = 0.45;
  po.popularity_bias = 0.85;
  const ingest::CrawlPlan plan = ingest::BuildCrawlPlan(universe, po, rng);

  const graph::KnowledgeGraph empty_base;
  const ingest::SurfaceLinker linker(empty_base);
  auto store =
      store::VersionedKgStore::Open(empty_base, store::StoreOptions{});
  KG_CHECK(store.ok());
  ingest::IngestOptions options;
  options.num_workers = 8;
  options.seed = kSeed + 7;
  ingest::IngestPipeline pipeline(**store, linker, plan, options);
  pipeline.RunAll();

  // The served graph is the offline rebuild (same content as the store,
  // by the phase-A gates — here we need the KnowledgeGraph itself).
  ingest::UnitContext ctx;
  const graph::KnowledgeGraph served =
      ingest::OfflineRebuild(plan, empty_base, linker, ctx);
  KG_CHECK(graph::TripleSetFingerprint(served) ==
           (*store)->AuthoritativeFingerprint())
      << "phase C rebuild diverged from the ingested store";

  dual::KgEmbeddingOptions eo;
  eo.transe.dim = 24;
  eo.transe.epochs = 60;
  eo.seed = kSeed + 7;
  const dual::KgEmbeddingSpace space(served, eo);

  synth::QaOptions qo;
  qo.num_questions = 900;
  Rng qa_rng(kSeed + 8);
  const auto items = synth::GenerateQaWorkload(universe, qo, qa_rng);

  PhaseCResult out;

  // ANN recall@10 on the real query points (subject+predicate pairs the
  // hybrid path actually searches), brute force as the oracle.
  double recall_sum = 0.0;
  for (const synth::QaItem& item : items) {
    const auto query = space.EmbeddingQuery(item.subject_name, item.predicate);
    if (!query.has_value()) continue;
    const auto exact = space.index().BruteForce(*query, 10);
    const auto approx = space.index().Search(*query, 10);
    if (exact.empty()) continue;
    size_t hit = 0;
    for (const auto& e : exact) {
      for (const auto& a : approx) {
        if (a.id == e.id) {
          ++hit;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(hit) / static_cast<double>(exact.size());
    ++out.recall_queries;
  }
  out.recall_at_10 =
      out.recall_queries == 0 ? 0.0
                              : recall_sum / static_cast<double>(
                                                 out.recall_queries);
  out.recall_ok = out.recall_queries > 0 && out.recall_at_10 >= kRecallFloor;

  // Per-bucket symbolic vs hybrid.
  dual::KgAnswerer kg_only(served);
  dual::HybridAnswerer hybrid(served, space);
  Rng rng_a(kSeed + 9), rng_b(kSeed + 9);
  const dual::QaEvaluation kg_eval =
      dual::EvaluateAnswerer(kg_only, items, rng_a);
  const dual::QaEvaluation hybrid_eval =
      dual::EvaluateAnswerer(hybrid, items, rng_b);
  out.kg_accuracy = kg_eval.overall.accuracy;
  out.hybrid_accuracy = hybrid_eval.overall.accuracy;
  out.ann_routed = hybrid.ann_hits();

  for (auto bucket : {synth::PopularityBucket::kHead,
                      synth::PopularityBucket::kTorso,
                      synth::PopularityBucket::kTail}) {
    BucketRow row;
    row.name = synth::PopularityBucketName(bucket);
    const auto kg_it = kg_eval.by_bucket.find(bucket);
    const auto hy_it = hybrid_eval.by_bucket.find(bucket);
    if (kg_it != kg_eval.by_bucket.end()) {
      row.kg_accuracy = kg_it->second.accuracy;
      row.kg_abstention = kg_it->second.abstention_rate;
    }
    if (hy_it != hybrid_eval.by_bucket.end()) {
      row.hybrid_accuracy = hy_it->second.accuracy;
      row.hybrid_abstention = hy_it->second.abstention_rate;
    }
    out.buckets.push_back(row);
  }
  out.ordering_ok = out.buckets.size() == 3 &&
                    out.buckets[0].kg_accuracy >= out.buckets[1].kg_accuracy &&
                    out.buckets[1].kg_accuracy >= out.buckets[2].kg_accuracy;
  out.hybrid_ok = out.hybrid_accuracy >= out.kg_accuracy;
  return out;
}

std::string Pct(double v) { return FormatDouble(v * 100.0, 1) + "%"; }

}  // namespace

int main() {
  std::cout << "E26: streaming ingest + hybrid symbolic/ANN QA (seed "
            << kSeed << ")\n";

  // ---- Phase A ---------------------------------------------------------
  const PhaseAResult a = RunPhaseA();
  PrintBanner(std::cout, "Phase A: determinism sweep (100 worlds x 1/2/8 "
                         "workers, chaos 0-25%)");
  TablePrinter a_table({"worlds", "runs", "fp divergences",
                        "answer divergences", "lost upserts",
                        "degraded units", "wall s"});
  a_table.AddRow({std::to_string(a.worlds), std::to_string(a.runs),
                  std::to_string(a.fingerprint_divergences),
                  std::to_string(a.answer_divergences),
                  std::to_string(a.lost_upserts),
                  std::to_string(a.degraded_units),
                  FormatDouble(a.seconds, 2)});
  a_table.Print(std::cout);

  // ---- Phase B ---------------------------------------------------------
  const PhaseBResult b = RunPhaseB();
  PrintBanner(std::cout, "Phase B: throughput (8 workers) + backpressure "
                         "(2-slot queue)");
  TablePrinter b_table({"stage", "p50 us", "p99 us"});
  b_table.AddRow({"fetch", FormatDouble(b.fetch_p50_us, 1),
                  FormatDouble(b.fetch_p99_us, 1)});
  b_table.AddRow({"extract", FormatDouble(b.extract_p50_us, 1),
                  FormatDouble(b.extract_p99_us, 1)});
  b_table.AddRow({"link", FormatDouble(b.link_p50_us, 1),
                  FormatDouble(b.link_p99_us, 1)});
  b_table.AddRow({"commit", FormatDouble(b.commit_p50_us, 1),
                  FormatDouble(b.commit_p99_us, 1)});
  b_table.Print(std::cout);
  std::cout << b.units << " units, " << b.mutations << " mutations in "
            << FormatDouble(b.seconds, 3) << "s  ("
            << FormatDouble(b.unit_qps, 0) << " units/s, "
            << FormatDouble(b.mutation_qps, 0) << " mutations/s)\n"
            << "backpressure: " << b.sheds << " sheds, shed rate "
            << Pct(b.shed_rate) << " (all retried; nothing lost)\n";

  // ---- Phase C ---------------------------------------------------------
  const PhaseCResult c = RunPhaseC();
  PrintBanner(std::cout, "Phase C: hybrid QA over the ingested KG "
                         "(popularity-biased coverage)");
  TablePrinter c_table(
      {"bucket", "kg acc", "hybrid acc", "kg abstain", "hybrid abstain"});
  for (const BucketRow& row : c.buckets) {
    c_table.AddRow({row.name, Pct(row.kg_accuracy), Pct(row.hybrid_accuracy),
                    Pct(row.kg_abstention), Pct(row.hybrid_abstention)});
  }
  c_table.AddRow({"all", Pct(c.kg_accuracy), Pct(c.hybrid_accuracy), "-",
                  "-"});
  c_table.Print(std::cout);
  std::cout << "ANN recall@10 " << FormatDouble(c.recall_at_10, 4) << " over "
            << c.recall_queries << " QA query points (floor "
            << FormatDouble(kRecallFloor, 2) << "); " << c.ann_routed
            << " questions served via the ANN route\n";

  // ---- Verdict + JSON --------------------------------------------------
  const bool phase_a_ok = a.fingerprint_divergences == 0 &&
                          a.answer_divergences == 0 && a.lost_upserts == 0;
  const bool ok =
      phase_a_ok && c.recall_ok && c.ordering_ok && c.hybrid_ok;
  PrintBanner(std::cout, "Ingest verdict");
  std::cout << "determinism/zero-lost (A): "
            << (phase_a_ok ? "OK" : "FAIL")
            << "\nrecall@10 >= " << FormatDouble(kRecallFloor, 2) << " (C): "
            << (c.recall_ok ? "OK" : "FAIL")
            << "\nhead >= torso >= tail (C): "
            << (c.ordering_ok ? "OK" : "FAIL")
            << "\nhybrid >= symbolic (C): " << (c.hybrid_ok ? "OK" : "FAIL")
            << "\n";

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("phase_a").BeginObject();
  w.Key("worlds").UInt(a.worlds);
  w.Key("runs").UInt(a.runs);
  w.Key("fingerprint_divergences").UInt(a.fingerprint_divergences);
  w.Key("answer_divergences").UInt(a.answer_divergences);
  w.Key("lost_upserts").UInt(a.lost_upserts);
  w.Key("degraded_units").UInt(a.degraded_units);
  w.Key("seconds").Double(a.seconds, 3);
  w.EndObject();
  w.Key("phase_b").BeginObject();
  w.Key("units").UInt(b.units);
  w.Key("mutations").UInt(b.mutations);
  w.Key("seconds").Double(b.seconds, 4);
  w.Key("unit_qps").Double(b.unit_qps, 1);
  w.Key("mutation_qps").Double(b.mutation_qps, 1);
  w.Key("stages").BeginObject();
  w.Key("fetch").BeginObject();
  w.Key("p50_us").Double(b.fetch_p50_us, 2);
  w.Key("p99_us").Double(b.fetch_p99_us, 2);
  w.EndObject();
  w.Key("extract").BeginObject();
  w.Key("p50_us").Double(b.extract_p50_us, 2);
  w.Key("p99_us").Double(b.extract_p99_us, 2);
  w.EndObject();
  w.Key("link").BeginObject();
  w.Key("p50_us").Double(b.link_p50_us, 2);
  w.Key("p99_us").Double(b.link_p99_us, 2);
  w.EndObject();
  w.Key("commit").BeginObject();
  w.Key("p50_us").Double(b.commit_p50_us, 2);
  w.Key("p99_us").Double(b.commit_p99_us, 2);
  w.EndObject();
  w.EndObject();
  w.Key("sheds").UInt(b.sheds);
  w.Key("shed_rate").Double(b.shed_rate, 4);
  w.EndObject();
  w.Key("phase_c").BeginObject();
  w.Key("recall_at_10").Double(c.recall_at_10, 4);
  w.Key("recall_queries").UInt(c.recall_queries);
  w.Key("kg_accuracy").Double(c.kg_accuracy, 4);
  w.Key("hybrid_accuracy").Double(c.hybrid_accuracy, 4);
  w.Key("ann_routed").UInt(c.ann_routed);
  w.Key("buckets").BeginArray();
  for (const BucketRow& row : c.buckets) {
    w.BeginObject();
    w.Key("bucket").String(row.name);
    w.Key("kg_accuracy").Double(row.kg_accuracy, 4);
    w.Key("hybrid_accuracy").Double(row.hybrid_accuracy, 4);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("gates").BeginObject();
  w.Key("determinism_ok").Bool(phase_a_ok);
  w.Key("recall_ok").Bool(c.recall_ok);
  w.Key("ordering_ok").Bool(c.ordering_ok);
  w.Key("hybrid_ok").Bool(c.hybrid_ok);
  w.EndObject();
  w.EndObject();

  const obs::JsonSink sink("ingest", kSeed, 8);
  const Status written = sink.WriteFile("BENCH_ingest.json", w.Take());
  if (!written.ok()) {
    std::cerr << "BENCH_ingest.json: " << written.ToString() << "\n";
    return 1;
  }
  std::cout << (ok ? "\nE26 PASS\n" : "\nE26 FAIL\n");
  return ok ? 0 : 1;
}
