// Ablations for the design choices DESIGN.md calls out. Each section
// switches one mechanism off and measures the damage, quantifying why
// the mechanism exists:
//   A1  blocking stop-token pruning (candidate-space control)
//   A2  active-learning exploration mix (sampling-bias control)
//   A3  cleaning text-rescue (rare-but-real value recovery)
//   A4  fusion family: vote vs ACCU vs copy-aware (dependence control)
//   A5  tagger lexicon features (unseen-value generalization)

#include <iostream>
#include <map>
#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/conversions.h"
#include "extract/opentag.h"
#include "integrate/copy_detection.h"
#include "ml/active_learning.h"
#include "text/bio.h"
#include "textrich/cleaning.h"
#include "textrich/example_builder.h"

namespace {

using namespace kg;  // NOLINT

void BlockingAblation() {
  PrintBanner(std::cout, "A1: blocking stop-token pruning");
  synth::UniverseOptions uopt;
  uopt.num_people = 1500;
  uopt.num_movies = 1500;
  uopt.num_songs = 100;
  Rng rng(42);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  synth::SourceOptions o1, o2;
  o1.coverage = o2.coverage = 0.7;
  o2.schema_dialect = 1;
  const auto t1 = synth::EmitSource(universe, o1, rng);
  const auto t2 = synth::EmitSource(universe, o2, rng);
  std::vector<uint32_t> truth1, truth2;
  const auto r1 = core::ToRecordSet(t1, core::ManualMappingFor(t1), &truth1);
  const auto r2 = core::ToRecordSet(t2, core::ManualMappingFor(t2), &truth2);
  const auto schema = core::LinkageSchemaFor(synth::SourceDomain::kMovies);

  // Pruning is baked into BlockCandidates; quantify what it saves by
  // counting the candidates the capped tokens would have produced.
  WallTimer timer;
  const auto pruned = integrate::BlockCandidates(r1, r2, schema);
  const double ms = timer.ElapsedMillis();
  // Recall under pruning.
  std::set<std::pair<size_t, size_t>> pair_set(pruned.begin(), pruned.end());
  size_t linkable = 0, found = 0;
  for (size_t i = 0; i < r1.records.size(); ++i) {
    for (size_t j = 0; j < r2.records.size(); ++j) {
      if (truth1[i] != truth2[j]) continue;
      ++linkable;
      found += pair_set.count({i, j});
    }
  }
  TablePrinter table({"metric", "value"});
  table.AddRow({"records", std::to_string(r1.records.size()) + " x " +
                               std::to_string(r2.records.size())});
  table.AddRow({"full cross product",
                FormatCount(static_cast<int64_t>(r1.records.size() *
                                                 r2.records.size()))});
  table.AddRow({"candidates after blocking",
                FormatCount(static_cast<int64_t>(pruned.size()))});
  table.AddRow({"pair recall",
                FormatDouble(static_cast<double>(found) / linkable, 3)});
  table.AddRow({"blocking time", FormatDouble(ms, 1) + " ms"});
  table.Print(std::cout);
}

void ExplorationAblation() {
  PrintBanner(std::cout, "A2: active-learning exploration fraction");
  // A linkage-like pool with a narrow decision boundary.
  Rng data_rng(7);
  ml::Dataset pool, test;
  pool.feature_names = test.feature_names = {"sim", "noise"};
  auto fill = [&](ml::Dataset* d, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const double sim = data_rng.UniformDouble();
      d->examples.push_back(ml::Example{
          {sim, data_rng.UniformDouble()}, sim > 0.62 ? 1 : 0});
    }
  };
  fill(&pool, 6000);
  fill(&test, 2000);
  TablePrinter table({"exploration", "F1 @ 300 labels",
                      "F1 @ 1000 labels"});
  for (double exploration : {0.0, 0.2, 0.5}) {
    ml::ActiveLearningOptions opt;
    opt.strategy = ml::AcquisitionStrategy::kUncertainty;
    opt.exploration_fraction = exploration;
    opt.label_budgets = {300, 1000};
    opt.forest.num_trees = 25;
    Rng rng(11);
    const auto results = RunActiveLearning(pool, test, opt, rng);
    table.AddRow({FormatDouble(exploration, 1),
                  FormatDouble(results[0].f1, 3),
                  FormatDouble(results[1].f1, 3)});
  }
  table.Print(std::cout);
}

void TextRescueAblation() {
  PrintBanner(std::cout, "A3: cleaning text-rescue");
  Rng rng(13);
  synth::CatalogOptions copt;
  copt.num_types = 20;
  copt.num_products = 1200;
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);
  // Build an assertion corpus from the (noisy) structured catalog.
  std::vector<textrich::CatalogAssertion> corpus;
  size_t correct_total = 0;
  for (const auto& product : catalog.products()) {
    for (const auto& [attr, value] : product.catalog_values) {
      corpus.push_back(textrich::CatalogAssertion{
          product.id, catalog.taxonomy().Name(product.type), attr, value,
          product.title + " " + product.description});
      correct_total += product.true_values.at(attr) == value;
    }
  }
  textrich::CatalogCleaner cleaner;
  cleaner.Fit(corpus);
  TablePrinter table({"text rescue", "kept", "kept accuracy",
                      "true values dropped"});
  for (bool rescue : {false, true}) {
    textrich::CatalogCleaner::Options opt;
    opt.text_rescue = rescue;
    size_t kept = 0, kept_correct = 0, true_dropped = 0;
    for (const auto& a : corpus) {
      const bool is_true =
          catalog.products()[a.product_id].true_values.at(a.attribute) ==
          a.value;
      if (cleaner.ShouldDrop(a, opt)) {
        true_dropped += is_true;
      } else {
        ++kept;
        kept_correct += is_true;
      }
    }
    table.AddRow({rescue ? "on" : "off", std::to_string(kept),
                  FormatDouble(static_cast<double>(kept_correct) / kept, 3),
                  std::to_string(true_dropped)});
  }
  table.Print(std::cout);
}

void FusionAblation() {
  PrintBanner(std::cout, "A4: fusion family under source dependence");
  Rng rng(17);
  integrate::ClaimSet claims;
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 500; ++i) {
    const std::string item = "i" + std::to_string(i);
    const std::string correct = "v" + std::to_string(i);
    truth[item] = correct;
    claims[item].push_back(
        {"good", rng.Bernoulli(0.9) ? correct : "g" + std::to_string(i)});
    claims[item].push_back(
        {"good2", rng.Bernoulli(0.8) ? correct : "h" + std::to_string(i)});
    claims[item].push_back(
        {"good3", rng.Bernoulli(0.7) ? correct : "k" + std::to_string(i)});
    const std::string bad =
        rng.Bernoulli(0.45) ? correct : "a" + std::to_string(i);
    claims[item].push_back({"bad", bad});
    claims[item].push_back(
        {"copycat",
         rng.Bernoulli(0.95) ? bad : "c" + std::to_string(i)});
  }
  const auto vote = integrate::MajorityVote(claims);
  const auto accu = integrate::AccuFusion::Run(claims, {});
  const auto aware = integrate::CopyAwareFusion(claims, {}, {});
  auto acc = [&](auto getter) {
    size_t correct = 0;
    for (const auto& [item, gold] : truth) correct += getter(item) == gold;
    return static_cast<double>(correct) / truth.size();
  };
  TablePrinter table({"method", "accuracy"});
  table.AddRow({"majority vote", FormatDouble(acc([&](const std::string& i) {
                  return vote.at(i).value;
                }), 3)});
  table.AddRow({"ACCU", FormatDouble(acc([&](const std::string& i) {
                  return accu.fused.at(i).value;
                }), 3)});
  table.AddRow({"copy-aware ACCU",
                FormatDouble(acc([&](const std::string& i) {
                  return aware.fused.at(i).value;
                }), 3)});
  table.Print(std::cout);
}

void LexiconAblation() {
  PrintBanner(std::cout, "A5: tagger lexicon (gazetteer) features");
  Rng rng(19);
  synth::CatalogOptions copt;
  copt.num_types = 16;
  copt.num_products = 700;
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);
  std::vector<size_t> train_idx, test_idx;
  textrich::SplitIndices(catalog.products().size(), 0.7, &train_idx,
                         &test_idx);
  textrich::ExampleBuildOptions build;
  build.attach_lexicon = true;
  const std::string attr = catalog.attributes()[0];
  const auto train =
      textrich::BuildAttributeExamples(catalog, train_idx, attr, build);
  const auto test =
      textrich::BuildAttributeExamples(catalog, test_idx, attr, build);
  TablePrinter table({"lexicon", "P", "R", "F1"});
  for (bool lexicon : {false, true}) {
    extract::TitleExtractorOptions opt;
    opt.type_aware = true;
    opt.tagger.epochs = 8;
    opt.use_lexicon_features = lexicon;
    extract::TitleExtractor model;
    Rng fit_rng(23);
    model.Fit(train, opt, fit_rng);
    text::SpanScorer scorer;
    for (const auto& ex : test) {
      scorer.Add(ex.gold_spans, model.Extract(ex));
    }
    const auto s = scorer.Score();
    table.AddRow({lexicon ? "on" : "off", FormatDouble(s.precision, 3),
                  FormatDouble(s.recall, 3), FormatDouble(s.f1, 3)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Ablations of kgraph design choices (seeded)\n";
  BlockingAblation();
  ExplorationAblation();
  TextRescueAblation();
  FusionAblation();
  LexiconAblation();
  return 0;
}
