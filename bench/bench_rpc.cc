// E23: RPC serving front-end. Serves the fig5 entity KG (seed 42) from
// an RpcServer over the in-memory loopback transport and replays a
// seeded Zipf query workload through N concurrent client connections.
// Every remote answer is compared against the in-process QueryEngine
// answer for the same query — any divergence exits non-zero (the wire
// must be invisible to correctness). A second overload phase bursts
// pipelined requests past the admission caps and measures the shed
// rate: overflow must come back as clean, retriable kUnavailable
// responses, never dropped or wrong. The serving server runs with a
// metrics registry, so the report also breaks the remote tail down by
// server stage (admission, decode, queue wait, engine execute) per
// query class. Emits BENCH_rpc.json with qps/p50/p99, the per-stage
// breakdown, and shed-rate numbers.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/exec_policy.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "graph/knowledge_graph.h"
#include "obs/bench_sink.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/frame.h"
#include "rpc/server.h"
#include "rpc/transport.h"
#include "serve/query_engine.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"
#include "synth/entity_universe.h"

namespace {

using namespace kg;  // NOLINT

constexpr size_t kConnections = 4;
constexpr size_t kQueriesPerConnection = 3000;
constexpr size_t kCacheCapacity = 4096;
constexpr double kZipfExponent = 1.05;
constexpr size_t kOverloadBurst = 256;  // Pipelined frames per connection.

// The fig5 universe plus explicit class membership — the same knowledge
// bench_serve and bench_store measure, now behind a wire.
graph::KnowledgeGraph BuildFig5Kg(synth::EntityUniverse* universe) {
  synth::UniverseOptions uopt;
  uopt.num_people = 800;
  uopt.num_movies = 1200;
  uopt.num_songs = 100;
  Rng rng(42);
  *universe = synth::EntityUniverse::Generate(uopt, rng);
  graph::KnowledgeGraph kg = universe->ToKnowledgeGraph();
  const graph::Provenance prov{"ground_truth", 1.0, 0};
  using graph::NodeKind;
  for (const auto& p : universe->people()) {
    kg.AddTriple(synth::EntityUniverse::PersonNodeName(p.id), "type",
                 "Person", NodeKind::kEntity, NodeKind::kClass, prov);
  }
  for (const auto& m : universe->movies()) {
    kg.AddTriple(synth::EntityUniverse::MovieNodeName(m.id), "type",
                 "Movie", NodeKind::kEntity, NodeKind::kClass, prov);
  }
  for (const auto& s : universe->songs()) {
    kg.AddTriple(synth::EntityUniverse::SongNodeName(s.id), "type", "Song",
                 NodeKind::kEntity, NodeKind::kClass, prov);
  }
  return kg;
}

// The bench_serve query mix: 40% point lookups, 25% neighborhoods, 20%
// typed attribute scans, 15% top-k shelves, all Zipf-popular.
std::vector<serve::Query> MakeWorkload(const synth::EntityUniverse& u,
                                       size_t n, Rng& rng) {
  const ZipfDistribution person_zipf(u.people().size(), kZipfExponent);
  const ZipfDistribution movie_zipf(u.movies().size(), kZipfExponent);
  const ZipfDistribution song_zipf(u.songs().size(), kZipfExponent);
  const std::vector<double> domain_weights = {
      static_cast<double>(u.people().size()),
      static_cast<double>(u.movies().size()),
      static_cast<double>(u.songs().size())};
  const std::vector<std::string> types = {"Person", "Movie", "Song"};
  static const std::vector<std::vector<std::string>> kPreds = {
      {"name", "birth_year", "nationality", "acted_in"},
      {"title", "release_year", "genre", "directed_by"},
      {"title", "performed_by", "song_year", "song_genre"},
  };
  auto sample_node = [&](size_t domain) -> std::string {
    switch (domain) {
      case 0:
        return synth::EntityUniverse::PersonNodeName(
            u.people()[person_zipf.Sample(rng)].id);
      case 1:
        return synth::EntityUniverse::MovieNodeName(
            u.movies()[movie_zipf.Sample(rng)].id);
      default:
        return synth::EntityUniverse::SongNodeName(
            u.songs()[song_zipf.Sample(rng)].id);
    }
  };
  std::vector<serve::Query> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double r = rng.UniformDouble();
    const size_t domain = rng.Weighted(domain_weights);
    const std::string pred =
        kPreds[domain][rng.UniformIndex(kPreds[domain].size())];
    if (r < 0.40) {
      out.push_back(serve::Query::PointLookup(sample_node(domain), pred));
    } else if (r < 0.65) {
      out.push_back(serve::Query::Neighborhood(sample_node(domain)));
    } else if (r < 0.85) {
      out.push_back(serve::Query::AttributeByType(types[domain], pred));
    } else {
      out.push_back(serve::Query::TopKRelated(
          sample_node(domain), 5 * (1 + rng.UniformIndex(4))));
    }
  }
  return out;
}

std::string JsonNumber(double v) { return FormatDouble(v, 3); }

struct StageRow {
  std::string stage;
  std::string query_class;
  uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

// The four server-side stages, per query class, for every histogram
// that saw samples during the serving phase.
std::vector<StageRow> CollectStageRows(obs::MetricsRegistry& registry) {
  std::vector<StageRow> rows;
  const obs::Stage stages[] = {obs::Stage::kAdmission, obs::Stage::kDecode,
                               obs::Stage::kQueueWait,
                               obs::Stage::kEngineExecute};
  for (obs::Stage stage : stages) {
    for (size_t k = 0; k < serve::kNumQueryKinds; ++k) {
      const char* cls = serve::QueryKindName(static_cast<serve::QueryKind>(k));
      const obs::Histogram& h = obs::StageHistogram(registry, stage, cls);
      if (h.Count() == 0) continue;
      rows.push_back({obs::StageName(stage), cls, h.Count(),
                      h.Quantile(0.50), h.Quantile(0.99)});
    }
  }
  return rows;
}

}  // namespace

int main() {
  std::cout << "E23: RPC front-end — fig5 KG over loopback, "
            << kConnections << " connections x " << kQueriesPerConnection
            << " Zipf queries, remote answers vs in-process (seed 42)\n";

  synth::EntityUniverse universe;
  const graph::KnowledgeGraph kg = BuildFig5Kg(&universe);
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);

  const size_t total_queries = kConnections * kQueriesPerConnection;
  Rng workload_rng(271828);
  const std::vector<serve::Query> workload =
      MakeWorkload(universe, total_queries, workload_rng);

  // In-process reference, computed before any server exists.
  const serve::QueryEngine reference_engine(snap);
  std::vector<serve::QueryResult> reference;
  reference.reserve(workload.size());
  for (const serve::Query& q : workload) {
    reference.push_back(reference_engine.Execute(q));
  }

  // ---- Serving phase ----------------------------------------------------
  serve::ServeOptions engine_options;
  engine_options.cache_capacity = kCacheCapacity;
  const serve::QueryEngine engine(snap, engine_options);

  obs::MetricsRegistry registry;
  rpc::RpcServerOptions server_options;
  server_options.worker_threads = kConnections;
  server_options.registry = &registry;
  auto listener = std::make_unique<rpc::InMemoryTransportServer>();
  rpc::InMemoryTransportServer* loopback = listener.get();
  rpc::RpcServer server(rpc::EngineHandler(&engine), std::move(listener),
                        server_options);
  KG_CHECK_OK(server.Start());

  std::atomic<size_t> divergences{0};
  std::atomic<size_t> transport_failures{0};
  std::vector<std::vector<double>> latency_us(kConnections);
  std::vector<std::thread> clients;
  WallTimer serving_clock;
  for (size_t c = 0; c < kConnections; ++c) {
    clients.emplace_back([&, c] {
      auto transport = loopback->Connect();
      if (!transport.ok()) {
        ++transport_failures;
        return;
      }
      rpc::RpcClient client(std::move(*transport));
      if (!client.Handshake().ok()) {
        ++transport_failures;
        return;
      }
      latency_us[c].reserve(kQueriesPerConnection);
      const size_t begin = c * kQueriesPerConnection;
      for (size_t i = 0; i < kQueriesPerConnection; ++i) {
        WallTimer per_query;
        const auto remote = client.Execute(workload[begin + i]);
        latency_us[c].push_back(per_query.ElapsedSeconds() * 1e6);
        if (!remote.ok() || *remote != reference[begin + i]) {
          ++divergences;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double serving_seconds = serving_clock.ElapsedSeconds();
  const rpc::RpcServer::Stats serving_stats = server.stats();
  server.Stop();

  std::vector<double> all_latencies;
  all_latencies.reserve(total_queries);
  for (const auto& per_conn : latency_us) {
    all_latencies.insert(all_latencies.end(), per_conn.begin(),
                         per_conn.end());
  }
  const double qps =
      serving_seconds > 0.0 ? all_latencies.size() / serving_seconds : 0.0;
  const double p50_us = serve::Percentile(all_latencies, 0.50);
  const double p99_us = serve::Percentile(all_latencies, 0.99);

  // ---- Overload phase ---------------------------------------------------
  // Pipelined bursts past the admission caps: every request must still
  // get exactly one response, with the overflow shed as kUnavailable.
  rpc::RpcServerOptions tight;
  tight.worker_threads = 1;
  tight.max_queue_per_connection = 4;
  tight.max_inflight = 8;
  auto tight_listener = std::make_unique<rpc::InMemoryTransportServer>();
  rpc::InMemoryTransportServer* tight_loopback = tight_listener.get();
  rpc::RpcServer tight_server(rpc::EngineHandler(&engine),
                              std::move(tight_listener), tight);
  KG_CHECK_OK(tight_server.Start());

  std::atomic<size_t> overload_ok{0};
  std::atomic<size_t> overload_shed{0};
  std::atomic<size_t> overload_anomalies{0};
  std::vector<std::thread> bursters;
  for (size_t c = 0; c < kConnections; ++c) {
    bursters.emplace_back([&, c] {
      auto transport = tight_loopback->Connect();
      if (!transport.ok()) {
        overload_anomalies += kOverloadBurst;
        return;
      }
      auto& wire = **transport;
      // Handshake by hand; RpcClient is strictly serial and this phase
      // needs many requests in flight on one connection.
      std::string out;
      rpc::HandshakeRequest hello;
      hello.max_schema_version = serve::kSnapshotSchemaVersion;
      rpc::AppendFrame(&out, rpc::MessageType::kHandshakeRequest, 0,
                       rpc::EncodeHandshakeRequest(hello));
      const size_t begin = c * kQueriesPerConnection;
      for (uint32_t i = 0; i < kOverloadBurst; ++i) {
        rpc::AppendFrame(&out, rpc::MessageType::kQueryRequest, i + 1,
                         rpc::EncodeQuery(workload[begin + i]));
      }
      if (!wire.Write(out).ok()) {
        overload_anomalies += kOverloadBurst;
        return;
      }
      rpc::FrameDecoder decoder;
      size_t responses = 0;
      bool handshook = false;
      while (responses < kOverloadBurst) {
        rpc::Frame frame;
        rpc::FrameDecoder::Step step;
        while ((step = decoder.Next(&frame)) ==
               rpc::FrameDecoder::Step::kFrame) {
          if (frame.type == rpc::MessageType::kHandshakeResponse) {
            handshook = true;
            continue;
          }
          ++responses;
          const auto resp = rpc::DecodeQueryResponse(frame.body);
          if (!resp.ok()) {
            ++overload_anomalies;
          } else if (resp->code == StatusCode::kOk) {
            ++overload_ok;
          } else if (resp->code == StatusCode::kUnavailable) {
            ++overload_shed;
          } else {
            ++overload_anomalies;
          }
        }
        if (step == rpc::FrameDecoder::Step::kError) break;
        std::string chunk;
        const auto read = wire.Read(&chunk, 64 * 1024, 5000);
        if (!read.ok() || *read == 0) break;  // Closed or stalled.
        decoder.Feed(chunk);
      }
      if (!handshook || responses < kOverloadBurst) {
        overload_anomalies += kOverloadBurst - responses;
      }
    });
  }
  for (auto& t : bursters) t.join();
  const rpc::RpcServer::Stats tight_stats = tight_server.stats();
  tight_server.Stop();

  const size_t overload_total = kConnections * kOverloadBurst;
  const double shed_rate =
      static_cast<double>(overload_shed.load()) / overload_total;

  // ---- Report -----------------------------------------------------------
  PrintBanner(std::cout, "RPC serving verdict");
  TablePrinter table({"phase", "requests", "qps", "p50 us", "p99 us",
                      "shed", "divergences"});
  table.AddRow({"serving", std::to_string(all_latencies.size()),
                FormatDouble(qps, 0), FormatDouble(p50_us, 1),
                FormatDouble(p99_us, 1),
                std::to_string(serving_stats.requests_shed),
                std::to_string(divergences.load())});
  table.AddRow({"overload", std::to_string(overload_total), "-", "-", "-",
                std::to_string(overload_shed.load()) + " (" +
                    FormatDouble(shed_rate * 100.0, 1) + "%)",
                std::to_string(overload_anomalies.load())});
  table.Print(std::cout);

  const std::vector<StageRow> stage_rows = CollectStageRows(registry);
  PrintBanner(std::cout, "Per-stage attribution (serving phase)");
  TablePrinter stage_table({"stage", "class", "count", "p50 us", "p99 us"});
  for (const StageRow& row : stage_rows) {
    stage_table.AddRow({row.stage, row.query_class,
                        std::to_string(row.count),
                        FormatDouble(row.p50_us, 1),
                        FormatDouble(row.p99_us, 1)});
  }
  stage_table.Print(std::cout);

  std::cout << "serving wall " << FormatDouble(serving_seconds, 3)
            << "s over " << kConnections << " connections; overload: "
            << overload_ok.load() << " served, " << overload_shed.load()
            << " shed cleanly, " << overload_anomalies.load()
            << " anomalies (lost/garbled/unexpected)\n";
  const bool ok = divergences.load() == 0 && transport_failures.load() == 0 &&
                  overload_anomalies.load() == 0;
  std::cout << "remote-vs-local: "
            << (divergences.load() == 0 ? "IDENTICAL (OK)" : "DIVERGED (FAIL)")
            << "; every overload request answered or shed: "
            << (overload_anomalies.load() == 0 ? "OK" : "FAIL") << "\n";

  // ---- JSON report ------------------------------------------------------
  {
    std::ostringstream json;
    json << "{\"connections\":" << kConnections
         << ",\"snapshot\":{\"nodes\":" << snap.num_nodes()
         << ",\"predicates\":" << snap.num_predicates()
         << ",\"triples\":" << snap.num_triples() << "}"
         << ",\"serving\":{\"requests\":" << all_latencies.size()
         << ",\"seconds\":" << JsonNumber(serving_seconds)
         << ",\"qps\":" << JsonNumber(qps)
         << ",\"p50_us\":" << JsonNumber(p50_us)
         << ",\"p99_us\":" << JsonNumber(p99_us)
         << ",\"shed\":" << serving_stats.requests_shed
         << ",\"divergences\":" << divergences.load()
         << ",\"stages\":[";
    for (size_t i = 0; i < stage_rows.size(); ++i) {
      const StageRow& row = stage_rows[i];
      if (i > 0) json << ",";
      json << "{\"stage\":\"" << row.stage << "\",\"class\":\""
           << row.query_class << "\",\"count\":" << row.count
           << ",\"p50_us\":" << JsonNumber(row.p50_us)
           << ",\"p99_us\":" << JsonNumber(row.p99_us) << "}";
    }
    json << "]}"
         << ",\"overload\":{\"requests\":" << overload_total
         << ",\"served\":" << overload_ok.load()
         << ",\"shed\":" << overload_shed.load()
         << ",\"shed_rate\":" << JsonNumber(shed_rate)
         << ",\"anomalies\":" << overload_anomalies.load()
         << ",\"server_accepted\":" << tight_stats.requests_accepted
         << ",\"server_shed\":" << tight_stats.requests_shed << "}"
         << ",\"gate\":\"" << (ok ? "ok" : "fail") << "\"}";
    const obs::JsonSink sink("rpc", 42, ExecPolicy::Hardware().num_threads);
    KG_CHECK_OK(sink.WriteFile("BENCH_rpc.json", json.str()));
  }

  // A divergence means the wire altered an answer; an anomaly means a
  // request vanished instead of being answered or shed. Both are
  // correctness bugs, not perf regressions.
  return ok ? 0 : 1;
}
