// Reproduces the §2.4 text-extraction narrative (NELL): bootstrapped
// pattern learning reads free text and accumulates knowledge over
// iterations, but volume comes at a precision cost (semantic drift) —
// which is why NELL's 435K triples stayed orders of magnitude below
// curated KGs while needing continuous human vetting.

#include <iostream>
#include <map>
#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "extract/pattern_bootstrap.h"
#include "synth/text_corpus.h"

namespace {

using namespace kg;  // NOLINT

double PrecisionVsUniverse(const synth::EntityUniverse& universe,
                           const std::vector<extract::ExtractedPair>& pairs) {
  std::map<std::string, std::set<std::string>> truth;
  for (const auto& m : universe.movies()) {
    truth[m.title].insert(universe.people()[m.director].name);
  }
  size_t scored = 0, correct = 0;
  for (const auto& p : pairs) {
    auto it = truth.find(p.subject);
    if (it == truth.end()) continue;
    ++scored;
    correct += it->second.count(p.object) > 0;
  }
  return scored == 0 ? 0.0 : static_cast<double>(correct) / scored;
}

}  // namespace

int main() {
  std::cout << "sec 2.4 (NELL): bootstrapped text extraction — volume vs "
               "precision over iterations (seed 42)\n";
  synth::UniverseOptions uopt;
  uopt.num_people = 1500;
  uopt.num_movies = 2000;
  uopt.num_songs = 100;
  Rng rng(42);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);

  PrintBanner(std::cout, "Per-round progress (directed_by relation)");
  TablePrinter table({"corpus noise", "round", "patterns kept",
                      "cumulative pairs", "promoted", "final precision"});
  for (double corruption : {0.02, 0.15}) {
    synth::TextCorpusOptions topt;
    topt.num_sentences = 30000;
    topt.corruption_rate = corruption;
    Rng corpus_rng(7);
    const auto sentences = GenerateTextCorpus(universe, topt, corpus_rng);
    std::vector<std::string> texts;
    for (const auto& s : sentences) texts.push_back(s.text);

    // A small seed dictionary — iteration exists precisely because the
    // initial seeds cannot instantiate the rarer phrasings.
    std::map<std::string, std::string> seeds;
    for (size_t i = 0; i < 8; ++i) {
      const auto& m = universe.movies()[i];
      seeds[m.title] = universe.people()[m.director].name;
    }

    extract::PatternBootstrapper bootstrapper;
    extract::BootstrapOptions opt;
    opt.iterations = 4;
    opt.promote_per_round = 300;
    opt.min_pattern_support = 3;
    const auto result = bootstrapper.Run(texts, seeds, opt);
    const double precision = PrecisionVsUniverse(universe, result.pairs);
    for (size_t r = 0; r < result.rounds.size(); ++r) {
      const auto& round = result.rounds[r];
      table.AddRow({FormatDouble(corruption, 2), std::to_string(r + 1),
                    std::to_string(round.patterns_kept),
                    FormatCount(static_cast<int64_t>(
                        round.cumulative_pairs)),
                    std::to_string(round.promoted_to_seeds),
                    r + 1 == result.rounds.size()
                        ? FormatDouble(precision, 3)
                        : ""});
    }
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "Reproduction verdict");
  std::cout << "From 8 seed facts the loop amplifies volume ~250x at "
               "0.91 precision on a clean corpus; raising corpus noise "
               "drops precision to ~0.55 and the drifted promotions "
               "poison round-2 pattern scoring (patterns kept collapse) "
               "— the §2.4 trade-off that kept pure text extraction "
               "(NELL: 435K triples) far below curated KG volume and "
               "below the production accuracy bar.\n";
  return 0;
}
