// E22: observability overhead and determinism. The instrumentation
// contract is that watching the system never changes what it computes
// and costs <=5% on the hottest path we serve. Three rungs over the
// fig5 snapshot's point-lookup loop measure that directly:
//   A  bare QueryEngine (no registry — compiled-out equivalent of
//      KG_OBS_NOOP at runtime: every obs call site is skipped)
//   B  registry counters ("serve.queries.*", one sharded-atomic
//      increment per query) — the always-on production configuration;
//      gated at <=5% over A
//   C  counters + per-query latency histograms (time_queries: two
//      clock reads per query) — reported, not gated; timing is opt-in
//      precisely because clocks dwarf counter increments
// A fourth ladder measures trace propagation on the *remote*
// point-lookup path (loopback RpcClient -> RpcServer):
//   D  remote lookups, no trace context on the wire
//   E  the same requests carrying a sampled TraceContext (17-byte frame
//      extension each way, server-side extraction) — gated at <=5%
//      over D, because context propagation is the always-on distributed
//      configuration
//   F  E against a server that also records "serve.*" spans —
//      reported, not gated; span recording is opt-in like rung C
// The determinism half reruns an instrumented workload at 1/2/8
// threads: metrics exposition and (FixedTraceClock) trace JSON must be
// byte-identical across thread counts, or the binary exits non-zero.
// Emits BENCH_obs.json and BENCH_obs_trace.json through obs::JsonSink.

#include <algorithm>
#include <cstddef>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/exec_policy.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/textrich_kg_pipeline.h"
#include "graph/knowledge_graph.h"
#include "obs/bench_sink.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/client.h"
#include "rpc/frame.h"
#include "rpc/server.h"
#include "rpc/transport.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "synth/behavior_generator.h"
#include "synth/catalog_generator.h"
#include "synth/entity_universe.h"

namespace {

using namespace kg;  // NOLINT

constexpr size_t kLookups = 200000;   // per rung, per repetition
constexpr size_t kRepetitions = 5;    // best-of, interleaved
constexpr double kOverheadBudgetPct = 5.0;
constexpr double kZipfExponent = 1.05;
// Remote rungs go through a serial loopback client, so each lookup
// costs a full request/response round trip; keep the count down.
constexpr size_t kRemoteLookups = 20000;

// The fig5 universe, exactly as bench_serve compiles it, so the gated
// path is the same one the serving bench measures.
graph::KnowledgeGraph BuildFig5Kg(synth::EntityUniverse* universe) {
  synth::UniverseOptions uopt;
  uopt.num_people = 800;
  uopt.num_movies = 1200;
  uopt.num_songs = 100;
  Rng rng(42);
  *universe = synth::EntityUniverse::Generate(uopt, rng);
  return universe->ToKnowledgeGraph();
}

// Zipf-popular point lookups only: the cheapest query class, where a
// fixed per-query cost is the largest relative overhead.
std::vector<serve::Query> MakeLookups(const synth::EntityUniverse& u,
                                      size_t n, Rng& rng) {
  const ZipfDistribution person_zipf(u.people().size(), kZipfExponent);
  const std::vector<std::string> preds = {"name", "birth_year",
                                          "nationality", "acted_in"};
  std::vector<serve::Query> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(serve::Query::PointLookup(
        synth::EntityUniverse::PersonNodeName(
            u.people()[person_zipf.Sample(rng)].id),
        preds[rng.UniformIndex(preds.size())]));
  }
  return out;
}

// One timed pass over the workload; the row-count sum keeps the loop
// from being optimized away.
double TimeReplay(const serve::QueryEngine& engine,
                  const std::vector<serve::Query>& workload,
                  size_t* sink) {
  WallTimer clock;
  size_t rows = 0;
  for (const serve::Query& q : workload) {
    rows += engine.Execute(q).size();
  }
  const double seconds = clock.ElapsedSeconds();
  *sink += rows;
  return seconds;
}

std::string JsonNumber(double v) { return FormatDouble(v, 3); }

// One timed serial pass over the loopback wire; `trace` (when non-null)
// rides every request's trace-context extension.
double TimeRemoteReplay(rpc::RpcClient& client,
                        const std::vector<serve::Query>& workload,
                        const rpc::TraceContext* trace, size_t* sink) {
  WallTimer clock;
  size_t rows = 0;
  for (const serve::Query& q : workload) {
    const auto result = client.Execute(q, trace);
    KG_CHECK_OK(result.status());
    rows += result->size();
  }
  const double seconds = clock.ElapsedSeconds();
  *sink += rows;
  return seconds;
}

// A started loopback server plus one handshaken client against it.
struct RemoteRig {
  std::unique_ptr<rpc::RpcServer> server;
  std::unique_ptr<rpc::RpcClient> client;
};

RemoteRig MakeRemoteRig(const serve::QueryEngine* engine,
                        obs::Tracer* tracer) {
  RemoteRig rig;
  rpc::RpcServerOptions options;
  options.worker_threads = 1;
  options.tracer = tracer;
  auto listener = std::make_unique<rpc::InMemoryTransportServer>();
  rpc::InMemoryTransportServer* loopback = listener.get();
  rig.server = std::make_unique<rpc::RpcServer>(
      rpc::EngineHandler(engine), std::move(listener), options);
  KG_CHECK_OK(rig.server->Start());
  auto transport = loopback->Connect();
  KG_CHECK_OK(transport.status());
  rig.client = std::make_unique<rpc::RpcClient>(std::move(*transport));
  KG_CHECK_OK(rig.client->Handshake().status());
  return rig;
}

// A small text-rich build traced under a FixedTraceClock: chunk spans
// from the sharded extraction loop are named by chunk begin index, so
// the exported JSON is a pure function of (seed, structure) — the
// byte-equality witness for trace determinism.
std::string TracedTextRichBuild(size_t threads, std::string* kg_digest) {
  Rng rng(42);
  synth::CatalogOptions copt;
  copt.num_types = 8;
  copt.num_products = 200;
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);
  synth::BehaviorOptions bopt;
  bopt.num_searches = 1000;
  const auto behavior = synth::GenerateBehavior(catalog, bopt, rng);

  obs::FixedTraceClock clock;
  obs::Tracer tracer(/*seed=*/42, &clock);
  core::TextRichBuildOptions opt;
  opt.train_fraction = 0.15;
  opt.exec = ExecPolicy::WithThreads(threads);
  opt.tracer = &tracer;
  Rng build_rng(42);
  const auto build =
      core::BuildTextRichKg(catalog, behavior, opt, build_rng);
  *kg_digest = std::to_string(graph::TripleSetFingerprint(build.kg));
  return tracer.ToJson();
}

// Metrics exposition for one instrumented batch replay at `threads`.
std::string MeteredReplay(const serve::KgSnapshot& snap,
                          const std::vector<serve::Query>& workload,
                          size_t threads) {
  obs::MetricsRegistry registry;
  serve::ServeOptions options;
  options.exec = ExecPolicy::WithThreads(threads);
  options.registry = &registry;
  const serve::QueryEngine engine(snap, options);
  const auto results = engine.BatchExecute(workload);
  KG_CHECK(!results.empty()) << "empty batch replay";
  return registry.ToJson();
}

}  // namespace

int main() {
  std::cout << "E22: observability overhead gate + exposition "
               "determinism (seed 42)\n";
#ifdef KG_OBS_NOOP
  std::cout << "built with KG_OBS_NOOP: instrumented rungs compile to "
               "the bare path; the gate is trivially satisfied\n";
#endif

  synth::EntityUniverse universe;
  const graph::KnowledgeGraph kg = BuildFig5Kg(&universe);
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  Rng rng(42);
  const std::vector<serve::Query> workload =
      MakeLookups(universe, kLookups, rng);

  // ---- Overhead rungs --------------------------------------------------
  obs::MetricsRegistry registry_b;
  obs::MetricsRegistry registry_c;
  const serve::QueryEngine bare(snap, {});
  serve::ServeOptions opt_b;
  opt_b.registry = &registry_b;
  const serve::QueryEngine counted(snap, opt_b);
  serve::ServeOptions opt_c;
  opt_c.registry = &registry_c;
  opt_c.time_queries = true;
  const serve::QueryEngine timed(snap, opt_c);

  // Interleaved best-of-N: rung-vs-rung drift (frequency scaling, page
  // cache) hits all three rungs alike within a repetition.
  double best_a = 1e30, best_b = 1e30, best_c = 1e30;
  size_t sink = 0;
  for (size_t rep = 0; rep < kRepetitions; ++rep) {
    best_a = std::min(best_a, TimeReplay(bare, workload, &sink));
    best_b = std::min(best_b, TimeReplay(counted, workload, &sink));
    best_c = std::min(best_c, TimeReplay(timed, workload, &sink));
  }
  KG_CHECK(sink > 0) << "replay produced no rows";
  const double ns_a = best_a / kLookups * 1e9;
  const double ns_b = best_b / kLookups * 1e9;
  const double ns_c = best_c / kLookups * 1e9;
  const double counter_pct = (best_b / best_a - 1.0) * 100.0;
  const double timed_pct = (best_c / best_a - 1.0) * 100.0;
  const bool gate_ok = counter_pct <= kOverheadBudgetPct;

  PrintBanner(std::cout, "Point-lookup overhead (best of " +
                             std::to_string(kRepetitions) + " x " +
                             std::to_string(kLookups) + " lookups)");
  TablePrinter table({"rung", "ns/lookup", "overhead"});
  table.AddRow({"A bare engine", FormatDouble(ns_a, 1), "-"});
  table.AddRow({"B registry counters", FormatDouble(ns_b, 1),
                FormatDouble(counter_pct, 2) + "%"});
  table.AddRow({"C + latency histograms", FormatDouble(ns_c, 1),
                FormatDouble(timed_pct, 2) + "%"});
  table.Print(std::cout);
  std::cout << "counter-rung gate: " << FormatDouble(counter_pct, 2)
            << "% vs budget " << FormatDouble(kOverheadBudgetPct, 1)
            << "% -> " << (gate_ok ? "OK" : "FAIL") << "\n";
  const uint64_t counted_queries =
      registry_b.GetCounter("serve.queries.point_lookup").Value();
  KG_CHECK(counted_queries == kRepetitions * kLookups)
      << "counter missed queries";

  // ---- Remote trace-propagation rungs ----------------------------------
  const std::vector<serve::Query> remote_workload(
      workload.begin(), workload.begin() + kRemoteLookups);
  rpc::TraceContext trace_ctx;
  trace_ctx.trace_id = 0x6b67746163655f31ULL;
  trace_ctx.parent_span_id = 0x726f6f745f737061ULL;
  trace_ctx.sampled = true;
  obs::Tracer remote_tracer(/*seed=*/42);
  RemoteRig plain_rig = MakeRemoteRig(&bare, /*tracer=*/nullptr);
  RemoteRig traced_rig = MakeRemoteRig(&bare, &remote_tracer);
  double best_d = 1e30, best_e = 1e30, best_f = 1e30;
  for (size_t rep = 0; rep < kRepetitions; ++rep) {
    best_d = std::min(best_d, TimeRemoteReplay(*plain_rig.client,
                                               remote_workload, nullptr,
                                               &sink));
    best_e = std::min(best_e, TimeRemoteReplay(*plain_rig.client,
                                               remote_workload, &trace_ctx,
                                               &sink));
    best_f = std::min(best_f, TimeRemoteReplay(*traced_rig.client,
                                               remote_workload, &trace_ctx,
                                               &sink));
    // Keep the recording rung honest rep over rep: span retention must
    // not grow without bound across repetitions.
    remote_tracer.Clear();
  }
  traced_rig.server->Stop();
  plain_rig.server->Stop();
  const double us_d = best_d / kRemoteLookups * 1e6;
  const double us_e = best_e / kRemoteLookups * 1e6;
  const double us_f = best_f / kRemoteLookups * 1e6;
  const double propagation_pct = (best_e / best_d - 1.0) * 100.0;
  const double recording_pct = (best_f / best_d - 1.0) * 100.0;
  const bool propagation_gate_ok = propagation_pct <= kOverheadBudgetPct;

  PrintBanner(std::cout, "Remote trace propagation (best of " +
                             std::to_string(kRepetitions) + " x " +
                             std::to_string(kRemoteLookups) +
                             " loopback lookups)");
  TablePrinter remote_table({"rung", "us/lookup", "overhead"});
  remote_table.AddRow({"D remote bare", FormatDouble(us_d, 2), "-"});
  remote_table.AddRow({"E + trace context", FormatDouble(us_e, 2),
                       FormatDouble(propagation_pct, 2) + "%"});
  remote_table.AddRow({"F + span recording", FormatDouble(us_f, 2),
                       FormatDouble(recording_pct, 2) + "%"});
  remote_table.Print(std::cout);
  std::cout << "propagation-rung gate: " << FormatDouble(propagation_pct, 2)
            << "% vs budget " << FormatDouble(kOverheadBudgetPct, 1)
            << "% -> " << (propagation_gate_ok ? "OK" : "FAIL") << "\n";

  // ---- Metrics exposition determinism at 1/2/8 threads -----------------
  const std::vector<serve::Query> det_workload(
      workload.begin(), workload.begin() + 20000);
  const std::string metrics_1 = MeteredReplay(snap, det_workload, 1);
  const std::string metrics_2 = MeteredReplay(snap, det_workload, 2);
  const std::string metrics_8 = MeteredReplay(snap, det_workload, 8);
  const bool metrics_deterministic =
      metrics_1 == metrics_2 && metrics_2 == metrics_8;

  // ---- Trace determinism at 1/2/8 threads ------------------------------
  std::string digest_1, digest_2, digest_8;
  const std::string trace_1 = TracedTextRichBuild(1, &digest_1);
  const std::string trace_2 = TracedTextRichBuild(2, &digest_2);
  const std::string trace_8 = TracedTextRichBuild(8, &digest_8);
  const bool trace_deterministic = trace_1 == trace_2 && trace_2 == trace_8;
  const bool kg_deterministic = digest_1 == digest_2 && digest_2 == digest_8;

  PrintBanner(std::cout, "Exposition determinism (1/2/8 threads)");
  std::cout << "metrics JSON byte-identical: "
            << (metrics_deterministic ? "yes" : "NO") << "\n"
            << "trace JSON byte-identical:   "
            << (trace_deterministic ? "yes" : "NO") << "\n"
            << "traced KG bit-identical:     "
            << (kg_deterministic ? "yes" : "NO") << "\n";

  // ---- Artifacts -------------------------------------------------------
  const size_t threads = ExecPolicy::Hardware().num_threads;
  {
    std::ostringstream payload;
    payload << "{\"lookups\":" << kLookups
            << ",\"repetitions\":" << kRepetitions
            << ",\"rungs\":{\"bare_ns\":" << JsonNumber(ns_a)
            << ",\"counters_ns\":" << JsonNumber(ns_b)
            << ",\"timed_ns\":" << JsonNumber(ns_c) << "}"
            << ",\"counter_overhead_pct\":" << JsonNumber(counter_pct)
            << ",\"timed_overhead_pct\":" << JsonNumber(timed_pct)
            << ",\"budget_pct\":" << JsonNumber(kOverheadBudgetPct)
            << ",\"gate_ok\":" << (gate_ok ? "true" : "false")
            << ",\"remote\":{\"lookups\":" << kRemoteLookups
            << ",\"bare_us\":" << JsonNumber(us_d)
            << ",\"trace_context_us\":" << JsonNumber(us_e)
            << ",\"span_recording_us\":" << JsonNumber(us_f)
            << ",\"propagation_overhead_pct\":" << JsonNumber(propagation_pct)
            << ",\"recording_overhead_pct\":" << JsonNumber(recording_pct)
            << ",\"gate_ok\":" << (propagation_gate_ok ? "true" : "false")
            << "}"
            << ",\"metrics_deterministic\":"
            << (metrics_deterministic ? "true" : "false")
            << ",\"trace_deterministic\":"
            << (trace_deterministic ? "true" : "false")
            << ",\"metrics\":" << metrics_1 << "}";
    const obs::JsonSink sink_json("obs", 42, threads);
    KG_CHECK_OK(sink_json.WriteFile("BENCH_obs.json", payload.str()));
  }
  {
    const obs::JsonSink trace_sink("obs_trace", 42, threads);
    KG_CHECK_OK(trace_sink.WriteFile("BENCH_obs_trace.json", trace_8));
  }

  const bool ok = gate_ok && propagation_gate_ok && metrics_deterministic &&
                  trace_deterministic && kg_deterministic;
  PrintBanner(std::cout, "Observability verdict");
  std::cout << "verdict: " << (ok ? "BOUNDED & DETERMINISTIC" : "FAIL")
            << "\n";
  return ok ? 0 : 1;
}
