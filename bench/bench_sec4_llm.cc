// Reproduces the §4 LLM-knowledgeability study (Sun et al. 2023, as
// summarized in the paper): "for questions that can be answered using
// DBPedia data, ChatGPT has a hallucination rate of ~20%, and cannot
// answer ~50% of them", "accuracy ... involving long-tail facts
// (bottom 33% popularity) drops from ~50% to ~15%", and "a hallucination
// rate of 21% for DBPedia entities with top-33% popularity".
//
// Substitution: ChatGPT is replaced by a parametric-memory simulator
// pretrained on a Zipf-weighted fact-mention corpus (DESIGN.md §6); the
// study's findings are functions of fact frequency in training data,
// which is exactly what the simulator models.

#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "dual/answerers.h"
#include "dual/qa_eval.h"
#include "synth/qa_generator.h"

int main() {
  using namespace kg;  // NOLINT
  std::cout << "E11 / sec 4: LLM knowledgeability by popularity bucket "
               "(seed 42)\n";
  synth::UniverseOptions uopt;
  uopt.num_people = 9000;
  uopt.num_movies = 6000;
  uopt.num_songs = 500;
  Rng rng(42);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);

  synth::CorpusOptions copt;
  copt.mention_exponent = 1.05;
  const auto corpus = GenerateFactCorpus(universe, copt, rng);
  std::cout << "pretraining corpus: " << corpus.size()
            << " distinct fact mentions\n";

  synth::QaOptions qopt;
  qopt.num_questions = 6000;
  const auto questions = GenerateQaWorkload(universe, qopt, rng);

  dual::LlmSim llm;
  llm.Train(corpus);
  dual::LlmAnswerer answerer(llm);
  Rng eval_rng(7);
  const auto eval = dual::EvaluateAnswerer(answerer, questions, eval_rng);

  PrintBanner(std::cout, "sec 4 — QA quality by popularity bucket");
  TablePrinter table({"bucket", "n", "accuracy", "hallucination",
                      "unanswered"});
  for (const auto& [bucket, score] : eval.by_bucket) {
    table.AddRow({synth::PopularityBucketName(bucket),
                  std::to_string(score.n),
                  FormatDouble(score.accuracy, 3),
                  FormatDouble(score.hallucination_rate, 3),
                  FormatDouble(score.abstention_rate, 3)});
  }
  table.AddRow({"overall", std::to_string(eval.overall.n),
                FormatDouble(eval.overall.accuracy, 3),
                FormatDouble(eval.overall.hallucination_rate, 3),
                FormatDouble(eval.overall.abstention_rate, 3)});
  table.Print(std::cout);

  PrintBanner(std::cout, "Knowledge infusion (head facts)");
  {
    // Fine-tune on head-entity facts only (§4: "how to infuse head
    // knowledge into LLMs").
    std::vector<synth::FactMention> head_facts;
    for (const auto& q : questions) {
      if (q.bucket == synth::PopularityBucket::kHead) {
        head_facts.push_back(
            {q.subject_name, q.predicate, q.gold_object, 1, q.recent});
      }
    }
    dual::LlmSim infused;
    infused.Train(corpus);
    infused.Infuse(head_facts, 40.0);
    dual::LlmAnswerer infused_answerer(infused);
    Rng r(7);
    const auto infused_eval =
        dual::EvaluateAnswerer(infused_answerer, questions, r);
    TablePrinter inf({"model", "head accuracy", "head hallucination"});
    inf.AddRow({"base LLM",
                FormatDouble(eval.by_bucket
                                 .at(synth::PopularityBucket::kHead)
                                 .accuracy,
                             3),
                FormatDouble(eval.by_bucket
                                 .at(synth::PopularityBucket::kHead)
                                 .hallucination_rate,
                             3)});
    inf.AddRow({"infused LLM",
                FormatDouble(infused_eval.by_bucket
                                 .at(synth::PopularityBucket::kHead)
                                 .accuracy,
                             3),
                FormatDouble(infused_eval.by_bucket
                                 .at(synth::PopularityBucket::kHead)
                                 .hallucination_rate,
                             3)});
    inf.Print(std::cout);
  }

  PrintBanner(std::cout, "Reproduction verdict");
  const auto& head = eval.by_bucket.at(synth::PopularityBucket::kHead);
  const auto& tail = eval.by_bucket.at(synth::PopularityBucket::kTail);
  std::cout << "overall hallucination "
            << FormatDouble(eval.overall.hallucination_rate, 2)
            << " (paper ~0.20); unanswered "
            << FormatDouble(eval.overall.abstention_rate, 2)
            << " (paper ~0.50); head accuracy "
            << FormatDouble(head.accuracy, 2)
            << " -> tail accuracy " << FormatDouble(tail.accuracy, 2)
            << " (paper ~0.50 -> ~0.15); head hallucination "
            << FormatDouble(head.hallucination_rate, 2)
            << " (paper 0.21).\n";
  return 0;
}
