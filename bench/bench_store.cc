// E21: versioned-store serving under writes. Opens the fig5 entity KG
// (seed 42) in a VersionedKgStore and replays a seeded Zipf mixed
// read/write workload at 0%, 1%, and 10% write ratios, with background
// compaction kicked off mid-run on a ThreadPool. Read p50/p99 per ratio
// are compared against the immutable-snapshot path (same cache budget);
// the headline check is read p99 at 1% writes within 2x of immutable.
// Each replay runs with stage timing on, so the report attributes the
// tail by stage (result-cache probe per query class, WAL append and
// overlay merge on the write path) — the breakdown that shows *where*
// a p99-over-budget run actually spends its extra time.
// Correctness is enforced the hard way: at checkpoints the store's
// overlay answers are compared against a from-scratch snapshot rebuild of
// an oracle KG that applied the same mutations, and the final
// authoritative fingerprint must equal the oracle's. Any divergence exits
// non-zero. Emits BENCH_store.json alongside the table report.

#include <algorithm>
#include <array>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/exec_policy.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/bench_sink.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "graph/knowledge_graph.h"
#include "serve/query_engine.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"
#include "store/versioned_store.h"
#include "store/wal.h"
#include "synth/entity_universe.h"

namespace {

using namespace kg;  // NOLINT

constexpr size_t kOps = 20000;
constexpr size_t kCacheCapacity = 4096;
constexpr double kZipfExponent = 1.05;
constexpr size_t kCheckpoints = 10;       // divergence probes per replay
constexpr size_t kProbesPerCheckpoint = 16;
constexpr double kP99Budget = 2.0;        // store p99 <= 2x immutable @1%

// The fig5 universe plus explicit class membership, exactly as
// bench_serve builds it, so the two reports measure the same knowledge.
graph::KnowledgeGraph BuildFig5Kg(synth::EntityUniverse* universe) {
  synth::UniverseOptions uopt;
  uopt.num_people = 800;
  uopt.num_movies = 1200;
  uopt.num_songs = 100;
  Rng rng(42);
  *universe = synth::EntityUniverse::Generate(uopt, rng);
  graph::KnowledgeGraph kg = universe->ToKnowledgeGraph();
  const graph::Provenance prov{"ground_truth", 1.0, 0};
  using graph::NodeKind;
  for (const auto& p : universe->people()) {
    kg.AddTriple(synth::EntityUniverse::PersonNodeName(p.id), "type",
                 "Person", NodeKind::kEntity, NodeKind::kClass, prov);
  }
  for (const auto& m : universe->movies()) {
    kg.AddTriple(synth::EntityUniverse::MovieNodeName(m.id), "type",
                 "Movie", NodeKind::kEntity, NodeKind::kClass, prov);
  }
  for (const auto& s : universe->songs()) {
    kg.AddTriple(synth::EntityUniverse::SongNodeName(s.id), "type", "Song",
                 NodeKind::kEntity, NodeKind::kClass, prov);
  }
  return kg;
}

const std::vector<std::vector<std::string>>& DomainPredicates() {
  static const std::vector<std::vector<std::string>> kPreds = {
      {"name", "birth_year", "nationality", "acted_in"},
      {"title", "release_year", "genre", "directed_by"},
      {"title", "performed_by", "song_year", "song_genre"},
  };
  return kPreds;
}

// The bench_serve query mix: 40% point lookups, 25% neighborhoods, 20%
// typed attribute scans, 15% top-k shelves, all Zipf-popular.
std::vector<serve::Query> MakeReadStream(const synth::EntityUniverse& u,
                                         size_t n, Rng& rng) {
  const ZipfDistribution person_zipf(u.people().size(), kZipfExponent);
  const ZipfDistribution movie_zipf(u.movies().size(), kZipfExponent);
  const ZipfDistribution song_zipf(u.songs().size(), kZipfExponent);
  const std::vector<double> domain_weights = {
      static_cast<double>(u.people().size()),
      static_cast<double>(u.movies().size()),
      static_cast<double>(u.songs().size())};
  const std::vector<std::string> types = {"Person", "Movie", "Song"};
  const auto& preds = DomainPredicates();
  auto sample_node = [&](size_t domain) -> std::string {
    switch (domain) {
      case 0:
        return synth::EntityUniverse::PersonNodeName(
            u.people()[person_zipf.Sample(rng)].id);
      case 1:
        return synth::EntityUniverse::MovieNodeName(
            u.movies()[movie_zipf.Sample(rng)].id);
      default:
        return synth::EntityUniverse::SongNodeName(
            u.songs()[song_zipf.Sample(rng)].id);
    }
  };
  std::vector<serve::Query> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double r = rng.UniformDouble();
    const size_t domain = rng.Weighted(domain_weights);
    const std::string pred =
        preds[domain][rng.UniformIndex(preds[domain].size())];
    if (r < 0.40) {
      out.push_back(serve::Query::PointLookup(sample_node(domain), pred));
    } else if (r < 0.65) {
      out.push_back(serve::Query::Neighborhood(sample_node(domain)));
    } else if (r < 0.85) {
      out.push_back(serve::Query::AttributeByType(types[domain], pred));
    } else {
      out.push_back(serve::Query::TopKRelated(
          sample_node(domain), 5 * (1 + rng.UniformIndex(4))));
    }
  }
  return out;
}

// One Zipf-popular write: mostly fresh facts about head entities (new
// "store_tag" text attributes and "knows" edges), sometimes a retraction
// of a live triple so the overlay's shadowing is on the hot path too.
store::Mutation MakeWrite(const synth::EntityUniverse& u,
                          const graph::KnowledgeGraph& oracle, Rng& rng,
                          size_t* value_counter) {
  using graph::NodeKind;
  const ZipfDistribution person_zipf(u.people().size(), kZipfExponent);
  auto person = [&] {
    return synth::EntityUniverse::PersonNodeName(
        u.people()[person_zipf.Sample(rng)].id);
  };
  graph::Provenance prov{"live_feed", 0.9, static_cast<int64_t>(*value_counter)};
  const double roll = rng.UniformDouble();
  if (roll < 0.25) {
    const std::vector<graph::TripleId> live = oracle.AllTriples();
    if (!live.empty()) {
      const graph::Triple& t =
          oracle.triple(live[rng.UniformIndex(live.size())]);
      return store::Mutation::Retract(
          oracle.NodeName(t.subject), oracle.PredicateName(t.predicate),
          oracle.NodeName(t.object), oracle.GetNodeKind(t.subject),
          oracle.GetNodeKind(t.object));
    }
  }
  if (roll < 0.6) {
    return store::Mutation::Upsert(person(), "knows", person(),
                                   NodeKind::kEntity, NodeKind::kEntity,
                                   std::move(prov));
  }
  return store::Mutation::Upsert(
      person(), "store_tag", "v:" + std::to_string((*value_counter)++),
      NodeKind::kEntity, NodeKind::kText, std::move(prov));
}

// The rebuild oracle's side of a mutation — mirrors the store's apply
// semantics (upsert dedups into provenance; retract of absent is a no-op).
void ApplyToKg(graph::KnowledgeGraph* kg, const store::Mutation& m) {
  if (m.op == store::MutationOp::kUpsert) {
    kg->AddTriple(m.subject, m.predicate, m.object, m.subject_kind,
                  m.object_kind, m.prov);
    return;
  }
  const auto s = kg->FindNode(m.subject, m.subject_kind);
  const auto p = kg->FindPredicate(m.predicate);
  const auto o = kg->FindNode(m.object, m.object_kind);
  if (!s.ok() || !p.ok() || !o.ok()) return;
  const graph::TripleId id = kg->FindTriple(*s, *p, *o);
  if (id != graph::kInvalidTriple) kg->RemoveTriple(id);
}

struct StageRow {
  std::string stage;
  std::string query_class;  // empty for classless write-path stages
  uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

// Every store stage histogram the replay could have filled: the
// per-class cache probe on the read path, WAL append and overlay merge
// on the write path. Zero-count histograms are skipped.
std::vector<StageRow> CollectStageRows(obs::MetricsRegistry& registry) {
  std::vector<StageRow> rows;
  auto add = [&rows](std::string_view stage, std::string_view query_class,
                     const obs::Histogram& h) {
    if (h.Count() == 0) return;
    rows.push_back({std::string(stage), std::string(query_class), h.Count(),
                    h.Quantile(0.50), h.Quantile(0.99)});
  };
  for (size_t k = 0; k < serve::kNumQueryKinds; ++k) {
    const char* cls = serve::QueryKindName(static_cast<serve::QueryKind>(k));
    add(obs::StageName(obs::Stage::kCacheProbe), cls,
        obs::StageHistogram(registry, obs::Stage::kCacheProbe, cls));
  }
  add(obs::StageName(obs::Stage::kWalAppend), "",
      obs::StageHistogram(registry, obs::Stage::kWalAppend));
  add(obs::StageName(obs::Stage::kOverlayMerge), "",
      obs::StageHistogram(registry, obs::Stage::kOverlayMerge));
  return rows;
}

struct RatioReport {
  double write_pct = 0.0;
  size_t reads = 0;
  size_t writes = 0;
  double read_p50_us = 0.0;
  double read_p99_us = 0.0;
  double write_p50_us = 0.0;
  double write_p99_us = 0.0;
  double seconds = 0.0;
  size_t divergences = 0;
  size_t compactions = 0;
  size_t folded = 0;
  serve::ServeStats stats;
  std::vector<StageRow> stage_rows;
};

std::string JsonNumber(double v) { return FormatDouble(v, 3); }

std::string StageRowsJson(const std::vector<StageRow>& rows) {
  std::ostringstream json;
  json << "[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const StageRow& row = rows[i];
    if (i > 0) json << ",";
    json << "{\"stage\":\"" << row.stage << "\"";
    if (!row.query_class.empty()) {
      json << ",\"class\":\"" << row.query_class << "\"";
    }
    json << ",\"count\":" << row.count
         << ",\"p50_us\":" << JsonNumber(row.p50_us)
         << ",\"p99_us\":" << JsonNumber(row.p99_us) << "}";
  }
  json << "]";
  return json.str();
}

}  // namespace

int main() {
  std::cout << "E21: versioned store under writes — Zipf mixed workload at "
               "0/1/10% write ratios, background compaction (seed 42)\n";

  synth::EntityUniverse universe;
  const graph::KnowledgeGraph base_kg = BuildFig5Kg(&universe);
  const serve::KgSnapshot base_snap = serve::KgSnapshot::Compile(base_kg);

  // Read stream shared by every configuration (same seed => the 1% run's
  // reads are a prefix-interleaving of the 0% run's).
  Rng read_rng(271828);
  const std::vector<serve::Query> reads =
      MakeReadStream(universe, kOps, read_rng);

  // ---- Immutable baseline ----------------------------------------------
  // The read-only serving path with the same cache budget: what the store
  // must stay within 2x of (p99) while also absorbing writes.
  serve::ServeOptions baseline_options;
  baseline_options.cache_capacity = kCacheCapacity;
  const serve::QueryEngine baseline_engine(base_snap, baseline_options);
  serve::ServeStats baseline_stats;
  double baseline_seconds = 0.0;
  {
    WallTimer clock;
    for (const auto& q : reads) {
      WallTimer per_query;
      (void)baseline_engine.Execute(q);
      baseline_stats.Record(q.kind, per_query.ElapsedSeconds());
    }
    baseline_seconds = clock.ElapsedSeconds();
  }
  const auto baseline_rows = baseline_stats.rows();
  const auto& baseline_all = baseline_rows.back();
  PrintBanner(std::cout, "Immutable baseline (read-only, cached)");
  baseline_stats.Print(std::cout);
  std::cout << "wall " << FormatDouble(baseline_seconds, 3) << "s\n";

  // ---- Mixed replays ----------------------------------------------------
  const std::array<double, 3> write_ratios = {0.0, 0.01, 0.10};
  std::array<RatioReport, 3> reports;  // ServeStats is not movable
  size_t total_divergences = 0;

  for (size_t ri = 0; ri < write_ratios.size(); ++ri) {
    const double ratio = write_ratios[ri];
    RatioReport& report = reports[ri];
    report.write_pct = ratio * 100.0;

    const std::string wal_path =
        "bench_store_" + std::to_string(static_cast<int>(ratio * 100)) +
        ".wal";
    std::filesystem::remove(wal_path);
    obs::MetricsRegistry registry;  // fresh per ratio: no cross-run merge
    store::StoreOptions options;
    options.wal_path = wal_path;
    options.cache_capacity = kCacheCapacity;
    options.registry = &registry;
    options.time_stages = true;
    auto opened = store::VersionedKgStore::Open(base_kg, options);
    if (!opened.ok()) {
      std::cerr << "store open failed: " << opened.status() << "\n";
      return 1;
    }
    auto& store = **opened;
    graph::KnowledgeGraph oracle = base_kg;

    Rng op_rng(1000 + static_cast<uint64_t>(ratio * 1000));
    ThreadPool pool(2);
    std::vector<double> write_samples;
    size_t value_counter = 0;
    size_t read_idx = 0;
    const size_t checkpoint_every = kOps / kCheckpoints;

    WallTimer clock;
    for (size_t i = 0; i < kOps; ++i) {
      if (ratio > 0.0 && op_rng.Bernoulli(ratio)) {
        const store::Mutation m =
            MakeWrite(universe, oracle, op_rng, &value_counter);
        WallTimer per_write;
        if (auto st = store.Apply(m); !st.ok()) {
          std::cerr << "apply failed: " << st << "\n";
          return 1;
        }
        write_samples.push_back(per_write.ElapsedSeconds());
        ApplyToKg(&oracle, m);
        ++report.writes;
      } else if (read_idx < reads.size()) {
        const serve::Query& q = reads[read_idx++];
        WallTimer per_query;
        (void)store.Execute(q);
        report.stats.Record(q.kind, per_query.ElapsedSeconds());
        ++report.reads;
      }
      // Mid-run fold on the pool: serving continues while it runs.
      if (i == kOps / 2 && store.delta_size() > 0) {
        if (store.CompactInBackground(pool)) ++report.compactions;
      }
      // Overlay-vs-rebuild probe: the store must answer exactly as a
      // from-scratch compile of the oracle, wherever the fold is.
      if ((i + 1) % checkpoint_every == 0) {
        const serve::KgSnapshot rebuilt = serve::KgSnapshot::Compile(oracle);
        const serve::QueryEngine rebuilt_engine(rebuilt);
        for (size_t probe = 0; probe < kProbesPerCheckpoint; ++probe) {
          const serve::Query& q = reads[op_rng.UniformIndex(reads.size())];
          if (store.Execute(q) != rebuilt_engine.ExecuteUncached(q)) {
            ++report.divergences;
          }
        }
      }
    }
    pool.WaitIdle();
    report.seconds = clock.ElapsedSeconds();

    // Settle the run: final fold plus fingerprint identity.
    const auto final_stats = store.Compact();
    if (final_stats.ran) {
      ++report.compactions;
      report.folded += final_stats.folded;
      if (final_stats.base_fingerprint !=
          serve::KgSnapshot::Compile(oracle).Fingerprint()) {
        ++report.divergences;
      }
    }
    if (store.AuthoritativeFingerprint() !=
        graph::TripleSetFingerprint(oracle)) {
      ++report.divergences;
    }

    const auto rows = report.stats.rows();
    const auto& all = rows.back();
    report.read_p50_us = all.p50_us;
    report.read_p99_us = all.p99_us;
    report.write_p50_us = serve::Percentile(write_samples, 0.50) * 1e6;
    report.write_p99_us = serve::Percentile(write_samples, 0.99) * 1e6;
    total_divergences += report.divergences;
    std::filesystem::remove(wal_path);

    PrintBanner(std::cout,
                "Replay: " + FormatDouble(report.write_pct, 0) +
                    "% writes (" + std::to_string(report.reads) +
                    " reads, " + std::to_string(report.writes) + " writes)");
    report.stats.Print(std::cout);
    report.stage_rows = CollectStageRows(registry);
    TablePrinter stage_table({"stage", "class", "count", "p50 us", "p99 us"});
    for (const StageRow& row : report.stage_rows) {
      stage_table.AddRow({row.stage, row.query_class.empty() ? "-"
                                                             : row.query_class,
                          std::to_string(row.count),
                          FormatDouble(row.p50_us, 1),
                          FormatDouble(row.p99_us, 1)});
    }
    stage_table.Print(std::cout);
    const auto cache_counters = store.cache()->counters();
    std::cout << "wall " << FormatDouble(report.seconds, 3)
              << "s; write p50/p99 "
              << FormatDouble(report.write_p50_us, 1) << "/"
              << FormatDouble(report.write_p99_us, 1)
              << " us; compactions " << report.compactions
              << "; divergences " << report.divergences
              << "; cache hit rate "
              << FormatDouble(cache_counters.HitRate() * 100.0, 1)
              << "% (" << cache_counters.hits << "/"
              << (cache_counters.hits + cache_counters.misses) << ")\n";
  }

  // ---- Verdict ----------------------------------------------------------
  const double p99_ratio =
      baseline_all.p99_us > 0.0 ? reports[1].read_p99_us / baseline_all.p99_us
                                : 0.0;
  PrintBanner(std::cout, "Store verdict");
  TablePrinter verdict(
      {"config", "reads", "writes", "read p50 us", "read p99 us"});
  verdict.AddRow({"immutable baseline", std::to_string(reads.size()), "0",
                  FormatDouble(baseline_all.p50_us, 1),
                  FormatDouble(baseline_all.p99_us, 1)});
  for (const auto& r : reports) {
    verdict.AddRow({"store " + FormatDouble(r.write_pct, 0) + "% writes",
                    std::to_string(r.reads), std::to_string(r.writes),
                    FormatDouble(r.read_p50_us, 1),
                    FormatDouble(r.read_p99_us, 1)});
  }
  verdict.Print(std::cout);
  const bool p99_gate_ok = p99_ratio <= kP99Budget;
  std::cout << "read p99 at 1% writes vs immutable: "
            << FormatDouble(p99_ratio, 2) << "x ("
            << (p99_gate_ok ? "OK: <=2x" : "SHORTFALL: >2x")
            << "); overlay-vs-rebuild divergences: " << total_divergences
            << (total_divergences == 0 ? " (OK)" : " (FAIL)") << "\n";
  // Attribute the 1%-writes tail: which timed stage is widest at p99.
  // When the headline ratio runs past budget, this is the row to read —
  // the scan-heavy classes' cache probes (attribute_by_type,
  // topk_related) absorb overlay invalidations, while write-path stages
  // (WAL append, overlay merge) never block readers directly.
  std::string tail_stage;
  if (!reports[1].stage_rows.empty()) {
    const StageRow* widest = &reports[1].stage_rows[0];
    for (const StageRow& row : reports[1].stage_rows) {
      if (row.p99_us > widest->p99_us) widest = &row;
    }
    tail_stage = widest->stage;
    if (!widest->query_class.empty()) tail_stage += "." + widest->query_class;
    std::cout << "tail attribution at 1% writes: widest stage p99 is "
              << tail_stage << " at " << FormatDouble(widest->p99_us, 1)
              << " us\n";
  }
  if (!p99_gate_ok) {
    // Soft gate: a noisy-neighbor CI box can blow the tail without the
    // store being wrong, so the budget miss is a loud warning plus a
    // machine-readable verdict in the JSON, not an exit code.
    std::cout << "WARN: read p99 tail-latency budget exceeded ("
              << FormatDouble(p99_ratio, 2) << "x > "
              << FormatDouble(kP99Budget, 1)
              << "x immutable baseline at 1% writes)\n";
  }

  // ---- JSON report -----------------------------------------------------
  {
    std::ostringstream json;
    json << "{\"workload\":" << kOps
         << ",\"snapshot\":{\"nodes\":" << base_snap.num_nodes()
         << ",\"predicates\":" << base_snap.num_predicates()
         << ",\"triples\":" << base_snap.num_triples() << "}"
         << ",\"baseline\":" << baseline_stats.ToJson()
         << ",\"ratios\":[";
    for (size_t i = 0; i < reports.size(); ++i) {
      const auto& r = reports[i];
      if (i) json << ",";
      json << "{\"write_pct\":" << JsonNumber(r.write_pct)
           << ",\"reads\":" << r.reads << ",\"writes\":" << r.writes
           << ",\"seconds\":" << JsonNumber(r.seconds)
           << ",\"write_p50_us\":" << JsonNumber(r.write_p50_us)
           << ",\"write_p99_us\":" << JsonNumber(r.write_p99_us)
           << ",\"compactions\":" << r.compactions
           << ",\"divergences\":" << r.divergences
           << ",\"stats\":" << r.stats.ToJson()
           << ",\"stages\":" << StageRowsJson(r.stage_rows) << "}";
    }
    json << "],\"p99_ratio_at_1pct\":" << JsonNumber(p99_ratio)
         << ",\"p99_budget\":" << JsonNumber(kP99Budget)
         << ",\"p99_gate\":\"" << (p99_gate_ok ? "ok" : "warn") << "\""
         << ",\"tail_stage_at_1pct\":\"" << tail_stage << "\""
         << ",\"divergences\":" << total_divergences << "}";
    const obs::JsonSink sink("store", 42, ExecPolicy::Hardware().num_threads);
    KG_CHECK_OK(sink.WriteFile("BENCH_store.json", json.str()));
  }

  // Divergence is a correctness bug in the overlay/compaction path; a slow
  // p99 is a perf regression to investigate, not a wrong answer.
  return total_divergences == 0 ? 0 : 1;
}
