// Reproduces the §2.4 Knowledge-Based Trust claim: graphical models over
// extracted claims can "distinguish extraction errors and source
// errors", yielding web-source trustworthiness estimates. Compares
// majority vote, single-layer ACCU, and two-layer KBT on a simulated
// extraction corpus with controlled source/extractor accuracies.

#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "fuse/kbt.h"
#include "integrate/fusion.h"

int main() {
  using namespace kg;  // NOLINT
  std::cout << "E5 / sec 2.4: Knowledge-Based Trust vs vote vs ACCU "
               "(seed 42)\n";
  Rng rng(42);

  // Ground truth: sources with known accuracy; extractors with known
  // accuracy observing each source independently.
  const std::map<std::string, double> source_acc = {
      {"web-a", 0.95}, {"web-b", 0.85}, {"web-c", 0.70}, {"web-d", 0.55}};
  const std::map<std::string, double> extractor_acc = {
      {"semistructured", 0.95}, {"text", 0.75}, {"webtable", 0.85}};

  // Sparse coverage makes fusion non-trivial: each fact is asserted by
  // only ~2 sources, each observed by ~2 extractors (the web's long tail
  // rarely enjoys 12 independent observations of the same fact).
  std::vector<std::string> source_names, extractor_names;
  for (const auto& [s, a] : source_acc) source_names.push_back(s);
  for (const auto& [e, a] : extractor_acc) extractor_names.push_back(e);
  std::vector<fuse::ExtractedClaim> claims;
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 1500; ++i) {
    const std::string item = "fact" + std::to_string(i);
    const std::string correct = "v" + std::to_string(i);
    truth[item] = correct;
    for (size_t si : rng.SampleIndices(source_names.size(), 2)) {
      const std::string& source = source_names[si];
      const double sa = source_acc.at(source);
      const std::string asserted =
          rng.Bernoulli(sa) ? correct
                            : "a-wrong-" + source + "-" + std::to_string(i);
      for (size_t ei : rng.SampleIndices(extractor_names.size(), 2)) {
        const std::string& extractor = extractor_names[ei];
        const std::string observed =
            rng.Bernoulli(extractor_acc.at(extractor))
                ? asserted
                : "b-xerr-" + extractor + "-" + std::to_string(i);
        claims.push_back({item, source, extractor, observed});
      }
    }
  }

  // Baselines treat each (source, extractor) stream as one "source".
  integrate::ClaimSet flat;
  for (const auto& c : claims) {
    flat[c.item].push_back(
        integrate::Claim{c.source + "|" + c.extractor, c.value});
  }
  const auto vote = integrate::MajorityVote(flat);
  const auto accu = integrate::AccuFusion::Run(flat, {});
  const auto kbt = fuse::RunKbt(claims, {});

  auto truth_accuracy = [&](auto getter) {
    size_t correct = 0;
    for (const auto& [item, gold] : truth) {
      correct += getter(item) == gold;
    }
    return static_cast<double>(correct) / truth.size();
  };
  const double vote_acc =
      truth_accuracy([&](const std::string& item) {
        return vote.at(item).value;
      });
  const double accu_acc =
      truth_accuracy([&](const std::string& item) {
        return accu.fused.at(item).value;
      });
  const double kbt_acc = truth_accuracy(
      [&](const std::string& item) { return kbt.truth.at(item); });

  PrintBanner(std::cout, "Fused-truth accuracy");
  TablePrinter table({"method", "truth accuracy"});
  table.AddRow({"majority vote", FormatDouble(vote_acc, 3)});
  table.AddRow({"ACCU (single layer)", FormatDouble(accu_acc, 3)});
  table.AddRow({"KBT (two layer)", FormatDouble(kbt_acc, 3)});
  table.Print(std::cout);

  PrintBanner(std::cout, "Source trustworthiness estimates (KBT)");
  TablePrinter sources({"source", "true accuracy", "KBT estimate",
                        "abs error"});
  double mae = 0.0;
  for (const auto& [source, true_acc] : source_acc) {
    const double estimate = kbt.source_accuracy.at(source);
    mae += std::abs(estimate - true_acc);
    sources.AddRow({source, FormatDouble(true_acc, 2),
                    FormatDouble(estimate, 3),
                    FormatDouble(std::abs(estimate - true_acc), 3)});
  }
  mae /= source_acc.size();
  sources.Print(std::cout);

  PrintBanner(std::cout, "Extractor accuracy estimates (KBT)");
  TablePrinter extractors({"extractor", "true accuracy", "KBT estimate"});
  for (const auto& [extractor, true_acc] : extractor_acc) {
    extractors.AddRow({extractor, FormatDouble(true_acc, 2),
                       FormatDouble(
                           kbt.extractor_accuracy.at(extractor), 3)});
  }
  extractors.Print(std::cout);

  PrintBanner(std::cout, "Reproduction verdict");
  std::cout << "KBT truth accuracy " << FormatDouble(kbt_acc, 3)
            << " >= ACCU " << FormatDouble(accu_acc, 3) << " >= vote "
            << FormatDouble(vote_acc, 3)
            << "; source-accuracy MAE " << FormatDouble(mae, 3)
            << " (paper: the KBT model separates source error from "
               "extraction error and scores web-source "
               "trustworthiness).\n";
  return 0;
}
