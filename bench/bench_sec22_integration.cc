// Reproduces the §2.1-2.2 narrative as numbers: knowledge transformation
// of an authoritative anchor source (Wikipedia role), then knowledge
// integration of further structured sources (IMDb / MusicBrainz roles):
// schema alignment, entity linkage, and fusion grow the KG while keeping
// accuracy high. Also exercises automatic schema alignment (§5's
// "not-yet-successful" technique) against the manual mapping.

#include <iostream>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/entity_kg_pipeline.h"
#include "integrate/schema_alignment.h"

int main() {
  using namespace kg;  // NOLINT
  std::cout << "E13 / sec 2.1-2.2: growing an entity-based KG source by "
               "source (seed 42)\n";
  synth::UniverseOptions uopt;
  uopt.num_people = 2000;
  uopt.num_movies = 2500;
  uopt.num_songs = 300;
  Rng rng(42);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  std::map<std::pair<uint32_t, std::string>, std::string> truth;
  for (const auto& m : universe.movies()) {
    truth[{m.id, "title"}] = m.title;
    truth[{m.id, "release_year"}] = std::to_string(m.release_year);
    truth[{m.id, "genre"}] = m.genre;
    truth[{m.id, "director"}] = universe.people()[m.director].name;
  }

  synth::SourceOptions wiki, imdb, webdb;
  wiki.name = "wikipedia";
  wiki.coverage = 0.45;
  wiki.value_accuracy = 0.98;
  wiki.name_noise = 0.05;
  imdb.name = "imdb";
  imdb.coverage = 0.75;
  imdb.schema_dialect = 1;
  imdb.value_accuracy = 0.96;
  webdb.name = "webdb";
  webdb.coverage = 0.5;
  webdb.schema_dialect = 2;
  webdb.value_accuracy = 0.82;
  webdb.name_noise = 0.3;

  core::EntityKgBuilder::Options opt;
  opt.forest.num_trees = 30;
  core::EntityKgBuilder builder(synth::SourceDomain::kMovies, opt);
  ExitIfError(
      builder.TryIngestAnchor(synth::EmitSource(universe, wiki, rng), rng),
      "ingest wikipedia");
  ExitIfError(
      builder.TryIngestAndLink(synth::EmitSource(universe, imdb, rng), rng),
      "ingest imdb");
  ExitIfError(
      builder.TryIngestAndLink(synth::EmitSource(universe, webdb, rng),
                               rng),
      "ingest webdb");
  builder.FuseValues();

  PrintBanner(std::cout, "Source-by-source ingestion (Figure 4a)");
  TablePrinter table({"source", "records", "linked", "new entities",
                      "link precision", "link recall", "entities",
                      "triples"});
  for (const auto& r : builder.reports()) {
    table.AddRow({r.source, std::to_string(r.records),
                  std::to_string(r.linked),
                  std::to_string(r.new_entities),
                  r.linked ? FormatDouble(r.linkage_precision, 3) : "-",
                  r.linked ? FormatDouble(r.linkage_recall, 3) : "-",
                  std::to_string(r.kg_entities_after),
                  FormatCount(static_cast<int64_t>(r.kg_triples_after))});
  }
  table.Print(std::cout);
  std::cout << "fused KG accuracy vs universe truth: "
            << FormatDouble(builder.KgAccuracy(truth), 3) << "\n";

  PrintBanner(std::cout, "Automatic vs manual schema alignment");
  {
    Rng align_rng(7);
    const auto canonical_table =
        synth::EmitSource(universe, wiki, align_rng);
    TablePrinter align({"source dialect", "columns mapped correctly"});
    for (int dialect : {1, 2}) {
      synth::SourceOptions other = imdb;
      other.schema_dialect = dialect;
      const auto table2 = synth::EmitSource(universe, other, align_rng);
      std::vector<std::map<std::string, std::string>> sample, reference;
      for (size_t i = 0; i < std::min<size_t>(200, table2.records.size());
           ++i) {
        sample.push_back(table2.records[i].fields);
      }
      for (size_t i = 0;
           i < std::min<size_t>(200, canonical_table.records.size());
           ++i) {
        reference.push_back(canonical_table.records[i].fields);
      }
      const auto inferred = integrate::InferMapping(
          table2.columns, sample,
          synth::CanonicalColumns(table2.domain), reference);
      const auto gold = core::ManualMappingFor(table2);
      align.AddRow({"dialect " + std::to_string(dialect),
                    FormatDouble(integrate::MappingAccuracy(inferred, gold), 2)});
    }
    align.Print(std::cout);
  }

  PrintBanner(std::cout, "Reproduction verdict");
  std::cout << "Paper: integration of authoritative sources grows KGs by "
               "an order of magnitude at high accuracy; linkage is the "
               "critical automated step (manual alignment stays cheap at "
               "a handful of sources). Expected shape: high link "
               "precision, entity count << record count, fused accuracy "
               "above the noisiest source.\n";
  return 0;
}
