// Reproduces the §2.4 web-scale extraction findings (Knowledge Vault):
//  * extraction from four content types (text, semi-structured pages,
//    web tables, annotations) feeding a fusion model that predicts
//    triple correctness;
//  * semi-structured pages contribute the overwhelming share of
//    high-confidence triples (94M of KV's 100M);
//  * the high-confidence web-extracted volume stays well below curated
//    KG volume (KV 100M vs Freebase 637M / Google KG 18B) — web
//    extraction supplements, not replaces, curated integration.
//
// Substitution: a simulated web over the synthetic universe (DESIGN.md
// §6) with per-content-type extractors of realistic relative quality.

#include <iostream>
#include <map>
#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/conversions.h"
#include "extract/distant_supervision.h"
#include "fuse/confidence_model.h"
#include "integrate/schema_alignment.h"
#include "synth/structured_source.h"
#include "synth/website_generator.h"
#include "text/similarity.h"
#include "text/tokenize.h"

namespace {

using namespace kg;  // NOLINT

// Universe truth lookup for accuracy scoring: (normalized unique movie
// title, predicate) -> value.
std::map<std::pair<std::string, std::string>, std::string> TruthIndex(
    const synth::EntityUniverse& universe) {
  std::map<std::string, int> title_counts;
  for (const auto& m : universe.movies()) ++title_counts[m.title];
  std::map<std::pair<std::string, std::string>, std::string> truth;
  for (const auto& m : universe.movies()) {
    if (title_counts[m.title] != 1) continue;
    const std::string key = text::NormalizeForMatch(m.title);
    truth[{key, "release_year"}] = std::to_string(m.release_year);
    truth[{key, "genre"}] = m.genre;
    truth[{key, "director"}] =
        text::NormalizeForMatch(universe.people()[m.director].name);
  }
  return truth;
}

// Value comparison tolerant to surface variants ("A. Novak" vs
// "Ada Novak"): exact normalized match or high Jaro-Winkler.
bool ValuesMatch(const std::string& a, const std::string& b) {
  const std::string na = text::NormalizeForMatch(a);
  const std::string nb = text::NormalizeForMatch(b);
  if (na == nb) return true;
  return text::JaroWinklerSimilarity(na, nb) >= 0.88;
}

struct TypeStats {
  size_t candidates = 0;
  size_t high_confidence = 0;
  size_t scored_against_truth = 0;
  size_t correct = 0;
};

}  // namespace

int main() {
  std::cout << "E4 / sec 2.4: web-scale extraction and fusion "
               "(Knowledge Vault shape, seed 42)\n";
  synth::UniverseOptions uopt;
  uopt.num_people = 4000;
  uopt.num_movies = 3000;
  uopt.num_songs = 500;
  Rng rng(42);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  const auto truth = TruthIndex(universe);

  // Seed KG (for distant supervision and fusion calibration): head 40%
  // of movies.
  extract::SeedKnowledge seed;
  for (size_t i = 0; i < universe.movies().size() * 2 / 5; ++i) {
    const auto& m = universe.movies()[i];
    seed.AddEntity(m.title,
                   {{"release_year", std::to_string(m.release_year)},
                    {"genre", m.genre},
                    {"director", universe.people()[m.director].name}});
  }

  std::vector<fuse::CandidateTriple> candidates;

  // --- Content type 1: semi-structured websites (Ceres per site) -------
  {
    size_t sites = 0;
    for (int s = 0; s < 12; ++s) {
      synth::WebsiteOptions wopt;
      wopt.domain = synth::SourceDomain::kMovies;
      wopt.site_name = "movie-site" + std::to_string(s);
      wopt.num_pages = 250;
      wopt.label_dialect = s % 3;
      wopt.chrome_depth = s % 3;
      const auto site = GenerateWebsite(universe, wopt, rng);
      std::vector<const extract::DomPage*> pages;
      for (const auto& page : site.pages) pages.push_back(&page.dom);
      extract::DistantlySupervisedExtractor extractor;
      if (extractor.Fit(pages, seed, {}) == 0) continue;
      ++sites;
      for (const auto& page : site.pages) {
        for (const auto& e : extractor.Extract(page.dom)) {
          candidates.push_back(
              {text::NormalizeForMatch(page.topic_name), e.attribute,
               e.attribute == "director"
                   ? text::NormalizeForMatch(e.value)
                   : e.value,
               site.name, "semistructured", e.confidence});
        }
      }
    }
    std::cout << "semi-structured: " << sites << " sites extracted\n";
  }

  // --- Content type 2: free text (blurb sentences) ----------------------
  {
    // Text extraction reads "<topic> is a <genre> favorite" sentences;
    // the pattern is noisy by construction (the blurb genre is often
    // editorial filler rather than the catalogued genre).
    for (int s = 0; s < 6; ++s) {
      synth::WebsiteOptions wopt;
      wopt.domain = synth::SourceDomain::kMovies;
      wopt.site_name = "blog" + std::to_string(s);
      wopt.num_pages = 300;
      const auto site = GenerateWebsite(universe, wopt, rng);
      for (const auto& page : site.pages) {
        for (const auto& node : page.dom.nodes) {
          if (node.tag != "p" || node.text.empty()) continue;
          // Pattern: "<topic> is a <word> favorite ...".
          const std::string marker = " is a ";
          const size_t pos = node.text.find(marker);
          const size_t end = node.text.find(" favorite");
          if (pos == std::string::npos || end == std::string::npos ||
              end <= pos) {
            continue;
          }
          const std::string subject = node.text.substr(0, pos);
          const std::string value = node.text.substr(
              pos + marker.size(), end - pos - marker.size());
          candidates.push_back({text::NormalizeForMatch(subject), "genre",
                                value, site.name, "text", 0.5});
        }
      }
    }
  }

  // --- Content type 3: web tables (auto-aligned structured dumps) ------
  {
    for (int s = 0; s < 5; ++s) {
      synth::SourceOptions sopt;
      sopt.name = "webtable" + std::to_string(s);
      sopt.domain = synth::SourceDomain::kMovies;
      sopt.coverage = 0.15;
      sopt.schema_dialect = s % 3;
      sopt.value_accuracy = 0.88;
      sopt.name_noise = 0.2;
      const auto table = synth::EmitSource(universe, sopt, rng);
      // Automatic schema alignment against the seed's canonical space
      // (web tables have no curator).
      std::vector<std::map<std::string, std::string>> sample;
      for (size_t i = 0; i < std::min<size_t>(100, table.records.size());
           ++i) {
        sample.push_back(table.records[i].fields);
      }
      std::vector<std::map<std::string, std::string>> reference;
      {
        synth::SourceOptions canonical;
        canonical.domain = synth::SourceDomain::kMovies;
        canonical.coverage = 0.2;
        Rng ref_rng(99);
        const auto ref = synth::EmitSource(universe, canonical, ref_rng);
        for (size_t i = 0; i < std::min<size_t>(100, ref.records.size());
             ++i) {
          reference.push_back(ref.records[i].fields);
        }
      }
      const auto mapping = integrate::InferMapping(
          table.columns, sample,
          synth::CanonicalColumns(table.domain), reference);
      for (const auto& rec : table.records) {
        const auto mapped =
            mapping.Apply(table.source_name, rec.local_id, rec.fields);
        const std::string& title = mapped.Get("title");
        if (title.empty()) continue;
        for (const auto& [attr, value] : mapped.attrs) {
          if (attr == "title") continue;
          candidates.push_back({text::NormalizeForMatch(title), attr,
                                attr == "director"
                                    ? text::NormalizeForMatch(value)
                                    : value,
                                table.source_name, "webtable", 0.8});
        }
      }
    }
  }

  // --- Content type 4: annotations (schema.org-style) ------------------
  {
    for (int s = 0; s < 2; ++s) {
      synth::WebsiteOptions wopt;
      wopt.domain = synth::SourceDomain::kMovies;
      wopt.site_name = "annotated" + std::to_string(s);
      wopt.num_pages = 120;
      wopt.value_noise = 0.01;
      const auto site = GenerateWebsite(universe, wopt, rng);
      for (const auto& page : site.pages) {
        // Annotations expose the page's own key-values directly.
        for (const auto& [attr, value] : page.displayed_values) {
          if (attr != "genre" && attr != "release_year") continue;
          candidates.push_back({text::NormalizeForMatch(page.topic_name),
                                attr, value, site.name, "annotation",
                                0.95});
        }
      }
    }
  }

  // --- Fusion: calibrate on seed agreement, score all groups -----------
  // Calibration needs reconciled subjects: shared titles would pair a
  // page about one movie with the seed entry of its namesake and poison
  // the labels (the paper's "entity heterogeneity"). Restrict to titles
  // unique in the universe.
  std::set<std::string> unique_titles;
  {
    std::map<std::string, int> counts;
    for (const auto& m : universe.movies()) {
      ++counts[text::NormalizeForMatch(m.title)];
    }
    for (const auto& [title, n] : counts) {
      if (n == 1) unique_titles.insert(title);
    }
  }
  auto groups = fuse::ExtractionConfidenceModel::GroupCandidates(candidates);
  std::vector<size_t> calibration_groups;
  std::vector<int> labels;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (!unique_titles.count(groups[g].subject)) continue;
    const auto* known = seed.Find(groups[g].subject);
    if (known == nullptr) continue;
    auto it = known->find(groups[g].predicate);
    if (it == known->end()) continue;
    calibration_groups.push_back(g);
    labels.push_back(ValuesMatch(it->second, groups[g].object) ? 1 : 0);
  }
  fuse::ExtractionConfidenceModel model;
  {
    std::vector<fuse::ExtractionConfidenceModel::Group> train;
    for (size_t g : calibration_groups) train.push_back(groups[g]);
    Rng fit_rng(7);
    model.Fit(train, labels, fit_rng);
  }

  std::map<std::string, TypeStats> by_type;
  size_t total_high_confidence = 0;
  for (const auto& group : groups) {
    const double score = model.Score(group);
    // Attribute the group to its dominant extractor family.
    std::map<std::string, size_t> family_votes;
    for (const auto* c : group.supporters) ++family_votes[c->extractor];
    std::string family;
    size_t best = 0;
    for (const auto& [f, n] : family_votes) {
      if (n > best) {
        best = n;
        family = f;
      }
    }
    TypeStats& stats = by_type[family];
    ++stats.candidates;
    const bool high = score >= 0.9;
    if (high) {
      ++stats.high_confidence;
      ++total_high_confidence;
    }
    auto it = truth.find({group.subject, group.predicate});
    if (high && it != truth.end()) {
      ++stats.scored_against_truth;
      stats.correct += ValuesMatch(it->second, group.object);
    }
  }

  PrintBanner(std::cout, "Triples by content type (fusion threshold 0.9)");
  TablePrinter table({"content type", "candidate triples",
                      "high-confidence", "share of high-conf",
                      "accuracy vs truth"});
  for (const auto& [family, stats] : by_type) {
    table.AddRow(
        {family, FormatCount(static_cast<int64_t>(stats.candidates)),
         FormatCount(static_cast<int64_t>(stats.high_confidence)),
         FormatDouble(total_high_confidence == 0
                          ? 0.0
                          : static_cast<double>(stats.high_confidence) /
                                total_high_confidence,
                      3),
         stats.scored_against_truth == 0
             ? "-"
             : FormatDouble(static_cast<double>(stats.correct) /
                                stats.scored_against_truth,
                            3)});
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "Volume vs curated knowledge");
  const size_t curated = universe.ToKnowledgeGraph().num_triples();
  TablePrinter volume({"collection", "triples"});
  volume.AddRow({"web-extracted, high-confidence",
                 FormatCount(static_cast<int64_t>(total_high_confidence))});
  volume.AddRow({"curated universe KG (Freebase role)",
                 FormatCount(static_cast<int64_t>(curated))});
  volume.Print(std::cout);

  PrintBanner(std::cout, "Reproduction verdict");
  const auto& semi = by_type["semistructured"];
  std::cout << "semi-structured share of high-confidence triples: "
            << FormatDouble(total_high_confidence == 0
                                ? 0.0
                                : static_cast<double>(
                                      semi.high_confidence) /
                                      total_high_confidence,
                            3)
            << " (paper: 94M of 100M = 0.94); web volume / curated "
               "volume: "
            << FormatDouble(static_cast<double>(total_high_confidence) /
                                static_cast<double>(curated),
                            3)
            << " (paper: 100M / 637M ~ 0.16, vs Google KG 18B far "
               "larger).\n";
  return 0;
}
