// Reproduces the §3.1/§3.5 claims: type relationships (hypernyms,
// synonyms) are minable from customer shopping behavior ("if users
// searching for tea often buy green tea ... it hints that green tea is a
// subtype of tea"), and AutoKnow-style cleaning improves catalog
// accuracy.

#include <iostream>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/textrich_kg_pipeline.h"
#include "textrich/related_products.h"
#include "textrich/taxonomy_mining.h"

int main() {
  using namespace kg;  // NOLINT
  std::cout << "E10 / sec 3.1: taxonomy mining from behavior logs + "
               "catalog cleaning (seed 42)\n";
  Rng rng(42);
  synth::CatalogOptions copt;
  copt.num_types = 32;
  copt.num_products = 1500;
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);
  synth::BehaviorOptions bopt;
  bopt.num_searches = 60000;
  const auto behavior = synth::GenerateBehavior(catalog, bopt, rng);

  PrintBanner(std::cout, "Taxonomy mining (Octet-style)");
  TablePrinter mining({"signal volume", "hypernyms", "hyp. precision",
                       "hyp. recall", "synonyms", "syn. precision"});
  for (size_t events : {5000UL, 20000UL, 60000UL}) {
    synth::BehaviorLog slice;
    slice.searches.assign(behavior.searches.begin(),
                          behavior.searches.begin() + events);
    const auto mined = textrich::MineTaxonomy(catalog, slice, {});
    const auto score = textrich::ScoreMinedTaxonomy(catalog, mined);
    mining.AddRow({FormatCount(static_cast<int64_t>(events)),
                   std::to_string(score.hypernyms_mined),
                   FormatDouble(score.hypernym_precision, 3),
                   FormatDouble(score.hypernym_recall, 3),
                   std::to_string(score.synonyms_mined),
                   FormatDouble(score.synonym_precision, 3)});
  }
  mining.Print(std::cout);

  PrintBanner(std::cout,
              "Substitutes & complements from behavior (P-Companion)");
  {
    const auto pairs = textrich::MineRelatedProducts(behavior, {});
    const auto rel = textrich::ScoreRelatedProducts(catalog, pairs);
    TablePrinter related({"kind", "mined", "structure agreement"});
    related.AddRow({"substitutes (co-view)",
                    std::to_string(rel.substitutes),
                    FormatDouble(rel.substitute_same_category_rate, 3) +
                        " same-category"});
    related.AddRow({"complements (co-purchase)",
                    std::to_string(rel.complements),
                    FormatDouble(rel.complement_cross_category_rate, 3) +
                        " cross-category"});
    related.Print(std::cout);
  }

  PrintBanner(std::cout, "AutoKnow end-to-end (Figure 4b pipeline)");
  core::TextRichBuildOptions opt;
  Rng build_rng(7);
  const auto built =
      core::TryBuildTextRichKg(catalog, behavior, opt, build_rng);
  ExitIfError(built.status(), "AutoKnow end-to-end build");
  const auto& build = *built;
  TablePrinter pipeline({"metric", "value"});
  pipeline.AddRow({"products", std::to_string(build.report.products)});
  pipeline.AddRow({"assertions extracted",
                   FormatCount(static_cast<int64_t>(
                       build.report.extracted_assertions))});
  pipeline.AddRow({"accuracy before cleaning",
                   FormatDouble(build.report.accuracy_before_cleaning, 3)});
  pipeline.AddRow({"assertions after cleaning",
                   FormatCount(static_cast<int64_t>(
                       build.report.after_cleaning))});
  pipeline.AddRow({"accuracy after cleaning",
                   FormatDouble(build.report.accuracy_after_cleaning, 3)});
  pipeline.AddRow({"hypernyms mined",
                   std::to_string(build.report.hypernyms_mined)});
  pipeline.AddRow({"synonym edges added",
                   std::to_string(build.report.synonyms_added)});
  pipeline.AddRow({"KG triples",
                   FormatCount(static_cast<int64_t>(
                       build.report.kg_triples))});
  pipeline.AddRow({"text-object fraction (bipartiteness)",
                   FormatDouble(build.report.text_object_fraction, 3)});
  pipeline.Print(std::cout);

  PrintBanner(std::cout, "Reproduction verdict");
  std::cout << "Paper: AutoKnow collected ~1B triples over 11K types and "
               "\"considerably extended the ontology and improved "
               "Catalog quality\"; our pipeline shows the same shape — "
               "behavior-mined taxonomy edges at high precision, and "
               "cleaning raising assertion accuracy.\n";
  return 0;
}
