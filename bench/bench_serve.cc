// E20: serving-layer workload replay. Compiles the fig5 entity KG (seed
// 42) into an immutable KgSnapshot, then (a) races snapshot point lookups
// against the naive graph::query scan path (the >=10x index claim), and
// (b) replays a seeded Zipf-distributed 20k-query workload — uncached,
// cold cache, warm cache, and batch-parallel at hardware threads. The
// cache and the thread count may change how fast an answer arrives, never
// the answer: any cached-vs-uncached or parallel-vs-serial divergence
// exits non-zero. Emits BENCH_serve.json alongside the table report.

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/exec_policy.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "obs/bench_sink.h"
#include "graph/knowledge_graph.h"
#include "graph/query.h"
#include "serve/query_engine.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"
#include "synth/entity_universe.h"

namespace {

using namespace kg;  // NOLINT

constexpr size_t kWorkloadSize = 20000;
constexpr size_t kCacheCapacity = 4096;
constexpr double kZipfExponent = 1.05;

// The fig5 universe plus explicit class membership ("type" triples), so
// attribute-by-type queries have classes to scan.
graph::KnowledgeGraph BuildFig5Kg(synth::EntityUniverse* universe) {
  synth::UniverseOptions uopt;
  uopt.num_people = 800;
  uopt.num_movies = 1200;
  uopt.num_songs = 100;
  Rng rng(42);
  *universe = synth::EntityUniverse::Generate(uopt, rng);
  graph::KnowledgeGraph kg = universe->ToKnowledgeGraph();
  const graph::Provenance prov{"ground_truth", 1.0, 0};
  using graph::NodeKind;
  for (const auto& p : universe->people()) {
    kg.AddTriple(synth::EntityUniverse::PersonNodeName(p.id), "type",
                 "Person", NodeKind::kEntity, NodeKind::kClass, prov);
  }
  for (const auto& m : universe->movies()) {
    kg.AddTriple(synth::EntityUniverse::MovieNodeName(m.id), "type",
                 "Movie", NodeKind::kEntity, NodeKind::kClass, prov);
  }
  for (const auto& s : universe->songs()) {
    kg.AddTriple(synth::EntityUniverse::SongNodeName(s.id), "type", "Song",
                 NodeKind::kEntity, NodeKind::kClass, prov);
  }
  return kg;
}

// Per-domain attribute predicates (as emitted by ToKnowledgeGraph).
const std::vector<std::vector<std::string>>& DomainPredicates() {
  static const std::vector<std::vector<std::string>> kPreds = {
      {"name", "birth_year", "nationality", "acted_in"},
      {"title", "release_year", "genre", "directed_by"},
      {"title", "performed_by", "song_year", "song_genre"},
  };
  return kPreds;
}

// A Zipf-popularity query mix over the universe: 40% point lookups, 25%
// neighborhoods, 20% typed attribute scans, 15% top-k related shelves.
std::vector<serve::Query> MakeWorkload(const synth::EntityUniverse& u,
                                       size_t n, Rng& rng) {
  const ZipfDistribution person_zipf(u.people().size(), kZipfExponent);
  const ZipfDistribution movie_zipf(u.movies().size(), kZipfExponent);
  const ZipfDistribution song_zipf(u.songs().size(), kZipfExponent);
  const std::vector<double> domain_weights = {
      static_cast<double>(u.people().size()),
      static_cast<double>(u.movies().size()),
      static_cast<double>(u.songs().size())};
  const std::vector<std::string> types = {"Person", "Movie", "Song"};
  const auto& preds = DomainPredicates();
  auto sample_node = [&](size_t domain) -> std::string {
    switch (domain) {
      case 0:
        return synth::EntityUniverse::PersonNodeName(
            u.people()[person_zipf.Sample(rng)].id);
      case 1:
        return synth::EntityUniverse::MovieNodeName(
            u.movies()[movie_zipf.Sample(rng)].id);
      default:
        return synth::EntityUniverse::SongNodeName(
            u.songs()[song_zipf.Sample(rng)].id);
    }
  };

  std::vector<serve::Query> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double r = rng.UniformDouble();
    const size_t domain = rng.Weighted(domain_weights);
    const std::string pred =
        preds[domain][rng.UniformIndex(preds[domain].size())];
    if (r < 0.40) {
      out.push_back(serve::Query::PointLookup(sample_node(domain), pred));
    } else if (r < 0.65) {
      out.push_back(serve::Query::Neighborhood(sample_node(domain)));
    } else if (r < 0.85) {
      out.push_back(serve::Query::AttributeByType(types[domain], pred));
    } else {
      out.push_back(serve::Query::TopKRelated(
          sample_node(domain), 5 * (1 + rng.UniformIndex(4))));
    }
  }
  return out;
}

// The pre-snapshot serving path: the same point lookup answered by the
// conjunctive graph::query engine over the mutable KG, rendered to the
// identical row shape so the two paths are byte-comparable.
serve::QueryResult NaivePointLookup(const graph::QueryEngine& engine,
                                    const graph::KnowledgeGraph& kg,
                                    const serve::Query& q) {
  using graph::Term;
  using graph::TriplePattern;
  const std::vector<TriplePattern> patterns{
      {Term::Const(q.node), Term::Const(q.predicate), Term::Var("o")}};
  serve::QueryResult rows;
  for (const auto& binding : engine.Evaluate(patterns)) {
    const graph::NodeId o = binding.at("o");
    rows.push_back(serve::RenderNodeName(kg.NodeName(o), kg.GetNodeKind(o)));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// A point-lookup request as the serving layer receives it: node address
// plus predicate (views into the workload's Query structs).
struct PointRequest {
  std::string_view node;
  graph::NodeKind kind = graph::NodeKind::kEntity;
  std::string_view predicate;
};

// The timed serving-layer request path: two allocation-free hash probes
// plus a binary search into the SPO slice. Returns the answer count.
size_t SnapshotPointLookupCount(const serve::KgSnapshot& snap,
                                const PointRequest& q) {
  const auto s = snap.FindNode(q.node, q.kind);
  if (!s.ok()) return 0;
  const auto p = snap.FindPredicate(q.predicate);
  if (!p.ok()) return 0;
  return snap.CountObjects(*s, *p);
}

struct Replay {
  std::string label;
  double seconds = 0.0;
  size_t divergences = 0;
  serve::ServeStats stats;
};

// Replays `workload` serially through `engine`, recording per-query wall
// time, and counts rows that differ from `reference`.
void ReplaySerial(const serve::QueryEngine& engine,
                  const std::vector<serve::Query>& workload,
                  const std::vector<serve::QueryResult>& reference,
                  Replay* out) {
  WallTimer clock;
  for (size_t i = 0; i < workload.size(); ++i) {
    WallTimer per_query;
    const serve::QueryResult rows = engine.Execute(workload[i]);
    out->stats.Record(workload[i].kind, per_query.ElapsedSeconds());
    if (!reference.empty() && rows != reference[i]) ++out->divergences;
  }
  out->seconds = clock.ElapsedSeconds();
}

std::string JsonNumber(double v) { return FormatDouble(v, 3); }

}  // namespace

int main() {
  std::cout << "E20: read-optimized KG serving — snapshot index, result "
               "cache, batch-parallel replay (seed 42)\n";

  synth::EntityUniverse universe;
  const graph::KnowledgeGraph kg = BuildFig5Kg(&universe);
  WallTimer compile_clock;
  const serve::KgSnapshot snap = serve::KgSnapshot::Compile(kg);
  const double compile_seconds = compile_clock.ElapsedSeconds();
  PrintBanner(std::cout, "Snapshot compile");
  std::cout << "KG: " << kg.num_triples() << " live triples -> snapshot: "
            << snap.num_nodes() << " nodes, " << snap.num_predicates()
            << " predicates, " << snap.num_triples() << " triples in "
            << FormatDouble(compile_seconds * 1e3, 1)
            << " ms, fingerprint 0x" << std::hex << snap.Fingerprint()
            << std::dec << "\n";

  Rng workload_rng(271828);
  const std::vector<serve::Query> workload =
      MakeWorkload(universe, kWorkloadSize, workload_rng);

  // ---- Point-lookup race: snapshot index vs graph::query ---------------
  // Four rungs of the same Zipf point-lookup stream, count-only so both
  // sides do their own work and nothing else:
  //   1. graph::query request  — Query(text): parse + evaluate, the
  //      pre-serve layer's public request path;
  //   2. graph::query prepared — Evaluate() on a pre-built pattern (parse
  //      amortized away, bindings still materialized);
  //   3. serve lookup          — by-name through the snapshot: two hash
  //      probes + a CSR binary search (the serving layer's request path;
  //      its request form is the typed Query struct, not a string);
  //   4. CSR read              — ObjectEdges() with ids pre-resolved, the
  //      raw index read that interned ids make possible.
  // Each rung is timed per repetition and reported best-of to damp
  // scheduler noise. The headline compares the two request paths (1 vs 3).
  std::vector<serve::Query> points;
  for (const auto& q : workload) {
    if (q.kind == serve::QueryKind::kPointLookup) points.push_back(q);
  }
  const graph::QueryEngine naive(kg);
  const serve::QueryEngine snapshot_engine(snap);
  size_t lookup_mismatches = 0;
  for (const auto& q : points) {
    if (NaivePointLookup(naive, kg, q) !=
        snapshot_engine.ExecuteUncached(q)) {
      ++lookup_mismatches;
    }
  }

  std::vector<std::string> texts;
  std::vector<std::vector<graph::TriplePattern>> patterns;
  std::vector<PointRequest> requests;
  std::vector<std::pair<serve::NodeId, serve::PredicateId>> resolved;
  texts.reserve(points.size());
  patterns.reserve(points.size());
  requests.reserve(points.size());
  resolved.reserve(points.size());
  for (const auto& q : points) {
    texts.push_back("'" + q.node + "' " + q.predicate + " ?o");
    patterns.push_back({graph::TriplePattern{graph::Term::Const(q.node),
                                             graph::Term::Const(q.predicate),
                                             graph::Term::Var("o")}});
    requests.push_back({q.node, q.node_kind, q.predicate});
    resolved.emplace_back(*snap.FindNode(q.node, q.node_kind),
                          *snap.FindPredicate(q.predicate));
  }

  constexpr int kRaceReps = 5;
  constexpr size_t kNumRungs = 4;
  std::array<double, kNumRungs> best_seconds;
  best_seconds.fill(1e300);
  std::array<size_t, kNumRungs> rung_rows{};
  for (int rep = 0; rep < kRaceReps; ++rep) {
    {
      size_t rows = 0;
      WallTimer t;
      for (const auto& s : texts) rows += naive.Query(s)->size();
      best_seconds[0] = std::min(best_seconds[0], t.ElapsedSeconds());
      rung_rows[0] = rows;
    }
    {
      size_t rows = 0;
      WallTimer t;
      for (const auto& p : patterns) rows += naive.Evaluate(p).size();
      best_seconds[1] = std::min(best_seconds[1], t.ElapsedSeconds());
      rung_rows[1] = rows;
    }
    {
      size_t rows = 0;
      WallTimer t;
      for (const auto& q : requests) {
        rows += SnapshotPointLookupCount(snap, q);
      }
      best_seconds[2] = std::min(best_seconds[2], t.ElapsedSeconds());
      rung_rows[2] = rows;
    }
    {
      size_t rows = 0;
      WallTimer t;
      for (const auto& r : resolved) {
        rows += snap.CountObjects(r.first, r.second);
      }
      best_seconds[3] = std::min(best_seconds[3], t.ElapsedSeconds());
      rung_rows[3] = rows;
    }
  }
  for (size_t rung = 1; rung < kNumRungs; ++rung) {
    if (rung_rows[rung] != rung_rows[0]) ++lookup_mismatches;
  }
  const double speedup =
      best_seconds[2] > 0.0 ? best_seconds[0] / best_seconds[2] : 0.0;
  const double prepared_speedup =
      best_seconds[2] > 0.0 ? best_seconds[1] / best_seconds[2] : 0.0;

  PrintBanner(std::cout, "Point lookups: snapshot index vs graph::query");
  const std::array<std::string, kNumRungs> rung_names = {
      "graph::query request (parse+eval)",
      "graph::query prepared (eval only)",
      "serve lookup (by name)",
      "CSR read (ids resolved)",
  };
  TablePrinter race({"path", "lookups", "seconds", "qps", "ns/lookup"});
  const double race_n = static_cast<double>(points.size());
  for (size_t rung = 0; rung < kNumRungs; ++rung) {
    race.AddRow({rung_names[rung], std::to_string(points.size()),
                 FormatDouble(best_seconds[rung], 4),
                 FormatDouble(race_n / best_seconds[rung], 0),
                 FormatDouble(best_seconds[rung] / race_n * 1e9, 0)});
  }
  race.Print(std::cout);
  std::cout << "request-path speedup " << FormatDouble(speedup, 1) << "x ("
            << (speedup >= 10.0 ? "OK: >=10x" : "SHORTFALL: <10x")
            << "); prepared-pattern speedup "
            << FormatDouble(prepared_speedup, 1) << "x; answers "
            << (lookup_mismatches == 0 ? "byte-identical" : "MISMATCH")
            << " across " << points.size() << " point lookups\n";

  // ---- Workload replays ------------------------------------------------
  // Reference: serial, no cache — the ground truth every other
  // configuration must reproduce byte-for-byte.
  Replay uncached;
  uncached.label = "uncached serial";
  std::vector<serve::QueryResult> reference;
  {
    reference.reserve(workload.size());
    WallTimer clock;
    for (const auto& q : workload) {
      WallTimer per_query;
      reference.push_back(snapshot_engine.Execute(q));
      uncached.stats.Record(q.kind, per_query.ElapsedSeconds());
    }
    uncached.seconds = clock.ElapsedSeconds();
  }

  serve::ServeOptions cache_options;
  cache_options.cache_capacity = kCacheCapacity;
  const serve::QueryEngine cached_engine(snap, cache_options);
  Replay cold;
  cold.label = "cold cache";
  ReplaySerial(cached_engine, workload, reference, &cold);
  cold.stats.SetCacheCounters(cached_engine.cache()->counters());
  cached_engine.cache()->ResetCounters();
  Replay warm;
  warm.label = "warm cache";
  ReplaySerial(cached_engine, workload, reference, &warm);
  warm.stats.SetCacheCounters(cached_engine.cache()->counters());

  const ExecPolicy hw = ExecPolicy::Hardware();
  serve::ServeOptions parallel_options;
  parallel_options.cache_capacity = kCacheCapacity;
  parallel_options.exec = hw;
  const serve::QueryEngine parallel_engine(snap, parallel_options);
  WallTimer parallel_clock;
  const std::vector<serve::QueryResult> parallel_rows =
      parallel_engine.BatchExecute(workload);
  const double parallel_seconds = parallel_clock.ElapsedSeconds();
  size_t parallel_divergences = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (parallel_rows[i] != reference[i]) ++parallel_divergences;
  }

  for (Replay* replay : {&uncached, &cold, &warm}) {
    PrintBanner(std::cout, "Replay: " + replay->label + " (" +
                               std::to_string(kWorkloadSize) +
                               " queries, serial)");
    replay->stats.Print(std::cout);
    std::cout << "wall " << FormatDouble(replay->seconds, 3) << "s, "
              << FormatDouble(kWorkloadSize / replay->seconds, 0)
              << " qps, divergences from reference: "
              << replay->divergences << "\n";
  }
  PrintBanner(std::cout, "Replay: batch-parallel (" +
                             std::to_string(hw.num_threads) + " threads, " +
                             "cold cache)");
  std::cout << "wall " << FormatDouble(parallel_seconds, 3) << "s, "
            << FormatDouble(kWorkloadSize / parallel_seconds, 0)
            << " qps, speedup over uncached serial "
            << FormatDouble(uncached.seconds / parallel_seconds, 2)
            << "x, divergences from reference: " << parallel_divergences
            << "\n";

  // ---- JSON report -----------------------------------------------------
  const size_t total_divergences = lookup_mismatches + cold.divergences +
                                   warm.divergences + parallel_divergences;
  {
    std::ostringstream json;
    json << "{\"workload\":"
         << kWorkloadSize << ",\"snapshot\":{\"nodes\":" << snap.num_nodes()
         << ",\"predicates\":" << snap.num_predicates()
         << ",\"triples\":" << snap.num_triples()
         << ",\"compile_seconds\":" << JsonNumber(compile_seconds) << "}"
         << ",\"point_lookup_race\":{\"request_ns\":"
         << JsonNumber(best_seconds[0] / race_n * 1e9)
         << ",\"prepared_ns\":" << JsonNumber(best_seconds[1] / race_n * 1e9)
         << ",\"serve_lookup_ns\":"
         << JsonNumber(best_seconds[2] / race_n * 1e9)
         << ",\"csr_read_ns\":" << JsonNumber(best_seconds[3] / race_n * 1e9)
         << ",\"request_speedup\":" << JsonNumber(speedup)
         << ",\"prepared_speedup\":" << JsonNumber(prepared_speedup)
         << ",\"mismatches\":" << lookup_mismatches << "}"
         << ",\"uncached\":" << uncached.stats.ToJson()
         << ",\"cold\":" << cold.stats.ToJson()
         << ",\"warm\":" << warm.stats.ToJson()
         << ",\"parallel\":{\"threads\":" << hw.num_threads
         << ",\"seconds\":" << JsonNumber(parallel_seconds)
         << ",\"qps\":" << JsonNumber(kWorkloadSize / parallel_seconds)
         << ",\"divergences\":" << parallel_divergences << "}"
         << ",\"divergences\":" << total_divergences << "}";
    const obs::JsonSink sink("serve", 42, hw.num_threads);
    KG_CHECK_OK(sink.WriteFile("BENCH_serve.json", json.str()));
  }

  PrintBanner(std::cout, "Serving verdict");
  std::cout << "cached==uncached: "
            << (cold.divergences + warm.divergences == 0 ? "yes" : "NO")
            << "; parallel==serial: "
            << (parallel_divergences == 0 ? "yes" : "NO")
            << "; snapshot==graph::query on point lookups: "
            << (lookup_mismatches == 0 ? "yes" : "NO")
            << "; point-lookup speedup " << FormatDouble(speedup, 1)
            << "x (target >=10x)\n";
  // Divergence anywhere is a correctness bug in the serving layer (the
  // cache or the batch sharding changed an answer): fail the binary.
  return total_divergences == 0 ? 0 : 1;
}
