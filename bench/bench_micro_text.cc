// Substrate microbenchmarks: string similarity and tokenization.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "synth/names.h"
#include "text/similarity.h"
#include "text/tfidf.h"
#include "text/tokenize.h"

namespace {

using namespace kg;  // NOLINT

std::vector<std::string> Names(size_t n) {
  Rng rng(42);
  synth::NameFactory factory(rng.Fork());
  std::vector<std::string> names;
  for (size_t i = 0; i < n; ++i) names.push_back(factory.PersonName());
  return names;
}

void BM_JaroWinkler(benchmark::State& state) {
  const auto names = Names(1000);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaroWinklerSimilarity(
        names[i % names.size()], names[(i + 1) % names.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JaroWinkler);

void BM_Levenshtein(benchmark::State& state) {
  const auto names = Names(1000);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::LevenshteinDistance(
        names[i % names.size()], names[(i + 1) % names.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Levenshtein);

void BM_Tokenize(benchmark::State& state) {
  const std::string title =
      "Onus 2 Colors Highlighter Stick, Shimmer Cream Powder Waterproof "
      "Light Face Cosmetics, creamy Self Sharpening Crayon Stick";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::Tokenize(title));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Tokenize);

void BM_TfidfTransform(benchmark::State& state) {
  Rng rng(7);
  synth::NameFactory factory(rng.Fork());
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::string> doc;
    for (int j = 0; j < 12; ++j) doc.push_back(factory.Word());
    docs.push_back(std::move(doc));
  }
  text::TfidfVectorizer vec;
  vec.Fit(docs);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec.Transform(docs[i++ % docs.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TfidfTransform);

}  // namespace

BENCHMARK_MAIN();
