// Chaos sweep: both end-to-end KG builders run under FaultPlan::Uniform
// profiles from 0% to 50% and must degrade gracefully — every run
// completes on the surviving sources, quarantines only what is
// terminally dead, and loses recall roughly in proportion to the
// quarantined/truncated share (no cliff). The zero-rate run must be
// bit-identical to the fault-free pipelines, proving the fault layer is
// free when inactive. Exits non-zero when any rate violates the
// contract, so CI treats a degradation cliff like a test failure.

#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/exec_policy.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "obs/bench_sink.h"
#include "core/entity_kg_pipeline.h"
#include "core/textrich_kg_pipeline.h"

namespace {

using namespace kg;  // NOLINT

constexpr uint64_t kSeed = 57;
constexpr size_t kEntitySources = 8;

struct ChaosRow {
  double rate = 0.0;
  size_t sources = 0;
  size_t quarantined = 0;
  size_t retries = 0;
  size_t claims_dropped = 0;
  size_t claims_corrupted = 0;
  size_t yield_units = 0;  ///< Triples (entity) / assertions (textrich).
  double accuracy = 0.0;
  uint64_t fingerprint = 0;
  /// Lower bound on yield_ratio implied by the plan: quarantine share
  /// shrunk further by the expected truncation loss on survivors.
  double proportional_floor = 0.0;
};

struct EntityWorld {
  std::vector<synth::SourceTable> tables;
  std::map<std::pair<uint32_t, std::string>, std::string> truth;
};

EntityWorld MakeEntityWorld(Rng& rng) {
  synth::UniverseOptions uopt;
  uopt.num_people = 300;
  uopt.num_movies = 500;
  uopt.num_songs = 60;
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  EntityWorld world;
  for (const auto& m : universe.movies()) {
    world.truth[{m.id, "title"}] = m.title;
    world.truth[{m.id, "release_year"}] = std::to_string(m.release_year);
    world.truth[{m.id, "genre"}] = m.genre;
    world.truth[{m.id, "director"}] = universe.people()[m.director].name;
  }
  for (size_t s = 0; s < kEntitySources; ++s) {
    synth::SourceOptions sopt;
    sopt.name = "src" + std::to_string(s);
    sopt.coverage = 0.55;
    sopt.schema_dialect = static_cast<int>(s % 3);
    world.tables.push_back(synth::EmitSource(universe, sopt, rng));
  }
  return world;
}

double TruncationSurvival(const FaultPlan& plan) {
  // Truncation fires with P = truncate_rate and keeps a fraction drawn
  // uniformly from [min_truncate_keep, 1), so survivors deliver
  // 1 - truncate_rate * (1 - E[keep]) of their claims in expectation.
  const double expected_keep = (plan.min_truncate_keep + 1.0) / 2.0;
  return 1.0 - plan.truncate_rate * (1.0 - expected_keep);
}

ChaosRow RunEntitySweepPoint(const EntityWorld& world,
                             const FaultPlan* plan) {
  Rng rng(kSeed);
  core::EntityKgBuilder::Options opt;
  opt.forest.num_trees = 20;
  opt.exec = ExecPolicy::Hardware();
  opt.faults = plan;
  opt.retry.max_attempts = 5;
  core::EntityKgBuilder builder(synth::SourceDomain::kMovies, opt);
  for (size_t s = 0; s < world.tables.size(); ++s) {
    const Status status =
        s == 0 ? builder.TryIngestAnchor(world.tables[s], rng)
               : builder.TryIngestAndLink(world.tables[s], rng);
    if (!status.ok() && !IsRetriable(status.code()) &&
        status.code() != StatusCode::kDeadlineExceeded) {
      // Quarantine surfaces as kUnavailable/kDeadlineExceeded; anything
      // else is a pipeline bug, not injected chaos.
      ExitIfError(status, "entity ingest " + world.tables[s].source_name);
    }
  }
  builder.FuseValues();

  ChaosRow row;
  row.rate = plan ? plan->transient_rate : 0.0;
  const DegradationReport& deg = builder.degradation();
  row.sources = plan ? deg.attempted() : world.tables.size();
  row.quarantined = deg.quarantined();
  row.retries = deg.total_retries();
  row.claims_dropped = deg.claims_dropped();
  row.claims_corrupted = deg.claims_corrupted();
  row.yield_units = builder.kg().num_triples();
  row.accuracy = builder.KgAccuracy(world.truth);
  row.fingerprint = graph::TripleSetFingerprint(builder.kg());
  if (plan) {
    const double surviving =
        1.0 - static_cast<double>(row.quarantined) /
                  static_cast<double>(world.tables.size());
    row.proportional_floor = surviving * TruncationSurvival(*plan) - 0.12;
  }
  return row;
}

ChaosRow RunTextRichSweepPoint(const synth::ProductCatalog& catalog,
                               const synth::BehaviorLog& behavior,
                               const FaultPlan* plan) {
  Rng rng(kSeed);
  core::TextRichBuildOptions opt;
  opt.exec = ExecPolicy::Hardware();
  opt.faults = plan;
  opt.retry.max_attempts = 5;
  auto build = core::TryBuildTextRichKg(catalog, behavior, opt, rng);
  ExitIfError(build.status(), "textrich chaos build");

  ChaosRow row;
  row.rate = plan ? plan->transient_rate : 0.0;
  row.sources = plan ? build->degradation.attempted()
                     : build->report.products;
  row.quarantined = build->report.pages_quarantined;
  row.retries = build->degradation.total_retries();
  row.claims_dropped = build->degradation.claims_dropped();
  row.claims_corrupted = build->degradation.claims_corrupted();
  row.yield_units = build->report.extracted_assertions;
  row.accuracy = build->report.accuracy_after_cleaning;
  row.fingerprint = graph::TripleSetFingerprint(build->kg);
  if (plan) {
    const double surviving =
        1.0 - static_cast<double>(row.quarantined) /
                  static_cast<double>(row.sources);
    row.proportional_floor = surviving * TruncationSurvival(*plan) - 0.12;
  }
  return row;
}

std::string JsonNumber(double v) { return FormatDouble(v, 3); }

/// One pipeline's sweep as a JSON array, same row fields as the table.
std::string SweepJson(const std::vector<ChaosRow>& rows) {
  const double baseline = static_cast<double>(rows.front().yield_units);
  std::string out = "[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ChaosRow& row = rows[i];
    const double yield_ratio =
        baseline > 0.0 ? static_cast<double>(row.yield_units) / baseline
                       : 0.0;
    if (i) out += ",";
    out += "{\"rate\":" + JsonNumber(row.rate) +
           ",\"sources\":" + std::to_string(row.sources) +
           ",\"quarantined\":" + std::to_string(row.quarantined) +
           ",\"retries\":" + std::to_string(row.retries) +
           ",\"claims_dropped\":" + std::to_string(row.claims_dropped) +
           ",\"claims_corrupted\":" + std::to_string(row.claims_corrupted) +
           ",\"yield_units\":" + std::to_string(row.yield_units) +
           ",\"yield_ratio\":" + JsonNumber(yield_ratio) +
           ",\"proportional_floor\":" + JsonNumber(row.proportional_floor) +
           ",\"accuracy\":" + JsonNumber(row.accuracy) +
           ",\"fingerprint\":" + std::to_string(row.fingerprint) + "}";
  }
  return out + "]";
}

/// Prints one pipeline's sweep and checks the degradation contract.
/// Returns false when a rate fails to complete or falls off a cliff.
bool ReportSweep(const std::string& name,
                 const std::vector<ChaosRow>& rows,
                 uint64_t fault_free_fingerprint) {
  PrintBanner(std::cout, name + " under chaos (seed " +
                             std::to_string(kSeed) + ")");
  TablePrinter table({"fault rate", "sources", "quarantined", "retries",
                      "dropped", "corrupted", "yield", "yield ratio",
                      "accuracy"});
  const double baseline = static_cast<double>(rows.front().yield_units);
  bool ok = true;
  for (const ChaosRow& row : rows) {
    const double yield_ratio =
        baseline > 0.0 ? static_cast<double>(row.yield_units) / baseline
                       : 0.0;
    table.AddRow({FormatDouble(row.rate, 2), std::to_string(row.sources),
                  std::to_string(row.quarantined),
                  std::to_string(row.retries),
                  std::to_string(row.claims_dropped),
                  std::to_string(row.claims_corrupted),
                  std::to_string(row.yield_units),
                  FormatDouble(yield_ratio, 3),
                  FormatDouble(row.accuracy, 3)});
    if (row.yield_units == 0) {
      std::cout << name << ": FAILED to complete at rate "
                << FormatDouble(row.rate, 2) << "\n";
      ok = false;
    }
    if (yield_ratio < row.proportional_floor) {
      std::cout << name << ": degradation cliff at rate "
                << FormatDouble(row.rate, 2) << " — yield ratio "
                << FormatDouble(yield_ratio, 3) << " below proportional "
                << "floor " << FormatDouble(row.proportional_floor, 3)
                << "\n";
      ok = false;
    }
  }
  table.Print(std::cout);
  if (rows.front().fingerprint != fault_free_fingerprint) {
    std::cout << name << ": zero-fault plan NOT bit-identical to the "
              << "fault-free pipeline (determinism bug!)\n";
    ok = false;
  } else {
    std::cout << "zero-fault plan bit-identical to fault-free build: yes\n";
  }
  return ok;
}

}  // namespace

int main() {
  using namespace kg;  // NOLINT
  const std::vector<double> rates = {0.0, 0.05, 0.10, 0.20, 0.35, 0.50};
  std::cout << "Chaos sweep: deterministic fault injection at rates 0-50% "
               "(transient = rate, slow/truncate = rate/2, terminal = "
               "rate/4, corrupt = rate/5)\n";

  // ---- Entity KG pipeline -------------------------------------------
  Rng world_rng(kSeed);
  const EntityWorld world = MakeEntityWorld(world_rng);
  const ChaosRow entity_fault_free = RunEntitySweepPoint(world, nullptr);
  std::vector<ChaosRow> entity_rows;
  for (const double rate : rates) {
    const FaultPlan plan = FaultPlan::Uniform(kSeed, rate);
    entity_rows.push_back(RunEntitySweepPoint(world, &plan));
  }
  const bool entity_ok = ReportSweep("entity KG build", entity_rows,
                                     entity_fault_free.fingerprint);

  // ---- Text-rich KG pipeline ----------------------------------------
  Rng product_rng(7);
  synth::CatalogOptions copt;
  copt.num_types = 8;
  copt.num_products = 300;
  const auto catalog = synth::ProductCatalog::Generate(copt, product_rng);
  synth::BehaviorOptions bopt;
  bopt.num_searches = 4000;
  const auto behavior =
      synth::GenerateBehavior(catalog, bopt, product_rng);
  const ChaosRow textrich_fault_free =
      RunTextRichSweepPoint(catalog, behavior, nullptr);
  std::vector<ChaosRow> textrich_rows;
  for (const double rate : rates) {
    const FaultPlan plan = FaultPlan::Uniform(kSeed, rate);
    textrich_rows.push_back(
        RunTextRichSweepPoint(catalog, behavior, &plan));
  }
  const bool textrich_ok = ReportSweep("text-rich KG build", textrich_rows,
                                       textrich_fault_free.fingerprint);

  PrintBanner(std::cout, "Chaos verdict");
  std::cout << "Both pipelines must complete at every fault rate, "
               "quarantine only exhausted sources, and degrade recall "
               "proportionally to the quarantined + truncated share.\n";
  const bool ok = entity_ok && textrich_ok;
  std::cout << "verdict: " << (ok ? "GRACEFUL" : "VIOLATED") << "\n";

  // ---- JSON report (BENCH_serve.json schema style) -------------------
  {
    std::ostringstream json;
    json << "{\"rates\":[";
    for (size_t i = 0; i < rates.size(); ++i) {
      if (i) json << ",";
      json << JsonNumber(rates[i]);
    }
    json << "],\"entity\":{\"fault_free_fingerprint\":"
         << entity_fault_free.fingerprint
         << ",\"zero_rate_bit_identical\":"
         << (entity_rows.front().fingerprint ==
                     entity_fault_free.fingerprint
                 ? "true"
                 : "false")
         << ",\"sweep\":" << SweepJson(entity_rows) << "}"
         << ",\"textrich\":{\"fault_free_fingerprint\":"
         << textrich_fault_free.fingerprint
         << ",\"zero_rate_bit_identical\":"
         << (textrich_rows.front().fingerprint ==
                     textrich_fault_free.fingerprint
                 ? "true"
                 : "false")
         << ",\"sweep\":" << SweepJson(textrich_rows) << "}"
         << ",\"graceful\":" << (ok ? "true" : "false") << "}";
    const obs::JsonSink sink("chaos", kSeed,
                             ExecPolicy::Hardware().num_threads);
    KG_CHECK_OK(sink.WriteFile("BENCH_chaos.json", json.str()));
  }
  return ok ? 0 : 1;
}
