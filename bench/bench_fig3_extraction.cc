// Reproduces Figure 3: "Extraction quality from semi-structured websites,
// showing that ClosedIE has achieved over 90% accuracy, whereas OpenIE
// has shown the promise to increase knowledge, but has much lower
// accuracy." Also covers the §2.3 inline claims: wrapper induction >95%
// accuracy (but needs per-site annotations), and zero-shot extraction for
// unseen domains.
//
// Substitution: production websites are replaced by templated synthetic
// sites rendered from a hidden database (DESIGN.md §6).

#include <iostream>

#include "common/rng.h"
#include "common/stage_timer.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/extraction_scoring.h"
#include "extract/distant_supervision.h"
#include "extract/open_extraction.h"
#include "extract/wrapper_induction.h"
#include "extract/zeroshot_extraction.h"
#include "synth/website_generator.h"

namespace {

using namespace kg;  // NOLINT

struct MethodResult {
  std::string method;
  core::ExtractionQuality quality;
  size_t annotated_pages = 0;  ///< Human annotation cost.
};

// Harness-level per-method stage metrics (wall time, pages/sec),
// printed after the aggregate table.
StageTimer g_metrics;

// Seed KG for distant supervision: clean canonical values for the
// head-biased half of each domain.
extract::SeedKnowledge MakeSeed(const synth::EntityUniverse& universe,
                                synth::SourceDomain domain,
                                size_t count) {
  extract::SeedKnowledge seed;
  switch (domain) {
    case synth::SourceDomain::kMovies:
      for (size_t i = 0; i < std::min(count, universe.movies().size());
           ++i) {
        const auto& m = universe.movies()[i];
        seed.AddEntity(m.title,
                       {{"release_year", std::to_string(m.release_year)},
                        {"genre", m.genre},
                        {"director", universe.people()[m.director].name}});
      }
      break;
    case synth::SourceDomain::kPeople:
      for (size_t i = 0; i < std::min(count, universe.people().size());
           ++i) {
        const auto& p = universe.people()[i];
        seed.AddEntity(p.name,
                       {{"birth_year", std::to_string(p.birth_year)},
                        {"nationality", p.nationality}});
      }
      break;
    case synth::SourceDomain::kMusic:
      for (size_t i = 0; i < std::min(count, universe.songs().size());
           ++i) {
        const auto& s = universe.songs()[i];
        seed.AddEntity(s.title,
                       {{"artist", universe.people()[s.artist].name},
                        {"year", std::to_string(s.year)},
                        {"genre", s.genre}});
      }
      break;
  }
  return seed;
}

}  // namespace

int main() {
  std::cout << "E2/E3 / Figure 3: knowledge extraction from "
               "semi-structured websites (seed 42)\n";
  synth::UniverseOptions uopt;
  uopt.num_people = 3000;
  uopt.num_movies = 2000;
  uopt.num_songs = 1000;
  Rng rng(42);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);

  // A 12-site corpus across the three domains with varied templates.
  const auto corpus = synth::GenerateWebCorpus(universe, 12, 150, rng);

  MethodResult wrapper{"wrapper induction", {}, 0};
  MethodResult closed{"ClosedIE (Ceres)", {}, 0};
  MethodResult open{"OpenIE (OpenCeres)", {}, 0};
  MethodResult zeroshot{"zero-shot GNN", {}, 0};

  // Zero-shot model: trained once on annotated sites from movie+people
  // domains only, applied to music sites (unseen domain).
  extract::ZeroshotExtractor zs;
  {
    StageTimer::Scope stage(&g_metrics, "zero_shot.fit");
    std::vector<extract::ZeroshotExtractor::TrainingPage> training;
    for (const auto& site : corpus) {
      if (site.domain == synth::SourceDomain::kMusic) continue;
      for (size_t p = 0; p < std::min<size_t>(site.pages.size(), 40);
           ++p) {
        extract::ZeroshotExtractor::TrainingPage tp;
        tp.page = &site.pages[p].dom;
        for (const auto& [attr, node] : site.pages[p].value_nodes) {
          tp.value_nodes.push_back(node);
        }
        training.push_back(tp);
      }
    }
    Rng zs_rng(7);
    zs.Fit(training, {}, zs_rng);
    stage.AddItems(training.size());
  }

  TablePrinter per_site({"site", "domain", "method", "accuracy",
                         "extracted", "open gain", "annotated pages"});
  for (const auto& site : corpus) {
    const char* domain_name =
        site.domain == synth::SourceDomain::kMovies   ? "movies"
        : site.domain == synth::SourceDomain::kPeople ? "people"
                                                      : "music";
    // Wrapper induction: 5 annotated pages per site.
    {
      StageTimer::Scope stage(&g_metrics, "wrapper.induce_extract");
      constexpr size_t kAnnotated = 5;
      std::vector<const extract::DomPage*> pages;
      std::vector<extract::PageAnnotation> annotations;
      for (size_t p = 0; p < kAnnotated; ++p) {
        pages.push_back(&site.pages[p].dom);
        extract::PageAnnotation ann;
        for (const auto& [attr, node] : site.pages[p].value_nodes) {
          ann[attr] = node;
        }
        annotations.push_back(std::move(ann));
      }
      const auto w = extract::Wrapper::Induce(pages, annotations);
      core::ExtractionQuality q;
      for (size_t p = kAnnotated; p < site.pages.size(); ++p) {
        core::ScoreClosedExtractions(site.pages[p],
                                     w.Extract(site.pages[p].dom), &q);
      }
      stage.AddItems(site.pages.size() - kAnnotated);
      wrapper.quality.extracted += q.extracted;
      wrapper.quality.correct += q.correct;
      wrapper.annotated_pages += kAnnotated;
      q.Finish();
      per_site.AddRow({site.name, domain_name, "wrapper",
                       FormatDouble(q.accuracy, 3),
                       std::to_string(q.extracted), "-",
                       std::to_string(kAnnotated)});
    }
    // ClosedIE via distant supervision: no annotations, a seed KG.
    {
      StageTimer::Scope stage(&g_metrics, "closed_ie.fit_extract",
                              site.pages.size());
      const size_t seed_size =
          site.domain == synth::SourceDomain::kMovies   ? 800
          : site.domain == synth::SourceDomain::kPeople ? 1200
                                                        : 400;
      const auto seed = MakeSeed(universe, site.domain, seed_size);
      std::vector<const extract::DomPage*> pages;
      for (const auto& page : site.pages) pages.push_back(&page.dom);
      extract::DistantlySupervisedExtractor extractor;
      extractor.Fit(pages, seed, {});
      core::ExtractionQuality q;
      for (const auto& page : site.pages) {
        core::ScoreClosedExtractions(page, extractor.Extract(page.dom),
                                     &q);
      }
      closed.quality.extracted += q.extracted;
      closed.quality.correct += q.correct;
      q.Finish();
      per_site.AddRow({site.name, domain_name, "ClosedIE",
                       FormatDouble(q.accuracy, 3),
                       std::to_string(q.extracted), "-", "0"});
    }
    // OpenIE: no schema at all.
    {
      StageTimer::Scope stage(&g_metrics, "open_ie.extract",
                              site.pages.size());
      core::ExtractionQuality q;
      for (const auto& page : site.pages) {
        core::ScoreOpenExtractions(site, page,
                                   extract::OpenExtract(page.dom, {}),
                                   &q);
      }
      open.quality.extracted += q.extracted;
      open.quality.correct += q.correct;
      open.quality.correct_open += q.correct_open;
      q.Finish();
      per_site.AddRow({site.name, domain_name, "OpenIE",
                       FormatDouble(q.accuracy, 3),
                       std::to_string(q.extracted),
                       std::to_string(q.correct_open), "0"});
    }
    // Zero-shot on the unseen domain only.
    if (site.domain == synth::SourceDomain::kMusic) {
      StageTimer::Scope stage(&g_metrics, "zero_shot.extract",
                              site.pages.size());
      core::ExtractionQuality q;
      for (const auto& page : site.pages) {
        core::ScoreOpenExtractions(site, page, zs.Extract(page.dom), &q);
      }
      zeroshot.quality.extracted += q.extracted;
      zeroshot.quality.correct += q.correct;
      zeroshot.quality.correct_open += q.correct_open;
      q.Finish();
      per_site.AddRow({site.name, domain_name, "zero-shot",
                       FormatDouble(q.accuracy, 3),
                       std::to_string(q.extracted),
                       std::to_string(q.correct_open), "0"});
    }
  }

  PrintBanner(std::cout, "Per-site results");
  per_site.Print(std::cout);

  PrintBanner(std::cout, "Figure 3 — aggregate");
  TablePrinter aggregate({"method", "accuracy", "triples extracted",
                          "correct beyond ontology", "annotation cost"});
  for (auto* m : {&wrapper, &closed, &open, &zeroshot}) {
    m->quality.Finish();
    aggregate.AddRow(
        {m->method, FormatDouble(m->quality.accuracy, 3),
         FormatCount(static_cast<int64_t>(m->quality.extracted)),
         m->method.find("wrapper") != std::string::npos ||
                 m->method.find("Closed") != std::string::npos
             ? "-"
             : FormatCount(static_cast<int64_t>(m->quality.correct_open)),
         std::to_string(m->annotated_pages) + " pages"});
  }
  aggregate.Print(std::cout);

  PrintBanner(std::cout, "Reproduction verdict");
  const bool wrapper_ok = wrapper.quality.accuracy > 0.95;
  const bool closed_ok = closed.quality.accuracy > 0.90;
  const bool open_gap = open.quality.accuracy < closed.quality.accuracy;
  const bool open_gain = open.quality.correct_open > 0;
  std::cout << "wrapper >95%: " << (wrapper_ok ? "yes" : "NO")
            << "; ClosedIE >90%: " << (closed_ok ? "yes" : "NO")
            << "; OpenIE less accurate: " << (open_gap ? "yes" : "NO")
            << "; OpenIE adds ontology-unknown knowledge: "
            << (open_gain ? "yes" : "NO") << "\n";
  std::cout << "Paper: Ceres/ClosedIE >90% accuracy (production); "
               "OpenIE increases knowledge at much lower accuracy; "
               "wrapper induction >95% but needs per-site annotation.\n";

  PrintBanner(std::cout, "Stage timing");
  g_metrics.Print(std::cout);
  return 0;
}
