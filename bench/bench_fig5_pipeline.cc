// Reproduces Figure 5 and the §3.2 claims: the production extraction
// pipeline lifts raw NER quality (85-95%) above the production bar via
// tuning and ML post-processing, and the automated variant (Figure 5b)
// cuts time-to-deploy from "a couple of months to a couple of weeks"
// while retaining most of the quality. Also covers the §2.3-2.4
// scalability angle: both end-to-end builders re-run under
// ExecPolicy{hardware_concurrency} and must produce bit-identical KGs at
// a wall-clock speedup, with per-stage StageTimer rows.

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/exec_policy.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stage_timer.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "obs/bench_sink.h"
#include "core/entity_kg_pipeline.h"
#include "core/textrich_kg_pipeline.h"
#include "textrich/pipeline.h"

namespace {

using namespace kg;  // NOLINT

struct ScalingRun {
  double seconds = 0.0;
  uint64_t fingerprint = 0;
};

ScalingRun RunEntityBuild(const ExecPolicy& exec, StageTimer* metrics) {
  synth::UniverseOptions uopt;
  uopt.num_people = 800;
  uopt.num_movies = 1200;
  uopt.num_songs = 100;
  Rng rng(42);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);
  synth::SourceOptions wiki, imdb, webdb;
  wiki.name = "wikipedia";
  wiki.coverage = 0.6;
  imdb.name = "imdb";
  imdb.coverage = 0.6;
  imdb.schema_dialect = 1;
  webdb.name = "webdb";
  webdb.coverage = 0.5;
  webdb.schema_dialect = 2;

  core::EntityKgBuilder::Options opt;
  opt.forest.num_trees = 40;
  opt.exec = exec;
  opt.metrics = metrics;
  core::EntityKgBuilder builder(synth::SourceDomain::kMovies, opt);
  const auto t_wiki = synth::EmitSource(universe, wiki, rng);
  const auto t_imdb = synth::EmitSource(universe, imdb, rng);
  const auto t_webdb = synth::EmitSource(universe, webdb, rng);

  WallTimer clock;
  ExitIfError(builder.TryIngestAnchor(t_wiki, rng), "ingest wikipedia");
  ExitIfError(builder.TryIngestAndLink(t_imdb, rng), "ingest imdb");
  ExitIfError(builder.TryIngestAndLink(t_webdb, rng), "ingest webdb");
  builder.FuseValues();
  return ScalingRun{clock.ElapsedSeconds(),
                    graph::TripleSetFingerprint(builder.kg())};
}

ScalingRun RunTextRichBuild(const ExecPolicy& exec, StageTimer* metrics) {
  Rng rng(42);
  synth::CatalogOptions copt;
  copt.num_types = 16;
  copt.num_products = 1200;
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);
  synth::BehaviorOptions bopt;
  bopt.num_searches = 8000;
  const auto behavior = synth::GenerateBehavior(catalog, bopt, rng);

  core::TextRichBuildOptions opt;
  // Extractor training is the one serial stage; a lean training split
  // keeps it from dominating so the sharded per-page loop sets the
  // scaling ceiling (Amdahl).
  opt.train_fraction = 0.15;
  opt.exec = exec;
  opt.metrics = metrics;

  WallTimer clock;
  const auto build = core::TryBuildTextRichKg(catalog, behavior, opt, rng);
  ExitIfError(build.status(), "text-rich build");
  return ScalingRun{clock.ElapsedSeconds(),
                    graph::TripleSetFingerprint(build->kg)};
}

void ReportScaling(const std::string& name, const ScalingRun& serial,
                   const ScalingRun& parallel, const StageTimer& metrics,
                   size_t threads) {
  PrintBanner(std::cout,
              name + " — per-stage metrics (" + std::to_string(threads) +
                  " threads)");
  metrics.Print(std::cout);
  const double speedup =
      parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0;
  std::cout << name << ": serial " << FormatDouble(serial.seconds, 2)
            << "s, parallel " << FormatDouble(parallel.seconds, 2)
            << "s, speedup " << FormatDouble(speedup, 2) << "x, KG "
            << (serial.fingerprint == parallel.fingerprint
                    ? "bit-identical"
                    : "MISMATCH (determinism bug!)")
            << "\n";
}

std::string JsonNumber(double v) { return FormatDouble(v, 3); }

std::string ScalingJson(const ScalingRun& serial, const ScalingRun& parallel,
                        size_t threads) {
  const double speedup =
      parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0;
  return "{\"serial_seconds\":" + JsonNumber(serial.seconds) +
         ",\"parallel_seconds\":" + JsonNumber(parallel.seconds) +
         ",\"threads\":" + std::to_string(threads) +
         ",\"speedup\":" + JsonNumber(speedup) + ",\"bit_identical\":" +
         (serial.fingerprint == parallel.fingerprint ? "true" : "false") +
         "}";
}

}  // namespace

int main() {
  using namespace kg;  // NOLINT
  std::cout << "E6 / Figure 5: extraction pipeline quality and cost "
               "(seed 42)\n";
  synth::CatalogOptions copt;
  copt.num_types = 24;
  copt.num_products = 1500;
  Rng rng(42);
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);

  const std::vector<std::string> attributes(
      catalog.attributes().begin(),
      catalog.attributes().begin() + 3);

  std::string modes_json;
  for (auto mode : {textrich::PipelineMode::kManual,
                    textrich::PipelineMode::kAutomated}) {
    const bool manual = mode == textrich::PipelineMode::kManual;
    const char* mode_name = manual ? "manual (Figure 5a)"
                                   : "automated (Figure 5b)";
    PrintBanner(std::cout, std::string("Pipeline: ") + mode_name);
    TablePrinter table({"attribute", "stage", "P", "R", "F1",
                        "cum. person-days"});
    double total_cost = 0.0;
    double final_f1_sum = 0.0;
    std::string stages_json;
    for (const auto& attr : attributes) {
      textrich::PipelineOptions popt;
      popt.mode = mode;
      Rng run_rng(7);
      const auto result =
          RunExtractionPipeline(catalog, attr, popt, run_rng);
      for (const auto& stage : result.stages) {
        table.AddRow({attr, stage.stage, FormatDouble(stage.precision, 3),
                      FormatDouble(stage.recall, 3),
                      FormatDouble(stage.f1, 3),
                      FormatDouble(stage.cost_person_days, 1)});
        if (!stages_json.empty()) stages_json += ",";
        stages_json += "{\"attribute\":\"" + attr + "\",\"stage\":\"" +
                       stage.stage +
                       "\",\"precision\":" + JsonNumber(stage.precision) +
                       ",\"recall\":" + JsonNumber(stage.recall) +
                       ",\"f1\":" + JsonNumber(stage.f1) +
                       ",\"cum_person_days\":" +
                       JsonNumber(stage.cost_person_days) + "}";
      }
      total_cost += result.total_cost_person_days;
      final_f1_sum += result.final_f1;
    }
    table.Print(std::cout);
    const double mean_f1 = final_f1_sum / attributes.size();
    std::cout << "mean final F1 " << FormatDouble(mean_f1, 3)
              << ", total cost " << FormatDouble(total_cost, 1)
              << " person-days for " << attributes.size()
              << " attributes\n";
    if (!modes_json.empty()) modes_json += ",";
    modes_json += std::string("{\"mode\":\"") +
                  (manual ? "manual" : "automated") +
                  "\",\"mean_final_f1\":" + JsonNumber(mean_f1) +
                  ",\"total_cost_person_days\":" + JsonNumber(total_cost) +
                  ",\"attributes\":" + std::to_string(attributes.size()) +
                  ",\"stages\":[" + stages_json + "]}";
  }

  PrintBanner(std::cout, "Reproduction verdict");
  std::cout << "Paper: base NER 85-95%; pipeline pushes >95% (manual) "
               "while automation cuts deployment cost ~an order of "
               "magnitude (months -> weeks) at a modest quality cost.\n";

  // ---- §2.3-2.4 scalability: parallel sharded construction ------------
  const ExecPolicy hw = ExecPolicy::Hardware();
  PrintBanner(std::cout,
              "Parallel sharded construction (ExecPolicy{" +
                  std::to_string(hw.num_threads) + " threads})");

  StageTimer entity_metrics;
  const ScalingRun entity_serial =
      RunEntityBuild(ExecPolicy::Serial(), nullptr);
  const ScalingRun entity_parallel = RunEntityBuild(hw, &entity_metrics);
  ReportScaling("entity KG build", entity_serial, entity_parallel,
                entity_metrics, hw.num_threads);

  StageTimer textrich_metrics;
  const ScalingRun textrich_serial =
      RunTextRichBuild(ExecPolicy::Serial(), nullptr);
  const ScalingRun textrich_parallel =
      RunTextRichBuild(hw, &textrich_metrics);
  ReportScaling("text-rich KG build", textrich_serial, textrich_parallel,
                textrich_metrics, hw.num_threads);

  PrintBanner(std::cout, "Scaling verdict");
  const bool deterministic =
      entity_serial.fingerprint == entity_parallel.fingerprint &&
      textrich_serial.fingerprint == textrich_parallel.fingerprint;
  const double entity_speedup =
      entity_parallel.seconds > 0.0
          ? entity_serial.seconds / entity_parallel.seconds
          : 0.0;
  std::cout << "serial==parallel KGs: " << (deterministic ? "yes" : "NO")
            << "; entity-build speedup at " << hw.num_threads
            << " threads: " << FormatDouble(entity_speedup, 2) << "x";
  if (hw.num_threads == 1) {
    std::cout << "  [single-core host: speedup not demonstrable here; "
                 "shape verified by the determinism tests]";
  } else if (entity_speedup >= 2.0) {
    std::cout << "  [SHAPE OK: >=2x over serial]";
  }
  std::cout << "\n";

  // ---- JSON report (BENCH_serve.json schema style) ---------------------
  {
    std::ostringstream json;
    json << "{\"pipelines\":[" << modes_json
         << "],\"scaling\":{\"entity\":"
         << ScalingJson(entity_serial, entity_parallel, hw.num_threads)
         << ",\"textrich\":"
         << ScalingJson(textrich_serial, textrich_parallel, hw.num_threads)
         << "},\"deterministic\":" << (deterministic ? "true" : "false")
         << "}";
    const obs::JsonSink sink("fig5", 42, hw.num_threads);
    KG_CHECK_OK(sink.WriteFile("BENCH_fig5.json", json.str()));
  }

  // A determinism mismatch is a correctness bug, not a perf shortfall:
  // fail the binary so CI catches it.
  return deterministic ? 0 : 1;
}
