// Reproduces Figure 5 and the §3.2 claims: the production extraction
// pipeline lifts raw NER quality (85-95%) above the production bar via
// tuning and ML post-processing, and the automated variant (Figure 5b)
// cuts time-to-deploy from "a couple of months to a couple of weeks"
// while retaining most of the quality.

#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "textrich/pipeline.h"

int main() {
  using namespace kg;  // NOLINT
  std::cout << "E6 / Figure 5: extraction pipeline quality and cost "
               "(seed 42)\n";
  synth::CatalogOptions copt;
  copt.num_types = 24;
  copt.num_products = 1500;
  Rng rng(42);
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);

  const std::vector<std::string> attributes(
      catalog.attributes().begin(),
      catalog.attributes().begin() + 3);

  for (auto mode : {textrich::PipelineMode::kManual,
                    textrich::PipelineMode::kAutomated}) {
    const char* mode_name =
        mode == textrich::PipelineMode::kManual ? "manual (Figure 5a)"
                                                : "automated (Figure 5b)";
    PrintBanner(std::cout, std::string("Pipeline: ") + mode_name);
    TablePrinter table({"attribute", "stage", "P", "R", "F1",
                        "cum. person-days"});
    double total_cost = 0.0;
    double final_f1_sum = 0.0;
    for (const auto& attr : attributes) {
      textrich::PipelineOptions popt;
      popt.mode = mode;
      Rng run_rng(7);
      const auto result =
          RunExtractionPipeline(catalog, attr, popt, run_rng);
      for (const auto& stage : result.stages) {
        table.AddRow({attr, stage.stage, FormatDouble(stage.precision, 3),
                      FormatDouble(stage.recall, 3),
                      FormatDouble(stage.f1, 3),
                      FormatDouble(stage.cost_person_days, 1)});
      }
      total_cost += result.total_cost_person_days;
      final_f1_sum += result.final_f1;
    }
    table.Print(std::cout);
    std::cout << "mean final F1 "
              << FormatDouble(final_f1_sum / attributes.size(), 3)
              << ", total cost " << FormatDouble(total_cost, 1)
              << " person-days for " << attributes.size()
              << " attributes\n";
  }

  PrintBanner(std::cout, "Reproduction verdict");
  std::cout << "Paper: base NER 85-95%; pipeline pushes >95% (manual) "
               "while automation cuts deployment cost ~an order of "
               "magnitude (months -> weeks) at a modest quality cost.\n";
  return 0;
}
