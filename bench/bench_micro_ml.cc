// Substrate microbenchmarks: model training and inference.
#include <benchmark/benchmark.h>

#include "ml/logistic_regression.h"
#include "ml/random_forest.h"
#include "ml/sequence_tagger.h"

namespace {

using namespace kg;  // NOLINT

ml::Dataset MakeDataset(size_t n, size_t d, Rng& rng) {
  ml::Dataset data;
  data.feature_names.resize(d);
  for (size_t i = 0; i < n; ++i) {
    ml::Example ex;
    for (size_t f = 0; f < d; ++f) {
      ex.features.push_back(rng.UniformDouble());
    }
    ex.label = ex.features[0] > 0.5 ? 1 : 0;
    data.examples.push_back(std::move(ex));
  }
  return data;
}

void BM_ForestTrain(benchmark::State& state) {
  Rng rng(1);
  const auto data = MakeDataset(1000, 12, rng);
  ml::ForestOptions opt;
  opt.num_trees = 20;
  for (auto _ : state) {
    ml::RandomForest forest;
    Rng fit_rng(2);
    forest.Fit(data, opt, fit_rng);
    benchmark::DoNotOptimize(forest.num_trees());
  }
}
BENCHMARK(BM_ForestTrain);

void BM_ForestPredict(benchmark::State& state) {
  Rng rng(3);
  const auto data = MakeDataset(1000, 12, rng);
  ml::RandomForest forest;
  ml::ForestOptions opt;
  opt.num_trees = 40;
  forest.Fit(data, opt, rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.PredictPositiveProba(
        data.examples[i++ % data.size()].features));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestPredict);

void BM_LogisticRegressionTrain(benchmark::State& state) {
  Rng rng(4);
  const auto data = MakeDataset(2000, 10, rng);
  ml::LogisticRegression::Options opt;
  opt.epochs = 10;
  for (auto _ : state) {
    ml::LogisticRegression lr;
    Rng fit_rng(5);
    lr.Fit(data, opt, fit_rng);
    benchmark::DoNotOptimize(lr.bias());
  }
}
BENCHMARK(BM_LogisticRegressionTrain);

void BM_TaggerDecode(benchmark::State& state) {
  Rng rng(6);
  std::vector<ml::TaggedSequence> train;
  const std::vector<std::string> words = {"alpha", "beta", "gamma",
                                          "delta", "epsilon"};
  for (int i = 0; i < 100; ++i) {
    ml::TaggedSequence seq;
    for (int j = 0; j < 10; ++j) {
      seq.tokens.push_back(words[rng.UniformIndex(words.size())]);
      seq.tags.push_back(j == 3 ? "B-V" : "O");
    }
    train.push_back(std::move(seq));
  }
  ml::SequenceTagger tagger;
  ml::TaggerOptions opt;
  opt.epochs = 3;
  tagger.Fit(train, opt, rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tagger.Predict(train[i++ % train.size()].tokens, {}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TaggerDecode);

}  // namespace

BENCHMARK_MAIN();
