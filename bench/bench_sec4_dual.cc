// Reproduces the §4 dual neural KG vision as a measurement: symbolic
// triples and parametric memory each cover a different slice of
// knowledge, and a router that puts triples first (torso/tail/recent)
// with the LLM as confident fallback dominates both pure strategies.
// Also shows the recency effect: the LLM's training cutoff leaves
// post-cutoff facts to the KG ("GPT-4 ... trained with knowledge up to
// September 2021, with a 1.5-year lag").

#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "dual/answerers.h"
#include "dual/qa_eval.h"
#include "graph/knowledge_graph.h"
#include "synth/qa_generator.h"

namespace {

using namespace kg;  // NOLINT

// A realistically incomplete constructed KG: head-biased coverage of the
// universe (curated KGs know popular entities best) but fully fresh
// (triples update fast, so recent facts are present).
graph::KnowledgeGraph PartialKg(const synth::EntityUniverse& universe,
                                double coverage_head, double coverage_tail,
                                Rng& rng) {
  graph::KnowledgeGraph kg;
  const graph::Provenance prov{"constructed", 1.0, 0};
  using graph::NodeKind;
  const size_t n = universe.movies().size();
  for (const auto& m : universe.movies()) {
    const double keep =
        coverage_head + (coverage_tail - coverage_head) *
                            (static_cast<double>(m.id) / n);
    if (!rng.Bernoulli(keep)) continue;
    kg.AddTriple(m.title, "directed_by",
                 universe.people()[m.director].name, NodeKind::kEntity,
                 NodeKind::kText, prov);
    kg.AddTriple(m.title, "release_year",
                 std::to_string(m.release_year), NodeKind::kEntity,
                 NodeKind::kText, prov);
    kg.AddTriple(m.title, "genre", m.genre, NodeKind::kEntity,
                 NodeKind::kText, prov);
    kg.AddTriple(m.title, "title", m.title, NodeKind::kEntity,
                 NodeKind::kText, prov);
  }
  for (const auto& p : universe.people()) {
    const double keep =
        coverage_head + (coverage_tail - coverage_head) *
                            (static_cast<double>(p.id) /
                             universe.people().size());
    if (!rng.Bernoulli(keep)) continue;
    kg.AddTriple(p.name, "birth_year", std::to_string(p.birth_year),
                 NodeKind::kEntity, NodeKind::kText, prov);
    kg.AddTriple(p.name, "nationality", p.nationality, NodeKind::kEntity,
                 NodeKind::kText, prov);
    kg.AddTriple(p.name, "name", p.name, NodeKind::kEntity,
                 NodeKind::kText, prov);
  }
  return kg;
}

void PrintEval(TablePrinter& table, const std::string& name,
               const dual::QaEvaluation& eval) {
  auto row = [&](const std::string& slice, const dual::QaScore& s) {
    table.AddRow({name, slice, std::to_string(s.n),
                  FormatDouble(s.accuracy, 3),
                  FormatDouble(s.hallucination_rate, 3),
                  FormatDouble(s.abstention_rate, 3)});
  };
  for (const auto& [bucket, score] : eval.by_bucket) {
    row(synth::PopularityBucketName(bucket), score);
  }
  row("recent", eval.recent);
  row("overall", eval.overall);
}

}  // namespace

int main() {
  std::cout << "E12 / sec 4: dual neural KG — triples + LLM beat either "
               "alone (seed 42)\n";
  synth::UniverseOptions uopt;
  uopt.num_people = 9000;
  uopt.num_movies = 6000;
  uopt.num_songs = 500;
  Rng rng(42);
  const auto universe = synth::EntityUniverse::Generate(uopt, rng);

  synth::CorpusOptions copt;
  copt.mention_exponent = 1.05;
  const auto corpus = GenerateFactCorpus(universe, copt, rng);
  synth::QaOptions qopt;
  qopt.num_questions = 6000;
  const auto questions = GenerateQaWorkload(universe, qopt, rng);

  dual::LlmSim llm;
  llm.Train(corpus);
  const auto kg = PartialKg(universe, 0.9, 0.45, rng);
  std::cout << "constructed KG: "
            << FormatCount(static_cast<int64_t>(kg.num_triples()))
            << " triples (head-biased coverage)\n";

  dual::KgAnswerer kg_answerer(kg);
  dual::LlmAnswerer llm_answerer(llm);
  dual::DualAnswerer dual_answerer(kg, llm);
  dual::RagAnswerer rag_answerer(kg, llm);

  TablePrinter table({"system", "slice", "n", "accuracy",
                      "hallucination", "unanswered"});
  Rng r1(7), r2(7), r3(7), r4(7);
  const auto kg_eval = EvaluateAnswerer(kg_answerer, questions, r1);
  const auto llm_eval = EvaluateAnswerer(llm_answerer, questions, r2);
  const auto dual_eval = EvaluateAnswerer(dual_answerer, questions, r3);
  const auto rag_eval = EvaluateAnswerer(rag_answerer, questions, r4);
  PrintEval(table, "KG only", kg_eval);
  PrintEval(table, "LLM only", llm_eval);
  PrintEval(table, "dual (KG->LLM)", dual_eval);
  PrintEval(table, "RAG (KG in-context)", rag_eval);
  table.Print(std::cout);

  PrintBanner(std::cout, "Reproduction verdict");
  std::cout << "RAG overall accuracy "
            << FormatDouble(rag_eval.overall.accuracy, 3)
            << " (retrieval inside the LLM; same knowledge placement, "
               "different blending)\n";
  std::cout << "dual overall accuracy "
            << FormatDouble(dual_eval.overall.accuracy, 3)
            << " > KG-only " << FormatDouble(kg_eval.overall.accuracy, 3)
            << " and > LLM-only "
            << FormatDouble(llm_eval.overall.accuracy, 3)
            << "; recent facts: LLM "
            << FormatDouble(llm_eval.recent.accuracy, 3) << " vs dual "
            << FormatDouble(dual_eval.recent.accuracy, 3)
            << " (the §4 placement: head knowledge in both forms, "
               "torso-to-tail and recent knowledge as triples).\n";
  return 0;
}
