// E25: million-entity snapshot scale-up. Streams synthetic retail worlds
// (scale_world) straight into compiled snapshots at 10k / 1M / 10M
// entities, and reports for each rung: build throughput, bytes/triple by
// component, binary save + mmap-load cost (header-verify vs full
// checksum), and serving throughput over the mmap-loaded image. The 10M
// rung is local-only (set KG_SCALE_10M=1; CI jobs stop at 1M) and is
// reported as skipped otherwise. Correctness gates, any failure exits
// non-zero:
//   - mmap-loaded fingerprint == freshly built fingerprint (every rung);
//   - binary-loaded answers == TSV-round-tripped answers (full workload
//     at 10k, sampled at 1M).
// Emits BENCH_scale.json.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/exec_policy.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "obs/bench_sink.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "serve/snapshot_binary.h"
#include "synth/scale_world.h"

namespace {

using namespace kg;  // NOLINT

constexpr uint64_t kSeed = 42;

struct RungReport {
  uint64_t entities = 0;
  bool skipped = false;
  bool estimated = false;       ///< bytes/triple copied from the 1M rung
  uint64_t nodes = 0;
  uint64_t triples = 0;
  double build_seconds = 0.0;
  double bytes_per_triple = 0.0;
  serve::KgSnapshot::Footprint footprint;
  uint64_t file_bytes = 0;
  double save_seconds = 0.0;
  double load_header_seconds = 0.0;
  double load_checksum_seconds = 0.0;
  double query_qps = 0.0;
  size_t queries = 0;
  size_t tsv_compared = 0;
  size_t divergences = 0;
  size_t fingerprint_mismatches = 0;
  uint64_t rss_bytes = 0;
};

/// Runs `count` workload queries on both engines and counts row-level
/// divergences. The engines may be backed by different representations
/// (mmap binary vs TSV round-trip); equal fingerprints must mean equal
/// answers, and this is the check that makes that claim falsifiable.
size_t CompareAnswers(const serve::QueryEngine& a,
                      const serve::QueryEngine& b,
                      const synth::ScaleWorldSpec& spec, size_t count) {
  size_t divergences = 0;
  for (size_t i = 0; i < count; ++i) {
    const serve::Query q = synth::ScaleSampleQuery(spec, i);
    if (a.Execute(q) != b.Execute(q)) ++divergences;
  }
  return divergences;
}

RungReport RunRung(uint64_t entities, bool full_tsv_check,
                   obs::MetricsRegistry& registry) {
  RungReport r;
  r.entities = entities;
  synth::ScaleWorldSpec spec;
  spec.seed = kSeed;
  spec.num_entities = entities;

  WallTimer build_timer;
  const serve::KgSnapshot built = synth::BuildScaleSnapshot(spec);
  r.build_seconds = build_timer.ElapsedSeconds();
  r.nodes = built.num_nodes();
  r.triples = built.num_triples();
  r.footprint = built.MemoryFootprint();
  r.bytes_per_triple =
      static_cast<double>(r.footprint.total()) / static_cast<double>(r.triples);
  serve::PublishSnapshotFootprint(built, &registry);

  const std::string path =
      "/tmp/kg_scale_" + std::to_string(entities) + ".snap";
  WallTimer save_timer;
  KG_CHECK_OK(serve::SaveSnapshotBinary(built, path));
  r.save_seconds = save_timer.ElapsedSeconds();
  {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    r.file_bytes = static_cast<uint64_t>(f.tellg());
  }

  // Load cost, both verify modes. kHeader is the O(pages touched) path;
  // kChecksum touches every page once.
  WallTimer header_timer;
  auto header_loaded =
      serve::LoadSnapshotBinary(path, serve::BinaryVerify::kHeader);
  r.load_header_seconds = header_timer.ElapsedSeconds();
  KG_CHECK_OK(header_loaded.status());
  WallTimer checksum_timer;
  auto loaded =
      serve::LoadSnapshotBinary(path, serve::BinaryVerify::kChecksum);
  r.load_checksum_seconds = checksum_timer.ElapsedSeconds();
  KG_CHECK_OK(loaded.status());
  if (loaded->Fingerprint() != built.Fingerprint() ||
      header_loaded->Fingerprint() != built.Fingerprint()) {
    ++r.fingerprint_mismatches;
  }

  // Serving throughput over the mmap-loaded image.
  const serve::QueryEngine engine(*loaded);
  r.queries = entities >= 1'000'000 ? 2'000 : 10'000;
  size_t rows = 0;
  WallTimer query_timer;
  for (size_t i = 0; i < r.queries; ++i) {
    rows += engine.Execute(synth::ScaleSampleQuery(spec, i)).size();
  }
  r.query_qps = static_cast<double>(r.queries) / query_timer.ElapsedSeconds();
  KG_CHECK(rows > 0);

  // Binary-vs-TSV gate. The TSV path re-parses and re-builds from text,
  // so agreement here crosses every layer of both formats.
  const std::string tsv = serve::SerializeSnapshot(built);
  auto tsv_loaded = serve::DeserializeSnapshot(tsv);
  KG_CHECK_OK(tsv_loaded.status());
  if (tsv_loaded->Fingerprint() != built.Fingerprint()) {
    ++r.fingerprint_mismatches;
  }
  const serve::QueryEngine tsv_engine(*tsv_loaded);
  r.tsv_compared = full_tsv_check ? 2'000 : 500;
  r.divergences = CompareAnswers(engine, tsv_engine, spec, r.tsv_compared);

  r.rss_bytes = obs::ReadProcessMemory().rss_bytes;
  obs::PublishProcessMemory(registry);
  std::remove(path.c_str());
  return r;
}

void PrintRung(const RungReport& r) {
  if (r.skipped) {
    std::cout << "rung " << r.entities
              << " entities: SKIPPED (set KG_SCALE_10M=1 to run locally)"
              << (r.estimated
                      ? "; bytes/triple estimated from the 1M rung: " +
                            FormatDouble(r.bytes_per_triple, 1)
                      : "")
              << "\n";
    return;
  }
  std::cout << "rung " << r.entities << " entities: " << r.nodes
            << " nodes, " << r.triples << " triples\n"
            << "  build " << FormatDouble(r.build_seconds, 3) << "s ("
            << FormatDouble(r.triples / r.build_seconds / 1e6, 2)
            << "M triples/s), footprint "
            << FormatDouble(r.footprint.total() / 1e6, 1) << " MB, "
            << FormatDouble(r.bytes_per_triple, 1) << " bytes/triple\n"
            << "    arena " << FormatDouble(r.footprint.arena_bytes / 1e6, 1)
            << " MB, postings "
            << FormatDouble(r.footprint.posting_bytes / 1e6, 1)
            << " MB, offsets "
            << FormatDouble(r.footprint.offset_bytes / 1e6, 1)
            << " MB, index "
            << FormatDouble(r.footprint.index_bytes / 1e6, 1) << " MB\n"
            << "  save " << FormatDouble(r.save_seconds, 3) << "s ("
            << FormatDouble(r.file_bytes / 1e6, 1) << " MB file), load mmap "
            << FormatDouble(r.load_header_seconds * 1e3, 2)
            << "ms header-verify / "
            << FormatDouble(r.load_checksum_seconds * 1e3, 2)
            << "ms checksum-verify\n"
            << "  serve " << FormatDouble(r.query_qps, 0) << " qps over "
            << r.queries << " mixed queries; binary-vs-TSV divergences "
            << r.divergences << "/" << r.tsv_compared
            << ", fingerprint mismatches " << r.fingerprint_mismatches
            << ", rss " << FormatDouble(r.rss_bytes / 1e6, 0) << " MB\n";
}

void WriteRungJson(obs::JsonWriter& w, const RungReport& r) {
  w.BeginObject();
  w.Key("entities").UInt(r.entities);
  w.Key("skipped").Bool(r.skipped);
  if (r.skipped) {
    w.Key("estimated").Bool(r.estimated);
    if (r.estimated) {
      w.Key("bytes_per_triple").Double(r.bytes_per_triple, 2);
    }
    w.EndObject();
    return;
  }
  w.Key("nodes").UInt(r.nodes);
  w.Key("triples").UInt(r.triples);
  w.Key("build_seconds").Double(r.build_seconds);
  w.Key("bytes_per_triple").Double(r.bytes_per_triple, 2);
  w.Key("footprint");
  w.BeginObject();
  w.Key("kind_bytes").UInt(r.footprint.kind_bytes);
  w.Key("arena_bytes").UInt(r.footprint.arena_bytes);
  w.Key("offset_bytes").UInt(r.footprint.offset_bytes);
  w.Key("posting_bytes").UInt(r.footprint.posting_bytes);
  w.Key("index_bytes").UInt(r.footprint.index_bytes);
  w.Key("total_bytes").UInt(r.footprint.total());
  w.EndObject();
  w.Key("file_bytes").UInt(r.file_bytes);
  w.Key("save_seconds").Double(r.save_seconds);
  w.Key("load_header_seconds").Double(r.load_header_seconds);
  w.Key("load_checksum_seconds").Double(r.load_checksum_seconds);
  w.Key("query_qps").Double(r.query_qps, 1);
  w.Key("queries").UInt(r.queries);
  w.Key("tsv_compared").UInt(r.tsv_compared);
  w.Key("divergences").UInt(r.divergences);
  w.Key("fingerprint_mismatches").UInt(r.fingerprint_mismatches);
  w.Key("rss_bytes").UInt(r.rss_bytes);
  w.EndObject();
}

}  // namespace

int main() {
  obs::MetricsRegistry registry;
  std::vector<RungReport> rungs;

  PrintBanner(std::cout, "E25: snapshot scale-up (streamed build, mmap load)");
  rungs.push_back(RunRung(10'000, /*full_tsv_check=*/true, registry));
  PrintRung(rungs.back());
  rungs.push_back(RunRung(1'000'000, /*full_tsv_check=*/false, registry));
  PrintRung(rungs.back());

  const char* want_10m = std::getenv("KG_SCALE_10M");
  if (want_10m != nullptr && std::string_view(want_10m) == "1") {
    rungs.push_back(RunRung(10'000'000, /*full_tsv_check=*/false, registry));
    PrintRung(rungs.back());
  } else {
    RungReport skipped;
    skipped.entities = 10'000'000;
    skipped.skipped = true;
    skipped.estimated = true;
    // Per-triple cost is flat past 1M (every section is linear in the
    // world), so the 1M measurement is an honest estimate for the row.
    skipped.bytes_per_triple = rungs.back().bytes_per_triple;
    rungs.push_back(skipped);
    PrintRung(rungs.back());
  }

  size_t divergences = 0, fingerprint_mismatches = 0;
  for (const RungReport& r : rungs) {
    divergences += r.divergences;
    fingerprint_mismatches += r.fingerprint_mismatches;
  }

  obs::JsonWriter payload;
  payload.BeginObject();
  payload.Key("rungs");
  payload.BeginArray();
  for (const RungReport& r : rungs) WriteRungJson(payload, r);
  payload.EndArray();
  payload.Key("divergences").UInt(divergences);
  payload.Key("fingerprint_mismatches").UInt(fingerprint_mismatches);
  payload.EndObject();
  const obs::JsonSink sink("scale", kSeed, ExecPolicy::Hardware().num_threads);
  KG_CHECK_OK(sink.WriteFile("BENCH_scale.json", payload.Take()));

  PrintBanner(std::cout, "Scale verdict");
  std::cout << "binary==TSV answers: " << (divergences == 0 ? "yes" : "NO")
            << "; fingerprints stable across save/mmap-load: "
            << (fingerprint_mismatches == 0 ? "yes" : "NO") << "\n";
  return (divergences == 0 && fingerprint_mismatches == 0) ? 0 : 1;
}
