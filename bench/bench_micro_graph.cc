// Substrate microbenchmarks: triple-store operations and path queries.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graph/knowledge_graph.h"
#include "graph/paths.h"
#include "synth/entity_universe.h"

namespace {

using namespace kg;  // NOLINT

const synth::EntityUniverse& Universe() {
  static const auto* universe = [] {
    synth::UniverseOptions opt;
    opt.num_people = 2000;
    opt.num_movies = 1500;
    opt.num_songs = 300;
    Rng rng(42);
    return new synth::EntityUniverse(
        synth::EntityUniverse::Generate(opt, rng));
  }();
  return *universe;
}

void BM_AddTriple(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    graph::KnowledgeGraph kg;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      kg.AddTriple("s" + std::to_string(i % 100), "p",
                   "o" + std::to_string(i), graph::NodeKind::kEntity,
                   graph::NodeKind::kText, {"bench", 1.0, 0});
    }
    benchmark::DoNotOptimize(kg.num_triples());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_AddTriple);

void BM_ObjectsQuery(benchmark::State& state) {
  const auto kg = Universe().ToKnowledgeGraph();
  const auto pred = *kg.FindPredicate("directed_by");
  Rng rng(2);
  std::vector<graph::NodeId> subjects;
  for (graph::TripleId t : kg.TriplesWithPredicate(pred)) {
    subjects.push_back(kg.triple(t).subject);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kg.Objects(subjects[i++ % subjects.size()], pred));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjectsQuery);

void BM_ShortestPath(benchmark::State& state) {
  const auto kg = Universe().ToKnowledgeGraph();
  Rng rng(3);
  for (auto _ : state) {
    const graph::NodeId a =
        static_cast<graph::NodeId>(rng.UniformIndex(kg.num_nodes()));
    const graph::NodeId b =
        static_cast<graph::NodeId>(rng.UniformIndex(kg.num_nodes()));
    benchmark::DoNotOptimize(graph::ShortestPath(kg, a, b, 4));
  }
}
BENCHMARK(BM_ShortestPath);

void BM_PathReachProbability(benchmark::State& state) {
  const auto kg = Universe().ToKnowledgeGraph();
  const auto acted = *kg.FindPredicate("acted_in");
  const auto directed = *kg.FindPredicate("directed_by");
  const graph::RelationPath path = {{acted, false}, {directed, false}};
  Rng rng(4);
  const auto triples = kg.TriplesWithPredicate(acted);
  for (auto _ : state) {
    const auto& t = kg.triple(triples[rng.UniformIndex(triples.size())]);
    benchmark::DoNotOptimize(
        graph::PathReachProbability(kg, t.subject, t.object, path));
  }
}
BENCHMARK(BM_PathReachProbability);

}  // namespace

BENCHMARK_MAIN();
