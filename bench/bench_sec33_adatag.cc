// Reproduces the §3.3 AdaTag claim: "It can train one model for 32 major
// attributes whereas still improving quality over training one model per
// attribute." The mechanism: attribute embeddings + a mixture-of-experts
// decoder let related attributes (flavor/scent share vocabulary) pool
// their training signal. Here: one attribute-conditioned tagger with
// attribute + cluster context vs independent per-attribute taggers, at
// several training budgets.

#include <iostream>
#include <map>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "extract/opentag.h"
#include "text/bio.h"
#include "textrich/example_builder.h"

namespace {

using namespace kg;  // NOLINT

}  // namespace

int main() {
  std::cout << "E8 / sec 3.3: AdaTag multi-attribute extraction (seed "
               "42)\n";
  synth::CatalogOptions copt;
  copt.num_types = 40;
  copt.num_attributes = 20;   // "32 major attributes" scaled to our pool.
  copt.attrs_per_type = 5;
  copt.num_products = 2400;
  Rng rng(42);
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);
  std::cout << catalog.attributes().size() << " attributes in "
            << (catalog.attribute_clusters().empty()
                    ? 0
                    : catalog.attribute_clusters().back() + 1)
            << " vocabulary-sharing clusters\n";

  std::vector<size_t> train_idx, test_idx;
  textrich::SplitIndices(catalog.products().size(), 0.7, &train_idx,
                         &test_idx);
  textrich::ExampleBuildOptions build;
  const auto train_all =
      textrich::BuildAttributeExamples(catalog, train_idx, "", build);
  const auto test =
      textrich::BuildAttributeExamples(catalog, test_idx, "", build);

  TablePrinter table({"train products", "model", "P", "R", "F1",
                      "models trained"});
  double last_gain = 0.0;
  for (double fraction : {0.1, 0.3, 1.0}) {
    std::vector<extract::AttributeExample> train(
        train_all.begin(),
        train_all.begin() +
            static_cast<long>(fraction * train_all.size()));
    const std::string budget = std::to_string(
        static_cast<int>(fraction * train_idx.size()));

    // Per-attribute baseline.
    text::SpanScorer per_attr_scorer;
    size_t models = 0;
    {
      std::map<std::string, std::vector<extract::AttributeExample>>
          by_attr;
      for (const auto& ex : train) by_attr[ex.attribute].push_back(ex);
      std::map<std::string, extract::TitleExtractor> trained;
      extract::TitleExtractorOptions opt;
      opt.tagger.epochs = 6;
      for (const auto& [attr, examples] : by_attr) {
        if (examples.size() < 4) continue;
        Rng r(7);
        trained[attr].Fit(examples, opt, r);
        ++models;
      }
      for (const auto& ex : test) {
        auto it = trained.find(ex.attribute);
        per_attr_scorer.Add(ex.gold_spans,
                            it == trained.end()
                                ? std::vector<text::Span>{}
                                : it->second.Extract(ex));
      }
    }
    const auto per_attr = per_attr_scorer.Score();

    // AdaTag: one model, attribute + cluster conditioned.
    extract::TitleExtractorOptions adatag;
    adatag.attribute_conditioned = true;
    adatag.use_cluster_features = true;
    adatag.tagger.epochs = 6;
    extract::TitleExtractor adatag_model;
    {
      Rng r(7);
      adatag_model.Fit(train, adatag, r);
    }
    text::SpanScorer adatag_scorer;
    for (const auto& ex : test) {
      adatag_scorer.Add(ex.gold_spans, adatag_model.Extract(ex));
    }
    const auto ada = adatag_scorer.Score();
    last_gain = ada.f1 - per_attr.f1;

    table.AddRow({budget, "per-attribute",
                  FormatDouble(per_attr.precision, 3),
                  FormatDouble(per_attr.recall, 3),
                  FormatDouble(per_attr.f1, 3), std::to_string(models)});
    table.AddRow({budget, "AdaTag (one model)",
                  FormatDouble(ada.precision, 3),
                  FormatDouble(ada.recall, 3), FormatDouble(ada.f1, 3),
                  "1"});
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "Ablation: cluster (MoE) features");
  {
    std::vector<extract::AttributeExample> small(
        train_all.begin(),
        train_all.begin() + static_cast<long>(0.15 * train_all.size()));
    extract::TitleExtractorOptions with_clusters, without_clusters;
    with_clusters.attribute_conditioned = true;
    with_clusters.use_cluster_features = true;
    with_clusters.tagger.epochs = 6;
    without_clusters = with_clusters;
    without_clusters.use_cluster_features = false;
    text::SpanScorer s1, s2;
    extract::TitleExtractor m1, m2;
    {
      Rng r(7);
      m1.Fit(small, with_clusters, r);
    }
    {
      Rng r(7);
      m2.Fit(small, without_clusters, r);
    }
    for (const auto& ex : test) {
      s1.Add(ex.gold_spans, m1.Extract(ex));
      s2.Add(ex.gold_spans, m2.Extract(ex));
    }
    std::cout << "low-data F1 with cluster features: "
              << FormatDouble(s1.Score().f1, 3)
              << " vs without: " << FormatDouble(s2.Score().f1, 3)
              << "\n";
  }

  PrintBanner(std::cout, "Reproduction verdict");
  std::cout << "Full-data AdaTag gain over per-attribute models: "
            << (last_gain >= 0 ? "+" : "")
            << FormatDouble(100.0 * last_gain, 1)
            << "% F1 with 1 model instead of "
            << catalog.attributes().size()
            << " (paper: one model for 32 attributes improves over "
               "per-attribute training).\n";
  return 0;
}
