// Reproduces the §3.4 PAM claim: multimodal (text + product image)
// extraction "can improve over text extraction by 11% on F-measure."
// The image channel supplements values that are vague or absent in the
// text. Substitution: images are an attribute-observation channel with
// configurable visibility/noise (DESIGN.md §6); the extractor consumes
// them as cross-modal context features and as a generative fallback when
// no textual span exists.

#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "extract/opentag.h"
#include "textrich/example_builder.h"

namespace {

using namespace kg;  // NOLINT

// Value-level scoring: did the system recover the product's true value
// for the attribute? (PAM's generative decoder emits values, not spans.)
struct ValueScore {
  size_t gold = 0, predicted = 0, correct = 0;

  double F1() const {
    const double p = predicted == 0
                         ? 0.0
                         : static_cast<double>(correct) / predicted;
    const double r =
        gold == 0 ? 0.0 : static_cast<double>(correct) / gold;
    return p + r == 0.0 ? 0.0 : 2 * p * r / (p + r);
  }
  double Precision() const {
    return predicted == 0 ? 0.0
                          : static_cast<double>(correct) / predicted;
  }
  double Recall() const {
    return gold == 0 ? 0.0 : static_cast<double>(correct) / gold;
  }
};

}  // namespace

int main() {
  std::cout << "E9 / sec 3.4: PAM multimodal extraction vs text-only "
               "(seed 42)\n";
  synth::CatalogOptions copt;
  copt.num_types = 32;
  copt.num_products = 2000;
  // Text misses more values than usual; images see half of them — the
  // cross-category setting PAM targets.
  copt.title_mention_rate = 0.65;
  copt.image_visible_rate = 0.5;
  Rng rng(42);
  const auto catalog = synth::ProductCatalog::Generate(copt, rng);

  std::vector<size_t> train_idx, test_idx;
  textrich::SplitIndices(catalog.products().size(), 0.7, &train_idx,
                         &test_idx);
  textrich::ExampleBuildOptions text_only, multimodal;
  multimodal.attach_image_signals = true;
  const auto train_text =
      textrich::BuildAttributeExamples(catalog, train_idx, "", text_only);
  const auto train_multi = textrich::BuildAttributeExamples(
      catalog, train_idx, "", multimodal);
  const auto test_text =
      textrich::BuildAttributeExamples(catalog, test_idx, "", text_only);
  const auto test_multi = textrich::BuildAttributeExamples(
      catalog, test_idx, "", multimodal);

  // Index test products' true values for value-level scoring.
  auto value_truth = [&](size_t example_index,
                         const extract::AttributeExample& ex)
      -> const std::string* {
    (void)example_index;
    // Recover the product via title match: examples were built in
    // product order, but simpler: search true_values by attribute among
    // products with this title. Titles are unique enough for scoring.
    for (size_t idx : test_idx) {
      const auto& product = catalog.products()[idx];
      if (product.title_tokens == ex.tokens) {
        auto it = product.true_values.find(ex.attribute);
        return it == product.true_values.end() ? nullptr : &it->second;
      }
    }
    return nullptr;
  };

  extract::TitleExtractorOptions text_opt, multi_opt;
  text_opt.attribute_conditioned = true;
  text_opt.type_aware = true;
  text_opt.tagger.epochs = 6;
  multi_opt = text_opt;
  multi_opt.use_extra_context = true;

  extract::TitleExtractor text_model, multi_model;
  {
    Rng r(7);
    text_model.Fit(train_text, text_opt, r);
  }
  {
    Rng r(7);
    multi_model.Fit(train_multi, multi_opt, r);
  }

  ValueScore text_score, fusion_score;
  for (size_t i = 0; i < test_text.size(); ++i) {
    const std::string* truth = value_truth(i, test_text[i]);
    if (truth == nullptr) continue;
    ++text_score.gold;
    ++fusion_score.gold;

    // Text-only: first extracted span value.
    const auto text_values = text_model.ExtractValues(test_text[i]);
    if (!text_values.empty()) {
      ++text_score.predicted;
      text_score.correct += text_values.front() == *truth;
    }

    // PAM: span extraction with image context; when the text yields
    // nothing, fall back to the image channel's value (the generative
    // "value not observed in text" path).
    auto multi_values = multi_model.ExtractValues(test_multi[i]);
    std::string fused;
    if (!multi_values.empty()) {
      fused = multi_values.front();
    } else {
      for (const std::string& c : test_multi[i].extra_context) {
        if (c.rfind("imgval=", 0) == 0) fused = c.substr(7);
      }
    }
    if (!fused.empty()) {
      ++fusion_score.predicted;
      fusion_score.correct += fused == *truth;
    }
  }

  PrintBanner(std::cout, "sec 3.4 — value-level extraction quality");
  TablePrinter table({"model", "P", "R", "F1"});
  table.AddRow({"text only", FormatDouble(text_score.Precision(), 3),
                FormatDouble(text_score.Recall(), 3),
                FormatDouble(text_score.F1(), 3)});
  table.AddRow({"PAM (text+image)",
                FormatDouble(fusion_score.Precision(), 3),
                FormatDouble(fusion_score.Recall(), 3),
                FormatDouble(fusion_score.F1(), 3)});
  table.Print(std::cout);

  PrintBanner(std::cout, "Reproduction verdict");
  const double gain = fusion_score.F1() - text_score.F1();
  std::cout << "multimodal gain: +" << FormatDouble(100.0 * gain, 1)
            << "% F1 (paper: +11% F over text extraction)\n";
  return 0;
}
