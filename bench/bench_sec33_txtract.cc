// Reproduces the §3.3 TXtract claim: "it can train one model for 4K
// product types, while increasing extraction F-measure by 10% compared
// to OpenTag as a baseline." The mechanism is taxonomy-aware
// conditioning: type embeddings as input plus a type-prediction
// auxiliary task. Our scale-down keeps the mechanism (type + category
// context crossed with tokens; naive-Bayes type predictor for instances
// with unknown type) on a few hundred types.

#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include <map>

#include "extract/opentag.h"
#include "text/bio.h"
#include "textrich/example_builder.h"

namespace {

using namespace kg;  // NOLINT

text::SpanScore Evaluate(const extract::TitleExtractor& extractor,
                         const std::vector<extract::AttributeExample>& test) {
  text::SpanScorer scorer;
  for (const auto& ex : test) {
    scorer.Add(ex.gold_spans, extractor.Extract(ex));
  }
  return scorer.Score();
}

}  // namespace

int main() {
  std::cout << "E7 / sec 3.3: TXtract type-aware extraction vs OpenTag "
               "(seed 42)\n";

  TablePrinter table({"types", "ambiguity", "model", "P", "R", "F1",
                      "delta F1"});
  double best_gain = 0.0;
  for (const auto& [num_types, ambiguity] :
       std::vector<std::pair<size_t, double>>{
           {48, 0.2}, {96, 0.4}, {192, 0.6}}) {
    synth::CatalogOptions copt;
    copt.num_types = num_types;
    copt.num_products = 12 * num_types;
    copt.ambiguous_word_rate = ambiguity;
    copt.cross_type_ambiguity = ambiguity;
    Rng rng(42);
    const auto catalog = synth::ProductCatalog::Generate(copt, rng);

    std::vector<size_t> train_idx, test_idx;
    textrich::SplitIndices(catalog.products().size(), 0.7, &train_idx,
                           &test_idx);
    textrich::ExampleBuildOptions build;
    const auto train =
        textrich::BuildAttributeExamples(catalog, train_idx, "", build);
    const auto test =
        textrich::BuildAttributeExamples(catalog, test_idx, "", build);

    // OpenTag deployed per type: each type's model sees only its own
    // examples — the regime §3.3 says "cannot afford" and which starves
    // on data. Types with too little data ship no model (cold start).
    text::SpanScorer per_type_scorer;
    {
      std::map<std::string, std::vector<extract::AttributeExample>>
          train_by_type, test_by_type;
      for (const auto& ex : train) train_by_type[ex.type_name].push_back(ex);
      for (const auto& ex : test) test_by_type[ex.type_name].push_back(ex);
      extract::TitleExtractorOptions per_type_options;
      per_type_options.attribute_conditioned = true;
      per_type_options.tagger.epochs = 6;
      for (const auto& [type_name, type_test] : test_by_type) {
        auto it = train_by_type.find(type_name);
        if (it == train_by_type.end() || it->second.size() < 4) {
          for (const auto& ex : type_test) {
            per_type_scorer.Add(ex.gold_spans, {});
          }
          continue;
        }
        extract::TitleExtractor model;
        Rng r(7);
        model.Fit(it->second, per_type_options, r);
        for (const auto& ex : type_test) {
          per_type_scorer.Add(ex.gold_spans, model.Extract(ex));
        }
      }
    }
    const auto per_type = per_type_scorer.Score();

    // OpenTag pooled: one type-blind model over all types.
    extract::TitleExtractorOptions opentag;
    opentag.attribute_conditioned = true;
    opentag.tagger.epochs = 6;
    // TXtract: + type/category context, crossed with tokens.
    extract::TitleExtractorOptions txtract = opentag;
    txtract.type_aware = true;

    extract::TitleExtractor opentag_model, txtract_model;
    {
      Rng r(7);
      opentag_model.Fit(train, opentag, r);
    }
    {
      Rng r(7);
      txtract_model.Fit(train, txtract, r);
    }
    const auto base = Evaluate(opentag_model, test);
    const auto aware = Evaluate(txtract_model, test);
    best_gain = std::max(best_gain, aware.f1 - per_type.f1);
    table.AddRow({std::to_string(num_types), FormatDouble(ambiguity, 2),
                  "OpenTag per-type", FormatDouble(per_type.precision, 3),
                  FormatDouble(per_type.recall, 3),
                  FormatDouble(per_type.f1, 3), "-"});
    table.AddRow({std::to_string(num_types), FormatDouble(ambiguity, 2),
                  "OpenTag pooled", FormatDouble(base.precision, 3),
                  FormatDouble(base.recall, 3), FormatDouble(base.f1, 3),
                  "+" + FormatDouble(100.0 * (base.f1 - per_type.f1), 1) +
                      "%"});
    table.AddRow({std::to_string(num_types), FormatDouble(ambiguity, 2),
                  "TXtract", FormatDouble(aware.precision, 3),
                  FormatDouble(aware.recall, 3), FormatDouble(aware.f1, 3),
                  "+" + FormatDouble(100.0 * (aware.f1 - per_type.f1), 1) +
                      "%"});
  }
  table.Print(std::cout);

  // The auxiliary task: when the product type is unknown at inference,
  // TXtract predicts it from the text and conditions on the prediction.
  PrintBanner(std::cout, "Type-prediction auxiliary task");
  {
    synth::CatalogOptions copt;
    copt.num_types = 96;
    copt.num_products = 1200;
    copt.ambiguous_word_rate = 0.4;
    Rng rng(43);
    const auto catalog = synth::ProductCatalog::Generate(copt, rng);
    std::vector<size_t> train_idx, test_idx;
    textrich::SplitIndices(catalog.products().size(), 0.7, &train_idx,
                           &test_idx);
    textrich::ExampleBuildOptions build;
    const auto train =
        textrich::BuildAttributeExamples(catalog, train_idx, "", build);
    auto test =
        textrich::BuildAttributeExamples(catalog, test_idx, "", build);

    extract::TypeClassifier type_predictor;
    {
      std::vector<std::vector<std::string>> docs;
      std::vector<std::string> types;
      for (const auto& ex : train) {
        docs.push_back(ex.tokens);
        types.push_back(ex.type_name);
      }
      type_predictor.Fit(docs, types);
    }
    extract::TitleExtractorOptions txtract;
    txtract.attribute_conditioned = true;
    txtract.type_aware = true;
    txtract.tagger.epochs = 6;
    extract::TitleExtractor model;
    Rng r(7);
    model.Fit(train, txtract, r);

    size_t type_correct = 0;
    text::SpanScorer with_predicted;
    for (auto ex : test) {
      const std::string predicted_type = type_predictor.Predict(ex.tokens);
      type_correct += predicted_type == ex.type_name;
      ex.type_name = predicted_type;
      ex.category_name.clear();
      with_predicted.Add(ex.gold_spans, model.Extract(ex));
    }
    const auto score = with_predicted.Score();
    std::cout << "type prediction accuracy: "
              << FormatDouble(
                     static_cast<double>(type_correct) / test.size(), 3)
              << "; extraction F1 with predicted types: "
              << FormatDouble(score.f1, 3) << "\n";
  }

  // One-size-fits-all across LOCALES: the other ubiquity axis of §3.3
  // ("hundreds of languages and locales"). Vocabulary does not transfer
  // across locales, so per-locale models starve exactly like per-type
  // models did.
  PrintBanner(std::cout, "Multi-locale extraction (one model vs per-locale)");
  {
    synth::CatalogOptions copt;
    copt.num_types = 24;
    copt.num_products = 1800;
    copt.num_locales = 6;
    Rng rng(44);
    const auto catalog = synth::ProductCatalog::Generate(copt, rng);
    std::vector<size_t> train_idx, test_idx;
    textrich::SplitIndices(catalog.products().size(), 0.7, &train_idx,
                           &test_idx);
    textrich::ExampleBuildOptions build;
    const auto train =
        textrich::BuildAttributeExamples(catalog, train_idx, "", build);
    const auto test =
        textrich::BuildAttributeExamples(catalog, test_idx, "", build);

    // Per-locale models.
    text::SpanScorer per_locale_scorer;
    {
      std::map<std::string, std::vector<extract::AttributeExample>>
          by_locale;
      for (const auto& ex : train) by_locale[ex.locale].push_back(ex);
      std::map<std::string, extract::TitleExtractor> models;
      extract::TitleExtractorOptions opt;
      opt.attribute_conditioned = true;
      opt.tagger.epochs = 6;
      for (const auto& [locale, examples] : by_locale) {
        Rng r(7);
        models[locale].Fit(examples, opt, r);
      }
      for (const auto& ex : test) {
        auto it = models.find(ex.locale);
        per_locale_scorer.Add(ex.gold_spans,
                              it == models.end()
                                  ? std::vector<text::Span>{}
                                  : it->second.Extract(ex));
      }
    }
    // One locale-aware model.
    extract::TitleExtractorOptions one_opt;
    one_opt.attribute_conditioned = true;
    one_opt.locale_aware = true;
    one_opt.tagger.epochs = 6;
    extract::TitleExtractor one_model;
    {
      Rng r(7);
      one_model.Fit(train, one_opt, r);
    }
    text::SpanScorer one_scorer;
    for (const auto& ex : test) {
      one_scorer.Add(ex.gold_spans, one_model.Extract(ex));
    }
    const auto per_locale = per_locale_scorer.Score();
    const auto one = one_scorer.Score();
    std::cout << "6 per-locale models: F1 "
              << FormatDouble(per_locale.f1, 3)
              << " vs 1 locale-aware model: F1 "
              << FormatDouble(one.f1, 3) << "\n";
  }

  PrintBanner(std::cout, "Reproduction verdict");
  std::cout << "Best TXtract gain over per-type OpenTag: +"
            << FormatDouble(100.0 * best_gain, 1)
            << "% F1 (paper: +10% F over the OpenTag baseline at 4K "
               "types). One model over all types beats per-type models "
               "(data starvation) and type-awareness adds further "
               "precision on ambiguous vocabulary.\n";
  return 0;
}
