#include "ml/logistic_regression.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace kg::ml {

namespace {
double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

void LogisticRegression::Fit(const Dataset& dataset, const Options& options,
                             Rng& rng) {
  KG_CHECK(dataset.size() > 0);
  const size_t d = dataset.num_features();
  weights_.assign(d, 0.0);
  bias_ = 0.0;
  std::vector<double> grad_sq(d + 1, 1e-8);  // AdaGrad accumulators.

  std::vector<size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t i : order) {
      const Example& ex = dataset.examples[i];
      double z = bias_;
      for (size_t f = 0; f < d; ++f) z += weights_[f] * ex.features[f];
      const double error = Sigmoid(z) - (ex.label == 1 ? 1.0 : 0.0);
      for (size_t f = 0; f < d; ++f) {
        const double g = error * ex.features[f] + options.l2 * weights_[f];
        grad_sq[f] += g * g;
        weights_[f] -= options.learning_rate * g / std::sqrt(grad_sq[f]);
      }
      grad_sq[d] += error * error;
      bias_ -= options.learning_rate * error / std::sqrt(grad_sq[d]);
    }
  }
}

double LogisticRegression::PredictProba(
    const FeatureVector& features) const {
  KG_CHECK(features.size() == weights_.size())
      << "feature arity mismatch: " << features.size() << " vs "
      << weights_.size();
  double z = bias_;
  for (size_t f = 0; f < weights_.size(); ++f) {
    z += weights_[f] * features[f];
  }
  return Sigmoid(z);
}

}  // namespace kg::ml
