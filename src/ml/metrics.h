#ifndef KGRAPH_ML_METRICS_H_
#define KGRAPH_ML_METRICS_H_

#include <cstddef>
#include <vector>

namespace kg::ml {

/// Binary confusion counts (positive class = 1).
struct Confusion {
  size_t tp = 0, fp = 0, tn = 0, fn = 0;

  void Add(int gold, int predicted) {
    if (gold == 1 && predicted == 1) ++tp;
    else if (gold == 0 && predicted == 1) ++fp;
    else if (gold == 1 && predicted == 0) ++fn;
    else ++tn;
  }

  double Precision() const {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  double Recall() const {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
  double F1() const {
    const double p = Precision();
    const double r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  double Accuracy() const {
    const size_t n = tp + fp + tn + fn;
    return n == 0 ? 0.0 : static_cast<double>(tp + tn) / n;
  }
};

/// One operating point on a precision-recall curve.
struct PrPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
};

/// Precision-recall curve from scores (higher = more positive) and binary
/// gold labels, evaluated at each distinct score threshold.
std::vector<PrPoint> PrecisionRecallCurve(const std::vector<double>& scores,
                                          const std::vector<int>& gold);

/// Area under the PR curve (average precision).
double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& gold);

/// Area under the ROC curve via the rank statistic.
double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& gold);

/// Fraction of equal entries.
double AccuracyScore(const std::vector<int>& gold,
                     const std::vector<int>& predicted);

}  // namespace kg::ml

#endif  // KGRAPH_ML_METRICS_H_
