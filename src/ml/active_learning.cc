#include "ml/active_learning.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/logging.h"

namespace kg::ml {

std::vector<BudgetResult> RunActiveLearning(
    const Dataset& pool, const Dataset& test,
    const ActiveLearningOptions& options, Rng& rng) {
  KG_CHECK(!options.label_budgets.empty());
  for (size_t i = 1; i < options.label_budgets.size(); ++i) {
    KG_CHECK(options.label_budgets[i] > options.label_budgets[i - 1])
        << "budgets must be increasing";
  }
  KG_CHECK(options.label_budgets.back() <= pool.size())
      << "budget exceeds pool size";

  std::vector<bool> labeled(pool.size(), false);
  std::vector<size_t> labeled_indices;
  std::vector<size_t> unlabeled(pool.size());
  std::iota(unlabeled.begin(), unlabeled.end(), 0);

  auto acquire = [&](const std::vector<size_t>& picks) {
    for (size_t pick : picks) {
      KG_CHECK(!labeled[pick]);
      labeled[pick] = true;
      labeled_indices.push_back(pick);
    }
    unlabeled.erase(
        std::remove_if(unlabeled.begin(), unlabeled.end(),
                       [&](size_t i) { return labeled[i]; }),
        unlabeled.end());
  };

  // Seed round: random regardless of strategy.
  const size_t seed = std::min(
      {options.seed_labels, options.label_budgets.front(), pool.size()});
  {
    std::vector<size_t> picks;
    const auto sampled = rng.SampleIndices(unlabeled.size(), seed);
    picks.reserve(seed);
    for (size_t s : sampled) picks.push_back(unlabeled[s]);
    acquire(picks);
  }

  RandomForest forest;
  auto retrain = [&]() {
    Dataset train;
    train.feature_names = pool.feature_names;
    train.examples.reserve(labeled_indices.size());
    for (size_t i : labeled_indices) {
      train.examples.push_back(pool.examples[i]);
    }
    // Degenerate one-class seed sets can happen at tiny budgets; inject a
    // single flipped-label copy so the forest has two classes to separate.
    bool has_pos = false, has_neg = false;
    for (const auto& ex : train.examples) {
      (ex.label == 1 ? has_pos : has_neg) = true;
    }
    if (!has_pos || !has_neg) {
      Example ex = train.examples.front();
      ex.label = 1 - ex.label;
      train.examples.push_back(ex);
    }
    Rng train_rng = rng.Fork();
    forest.Fit(train, options.forest, train_rng);
  };

  std::vector<BudgetResult> results;
  for (size_t budget : options.label_budgets) {
    // Acquire up to `budget` total labels.
    while (labeled_indices.size() < budget && !unlabeled.empty()) {
      const size_t want = budget - labeled_indices.size();
      std::vector<size_t> picks;
      if (options.strategy == AcquisitionStrategy::kRandom) {
        const auto sampled = rng.SampleIndices(
            unlabeled.size(), std::min(want, unlabeled.size()));
        for (size_t s : sampled) picks.push_back(unlabeled[s]);
      } else {
        retrain();
        // Exploration slice: uniform picks keep the labeled set
        // representative.
        const size_t explore = std::min(
            unlabeled.size(),
            static_cast<size_t>(options.exploration_fraction *
                                static_cast<double>(want)));
        std::set<size_t> picked;
        for (size_t s : rng.SampleIndices(unlabeled.size(), explore)) {
          picked.insert(unlabeled[s]);
        }
        // Exploitation slice: rank remaining unlabeled examples by
        // |p - 0.5| ascending, take the most uncertain.
        std::vector<std::pair<double, size_t>> ranked;
        ranked.reserve(unlabeled.size());
        for (size_t i : unlabeled) {
          if (picked.count(i)) continue;
          const double p =
              forest.PredictPositiveProba(pool.examples[i].features);
          ranked.emplace_back(std::abs(p - 0.5), i);
        }
        const size_t take =
            std::min(want - picked.size(), ranked.size());
        if (take > 0) {
          std::nth_element(ranked.begin(), ranked.begin() + take - 1,
                           ranked.end());
          std::sort(ranked.begin(), ranked.begin() + take);
          for (size_t k = 0; k < take; ++k) {
            picked.insert(ranked[k].second);
          }
        }
        picks.assign(picked.begin(), picked.end());
      }
      acquire(picks);
    }

    retrain();
    Confusion confusion;
    for (const Example& ex : test.examples) {
      confusion.Add(ex.label, forest.Predict(ex.features));
    }
    BudgetResult r;
    r.labels = labeled_indices.size();
    r.precision = confusion.Precision();
    r.recall = confusion.Recall();
    r.f1 = confusion.F1();
    results.push_back(r);
  }
  return results;
}

}  // namespace kg::ml
