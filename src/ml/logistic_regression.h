#ifndef KGRAPH_ML_LOGISTIC_REGRESSION_H_
#define KGRAPH_ML_LOGISTIC_REGRESSION_H_

#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace kg::ml {

/// L2-regularized binary logistic regression trained with mini-batch-free
/// SGD + AdaGrad. Used as the calibrated scorer inside knowledge fusion,
/// PRA, and the GNN-lite classifier.
class LogisticRegression {
 public:
  struct Options {
    size_t epochs = 50;
    double learning_rate = 0.1;
    double l2 = 1e-4;
  };

  LogisticRegression() = default;

  /// Fits on binary labels {0, 1}.
  void Fit(const Dataset& dataset, const Options& options, Rng& rng);

  /// P(label == 1 | features).
  double PredictProba(const FeatureVector& features) const;

  /// Hard decision at 0.5.
  int Predict(const FeatureVector& features) const {
    return PredictProba(features) >= 0.5 ? 1 : 0;
  }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace kg::ml

#endif  // KGRAPH_ML_LOGISTIC_REGRESSION_H_
