#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kg::ml {

void MultinomialNaiveBayes::Fit(
    const std::vector<std::vector<std::string>>& documents,
    const std::vector<int>& labels, double alpha) {
  KG_CHECK(documents.size() == labels.size());
  KG_CHECK(!documents.empty());
  alpha_ = alpha;
  num_classes_ = 0;
  for (int label : labels) {
    KG_CHECK(label >= 0);
    num_classes_ = std::max(num_classes_, label + 1);
  }
  token_counts_.clear();
  class_token_totals_.assign(num_classes_, 0.0);
  std::vector<double> class_doc_counts(num_classes_, 0.0);
  for (size_t i = 0; i < documents.size(); ++i) {
    const int c = labels[i];
    class_doc_counts[c] += 1.0;
    for (const auto& token : documents[i]) {
      auto [it, inserted] = token_counts_.try_emplace(token);
      if (inserted) it->second.assign(num_classes_, 0.0);
      it->second[c] += 1.0;
      class_token_totals_[c] += 1.0;
    }
  }
  vocab_size_ = token_counts_.size();
  log_prior_.resize(num_classes_);
  const double n = static_cast<double>(documents.size());
  for (int c = 0; c < num_classes_; ++c) {
    log_prior_[c] = std::log((class_doc_counts[c] + 1.0) /
                             (n + num_classes_));
  }
}

std::vector<double> MultinomialNaiveBayes::Scores(
    const std::vector<std::string>& tokens) const {
  KG_CHECK(num_classes_ > 0) << "predict before fit";
  std::vector<double> scores = log_prior_;
  for (const auto& token : tokens) {
    auto it = token_counts_.find(token);
    for (int c = 0; c < num_classes_; ++c) {
      const double count = it == token_counts_.end() ? 0.0 : it->second[c];
      scores[c] += std::log(
          (count + alpha_) /
          (class_token_totals_[c] + alpha_ * (vocab_size_ + 1)));
    }
  }
  return scores;
}

int MultinomialNaiveBayes::Predict(
    const std::vector<std::string>& tokens) const {
  const auto scores = Scores(tokens);
  return static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace kg::ml
