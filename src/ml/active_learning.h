#ifndef KGRAPH_ML_ACTIVE_LEARNING_H_
#define KGRAPH_ML_ACTIVE_LEARNING_H_

#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace kg::ml {

/// How the next batch of labels is chosen from the unlabeled pool.
enum class AcquisitionStrategy {
  kRandom,       ///< Uniform sampling — the paper's "1.5M labels" regime.
  kUncertainty,  ///< Label examples with model score closest to 0.5 —
                 ///< the paper's "10K labels" regime (Figure 2).
};

/// Configuration for a pool-based active-learning simulation.
struct ActiveLearningOptions {
  /// Cumulative label budgets at which to retrain and evaluate; must be
  /// increasing.
  std::vector<size_t> label_budgets;
  AcquisitionStrategy strategy = AcquisitionStrategy::kRandom;
  ForestOptions forest;
  /// Labels in the initial random seed round (uncertainty needs a model
  /// to start from).
  size_t seed_labels = 32;
  /// Fraction of each uncertainty batch drawn uniformly instead — the
  /// standard exploration mix that keeps the training distribution from
  /// collapsing onto one ambiguous region.
  double exploration_fraction = 0.2;
};

/// Quality at one label budget.
struct BudgetResult {
  size_t labels = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Simulates pool-based learning: the oracle reveals pool labels as they
/// are acquired (counting toward the budget); after each budget checkpoint
/// a fresh forest is trained on the acquired labels and evaluated on
/// `test`. This is the engine behind the Figure 2 reproduction.
std::vector<BudgetResult> RunActiveLearning(
    const Dataset& pool, const Dataset& test,
    const ActiveLearningOptions& options, Rng& rng);

}  // namespace kg::ml

#endif  // KGRAPH_ML_ACTIVE_LEARNING_H_
