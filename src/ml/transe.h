#ifndef KGRAPH_ML_TRANSE_H_
#define KGRAPH_ML_TRANSE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace kg::ml {

/// An (head, relation, tail) id triple for embedding training.
using IdTriple = std::array<uint32_t, 3>;

/// TransE hyperparameters.
struct TransEOptions {
  size_t dim = 32;
  size_t epochs = 100;
  double learning_rate = 0.05;
  double margin = 1.0;
};

/// Link-prediction quality (filtered ranks over a test set).
struct LinkPredictionScore {
  double mrr = 0.0;       ///< Mean reciprocal rank of the true tail.
  double hits_at_1 = 0.0;
  double hits_at_10 = 0.0;
};

/// TransE (Bordes et al. 2013): embeds h + r ≈ t with margin ranking loss
/// and uniform negative sampling. kgraph uses it as the "deep learning
/// based link prediction" of Knowledge Vault (§2.4) and as the implicit
/// half of the dual neural KG (§4).
class TransE {
 public:
  TransE() = default;

  /// Trains embeddings for ids in [0, num_entities) / [0, num_relations).
  ///
  /// Training is serial by design: each SGD step reads embeddings the
  /// previous step wrote and draws its corruption sample from the shared
  /// `rng` in triple order, so the result is order-dependent. Sharding
  /// the triple loop would change (not just reorder) the output, and a
  /// hogwild-style parallel variant is deterministic only per
  /// thread-count. The repo's determinism bar (bit-identical at 1/2/8
  /// threads) therefore pins Fit as serial-only;
  /// ml_transe_determinism_test enforces seed-reproducibility instead.
  void Fit(const std::vector<IdTriple>& triples, size_t num_entities,
           size_t num_relations, const TransEOptions& options, Rng& rng);

  /// Plausibility score = -||e_h + r - e_t||_2 (higher is more plausible).
  double Score(uint32_t head, uint32_t relation, uint32_t tail) const;

  /// Ranks all entities as tail for (h, r, ?) and reports where the true
  /// tails land. `known` filters out other true triples from the ranking.
  LinkPredictionScore EvaluateTailPrediction(
      const std::vector<IdTriple>& test,
      const std::vector<IdTriple>& known) const;

  size_t dim() const { return dim_; }
  size_t num_entities() const { return num_entities_; }
  size_t num_relations() const { return num_relations_; }
  const std::vector<double>& entity_embedding(uint32_t id) const;
  const std::vector<double>& relation_embedding(uint32_t id) const;

 private:
  void Normalize(std::vector<double>& v);

  size_t dim_ = 0;
  size_t num_entities_ = 0;
  size_t num_relations_ = 0;
  std::vector<std::vector<double>> entities_;
  std::vector<std::vector<double>> relations_;
};

}  // namespace kg::ml

#endif  // KGRAPH_ML_TRANSE_H_
