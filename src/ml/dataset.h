#ifndef KGRAPH_ML_DATASET_H_
#define KGRAPH_ML_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace kg::ml {

/// Dense feature vector. The classical models in kgraph (trees, LR) work
/// on small dense vectors of similarity/aggregate features.
using FeatureVector = std::vector<double>;

/// One labeled example for binary or multiclass classification.
struct Example {
  FeatureVector features;
  int label = 0;
};

/// A labeled dataset with named features.
struct Dataset {
  std::vector<std::string> feature_names;
  std::vector<Example> examples;

  size_t size() const { return examples.size(); }
  size_t num_features() const { return feature_names.size(); }
};

/// Deterministically splits `dataset` into train/test by shuffling with
/// `rng` and cutting at `train_fraction`.
void TrainTestSplit(const Dataset& dataset, double train_fraction, Rng& rng,
                    Dataset* train, Dataset* test);

/// Returns `k` stratified folds' index lists (approximately equal label
/// distribution per fold).
std::vector<std::vector<size_t>> StratifiedFolds(const Dataset& dataset,
                                                 size_t k, Rng& rng);

}  // namespace kg::ml

#endif  // KGRAPH_ML_DATASET_H_
