#include "ml/kmeans.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace kg::ml {

namespace {
double SqDist(const FeatureVector& a, const FeatureVector& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}
}  // namespace

KMeansResult KMeans(const std::vector<FeatureVector>& points, size_t k,
                    size_t max_iters, Rng& rng) {
  KG_CHECK(!points.empty());
  KG_CHECK(k > 0);
  k = std::min(k, points.size());
  const size_t d = points[0].size();

  // k-means++ seeding.
  KMeansResult result;
  result.centroids.push_back(points[rng.UniformIndex(points.size())]);
  std::vector<double> min_dist(points.size(),
                               std::numeric_limits<double>::max());
  while (result.centroids.size() < k) {
    for (size_t i = 0; i < points.size(); ++i) {
      min_dist[i] = std::min(min_dist[i],
                             SqDist(points[i], result.centroids.back()));
    }
    double total = 0.0;
    for (double x : min_dist) total += x;
    if (total <= 0.0) {
      // All remaining points coincide with centroids; duplicate one.
      result.centroids.push_back(points[rng.UniformIndex(points.size())]);
      continue;
    }
    result.centroids.push_back(points[rng.Weighted(min_dist)]);
  }

  result.assignments.assign(points.size(), 0);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double best_dist = std::numeric_limits<double>::max();
      for (size_t c = 0; c < k; ++c) {
        const double dist = SqDist(points[i], result.centroids[c]);
        if (dist < best_dist) {
          best_dist = dist;
          best = static_cast<int>(c);
        }
      }
      if (result.assignments[i] != best) {
        result.assignments[i] = best;
        changed = true;
      }
    }
    std::vector<FeatureVector> sums(k, FeatureVector(d, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const int c = result.assignments[i];
      ++counts[c];
      for (size_t j = 0; j < d; ++j) sums[c][j] += points[i][j];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (size_t j = 0; j < d; ++j) {
        result.centroids[c][j] = sums[c][j] / counts[c];
      }
    }
    if (!changed) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    result.inertia +=
        SqDist(points[i], result.centroids[result.assignments[i]]);
  }
  return result;
}

}  // namespace kg::ml
