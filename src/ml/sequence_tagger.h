#ifndef KGRAPH_ML_SEQUENCE_TAGGER_H_
#define KGRAPH_ML_SEQUENCE_TAGGER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace kg::ml {

/// One sequence-labeling instance. `context` carries instance-level
/// conditioning features (product type, attribute id, modality signals…)
/// that the TXtract/AdaTag-style extractors cross with token features —
/// this is how one model serves many types/attributes.
struct TaggedSequence {
  std::vector<std::string> tokens;
  std::vector<std::string> context;
  std::vector<std::string> tags;  ///< Gold BIO tags; empty at predict time.
};

/// Tagger hyperparameters.
struct TaggerOptions {
  size_t epochs = 8;
  /// Cross each context feature with the token identity (token-level
  /// conditioning; costs memory, buys type awareness).
  bool cross_context_with_tokens = true;
};

/// Averaged structured perceptron with first-order Viterbi decoding.
/// Feature templates: token identity/prefix/suffix/shape, neighbors,
/// bigrams, plus caller-provided context features (optionally crossed with
/// tokens). This is the sequence model standing in for the BiLSTM-CRF of
/// OpenTag: same feature interface, trainable in milliseconds on CPU.
class SequenceTagger {
 public:
  SequenceTagger() = default;

  /// Trains on gold-tagged sequences. Shuffles per epoch with `rng`.
  void Fit(const std::vector<TaggedSequence>& data,
           const TaggerOptions& options, Rng& rng);

  /// Decodes the best tag sequence for `tokens` under `context`.
  std::vector<std::string> Predict(
      const std::vector<std::string>& tokens,
      const std::vector<std::string>& context) const;

  size_t num_tags() const { return tags_.size(); }
  size_t num_features() const { return emission_.size(); }
  const std::vector<std::string>& tag_set() const { return tags_; }

 private:
  /// Feature strings active at position `i`.
  std::vector<std::string> Features(const std::vector<std::string>& tokens,
                                    const std::vector<std::string>& context,
                                    size_t i) const;

  int TagId(const std::string& tag) const;

  /// Viterbi decode into tag ids using (optionally averaged) weights.
  std::vector<int> Decode(const std::vector<std::string>& tokens,
                          const std::vector<std::string>& context) const;

  double EmissionScore(const std::vector<std::string>& features,
                       int tag) const;

  void UpdateEmission(const std::vector<std::string>& features, int tag,
                      double delta, size_t step);
  void UpdateTransition(int prev, int cur, double delta, size_t step);

  struct WeightEntry {
    std::vector<double> w;          // current weights, indexed by tag.
    std::vector<double> acc;        // accumulated for averaging.
    std::vector<size_t> last_step;  // lazy-averaging timestamps.
  };

  void Finalize(size_t final_step);

  std::vector<std::string> tags_;
  std::unordered_map<std::string, int> tag_index_;
  std::unordered_map<std::string, WeightEntry> emission_;
  // transition_[prev * num_tags + cur]; prev == num_tags is start state.
  std::vector<double> transition_, transition_acc_;
  std::vector<size_t> transition_step_;
  bool cross_context_ = true;
  bool finalized_ = false;
};

}  // namespace kg::ml

#endif  // KGRAPH_ML_SEQUENCE_TAGGER_H_
