#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace kg::ml {

void RandomForest::Fit(const Dataset& dataset, const ForestOptions& options,
                       Rng& rng) {
  KG_CHECK(dataset.size() > 0) << "empty training set";
  num_features_ = dataset.num_features();
  trees_.assign(options.num_trees, DecisionTree());

  TreeOptions tree_options = options.tree;
  if (tree_options.max_features == 0) {
    tree_options.max_features = std::max<size_t>(
        1, static_cast<size_t>(
               std::sqrt(static_cast<double>(dataset.num_features()))));
  }

  const size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(options.bootstrap_fraction * dataset.size()));

  // Pre-derive one RNG per tree so results do not depend on scheduling.
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(options.num_trees);
  for (size_t t = 0; t < options.num_trees; ++t) {
    tree_rngs.push_back(rng.Fork());
  }

  auto train_tree = [&](size_t t) {
    Rng& tree_rng = tree_rngs[t];
    std::vector<size_t> bootstrap(sample_size);
    for (size_t i = 0; i < sample_size; ++i) {
      bootstrap[i] = tree_rng.UniformIndex(dataset.size());
    }
    trees_[t].Fit(dataset, bootstrap, tree_options, tree_rng);
  };

  if (options.num_threads > 1) {
    ThreadPool pool(options.num_threads);
    pool.ParallelFor(options.num_trees, train_tree);
  } else {
    for (size_t t = 0; t < options.num_trees; ++t) train_tree(t);
  }

  num_classes_ = 2;
  for (const auto& tree : trees_) {
    num_classes_ = std::max(num_classes_, tree.num_classes());
  }
}

std::vector<double> RandomForest::PredictProba(
    const FeatureVector& features) const {
  KG_CHECK(!trees_.empty()) << "predict before fit";
  std::vector<double> proba(num_classes_, 0.0);
  for (const auto& tree : trees_) {
    const auto tree_proba = tree.PredictProba(features);
    for (size_t c = 0; c < tree_proba.size(); ++c) {
      proba[c] += tree_proba[c];
    }
  }
  for (double& p : proba) p /= static_cast<double>(trees_.size());
  return proba;
}

int RandomForest::Predict(const FeatureVector& features) const {
  const auto proba = PredictProba(features);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) -
                          proba.begin());
}

double RandomForest::PredictPositiveProba(
    const FeatureVector& features) const {
  const auto proba = PredictProba(features);
  return proba.size() > 1 ? proba[1] : 0.0;
}

std::vector<double> RandomForest::FeatureImportance() const {
  std::vector<double> importance(num_features_, 0.0);
  for (const auto& tree : trees_) {
    const auto& ti = tree.feature_importance();
    for (size_t f = 0; f < ti.size(); ++f) importance[f] += ti[f];
  }
  double total = 0.0;
  for (double v : importance) total += v;
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

}  // namespace kg::ml
