#include "ml/transe.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"

namespace kg::ml {

void TransE::Normalize(std::vector<double>& v) {
  double norm = 0.0;
  for (double x : v) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 1.0) {
    for (double& x : v) x /= norm;
  }
}

void TransE::Fit(const std::vector<IdTriple>& triples, size_t num_entities,
                 size_t num_relations, const TransEOptions& options,
                 Rng& rng) {
  KG_CHECK(!triples.empty());
  dim_ = options.dim;
  num_entities_ = num_entities;
  num_relations_ = num_relations;
  const double bound = 6.0 / std::sqrt(static_cast<double>(dim_));
  auto init = [&](size_t count) {
    std::vector<std::vector<double>> table(count);
    for (auto& v : table) {
      v.resize(dim_);
      for (double& x : v) x = rng.UniformDouble(-bound, bound);
    }
    return table;
  };
  entities_ = init(num_entities);
  relations_ = init(num_relations);
  for (auto& r : relations_) Normalize(r);

  std::vector<double> grad(dim_);
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (auto& e : entities_) Normalize(e);
    for (const IdTriple& t : triples) {
      const uint32_t h = t[0], r = t[1], tail = t[2];
      // Corrupt head or tail uniformly.
      uint32_t ch = h, ct = tail;
      if (rng.Bernoulli(0.5)) {
        ch = static_cast<uint32_t>(rng.UniformIndex(num_entities_));
      } else {
        ct = static_cast<uint32_t>(rng.UniformIndex(num_entities_));
      }
      auto sq_dist = [&](uint32_t a, uint32_t rel, uint32_t b) {
        double d = 0.0;
        for (size_t k = 0; k < dim_; ++k) {
          const double diff =
              entities_[a][k] + relations_[rel][k] - entities_[b][k];
          d += diff * diff;
        }
        return d;
      };
      const double pos = sq_dist(h, r, tail);
      const double neg = sq_dist(ch, r, ct);
      if (pos + options.margin <= neg) continue;  // margin satisfied.
      // Gradient of (pos - neg) wrt embeddings; step against it.
      const double lr = options.learning_rate;
      for (size_t k = 0; k < dim_; ++k) {
        const double gp =
            2.0 * (entities_[h][k] + relations_[r][k] - entities_[tail][k]);
        const double gn =
            2.0 * (entities_[ch][k] + relations_[r][k] - entities_[ct][k]);
        entities_[h][k] -= lr * gp;
        entities_[tail][k] += lr * gp;
        relations_[r][k] -= lr * (gp - gn);
        entities_[ch][k] += lr * gn;
        entities_[ct][k] -= lr * gn;
      }
    }
  }
  for (auto& e : entities_) Normalize(e);
}

double TransE::Score(uint32_t head, uint32_t relation, uint32_t tail) const {
  KG_CHECK(head < num_entities_ && tail < num_entities_ &&
           relation < num_relations_);
  double d = 0.0;
  for (size_t k = 0; k < dim_; ++k) {
    const double diff = entities_[head][k] + relations_[relation][k] -
                        entities_[tail][k];
    d += diff * diff;
  }
  return -std::sqrt(d);
}

LinkPredictionScore TransE::EvaluateTailPrediction(
    const std::vector<IdTriple>& test,
    const std::vector<IdTriple>& known) const {
  std::set<IdTriple> known_set(known.begin(), known.end());
  LinkPredictionScore score;
  if (test.empty()) return score;
  for (const IdTriple& t : test) {
    const double true_score = Score(t[0], t[1], t[2]);
    size_t rank = 1;
    for (uint32_t candidate = 0; candidate < num_entities_; ++candidate) {
      if (candidate == t[2]) continue;
      if (known_set.count({t[0], t[1], candidate})) continue;  // filtered.
      if (Score(t[0], t[1], candidate) > true_score) ++rank;
    }
    score.mrr += 1.0 / static_cast<double>(rank);
    if (rank <= 1) score.hits_at_1 += 1.0;
    if (rank <= 10) score.hits_at_10 += 1.0;
  }
  const double n = static_cast<double>(test.size());
  score.mrr /= n;
  score.hits_at_1 /= n;
  score.hits_at_10 /= n;
  return score;
}

const std::vector<double>& TransE::entity_embedding(uint32_t id) const {
  KG_CHECK(id < num_entities_);
  return entities_[id];
}

const std::vector<double>& TransE::relation_embedding(uint32_t id) const {
  KG_CHECK(id < num_relations_);
  return relations_[id];
}

}  // namespace kg::ml
