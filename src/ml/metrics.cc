#include "ml/metrics.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace kg::ml {

std::vector<PrPoint> PrecisionRecallCurve(const std::vector<double>& scores,
                                          const std::vector<int>& gold) {
  KG_CHECK(scores.size() == gold.size());
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  const size_t total_pos =
      static_cast<size_t>(std::count(gold.begin(), gold.end(), 1));
  std::vector<PrPoint> curve;
  size_t tp = 0, fp = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (gold[order[i]] == 1) ++tp;
    else ++fp;
    // Emit a point only at threshold boundaries (last of a tied block).
    if (i + 1 < order.size() &&
        scores[order[i + 1]] == scores[order[i]]) {
      continue;
    }
    PrPoint pt;
    pt.threshold = scores[order[i]];
    pt.precision = tp + fp == 0 ? 1.0 : static_cast<double>(tp) / (tp + fp);
    pt.recall =
        total_pos == 0 ? 0.0 : static_cast<double>(tp) / total_pos;
    curve.push_back(pt);
  }
  return curve;
}

double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& gold) {
  const auto curve = PrecisionRecallCurve(scores, gold);
  double ap = 0.0;
  double prev_recall = 0.0;
  for (const PrPoint& pt : curve) {
    ap += pt.precision * (pt.recall - prev_recall);
    prev_recall = pt.recall;
  }
  return ap;
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& gold) {
  KG_CHECK(scores.size() == gold.size());
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  // Mann-Whitney U with midranks for ties.
  double rank_sum_pos = 0.0;
  size_t n_pos = 0, n_neg = 0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    const double midrank = (static_cast<double>(i + 1) + j) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (gold[order[k]] == 1) {
        rank_sum_pos += midrank;
        ++n_pos;
      } else {
        ++n_neg;
      }
    }
    i = j;
  }
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(n_pos) * (n_pos + 1) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

double AccuracyScore(const std::vector<int>& gold,
                     const std::vector<int>& predicted) {
  KG_CHECK(gold.size() == predicted.size());
  if (gold.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < gold.size(); ++i) {
    if (gold[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / gold.size();
}

}  // namespace kg::ml
