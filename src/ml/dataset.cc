#include "ml/dataset.h"

#include <map>
#include <numeric>

#include "common/logging.h"

namespace kg::ml {

void TrainTestSplit(const Dataset& dataset, double train_fraction, Rng& rng,
                    Dataset* train, Dataset* test) {
  KG_CHECK(train_fraction >= 0.0 && train_fraction <= 1.0);
  std::vector<size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  const size_t cut =
      static_cast<size_t>(train_fraction * static_cast<double>(order.size()));
  train->feature_names = dataset.feature_names;
  test->feature_names = dataset.feature_names;
  train->examples.clear();
  test->examples.clear();
  for (size_t i = 0; i < order.size(); ++i) {
    (i < cut ? train : test)->examples.push_back(dataset.examples[order[i]]);
  }
}

std::vector<std::vector<size_t>> StratifiedFolds(const Dataset& dataset,
                                                 size_t k, Rng& rng) {
  KG_CHECK(k >= 2);
  std::map<int, std::vector<size_t>> by_label;
  for (size_t i = 0; i < dataset.size(); ++i) {
    by_label[dataset.examples[i].label].push_back(i);
  }
  std::vector<std::vector<size_t>> folds(k);
  for (auto& [label, indices] : by_label) {
    rng.Shuffle(&indices);
    for (size_t i = 0; i < indices.size(); ++i) {
      folds[i % k].push_back(indices[i]);
    }
  }
  return folds;
}

}  // namespace kg::ml
