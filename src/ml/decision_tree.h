#ifndef KGRAPH_ML_DECISION_TREE_H_
#define KGRAPH_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace kg::ml {

/// CART hyperparameters shared by DecisionTree and RandomForest.
struct TreeOptions {
  size_t max_depth = 16;
  size_t min_samples_leaf = 1;
  size_t min_samples_split = 2;
  /// Features considered per split; 0 = all (single tree) — RandomForest
  /// sets sqrt(d) by default.
  size_t max_features = 0;
};

/// Binary-split CART classifier (Gini impurity, numeric thresholds).
/// Supports binary and multiclass labels in [0, num_classes).
class DecisionTree {
 public:
  DecisionTree() = default;

  /// Fits on `indices` into `dataset` (bootstrap support for forests).
  /// `rng` drives feature subsampling when options.max_features > 0.
  void Fit(const Dataset& dataset, const std::vector<size_t>& indices,
           const TreeOptions& options, Rng& rng);

  /// Fits on the full dataset.
  void Fit(const Dataset& dataset, const TreeOptions& options, Rng& rng);

  /// Most probable class.
  int Predict(const FeatureVector& features) const;

  /// Per-class probability estimate (leaf class frequencies).
  std::vector<double> PredictProba(const FeatureVector& features) const;

  /// Total Gini decrease attributed to each feature by this tree.
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  size_t num_nodes() const { return nodes_.size(); }
  int num_classes() const { return num_classes_; }

 private:
  struct Node {
    // Internal nodes: split on feature < threshold -> left else right.
    int feature = -1;
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    // Leaves: class distribution (normalized).
    std::vector<double> distribution;
    bool IsLeaf() const { return feature < 0; }
  };

  int32_t Build(const Dataset& dataset, std::vector<size_t>& indices,
                size_t begin, size_t end, size_t depth,
                const TreeOptions& options, Rng& rng);

  const Node& Walk(const FeatureVector& features) const;

  std::vector<Node> nodes_;
  std::vector<double> importance_;
  int num_classes_ = 2;
};

}  // namespace kg::ml

#endif  // KGRAPH_ML_DECISION_TREE_H_
