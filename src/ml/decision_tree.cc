#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace kg::ml {

namespace {

double Gini(const std::vector<size_t>& counts, size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (size_t c : counts) {
    const double p = static_cast<double>(c) / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

void DecisionTree::Fit(const Dataset& dataset,
                       const std::vector<size_t>& indices,
                       const TreeOptions& options, Rng& rng) {
  KG_CHECK(!indices.empty()) << "empty training set";
  nodes_.clear();
  importance_.assign(dataset.num_features(), 0.0);
  num_classes_ = 2;
  for (size_t i : indices) {
    num_classes_ = std::max(num_classes_, dataset.examples[i].label + 1);
  }
  std::vector<size_t> work(indices);
  Build(dataset, work, 0, work.size(), 0, options, rng);
}

void DecisionTree::Fit(const Dataset& dataset, const TreeOptions& options,
                       Rng& rng) {
  std::vector<size_t> all(dataset.size());
  std::iota(all.begin(), all.end(), 0);
  Fit(dataset, all, options, rng);
}

int32_t DecisionTree::Build(const Dataset& dataset,
                            std::vector<size_t>& indices, size_t begin,
                            size_t end, size_t depth,
                            const TreeOptions& options, Rng& rng) {
  const size_t n = end - begin;
  std::vector<size_t> counts(num_classes_, 0);
  for (size_t i = begin; i < end; ++i) {
    ++counts[dataset.examples[indices[i]].label];
  }
  const double node_gini = Gini(counts, n);

  auto make_leaf = [&]() -> int32_t {
    Node leaf;
    leaf.distribution.resize(num_classes_);
    for (int c = 0; c < num_classes_; ++c) {
      leaf.distribution[c] = static_cast<double>(counts[c]) / n;
    }
    nodes_.push_back(std::move(leaf));
    return static_cast<int32_t>(nodes_.size() - 1);
  };

  if (depth >= options.max_depth || n < options.min_samples_split ||
      node_gini == 0.0) {
    return make_leaf();
  }

  // Choose the feature subset to consider.
  const size_t d = dataset.num_features();
  std::vector<size_t> feature_ids;
  if (options.max_features == 0 || options.max_features >= d) {
    feature_ids.resize(d);
    std::iota(feature_ids.begin(), feature_ids.end(), 0);
  } else {
    feature_ids = rng.SampleIndices(d, options.max_features);
  }

  // Find the best (feature, threshold) by exact scan over sorted values.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_impurity = node_gini;
  std::vector<size_t> sorted(indices.begin() + begin, indices.begin() + end);
  for (size_t f : feature_ids) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return dataset.examples[a].features[f] <
             dataset.examples[b].features[f];
    });
    std::vector<size_t> left_counts(num_classes_, 0);
    std::vector<size_t> right_counts(counts);
    for (size_t i = 0; i + 1 < n; ++i) {
      const int label = dataset.examples[sorted[i]].label;
      ++left_counts[label];
      --right_counts[label];
      const double v = dataset.examples[sorted[i]].features[f];
      const double v_next = dataset.examples[sorted[i + 1]].features[f];
      if (v == v_next) continue;
      const size_t n_left = i + 1;
      const size_t n_right = n - n_left;
      if (n_left < options.min_samples_leaf ||
          n_right < options.min_samples_leaf) {
        continue;
      }
      const double impurity =
          (n_left * Gini(left_counts, n_left) +
           n_right * Gini(right_counts, n_right)) /
          static_cast<double>(n);
      if (impurity + 1e-12 < best_impurity) {
        best_impurity = impurity;
        best_feature = static_cast<int>(f);
        best_threshold = (v + v_next) / 2.0;
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition indices around the threshold.
  auto mid_it = std::partition(
      indices.begin() + begin, indices.begin() + end, [&](size_t i) {
        return dataset.examples[i].features[best_feature] < best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();

  importance_[best_feature] +=
      static_cast<double>(n) * (node_gini - best_impurity);

  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int32_t left =
      Build(dataset, indices, begin, mid, depth + 1, options, rng);
  const int32_t right =
      Build(dataset, indices, mid, end, depth + 1, options, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

const DecisionTree::Node& DecisionTree::Walk(
    const FeatureVector& features) const {
  KG_CHECK(!nodes_.empty()) << "predict before fit";
  int32_t cur = 0;
  while (!nodes_[cur].IsLeaf()) {
    const Node& node = nodes_[cur];
    cur = features[node.feature] < node.threshold ? node.left : node.right;
  }
  return nodes_[cur];
}

int DecisionTree::Predict(const FeatureVector& features) const {
  const auto& dist = Walk(features).distribution;
  return static_cast<int>(std::max_element(dist.begin(), dist.end()) -
                          dist.begin());
}

std::vector<double> DecisionTree::PredictProba(
    const FeatureVector& features) const {
  return Walk(features).distribution;
}

}  // namespace kg::ml
