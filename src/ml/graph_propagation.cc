#include "ml/graph_propagation.h"

#include "common/logging.h"

namespace kg::ml {

std::vector<FeatureVector> PropagateFeatures(
    const std::vector<FeatureVector>& node_features,
    const Adjacency& adjacency, size_t layers) {
  KG_CHECK(node_features.size() == adjacency.size());
  std::vector<FeatureVector> current = node_features;
  for (size_t layer = 0; layer < layers; ++layer) {
    const size_t d = current.empty() ? 0 : current[0].size();
    std::vector<FeatureVector> next(current.size());
    for (size_t v = 0; v < current.size(); ++v) {
      FeatureVector agg(d, 0.0);
      if (!adjacency[v].empty()) {
        for (uint32_t u : adjacency[v]) {
          KG_CHECK(u < current.size());
          for (size_t k = 0; k < d; ++k) agg[k] += current[u][k];
        }
        const double inv = 1.0 / static_cast<double>(adjacency[v].size());
        for (double& x : agg) x *= inv;
      }
      next[v].reserve(2 * d);
      next[v].insert(next[v].end(), current[v].begin(), current[v].end());
      next[v].insert(next[v].end(), agg.begin(), agg.end());
    }
    current = std::move(next);
  }
  return current;
}

void GnnNodeClassifier::Fit(
    const std::vector<std::vector<FeatureVector>>& graph_features,
    const std::vector<Adjacency>& graph_adjacency,
    const std::vector<std::vector<int>>& labels, const Options& options,
    Rng& rng) {
  KG_CHECK(graph_features.size() == graph_adjacency.size());
  KG_CHECK(graph_features.size() == labels.size());
  layers_ = options.layers;
  Dataset train;
  for (size_t g = 0; g < graph_features.size(); ++g) {
    const auto propagated =
        PropagateFeatures(graph_features[g], graph_adjacency[g], layers_);
    KG_CHECK(propagated.size() == labels[g].size());
    for (size_t v = 0; v < propagated.size(); ++v) {
      if (labels[g][v] < 0) continue;
      train.examples.push_back(Example{propagated[v], labels[g][v]});
    }
  }
  KG_CHECK(!train.examples.empty()) << "no labeled nodes";
  train.feature_names.resize(train.examples[0].features.size());
  lr_.Fit(train, options.lr, rng);
}

std::vector<double> GnnNodeClassifier::Predict(
    const std::vector<FeatureVector>& features,
    const Adjacency& adjacency) const {
  const auto propagated = PropagateFeatures(features, adjacency, layers_);
  std::vector<double> out(propagated.size());
  for (size_t v = 0; v < propagated.size(); ++v) {
    out[v] = lr_.PredictProba(propagated[v]);
  }
  return out;
}

}  // namespace kg::ml
