#ifndef KGRAPH_ML_NAIVE_BAYES_H_
#define KGRAPH_ML_NAIVE_BAYES_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace kg::ml {

/// Multinomial naive Bayes over bag-of-token documents with Laplace
/// smoothing. kgraph uses it for the auxiliary text-classification tasks
/// (TXtract's product-type prediction, distant-supervision filtering)
/// where a calibrated heavyweight model is unnecessary.
class MultinomialNaiveBayes {
 public:
  MultinomialNaiveBayes() = default;

  /// Trains on tokenized documents with integer class labels
  /// in [0, num_classes).
  void Fit(const std::vector<std::vector<std::string>>& documents,
           const std::vector<int>& labels, double alpha = 1.0);

  /// Most probable class for `tokens`.
  int Predict(const std::vector<std::string>& tokens) const;

  /// Log P(class | tokens) up to normalization, indexed by class.
  std::vector<double> Scores(const std::vector<std::string>& tokens) const;

  int num_classes() const { return num_classes_; }

 private:
  int num_classes_ = 0;
  double alpha_ = 1.0;
  std::vector<double> log_prior_;
  // token -> per-class counts.
  std::unordered_map<std::string, std::vector<double>> token_counts_;
  std::vector<double> class_token_totals_;
  size_t vocab_size_ = 0;
};

}  // namespace kg::ml

#endif  // KGRAPH_ML_NAIVE_BAYES_H_
