#ifndef KGRAPH_ML_KMEANS_H_
#define KGRAPH_ML_KMEANS_H_

#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace kg::ml {

/// Result of a k-means run.
struct KMeansResult {
  std::vector<int> assignments;            ///< Cluster id per point.
  std::vector<FeatureVector> centroids;    ///< k centroids.
  double inertia = 0.0;                    ///< Sum of squared distances.
};

/// Lloyd's k-means with k-means++ seeding. AdaTag-style multi-attribute
/// extraction clusters attribute embeddings with this to form its
/// mixture-of-experts gate.
KMeansResult KMeans(const std::vector<FeatureVector>& points, size_t k,
                    size_t max_iters, Rng& rng);

}  // namespace kg::ml

#endif  // KGRAPH_ML_KMEANS_H_
