#ifndef KGRAPH_ML_RANDOM_FOREST_H_
#define KGRAPH_ML_RANDOM_FOREST_H_

#include <vector>

#include "common/rng.h"
#include "ml/decision_tree.h"

namespace kg::ml {

/// Random forest hyperparameters.
struct ForestOptions {
  size_t num_trees = 50;
  TreeOptions tree;          ///< tree.max_features 0 = auto sqrt(d).
  double bootstrap_fraction = 1.0;
  size_t num_threads = 1;    ///< Trees train in parallel when > 1.
};

/// Bagged CART ensemble — the model the paper singles out as "proved to be
/// effective" for production entity linkage (§2.2, Figure 2).
class RandomForest {
 public:
  RandomForest() = default;

  /// Trains `options.num_trees` trees on bootstrap resamples.
  void Fit(const Dataset& dataset, const ForestOptions& options, Rng& rng);

  /// Majority-vote class.
  int Predict(const FeatureVector& features) const;

  /// Mean of tree probability estimates; index = class.
  std::vector<double> PredictProba(const FeatureVector& features) const;

  /// P(class == 1); the linkage score used for PR curves and uncertainty
  /// sampling.
  double PredictPositiveProba(const FeatureVector& features) const;

  /// Mean per-tree Gini importance, normalized to sum to 1.
  std::vector<double> FeatureImportance() const;

  size_t num_trees() const { return trees_.size(); }
  int num_classes() const { return num_classes_; }

 private:
  std::vector<DecisionTree> trees_;
  int num_classes_ = 2;
  size_t num_features_ = 0;
};

}  // namespace kg::ml

#endif  // KGRAPH_ML_RANDOM_FOREST_H_
