#ifndef KGRAPH_ML_GRAPH_PROPAGATION_H_
#define KGRAPH_ML_GRAPH_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/logistic_regression.h"

namespace kg::ml {

/// Adjacency list over node ids 0..n-1 (undirected use: include both
/// directions).
using Adjacency = std::vector<std::vector<uint32_t>>;

/// Mean-aggregation message passing: each layer concatenates a node's
/// current representation with the mean of its neighbors', so after k
/// layers a node's vector summarizes its k-hop neighborhood. This is the
/// convolution at the heart of GNN extractors like ZeroshotCeres (§2.3),
/// without the learned nonlinearity (a linear classifier on top recovers
/// most of the benefit at kgraph's scale).
std::vector<FeatureVector> PropagateFeatures(
    const std::vector<FeatureVector>& node_features,
    const Adjacency& adjacency, size_t layers);

/// Node classifier = PropagateFeatures + logistic regression. Trained on
/// one set of graphs, applicable to unseen graphs with the same feature
/// space — the property that makes zero-shot extraction possible.
class GnnNodeClassifier {
 public:
  struct Options {
    size_t layers = 2;
    LogisticRegression::Options lr;
  };

  GnnNodeClassifier() = default;

  /// Trains on labeled nodes of one or more graphs. Each element of
  /// `graphs` pairs node features with adjacency; `labels` holds one
  /// binary label per node (-1 = unlabeled, excluded from training).
  void Fit(const std::vector<std::vector<FeatureVector>>& graph_features,
           const std::vector<Adjacency>& graph_adjacency,
           const std::vector<std::vector<int>>& labels,
           const Options& options, Rng& rng);

  /// Probability each node of a new graph is positive.
  std::vector<double> Predict(const std::vector<FeatureVector>& features,
                              const Adjacency& adjacency) const;

 private:
  LogisticRegression lr_;
  size_t layers_ = 2;
};

}  // namespace kg::ml

#endif  // KGRAPH_ML_GRAPH_PROPAGATION_H_
