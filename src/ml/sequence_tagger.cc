#include "ml/sequence_tagger.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace kg::ml {

namespace {

std::string Shape(const std::string& token) {
  std::string shape;
  char last = '\0';
  for (char c : token) {
    char s;
    if (std::isdigit(static_cast<unsigned char>(c))) s = 'd';
    else if (std::isupper(static_cast<unsigned char>(c))) s = 'A';
    else if (std::isalpha(static_cast<unsigned char>(c))) s = 'a';
    else s = '-';
    if (s != last) shape.push_back(s);
    last = s;
  }
  return shape;
}

}  // namespace

std::vector<std::string> SequenceTagger::Features(
    const std::vector<std::string>& tokens,
    const std::vector<std::string>& context, size_t i) const {
  const std::string& w = tokens[i];
  std::vector<std::string> feats;
  feats.reserve(12 + context.size() * (cross_context_ ? 2 : 1));
  feats.push_back("b");  // bias
  feats.push_back("w=" + w);
  feats.push_back("shape=" + Shape(w));
  if (w.size() >= 3) {
    feats.push_back("pre3=" + w.substr(0, 3));
    feats.push_back("suf3=" + w.substr(w.size() - 3));
  }
  const std::string prev = i > 0 ? tokens[i - 1] : "<s>";
  const std::string next = i + 1 < tokens.size() ? tokens[i + 1] : "</s>";
  feats.push_back("w-1=" + prev);
  feats.push_back("w+1=" + next);
  feats.push_back("w-1|w=" + prev + "|" + w);
  feats.push_back("w|w+1=" + w + "|" + next);
  if (i == 0) feats.push_back("first");
  if (i + 1 == tokens.size()) feats.push_back("last");
  for (const std::string& c : context) {
    // Lexicon entries ("lex=<token>") are positional gazetteer features:
    // they fire a shared "inlex" feature when this position's token is
    // listed, which generalizes to value words never seen in training.
    if (c.size() > 4 && c.compare(0, 4, "lex=") == 0) {
      if (c.compare(4, std::string::npos, w) == 0) {
        feats.push_back("inlex");
        feats.push_back("inlex|w-1=" + prev);
      }
      continue;
    }
    feats.push_back("ctx=" + c);
    if (cross_context_) feats.push_back("ctx|w=" + c + "|" + w);
  }
  return feats;
}

int SequenceTagger::TagId(const std::string& tag) const {
  auto it = tag_index_.find(tag);
  KG_CHECK(it != tag_index_.end()) << "unknown tag " << tag;
  return it->second;
}

double SequenceTagger::EmissionScore(
    const std::vector<std::string>& features, int tag) const {
  double score = 0.0;
  for (const auto& f : features) {
    auto it = emission_.find(f);
    if (it != emission_.end()) score += it->second.w[tag];
  }
  return score;
}

void SequenceTagger::UpdateEmission(
    const std::vector<std::string>& features, int tag, double delta,
    size_t step) {
  for (const auto& f : features) {
    auto [it, inserted] = emission_.try_emplace(f);
    WeightEntry& e = it->second;
    if (inserted) {
      e.w.assign(tags_.size(), 0.0);
      e.acc.assign(tags_.size(), 0.0);
      e.last_step.assign(tags_.size(), step);
    }
    e.acc[tag] +=
        static_cast<double>(step - e.last_step[tag]) * e.w[tag];
    e.last_step[tag] = step;
    e.w[tag] += delta;
  }
}

void SequenceTagger::UpdateTransition(int prev, int cur, double delta,
                                      size_t step) {
  const size_t idx = static_cast<size_t>(prev) * tags_.size() +
                     static_cast<size_t>(cur);
  transition_acc_[idx] +=
      static_cast<double>(step - transition_step_[idx]) * transition_[idx];
  transition_step_[idx] = step;
  transition_[idx] += delta;
}

std::vector<int> SequenceTagger::Decode(
    const std::vector<std::string>& tokens,
    const std::vector<std::string>& context) const {
  const size_t t = tags_.size();
  const size_t n = tokens.size();
  KG_CHECK(t > 0) << "decode before fit";
  if (n == 0) return {};
  std::vector<double> score(n * t, -std::numeric_limits<double>::infinity());
  std::vector<int> back(n * t, -1);
  {
    const auto feats = Features(tokens, context, 0);
    for (size_t y = 0; y < t; ++y) {
      score[y] = EmissionScore(feats, static_cast<int>(y)) +
                 transition_[t * t + y];  // start-state transition row.
    }
  }
  for (size_t i = 1; i < n; ++i) {
    const auto feats = Features(tokens, context, i);
    for (size_t y = 0; y < t; ++y) {
      const double em = EmissionScore(feats, static_cast<int>(y));
      double best = -std::numeric_limits<double>::infinity();
      int best_prev = 0;
      for (size_t p = 0; p < t; ++p) {
        const double s = score[(i - 1) * t + p] + transition_[p * t + y];
        if (s > best) {
          best = s;
          best_prev = static_cast<int>(p);
        }
      }
      score[i * t + y] = best + em;
      back[i * t + y] = best_prev;
    }
  }
  // Backtrack from the best final tag.
  size_t best_final = 0;
  for (size_t y = 1; y < t; ++y) {
    if (score[(n - 1) * t + y] > score[(n - 1) * t + best_final]) {
      best_final = y;
    }
  }
  std::vector<int> path(n);
  path[n - 1] = static_cast<int>(best_final);
  for (size_t i = n - 1; i > 0; --i) {
    path[i - 1] = back[i * t + path[i]];
  }
  return path;
}

void SequenceTagger::Fit(const std::vector<TaggedSequence>& data,
                         const TaggerOptions& options, Rng& rng) {
  KG_CHECK(!data.empty());
  cross_context_ = options.cross_context_with_tokens;
  finalized_ = false;
  emission_.clear();
  tags_.clear();
  tag_index_.clear();
  // Collect the tag set; "O" first so ties break toward no-extraction.
  tag_index_.emplace("O", 0);
  tags_.push_back("O");
  for (const auto& seq : data) {
    KG_CHECK(seq.tokens.size() == seq.tags.size());
    for (const auto& tag : seq.tags) {
      if (tag_index_.emplace(tag, static_cast<int>(tags_.size())).second) {
        tags_.push_back(tag);
      }
    }
  }
  const size_t t = tags_.size();
  transition_.assign((t + 1) * t, 0.0);
  transition_acc_.assign((t + 1) * t, 0.0);
  transition_step_.assign((t + 1) * t, 0);

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  size_t step = 0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      const TaggedSequence& seq = data[idx];
      if (seq.tokens.empty()) continue;
      ++step;
      const std::vector<int> predicted = Decode(seq.tokens, seq.context);
      std::vector<int> gold(seq.tokens.size());
      for (size_t i = 0; i < seq.tags.size(); ++i) {
        gold[i] = TagId(seq.tags[i]);
      }
      if (predicted == gold) continue;
      for (size_t i = 0; i < seq.tokens.size(); ++i) {
        if (predicted[i] == gold[i]) continue;
        const auto feats = Features(seq.tokens, seq.context, i);
        UpdateEmission(feats, gold[i], +1.0, step);
        UpdateEmission(feats, predicted[i], -1.0, step);
      }
      // Transition updates along full paths (start state = index t).
      for (size_t i = 0; i < seq.tokens.size(); ++i) {
        const int gp = i == 0 ? static_cast<int>(t) : gold[i - 1];
        const int pp = i == 0 ? static_cast<int>(t) : predicted[i - 1];
        if (gp != pp || gold[i] != predicted[i]) {
          UpdateTransition(gp, gold[i], +1.0, step);
          UpdateTransition(pp, predicted[i], -1.0, step);
        }
      }
    }
  }
  Finalize(step + 1);
}

void SequenceTagger::Finalize(size_t final_step) {
  // Replace weights by their running average (averaged perceptron).
  for (auto& [feat, e] : emission_) {
    for (size_t y = 0; y < tags_.size(); ++y) {
      e.acc[y] += static_cast<double>(final_step - e.last_step[y]) * e.w[y];
      e.w[y] = e.acc[y] / static_cast<double>(final_step);
    }
  }
  for (size_t i = 0; i < transition_.size(); ++i) {
    transition_acc_[i] +=
        static_cast<double>(final_step - transition_step_[i]) *
        transition_[i];
    transition_[i] = transition_acc_[i] / static_cast<double>(final_step);
  }
  finalized_ = true;
}

std::vector<std::string> SequenceTagger::Predict(
    const std::vector<std::string>& tokens,
    const std::vector<std::string>& context) const {
  KG_CHECK(finalized_) << "Predict before Fit";
  const std::vector<int> path = Decode(tokens, context);
  std::vector<std::string> out(path.size());
  for (size_t i = 0; i < path.size(); ++i) out[i] = tags_[path[i]];
  return out;
}

}  // namespace kg::ml
