#ifndef KGRAPH_SYNTH_BEHAVIOR_GENERATOR_H_
#define KGRAPH_SYNTH_BEHAVIOR_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "synth/catalog_generator.h"

namespace kg::synth {

/// One search-then-purchase event: what the customer typed and what they
/// bought. The query is a type name, a hypernym (parent category word),
/// or a type alias — the signal Octet-style taxonomy mining reads (§3.1:
/// "if users searching for tea often buy green tea…").
struct SearchEvent {
  std::string query;
  uint32_t purchased_product = 0;
};

/// A pair of products co-engaged in one session.
struct CoEngagementPair {
  uint32_t a = 0;
  uint32_t b = 0;
};

/// Generated shopping-behavior log.
struct BehaviorLog {
  std::vector<SearchEvent> searches;
  std::vector<CoEngagementPair> co_views;
  std::vector<CoEngagementPair> co_purchases;
};

/// Behavior-log knobs.
struct BehaviorOptions {
  size_t num_searches = 20000;
  /// P(query uses the parent category instead of the leaf type).
  double hypernym_query_rate = 0.35;
  /// P(query uses a type alias when one exists).
  double alias_query_rate = 0.25;
  /// P(the purchase is off-intent: a random product).
  double purchase_noise = 0.05;
  size_t num_co_views = 8000;
  /// P(a co-view pair stays within the same category subtree).
  double co_view_same_category = 0.8;
  size_t num_co_purchases = 4000;
  /// P(a co-purchase pairs a product with one from its category's
  /// designated complementary category) — the latent structure
  /// P-Companion-style mining recovers (category k complements k+1).
  double co_purchase_complement_rate = 0.6;
};

/// Simulates customers shopping over `catalog`.
BehaviorLog GenerateBehavior(const ProductCatalog& catalog,
                             const BehaviorOptions& options, Rng& rng);

}  // namespace kg::synth

#endif  // KGRAPH_SYNTH_BEHAVIOR_GENERATOR_H_
