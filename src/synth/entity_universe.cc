#include "synth/entity_universe.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "synth/names.h"

namespace kg::synth {

namespace {

/// Popularity of rank `r` among `n`: the Zipf pmf rescaled so the head is
/// ~1 and the tail approaches 0.
std::vector<double> PopularityByRank(size_t n, double exponent) {
  std::vector<double> pop(n);
  for (size_t r = 0; r < n; ++r) {
    pop[r] = 1.0 / std::pow(static_cast<double>(r + 1), exponent);
  }
  return pop;
}

}  // namespace

EntityUniverse EntityUniverse::Generate(const UniverseOptions& options,
                                        Rng& rng) {
  EntityUniverse universe;
  universe.options_ = options;
  NameFactory names(rng.Fork());

  const auto person_pop =
      PopularityByRank(options.num_people, options.zipf_exponent);
  universe.people_.resize(options.num_people);
  for (size_t i = 0; i < options.num_people; ++i) {
    PersonEntity& p = universe.people_[i];
    p.id = static_cast<uint32_t>(i);
    p.name = names.PersonName();
    p.birth_year = static_cast<int>(
        rng.UniformInt(options.min_year - 60, options.max_year - 20));
    p.nationality = names.Nationality();
    p.popularity = person_pop[i];
  }

  // Latent structure that makes the graph predictable (link prediction,
  // PRA): every person has a genre affinity, and every director a
  // recurring troupe of collaborators.
  std::vector<std::string> person_genre(options.num_people);
  for (auto& g : person_genre) g = names.Genre();
  std::unordered_map<uint32_t, std::vector<uint32_t>> troupes;

  const auto movie_pop =
      PopularityByRank(options.num_movies, options.zipf_exponent);
  universe.movies_.resize(options.num_movies);
  for (size_t i = 0; i < options.num_movies; ++i) {
    MovieEntity& m = universe.movies_[i];
    m.id = static_cast<uint32_t>(i);
    m.title = names.MovieTitle();
    m.release_year =
        static_cast<int>(rng.UniformInt(options.min_year, options.max_year));
    // Popular movies tend to involve popular people: sample participants
    // from a head-biased window of the person list.
    auto sample_person = [&]() -> uint32_t {
      // Window floor of 10 keeps tiny tails head-biased, but can never
      // exceed the pool itself (tiny universes index out of it otherwise).
      const size_t window = std::min<size_t>(
          options.num_people,
          std::max<size_t>(
              10, static_cast<size_t>(static_cast<double>(options.num_people) *
                                      (0.05 + 0.95 * rng.UniformDouble()))));
      return static_cast<uint32_t>(rng.UniformIndex(window));
    };
    m.director = sample_person();
    // Directors mostly stay in their genre.
    m.genre = rng.Bernoulli(0.8) ? person_genre[m.director]
                                 : names.Genre();
    // Casting: mostly from the director's troupe (repeat collaborators).
    auto& troupe = troupes[m.director];
    while (troupe.size() < 8) troupe.push_back(sample_person());
    const int cast = static_cast<int>(rng.UniformInt(2, 5));
    for (int c = 0; c < cast; ++c) {
      m.actors.push_back(rng.Bernoulli(0.6)
                             ? troupe[rng.UniformIndex(troupe.size())]
                             : sample_person());
    }
    std::sort(m.actors.begin(), m.actors.end());
    m.actors.erase(std::unique(m.actors.begin(), m.actors.end()),
                   m.actors.end());
    m.popularity = movie_pop[i];
  }

  const auto song_pop =
      PopularityByRank(options.num_songs, options.zipf_exponent);
  universe.songs_.resize(options.num_songs);
  for (size_t i = 0; i < options.num_songs; ++i) {
    SongEntity& s = universe.songs_[i];
    s.id = static_cast<uint32_t>(i);
    s.title = names.SongTitle();
    s.artist = static_cast<uint32_t>(rng.UniformIndex(options.num_people));
    s.year =
        static_cast<int>(rng.UniformInt(options.min_year, options.max_year));
    s.genre = names.Genre();
    s.popularity = song_pop[i];
  }
  return universe;
}

std::string EntityUniverse::PersonNodeName(uint32_t id) {
  return "person:" + std::to_string(id);
}
std::string EntityUniverse::MovieNodeName(uint32_t id) {
  return "movie:" + std::to_string(id);
}
std::string EntityUniverse::SongNodeName(uint32_t id) {
  return "song:" + std::to_string(id);
}

graph::KnowledgeGraph EntityUniverse::ToKnowledgeGraph(
    graph::Ontology* ontology) const {
  graph::KnowledgeGraph kg;
  const graph::Provenance prov{"ground_truth", 1.0, 0};
  using graph::NodeKind;

  graph::TypeId person_type = 0, movie_type = 0, song_type = 0;
  if (ontology != nullptr) {
    auto& tax = ontology->taxonomy();
    person_type = tax.AddType("Person", tax.root());
    movie_type = tax.AddType("Movie", tax.root());
    song_type = tax.AddType("Song", tax.root());
    ontology->DeclareRelation({"name", person_type, graph::RangeKind::kText,
                               0, true});
    ontology->DeclareRelation({"title", movie_type, graph::RangeKind::kText,
                               0, true});
    ontology->DeclareRelation({"directed_by", movie_type,
                               graph::RangeKind::kEntity, person_type,
                               true});
    ontology->DeclareRelation({"acted_in", person_type,
                               graph::RangeKind::kEntity, movie_type,
                               false});
    ontology->DeclareRelation({"performed_by", song_type,
                               graph::RangeKind::kEntity, person_type,
                               true});
  }

  for (const PersonEntity& p : people_) {
    const auto node = kg.AddNode(PersonNodeName(p.id), NodeKind::kEntity);
    kg.AddTriple(PersonNodeName(p.id), "name", p.name, NodeKind::kEntity,
                 NodeKind::kText, prov);
    kg.AddTriple(PersonNodeName(p.id), "birth_year",
                 std::to_string(p.birth_year), NodeKind::kEntity,
                 NodeKind::kText, prov);
    kg.AddTriple(PersonNodeName(p.id), "nationality", p.nationality,
                 NodeKind::kEntity, NodeKind::kText, prov);
    if (ontology != nullptr) {
      ontology->SetInstanceType(node,
                                *ontology->taxonomy().Find("Person"));
    }
  }
  for (const MovieEntity& m : movies_) {
    const auto node = kg.AddNode(MovieNodeName(m.id), NodeKind::kEntity);
    kg.AddTriple(MovieNodeName(m.id), "title", m.title, NodeKind::kEntity,
                 NodeKind::kText, prov);
    kg.AddTriple(MovieNodeName(m.id), "release_year",
                 std::to_string(m.release_year), NodeKind::kEntity,
                 NodeKind::kText, prov);
    kg.AddTriple(MovieNodeName(m.id), "genre", m.genre, NodeKind::kEntity,
                 NodeKind::kText, prov);
    kg.AddTriple(MovieNodeName(m.id), "directed_by",
                 PersonNodeName(m.director), NodeKind::kEntity,
                 NodeKind::kEntity, prov);
    for (uint32_t actor : m.actors) {
      kg.AddTriple(PersonNodeName(actor), "acted_in", MovieNodeName(m.id),
                   NodeKind::kEntity, NodeKind::kEntity, prov);
    }
    if (ontology != nullptr) {
      ontology->SetInstanceType(node, *ontology->taxonomy().Find("Movie"));
    }
  }
  for (const SongEntity& s : songs_) {
    const auto node = kg.AddNode(SongNodeName(s.id), NodeKind::kEntity);
    kg.AddTriple(SongNodeName(s.id), "title", s.title, NodeKind::kEntity,
                 NodeKind::kText, prov);
    kg.AddTriple(SongNodeName(s.id), "performed_by",
                 PersonNodeName(s.artist), NodeKind::kEntity,
                 NodeKind::kEntity, prov);
    kg.AddTriple(SongNodeName(s.id), "song_year", std::to_string(s.year),
                 NodeKind::kEntity, NodeKind::kText, prov);
    kg.AddTriple(SongNodeName(s.id), "song_genre", s.genre,
                 NodeKind::kEntity, NodeKind::kText, prov);
    if (ontology != nullptr) {
      ontology->SetInstanceType(node, *ontology->taxonomy().Find("Song"));
    }
  }
  return kg;
}

}  // namespace kg::synth
