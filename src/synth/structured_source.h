#ifndef KGRAPH_SYNTH_STRUCTURED_SOURCE_H_
#define KGRAPH_SYNTH_STRUCTURED_SOURCE_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "synth/entity_universe.h"

namespace kg::synth {

/// Which slice of the universe a source covers.
enum class SourceDomain { kPeople, kMovies, kMusic };

/// One row of a structured source: a source-local id plus attribute
/// fields. `true_entity` is the hidden universe id — generators carry it
/// so experiments can score linkage/fusion, but pipeline code must not
/// read it.
struct SourceRecord {
  std::string local_id;
  std::map<std::string, std::string> fields;
  uint32_t true_entity = 0;
};

/// An emitted source: a named table with a column schema (its dialect's
/// attribute names) and noisy records.
struct SourceTable {
  std::string source_name;
  SourceDomain domain = SourceDomain::kMovies;
  int schema_dialect = 0;
  std::vector<std::string> columns;
  std::vector<SourceRecord> records;
};

/// Noise/coverage profile of a source. Defaults approximate an
/// authoritative source (IMDb-like); crank the noise knobs to simulate
/// low-quality web databases.
struct SourceOptions {
  std::string name = "source";
  SourceDomain domain = SourceDomain::kMovies;
  /// Fraction of universe entities present.
  double coverage = 0.6;
  /// Popularity bias of coverage: 0 = uniform, 1 = strongly head-biased.
  double popularity_bias = 0.7;
  /// P(a non-name field holds the true value). Errors are realistic:
  /// off-by-k years, swapped genres, wrong-person references.
  double value_accuracy = 0.95;
  /// P(a field is missing).
  double missing_rate = 0.08;
  /// Strength of name/title surface variation (typos, abbreviations…).
  double name_noise = 0.25;
  /// Attribute naming dialect (0..2); different dialects force schema
  /// alignment work (§2.2 "schema heterogeneity").
  int schema_dialect = 0;
  /// Fraction of records whose year-like fields are stale (off by 1-3).
  double staleness = 0.0;
  /// Duplicate rate: P(an included entity appears twice with different
  /// local ids and independently drawn noise).
  double duplicate_rate = 0.0;
};

/// The attribute names dialect `dialect` uses for `domain`, in canonical
/// attribute order. Canonical attributes are:
///   people: name, birth_year, nationality
///   movies: title, release_year, genre, director
///   music:  title, artist, year, genre
std::vector<std::string> DialectColumns(SourceDomain domain, int dialect);

/// Canonical attribute names for `domain` (dialect-independent).
std::vector<std::string> CanonicalColumns(SourceDomain domain);

/// Emits a noisy view of `universe` per `options`. Deterministic given
/// `rng` state.
SourceTable EmitSource(const EntityUniverse& universe,
                       const SourceOptions& options, Rng& rng);

}  // namespace kg::synth

#endif  // KGRAPH_SYNTH_STRUCTURED_SOURCE_H_
