#include "synth/qa_generator.h"

#include <algorithm>
#include <map>
#include <cmath>

#include "common/logging.h"
#include "synth/names.h"

namespace kg::synth {

const char* PopularityBucketName(PopularityBucket bucket) {
  switch (bucket) {
    case PopularityBucket::kHead:
      return "head";
    case PopularityBucket::kTorso:
      return "torso";
    case PopularityBucket::kTail:
      return "tail";
  }
  return "?";
}

namespace {

PopularityBucket BucketOfRank(size_t rank, size_t n) {
  const size_t tercile = std::max<size_t>(1, n / 3);
  if (rank < tercile) return PopularityBucket::kHead;
  if (rank < 2 * tercile) return PopularityBucket::kTorso;
  return PopularityBucket::kTail;
}

struct Fact {
  std::string subject;
  std::string predicate;
  std::string object;
  double popularity;
  bool recent;
  uint32_t entity_id;
};

// Every atomic fact of the universe, with popularity and recency. Shared
// by QA sampling and corpus emission so the two stay consistent.
std::vector<Fact> AllFacts(const EntityUniverse& universe) {
  std::vector<Fact> facts;
  const int cutoff = universe.options().recent_year_cutoff;
  for (const MovieEntity& m : universe.movies()) {
    const bool recent = m.release_year >= cutoff;
    const std::string& director = universe.people()[m.director].name;
    facts.push_back({m.title, "directed_by", director, m.popularity,
                     recent, m.id});
    facts.push_back({m.title, "release_year",
                     std::to_string(m.release_year), m.popularity, recent,
                     m.id});
    facts.push_back({m.title, "genre", m.genre, m.popularity, recent,
                     m.id});
  }
  for (const PersonEntity& p : universe.people()) {
    facts.push_back({p.name, "birth_year", std::to_string(p.birth_year),
                     p.popularity, false, p.id});
    facts.push_back({p.name, "nationality", p.nationality, p.popularity,
                     false, p.id});
  }
  return facts;
}

}  // namespace

std::vector<QaItem> GenerateQaWorkload(const EntityUniverse& universe,
                                       const QaOptions& options, Rng& rng) {
  // Group candidate facts by bucket (movie facts bucketed by movie rank,
  // person facts by person rank; entity id == popularity rank).
  // Only well-posed questions are asked: subjects whose surface name is
  // unique in its domain (the §4 study queried resolvable DBpedia
  // entities; "which John Smith" is a disambiguation problem, not a
  // knowledgeability probe).
  std::map<std::string, int> movie_names, person_names;
  for (const MovieEntity& m : universe.movies()) ++movie_names[m.title];
  for (const PersonEntity& p : universe.people()) ++person_names[p.name];
  std::vector<Fact> facts;
  for (Fact& f : AllFacts(universe)) {
    const bool is_person = f.predicate == "birth_year" ||
                           f.predicate == "nationality";
    const auto& names = is_person ? person_names : movie_names;
    if (names.at(f.subject) == 1) facts.push_back(std::move(f));
  }
  std::vector<std::vector<size_t>> by_bucket(3);
  const size_t num_movies = universe.movies().size();
  const size_t num_people = universe.people().size();
  for (size_t i = 0; i < facts.size(); ++i) {
    const bool is_movie = facts[i].predicate == "directed_by" ||
                          facts[i].predicate == "release_year" ||
                          facts[i].predicate == "genre";
    const PopularityBucket b = BucketOfRank(
        facts[i].entity_id, is_movie ? num_movies : num_people);
    by_bucket[static_cast<size_t>(b)].push_back(i);
  }

  std::vector<QaItem> items;
  const size_t per_bucket = options.num_questions / 3;
  for (size_t b = 0; b < 3; ++b) {
    KG_CHECK(!by_bucket[b].empty());
    for (size_t q = 0; q < per_bucket; ++q) {
      const Fact& f = facts[rng.Choice(by_bucket[b])];
      QaItem item;
      item.subject_name = f.subject;
      item.predicate = f.predicate;
      item.gold_object = f.object;
      item.bucket = static_cast<PopularityBucket>(b);
      item.recent = f.recent;
      item.entity_id = f.entity_id;
      items.push_back(std::move(item));
    }
  }
  return items;
}

std::vector<FactMention> GenerateFactCorpus(const EntityUniverse& universe,
                                            const CorpusOptions& options,
                                            Rng& rng) {
  NameFactory names(rng.Fork());
  std::vector<FactMention> corpus;
  for (const Fact& f : AllFacts(universe)) {
    if (options.exclude_recent && f.recent) continue;
    // Entity ids are popularity ranks by construction.
    const double expected =
        options.head_mentions *
        std::pow(static_cast<double>(f.entity_id + 1),
                 -options.mention_exponent);
    // Stochastic rounding keeps tail facts at 0-or-1 mentions.
    size_t count = static_cast<size_t>(expected);
    if (rng.Bernoulli(expected - static_cast<double>(count))) ++count;
    if (count == 0) continue;

    size_t corrupted = 0;
    for (size_t m = 0; m < count; ++m) {
      if (rng.Bernoulli(options.mention_noise)) ++corrupted;
    }
    if (count > corrupted) {
      corpus.push_back(
          {f.subject, f.predicate, f.object, count - corrupted, f.recent});
    }
    if (corrupted > 0) {
      // A plausible wrong object of the same type.
      std::string wrong;
      if (f.predicate == "directed_by") {
        wrong = names.PersonName();
      } else if (f.predicate == "release_year" ||
                 f.predicate == "birth_year") {
        wrong = std::to_string(std::stoi(f.object) +
                               (rng.Bernoulli(0.5) ? 1 : -1) *
                                   static_cast<int>(rng.UniformInt(1, 5)));
      } else if (f.predicate == "nationality") {
        wrong = names.Nationality();
      } else {
        wrong = names.Genre();
      }
      corpus.push_back({f.subject, f.predicate, wrong, corrupted, f.recent});
    }
  }
  return corpus;
}

}  // namespace kg::synth
