#include "synth/scale_world.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace kg::synth {

namespace {

/// splitmix64 finalizer: the per-entity hash behind every closed-form
/// choice in the world. Unrelated (seed, s, j) triples land on unrelated
/// outputs, so the generated graph has no accidental structure.
uint64_t Mix(uint64_t seed, uint64_t s, uint64_t j) {
  uint64_t x = seed ^ (s * 0x9E3779B97F4A7C15ULL) ^
               (j * 0xBF58476D1CE4E5B9ULL) + 0x94D049BB133111EBULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

std::string PaddedName(char prefix, uint64_t i, int width) {
  std::string digits = std::to_string(i);
  KG_CHECK(digits.size() <= static_cast<size_t>(width));
  std::string out(1, prefix);
  out.append(static_cast<size_t>(width) - digits.size(), '0');
  out += digits;
  return out;
}

/// Predicate dense ids are assigned by sorted name; these literals are
/// already in sorted order, so the enum index *is* the id.
constexpr std::array<const char*, 3> kPredicates = {"has_brand",
                                                    "related_to", "type"};
constexpr uint32_t kPredHasBrand = 0;
constexpr uint32_t kPredRelatedTo = 1;
constexpr uint32_t kPredType = 2;
static_assert(std::string_view(kPredicates[0]) < kPredicates[1] &&
              std::string_view(kPredicates[1]) < kPredicates[2]);

/// The related-to objects of `s`, sorted and deduplicated — the same set
/// whether it is streamed into the builder or asserted into a
/// KnowledgeGraph (which deduplicates on AddTriple).
void RelatedObjects(const ScaleWorldSpec& spec, uint64_t s,
                    std::vector<uint32_t>* out) {
  out->clear();
  for (uint32_t j = 0; j < spec.related_per_entity; ++j) {
    out->push_back(
        static_cast<uint32_t>(Mix(spec.seed, s, j + 1) % spec.num_entities));
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

uint32_t BrandOf(const ScaleWorldSpec& spec, uint64_t s) {
  return static_cast<uint32_t>(Mix(spec.seed, s, 0) %
                               spec.EffectiveBrands());
}

uint32_t CategoryOf(const ScaleWorldSpec& spec, uint64_t s) {
  return static_cast<uint32_t>(
      Mix(spec.seed, s, spec.related_per_entity + 1) % spec.num_categories);
}

}  // namespace

uint32_t ScaleWorldSpec::EffectiveBrands() const {
  if (num_brands != 0) return num_brands;
  const uint32_t root = static_cast<uint32_t>(
      std::sqrt(static_cast<double>(num_entities)));
  return std::max<uint32_t>(16, root);
}

uint64_t ScaleWorldSpec::TotalTriples() const {
  uint64_t total = 0;
  std::vector<uint32_t> related;
  for (uint64_t s = 0; s < num_entities; ++s) {
    RelatedObjects(*this, s, &related);
    total += 2 + related.size();  // has_brand + type + related edges
  }
  return total;
}

std::string ScaleEntityName(uint64_t i) { return PaddedName('e', i, 9); }
std::string ScaleBrandName(uint32_t i) { return PaddedName('v', i, 8); }
std::string ScaleCategoryName(uint32_t i) { return PaddedName('c', i, 4); }

void ForEachScaleTriple(
    const ScaleWorldSpec& spec,
    const std::function<void(uint32_t s, uint32_t p, uint32_t o)>& sink) {
  KG_CHECK(spec.num_entities <= 999'999'999ULL);
  KG_CHECK(spec.num_entities > 0 && spec.num_categories > 0);
  const uint32_t brand_base = static_cast<uint32_t>(spec.num_entities);
  const uint32_t cat_base = brand_base + spec.EffectiveBrands();
  std::vector<uint32_t> related;
  for (uint64_t s = 0; s < spec.num_entities; ++s) {
    const uint32_t s32 = static_cast<uint32_t>(s);
    sink(s32, kPredHasBrand, brand_base + BrandOf(spec, s));
    RelatedObjects(spec, s, &related);
    for (const uint32_t o : related) sink(s32, kPredRelatedTo, o);
    sink(s32, kPredType, cat_base + CategoryOf(spec, s));
  }
}

serve::KgSnapshot BuildScaleSnapshot(const ScaleWorldSpec& spec) {
  serve::SnapshotBuilder builder;
  for (uint64_t i = 0; i < spec.num_entities; ++i) {
    builder.AddNode(ScaleEntityName(i), graph::NodeKind::kEntity);
  }
  for (uint32_t i = 0; i < spec.EffectiveBrands(); ++i) {
    builder.AddNode(ScaleBrandName(i), graph::NodeKind::kText);
  }
  for (uint32_t i = 0; i < spec.num_categories; ++i) {
    builder.AddNode(ScaleCategoryName(i), graph::NodeKind::kClass);
  }
  for (const char* p : kPredicates) builder.AddPredicate(p);
  auto built = builder.Build(
      [&spec](const serve::SnapshotBuilder::TripleSink& sink) {
        ForEachScaleTriple(spec, sink);
      });
  KG_CHECK_OK(built.status());  // the generator's order is correct by design
  return *std::move(built);
}

graph::KnowledgeGraph BuildScaleKnowledgeGraph(const ScaleWorldSpec& spec) {
  graph::KnowledgeGraph kg;
  const graph::Provenance prov{"scale_world", 1.0, 0};
  const uint32_t brand_base = static_cast<uint32_t>(spec.num_entities);
  const uint32_t cat_base = brand_base + spec.EffectiveBrands();
  ForEachScaleTriple(spec, [&](uint32_t s, uint32_t p, uint32_t o) {
    const std::string subject = ScaleEntityName(s);
    const std::string object =
        o >= cat_base   ? ScaleCategoryName(o - cat_base)
        : o >= brand_base ? ScaleBrandName(o - brand_base)
                          : ScaleEntityName(o);
    const graph::NodeKind object_kind =
        o >= cat_base   ? graph::NodeKind::kClass
        : o >= brand_base ? graph::NodeKind::kText
                          : graph::NodeKind::kEntity;
    kg.AddTriple(subject, kPredicates[p], object, graph::NodeKind::kEntity,
                 object_kind, prov);
  });
  return kg;
}

serve::Query ScaleSampleQuery(const ScaleWorldSpec& spec, uint64_t i) {
  const uint64_t h = Mix(spec.seed ^ 0xA5A5A5A5A5A5A5A5ULL, i, 0);
  const std::string entity = ScaleEntityName(h % spec.num_entities);
  switch (i % 20) {
    case 18:
      return serve::Query::AttributeByType(
          ScaleCategoryName(static_cast<uint32_t>(h % spec.num_categories)),
          "has_brand");
    case 19:
      return serve::Query::TopKRelated(entity, 8);
    default:
      return i % 2 == 0 ? serve::Query::PointLookup(entity, "has_brand")
                        : serve::Query::Neighborhood(entity);
  }
}

}  // namespace kg::synth
