#ifndef KGRAPH_SYNTH_ENTITY_UNIVERSE_H_
#define KGRAPH_SYNTH_ENTITY_UNIVERSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/knowledge_graph.h"
#include "graph/ontology.h"

namespace kg::synth {

/// A latent person. `popularity` in (0, 1], Zipf-shaped: head entities are
/// the ones sources cover and text corpora mention most.
struct PersonEntity {
  uint32_t id = 0;
  std::string name;
  int birth_year = 0;
  std::string nationality;
  double popularity = 0.0;
};

/// A latent movie, with person references for director and cast.
struct MovieEntity {
  uint32_t id = 0;
  std::string title;
  int release_year = 0;
  std::string genre;
  uint32_t director = 0;             ///< PersonEntity id.
  std::vector<uint32_t> actors;      ///< PersonEntity ids.
  double popularity = 0.0;
};

/// A latent song with its performer.
struct SongEntity {
  uint32_t id = 0;
  std::string title;
  uint32_t artist = 0;               ///< PersonEntity id.
  int year = 0;
  std::string genre;
  double popularity = 0.0;
};

/// Universe size and shape knobs.
struct UniverseOptions {
  size_t num_people = 5000;
  size_t num_movies = 2000;
  size_t num_songs = 1500;
  double zipf_exponent = 1.05;      ///< Popularity skew.
  int min_year = 1950;
  int max_year = 2023;
  /// Facts with year >= this are "recent" — the dual-KG experiments treat
  /// them as post-LLM-training-cutoff knowledge.
  int recent_year_cutoff = 2021;
};

/// The synthetic ground truth all entity-based-KG experiments measure
/// against: every structured source, website, and corpus is a noisy view
/// of this universe (substitute for the paper's Freebase/IMDb substrate).
class EntityUniverse {
 public:
  /// Builds a universe deterministically from `rng`.
  static EntityUniverse Generate(const UniverseOptions& options, Rng& rng);

  const UniverseOptions& options() const { return options_; }
  const std::vector<PersonEntity>& people() const { return people_; }
  const std::vector<MovieEntity>& movies() const { return movies_; }
  const std::vector<SongEntity>& songs() const { return songs_; }

  /// Renders the universe as a clean entity-based KG (Figure 1a shape):
  /// typed entity nodes, relation edges, literal attributes. Also fills
  /// `ontology` with the class taxonomy and relation declarations when
  /// non-null.
  graph::KnowledgeGraph ToKnowledgeGraph(
      graph::Ontology* ontology = nullptr) const;

  /// Canonical node name for entity `id` of `domain` ("person:123").
  /// These names key ground-truth joins across generators.
  static std::string PersonNodeName(uint32_t id);
  static std::string MovieNodeName(uint32_t id);
  static std::string SongNodeName(uint32_t id);

 private:
  UniverseOptions options_;
  std::vector<PersonEntity> people_;
  std::vector<MovieEntity> movies_;
  std::vector<SongEntity> songs_;
};

}  // namespace kg::synth

#endif  // KGRAPH_SYNTH_ENTITY_UNIVERSE_H_
