#include "synth/text_corpus.h"

#include "common/logging.h"
#include "synth/names.h"

namespace kg::synth {

namespace {

// Surface templates: {prefix, infix, suffix} rendering
// prefix + subject + infix + object + suffix. Multiple templates per
// relation force pattern learners to generalize; some filler templates
// reuse relation-ish wording with no factual content (drift bait).
struct Template {
  const char* prefix;
  const char* infix;
  const char* suffix;
};

constexpr Template kDirectedByTemplates[] = {
    {"", " was directed by ", " ."},
    {"", " is a film by ", " ."},
    {"the movie ", " , directed by ", " , drew large crowds ."},
    {"", " marks another collaboration with director ", " ."},
};

constexpr Template kGenreTemplates[] = {
    {"", " is a ", " film ."},
    {"critics called ", " a defining ", " movie ."},
    {"", " remains a landmark of the ", " genre ."},
};

// Filler: mentions a movie and a person WITHOUT asserting direction —
// the sentences that poison naive co-occurrence patterns.
constexpr Template kFillerPairTemplates[] = {
    {"", " premiered at a festival attended by ", " ."},
    {"", " was famously turned down by ", " ."},
    {"", " inspired a parody starring ", " ."},
};

constexpr const char* kPureFiller[] = {
    "the festival opened with a retrospective .",
    "ticket sales rose sharply last winter .",
    "the studio announced a new slate of projects .",
    "audiences queued for hours in the rain .",
};

}  // namespace

std::vector<Sentence> GenerateTextCorpus(const EntityUniverse& universe,
                                         const TextCorpusOptions& options,
                                         Rng& rng) {
  KG_CHECK(!universe.movies().empty());
  NameFactory names(rng.Fork());
  // Head-biased movie sampling weights.
  std::vector<double> weights(universe.movies().size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1),
                                options.popularity_bias);
  }

  std::vector<Sentence> corpus;
  corpus.reserve(options.num_sentences);
  for (size_t s = 0; s < options.num_sentences; ++s) {
    Sentence sentence;
    const MovieEntity& movie =
        universe.movies()[rng.Weighted(weights)];
    if (rng.Bernoulli(options.filler_rate)) {
      // Filler: half pure narrative, half entity-pair bait.
      if (rng.Bernoulli(0.5)) {
        sentence.text = kPureFiller[rng.UniformIndex(std::size(kPureFiller))];
      } else {
        const Template& t = kFillerPairTemplates[rng.UniformIndex(
            std::size(kFillerPairTemplates))];
        const std::string person =
            universe.people()[rng.UniformIndex(universe.people().size())]
                .name;
        sentence.text = std::string(t.prefix) + movie.title + t.infix +
                        person + t.suffix;
      }
      corpus.push_back(std::move(sentence));
      continue;
    }
    const bool directed = rng.Bernoulli(0.5);
    sentence.subject = movie.title;
    sentence.corrupted = rng.Bernoulli(options.corruption_rate);
    if (directed) {
      sentence.predicate = "directed_by";
      sentence.object = sentence.corrupted
                            ? names.PersonName()
                            : universe.people()[movie.director].name;
      // Skewed template usage: common phrasings dominate, rare ones only
      // become learnable after bootstrapping grows the seed set.
      const std::vector<double> template_weights = {0.55, 0.3, 0.1, 0.05};
      const Template& t =
          kDirectedByTemplates[rng.Weighted(template_weights)];
      sentence.text = std::string(t.prefix) + movie.title + t.infix +
                      sentence.object + t.suffix;
    } else {
      sentence.predicate = "genre";
      sentence.object =
          sentence.corrupted ? names.Genre() : movie.genre;
      const Template& t =
          kGenreTemplates[rng.UniformIndex(std::size(kGenreTemplates))];
      sentence.text = std::string(t.prefix) + movie.title + t.infix +
                      sentence.object + t.suffix;
    }
    corpus.push_back(std::move(sentence));
  }
  return corpus;
}

}  // namespace kg::synth
