#ifndef KGRAPH_SYNTH_SCALE_WORLD_H_
#define KGRAPH_SYNTH_SCALE_WORLD_H_

#include <cstdint>
#include <functional>
#include <string>

#include "graph/knowledge_graph.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"

namespace kg::synth {

/// Shape of a synthetic retail-style world sized for the snapshot
/// scale experiments (E25): `num_entities` product entities, each with
/// one brand attribute (a kText value), one category membership (a
/// kClass node), and `related_per_entity` related-product edges.
/// Everything is a closed-form function of (seed, entity index), so a
/// 10M-entity world streams out of O(1) state — no materialized triple
/// list, no RNG history.
struct ScaleWorldSpec {
  uint64_t seed = 42;
  uint64_t num_entities = 10'000;   ///< <= 999'999'999 (9-digit names)
  uint32_t num_categories = 64;
  /// Distinct brand values; 0 picks ~sqrt(num_entities), min 16.
  uint32_t num_brands = 0;
  uint32_t related_per_entity = 3;

  uint32_t EffectiveBrands() const;

  /// Dense-id layout of the compiled snapshot: node names are
  /// zero-padded decimals, so lexicographic order within a kind equals
  /// numeric order and snapshot ids are closed-form:
  ///   entities   (kEntity) -> [0, E)
  ///   brands     (kText)   -> [E, E + B)
  ///   categories (kClass)  -> [E + B, E + B + C)
  uint64_t TotalNodes() const {
    return num_entities + EffectiveBrands() + num_categories;
  }
  uint64_t TotalTriples() const;
};

/// Canonical node names ("e000000042" / "v00000007" / "c0003").
std::string ScaleEntityName(uint64_t i);
std::string ScaleBrandName(uint32_t i);
std::string ScaleCategoryName(uint32_t i);

/// Invokes `sink(s, p, o)` once per triple in exact (s, p, o) order over
/// the dense-id layout above — directly replayable into
/// serve::SnapshotBuilder::Build. Deterministic in `spec` and safe to
/// call any number of times.
void ForEachScaleTriple(
    const ScaleWorldSpec& spec,
    const std::function<void(uint32_t s, uint32_t p, uint32_t o)>& sink);

/// Streams the world straight into a compiled snapshot. Peak transient
/// memory is the builder's 8-bytes-per-posting reorder buffer — no
/// KnowledgeGraph, no triple vector.
serve::KgSnapshot BuildScaleSnapshot(const ScaleWorldSpec& spec);

/// Materializes the same world as a KnowledgeGraph (hash maps, per-name
/// strings). Only sensible at small sizes; exists so tests can check
/// KgSnapshot::Compile(BuildScaleKnowledgeGraph(spec)).Fingerprint() ==
/// BuildScaleSnapshot(spec).Fingerprint() — the streamed and the
/// materialized paths must agree bit-for-bit.
graph::KnowledgeGraph BuildScaleKnowledgeGraph(const ScaleWorldSpec& spec);

/// Deterministic serving workload over the world: query `i` is a mix of
/// the four classes (mostly point lookups and neighborhoods, with
/// periodic attribute-by-type scans and top-k shelves).
serve::Query ScaleSampleQuery(const ScaleWorldSpec& spec, uint64_t i);

}  // namespace kg::synth

#endif  // KGRAPH_SYNTH_SCALE_WORLD_H_
