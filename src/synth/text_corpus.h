#ifndef KGRAPH_SYNTH_TEXT_CORPUS_H_
#define KGRAPH_SYNTH_TEXT_CORPUS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "synth/entity_universe.h"

namespace kg::synth {

/// One generated sentence with its hidden annotation (what fact, if any,
/// it expresses). Pattern-bootstrapping extractors (NELL / Snowball
/// lineage, §2.4) consume the `text`; experiments score against the
/// hidden fields.
struct Sentence {
  std::string text;
  /// The expressed fact; empty predicate = filler sentence.
  std::string subject;
  std::string predicate;
  std::string object;
  /// Whether the expressed object is actually wrong (source noise).
  bool corrupted = false;
};

/// Text-corpus knobs.
struct TextCorpusOptions {
  size_t num_sentences = 20000;
  /// Fraction of sentences that express no fact (narrative filler).
  double filler_rate = 0.35;
  /// P(an expressed fact's object is wrong).
  double corruption_rate = 0.05;
  /// Head bias of which entities get written about.
  double popularity_bias = 0.6;
};

/// Emits natural-language-ish sentences about the universe's movies:
/// several surface templates per relation (directed_by, genre), plus
/// filler that mentions entities without asserting the relation — the
/// hard negatives that cause bootstrapping's semantic drift.
std::vector<Sentence> GenerateTextCorpus(const EntityUniverse& universe,
                                         const TextCorpusOptions& options,
                                         Rng& rng);

}  // namespace kg::synth

#endif  // KGRAPH_SYNTH_TEXT_CORPUS_H_
