#ifndef KGRAPH_SYNTH_QA_GENERATOR_H_
#define KGRAPH_SYNTH_QA_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "synth/entity_universe.h"

namespace kg::synth {

/// Popularity tercile of the queried entity, following the §4 study's
/// head / torso / tail split (top / middle / bottom 33% by popularity).
enum class PopularityBucket { kHead = 0, kTorso = 1, kTail = 2 };

const char* PopularityBucketName(PopularityBucket bucket);

/// A factoid question "what is <predicate> of <subject>?" with its gold
/// answer, the unit of the §4 LLM-knowledgeability experiments.
struct QaItem {
  std::string subject_name;   ///< Surface name the question uses.
  std::string predicate;      ///< Canonical relation ("directed_by"…).
  std::string gold_object;    ///< Canonical answer surface form.
  PopularityBucket bucket = PopularityBucket::kHead;
  bool recent = false;        ///< Fact dated after the LLM training cutoff.
  uint32_t entity_id = 0;     ///< Universe id of the subject.
};

/// QA-workload knobs.
struct QaOptions {
  size_t num_questions = 3000;
};

/// Samples factoid questions about movies and people uniformly across
/// popularity buckets (equal question mass per bucket, so per-bucket
/// accuracies are comparable).
std::vector<QaItem> GenerateQaWorkload(const EntityUniverse& universe,
                                       const QaOptions& options, Rng& rng);

/// One observed mention of a fact in a text corpus; `count` follows the
/// subject's popularity. The LLM simulator "pretrains" on these.
struct FactMention {
  std::string subject;
  std::string predicate;
  std::string object;
  size_t count = 0;
  bool recent = false;
};

/// Corpus-emission knobs. Mention counts follow a power law in the
/// entity's popularity RANK: count(r) = head_mentions * (r+1)^-exponent,
/// so the most popular entities are discussed tens of thousands of times
/// and the tail once or never — the regime behind the §4 findings.
struct CorpusOptions {
  /// Mention count of the rank-0 entity's facts.
  double head_mentions = 20000.0;
  /// Power-law decay of mentions with popularity rank.
  double mention_exponent = 1.15;
  /// P(a mention corrupts the object) — source noise in web text, one
  /// origin of hallucination.
  double mention_noise = 0.02;
  /// Facts dated >= universe.recent_year_cutoff get zero mentions when
  /// true (the training-lag mechanism of §4).
  bool exclude_recent = true;
};

/// Emits the aggregate fact-mention corpus of the universe.
std::vector<FactMention> GenerateFactCorpus(const EntityUniverse& universe,
                                            const CorpusOptions& options,
                                            Rng& rng);

}  // namespace kg::synth

#endif  // KGRAPH_SYNTH_QA_GENERATOR_H_
