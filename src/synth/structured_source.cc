#include "synth/structured_source.h"

#include <algorithm>

#include "common/logging.h"
#include "synth/names.h"

namespace kg::synth {

namespace {

// Dialect tables: row = dialect, column = canonical attribute position.
const std::vector<std::vector<std::string>>& PeopleDialects() {
  static const auto* dialects = new std::vector<std::vector<std::string>>{
      {"name", "birth_year", "nationality", "known_for"},
      {"full_name", "born", "country", "famous_for"},
      {"person", "yob", "citizenship", "credits"},
  };
  return *dialects;
}

const std::vector<std::vector<std::string>>& MovieDialects() {
  static const auto* dialects = new std::vector<std::vector<std::string>>{
      {"title", "release_year", "genre", "director"},
      {"movie_name", "year", "category", "directed_by"},
      {"name", "released", "genre", "filmmaker"},
  };
  return *dialects;
}

const std::vector<std::vector<std::string>>& MusicDialects() {
  static const auto* dialects = new std::vector<std::vector<std::string>>{
      {"title", "artist", "year", "genre"},
      {"track", "performer", "released", "style"},
      {"song_name", "by", "yr", "genre"},
  };
  return *dialects;
}

}  // namespace

std::vector<std::string> CanonicalColumns(SourceDomain domain) {
  switch (domain) {
    case SourceDomain::kPeople:
      return PeopleDialects()[0];
    case SourceDomain::kMovies:
      return MovieDialects()[0];
    case SourceDomain::kMusic:
      return MusicDialects()[0];
  }
  return {};
}

std::vector<std::string> DialectColumns(SourceDomain domain, int dialect) {
  const auto& table = domain == SourceDomain::kPeople ? PeopleDialects()
                      : domain == SourceDomain::kMovies
                          ? MovieDialects()
                          : MusicDialects();
  KG_CHECK(dialect >= 0 && dialect < static_cast<int>(table.size()))
      << "unknown dialect " << dialect;
  return table[dialect];
}

namespace {

// Corrupts a year string by +-1..3.
std::string PerturbYear(int year, Rng& rng) {
  int delta = static_cast<int>(rng.UniformInt(1, 3));
  if (rng.Bernoulli(0.5)) delta = -delta;
  return std::to_string(year + delta);
}

struct FieldSpec {
  std::string true_value;
  bool is_year = false;
  bool is_name = false;  // name-like: gets surface variants, never "wrong".
};

// Emits one record from canonical field specs, applying the noise model.
SourceRecord MakeRecord(const std::vector<std::string>& columns,
                        const std::vector<FieldSpec>& fields,
                        uint32_t true_entity, size_t local_seq,
                        const SourceOptions& options, Rng& rng,
                        NameFactory& names) {
  SourceRecord rec;
  rec.true_entity = true_entity;
  rec.local_id = options.name + "/" + std::to_string(local_seq);
  KG_CHECK(columns.size() == fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    const FieldSpec& spec = fields[i];
    if (spec.true_value.empty()) continue;  // Nothing to assert.
    if (rng.Bernoulli(options.missing_rate)) continue;
    std::string value = spec.true_value;
    if (spec.is_name) {
      value = NameVariant(value, options.name_noise, rng);
    } else if (!rng.Bernoulli(options.value_accuracy)) {
      // Wrong value, type-consistent.
      if (spec.is_year) {
        value = PerturbYear(std::stoi(spec.true_value), rng);
      } else {
        value = names.Genre();
        if (value == spec.true_value) value = names.Nationality();
      }
    } else if (spec.is_year && rng.Bernoulli(options.staleness)) {
      value = PerturbYear(std::stoi(spec.true_value), rng);
    }
    rec.fields[columns[i]] = value;
  }
  return rec;
}

}  // namespace

SourceTable EmitSource(const EntityUniverse& universe,
                       const SourceOptions& options, Rng& rng) {
  SourceTable table;
  table.source_name = options.name;
  table.domain = options.domain;
  table.schema_dialect = options.schema_dialect;
  table.columns = DialectColumns(options.domain, options.schema_dialect);
  NameFactory names(rng.Fork());

  // Inclusion: popularity-biased coverage. An entity of popularity rank r
  // (pop in (0,1]) is included with probability
  //   coverage * ((1-bias) + bias * pop^0.25 / E[pop^0.25])  (clamped),
  // i.e. bias interpolates between uniform and head-skewed coverage.
  auto include = [&](double pop, double mean_pow) {
    const double boosted = std::pow(pop, 0.25) / mean_pow;
    const double p = options.coverage * ((1.0 - options.popularity_bias) +
                                         options.popularity_bias * boosted);
    return rng.Bernoulli(std::clamp(p, 0.0, 1.0));
  };
  auto mean_pow = [](auto const& entities) {
    double sum = 0.0;
    for (const auto& e : entities) sum += std::pow(e.popularity, 0.25);
    return entities.empty() ? 1.0 : sum / entities.size();
  };

  size_t seq = 0;
  auto emit = [&](const std::vector<std::string>& columns,
                  const std::vector<FieldSpec>& fields, uint32_t id) {
    table.records.push_back(
        MakeRecord(columns, fields, id, seq++, options, rng, names));
    if (rng.Bernoulli(options.duplicate_rate)) {
      table.records.push_back(
          MakeRecord(columns, fields, id, seq++, options, rng, names));
    }
  };

  switch (options.domain) {
    case SourceDomain::kPeople: {
      // Filmography lookup: the movie a person is best known for — the
      // contextual discriminator that separates namesakes (IMDb-style).
      std::vector<std::string> known_for(universe.people().size());
      for (const MovieEntity& m : universe.movies()) {
        auto credit = [&](uint32_t person) {
          if (known_for[person].empty()) known_for[person] = m.title;
        };
        credit(m.director);
        for (uint32_t actor : m.actors) credit(actor);
      }
      const double mp = mean_pow(universe.people());
      for (const PersonEntity& p : universe.people()) {
        if (!include(p.popularity, mp)) continue;
        emit(table.columns,
             {{p.name, false, true},
              {std::to_string(p.birth_year), true, false},
              {p.nationality, false, false},
              {known_for[p.id], false, true}},
             p.id);
      }
      break;
    }
    case SourceDomain::kMovies: {
      const double mp = mean_pow(universe.movies());
      for (const MovieEntity& m : universe.movies()) {
        if (!include(m.popularity, mp)) continue;
        const std::string director_name =
            universe.people()[m.director].name;
        emit(table.columns,
             {{m.title, false, true},
              {std::to_string(m.release_year), true, false},
              {m.genre, false, false},
              {director_name, false, true}},
             m.id);
      }
      break;
    }
    case SourceDomain::kMusic: {
      const double mp = mean_pow(universe.songs());
      for (const SongEntity& s : universe.songs()) {
        if (!include(s.popularity, mp)) continue;
        const std::string artist_name = universe.people()[s.artist].name;
        emit(table.columns,
             {{s.title, false, true},
              {artist_name, false, true},
              {std::to_string(s.year), true, false},
              {s.genre, false, false}},
             s.id);
      }
      break;
    }
  }
  return table;
}

}  // namespace kg::synth
