#ifndef KGRAPH_SYNTH_CATALOG_GENERATOR_H_
#define KGRAPH_SYNTH_CATALOG_GENERATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/taxonomy.h"
#include "text/bio.h"

namespace kg::synth {

/// Shape of the synthetic product world (substitute for the paper's
/// Amazon-catalog substrate, §3).
struct CatalogOptions {
  /// Leaf product types; TXtract-scale benches raise this to hundreds.
  size_t num_types = 48;
  /// Children per internal taxonomy node.
  size_t taxonomy_branching = 4;
  /// Global attribute pool size ("flavor", "scent", "color"…).
  size_t num_attributes = 12;
  /// Attributes in one cluster share vocabulary (flavor/scent); this is
  /// the relatedness AdaTag's MoE exploits.
  size_t attribute_cluster_size = 3;
  /// Applicable attributes per leaf type.
  size_t attrs_per_type = 4;
  /// Distinct values in an attribute's global vocabulary.
  size_t vocab_per_attr = 14;
  /// Values a single type actually uses per attribute.
  size_t values_per_type_attr = 6;
  /// Fraction of a type's value vocabulary inherited from its parent's
  /// pool (sibling types share more; distant types less). Type-aware
  /// extraction (TXtract) wins exactly when this structure exists.
  double sibling_vocab_share = 0.7;
  /// Fraction of vocabulary words that are ambiguous across attributes
  /// ("dark" = flavor for chocolate, color for apparel): resolving them
  /// needs type context.
  double ambiguous_word_rate = 0.25;
  /// P(a leaf type's name reuses an attribute-value word). Those tokens
  /// appear in every title of that type as NON-values while being values
  /// elsewhere — the cross-type ambiguity that only type-aware models
  /// (TXtract) resolve.
  double cross_type_ambiguity = 0.3;
  size_t num_products = 2000;
  /// P(structured catalog field missing) — why distant supervision is
  /// noisy (§3.2).
  double catalog_missing_rate = 0.35;
  /// P(structured catalog field wrong).
  double catalog_error_rate = 0.08;
  /// P(an applicable attribute's value is mentioned in the title).
  double title_mention_rate = 0.8;
  /// P(mentioned in the description).
  double desc_mention_rate = 0.5;
  /// P(a value is observable from the product image) — the PAM channel;
  /// partially complementary to text by construction.
  double image_visible_rate = 0.45;
  /// P(the image signal is wrong when present).
  double image_noise = 0.08;
  /// Number of locales products are written in (§3.3: "hundreds of
  /// languages and locales"). Locale 0 is the base language; others
  /// apply a deterministic surface transform to every content word, so
  /// vocabulary does not transfer across locales without locale-aware
  /// modeling.
  size_t num_locales = 1;
};

/// One product with latent truth and all rendered surfaces.
struct Product {
  uint32_t id = 0;
  graph::TypeId type = 0;            ///< Leaf type in the taxonomy.
  size_t locale = 0;                 ///< Which locale the surfaces use.
  std::string brand;
  /// Latent truth: applicable attribute -> value.
  std::map<std::string, std::string> true_values;
  /// Rendered title and its tokens; long, verbose, "concatenation of
  /// product type and attributes" per §3.
  std::string title;
  std::vector<std::string> title_tokens;
  /// Gold token spans of each attribute value inside the title (only for
  /// values actually mentioned there).
  std::map<std::string, text::Span> title_spans;
  std::string description;
  /// The noisy structured Catalog entry (distant-supervision source).
  std::map<std::string, std::string> catalog_values;
  /// Values observable from the image channel (with noise).
  std::map<std::string, std::string> image_values;
};

/// The generated product world: taxonomy, attribute metadata, products.
class ProductCatalog {
 public:
  static ProductCatalog Generate(const CatalogOptions& options, Rng& rng);

  const CatalogOptions& options() const { return options_; }
  const graph::Taxonomy& taxonomy() const { return taxonomy_; }
  const std::vector<Product>& products() const { return products_; }
  /// Global attribute names, index = attribute id.
  const std::vector<std::string>& attributes() const { return attributes_; }
  /// Cluster id per attribute (vocabulary-sharing groups).
  const std::vector<int>& attribute_clusters() const { return clusters_; }
  /// Attributes applicable to leaf type `t`.
  const std::vector<std::string>& AttributesForType(graph::TypeId t) const;
  /// Leaf types, in generation order.
  const std::vector<graph::TypeId>& leaf_types() const { return leaves_; }
  /// Alias (synonym) names of a type, possibly empty — behavior-log
  /// queries sometimes use these; taxonomy mining should recover them.
  const std::vector<std::string>& TypeAliases(graph::TypeId t) const;

 private:
  CatalogOptions options_;
  graph::Taxonomy taxonomy_{"Product"};
  std::vector<std::string> attributes_;
  std::vector<int> clusters_;
  std::vector<graph::TypeId> leaves_;
  std::map<graph::TypeId, std::vector<std::string>> type_attrs_;
  std::map<graph::TypeId, std::map<std::string, std::vector<std::string>>>
      type_attr_vocab_;
  std::map<graph::TypeId, std::vector<std::string>> type_aliases_;
  std::vector<Product> products_;

  friend ProductCatalog GenerateImpl(const CatalogOptions&, Rng&);
};

}  // namespace kg::synth

#endif  // KGRAPH_SYNTH_CATALOG_GENERATOR_H_
