#ifndef KGRAPH_SYNTH_WEBSITE_GENERATOR_H_
#define KGRAPH_SYNTH_WEBSITE_GENERATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "extract/dom.h"
#include "synth/entity_universe.h"
#include "synth/structured_source.h"

namespace kg::synth {

/// One generated detail page: the DOM plus the hidden annotations
/// experiments score against. `displayed_values` is what the page shows
/// (the target for *extraction* accuracy); it can differ from the universe
/// truth when the site itself is wrong (that residual is *source* error,
/// the distinction Knowledge-Based Trust exploits, §2.4).
struct WebPage {
  extract::DomPage dom;
  uint32_t true_entity = 0;
  std::string topic_name;  ///< Entity surface form shown in the header.
  std::map<std::string, std::string> displayed_values;
  std::map<std::string, extract::DomNodeId> value_nodes;
};

/// A semi-structured website: consistently templated pages rendered from
/// a hidden database — the structure wrapper induction and Ceres-style
/// distant supervision reverse-engineer (§2.3).
struct Website {
  std::string name;
  SourceDomain domain = SourceDomain::kMovies;
  /// Canonical attribute -> the label text this site renders ("Director:"
  /// vs "Directed by" — per-site vocabulary).
  std::map<std::string, std::string> attr_labels;
  std::vector<WebPage> pages;
};

/// Knobs for one website.
struct WebsiteOptions {
  std::string site_name = "site";
  SourceDomain domain = SourceDomain::kMovies;
  size_t num_pages = 200;
  /// Head-bias of which entities get pages.
  double popularity_bias = 0.5;
  /// P(an attribute row is absent from a page) — shifts row ordinals and
  /// is the main enemy of fixed-path wrappers.
  double attr_missing_rate = 0.10;
  /// P(a displayed value disagrees with the universe truth).
  double value_noise = 0.02;
  /// Surface noise on name-like values.
  double name_noise = 0.05;
  /// Site-specific attributes absent from the seed ontology ("runtime",
  /// "budget"…). OpenIE yield comes from these.
  size_t num_extra_attrs = 3;
  /// P(each filler row — "See also", ads — appears on a page). Filler is
  /// what drags OpenIE precision down.
  double filler_row_rate = 0.5;
  /// Nested wrapper-div depth around the content (0-2 typical); varies by
  /// site so absolute paths do not transfer across sites.
  size_t chrome_depth = 1;
  /// Which label vocabulary the site uses (0..2).
  int label_dialect = 0;
  /// P(a page renders an attribute with an alternate label) — template
  /// drift within a site; breaks label-anchored wrappers' recall.
  double label_drift = 0.08;
  /// P(a page carries a decoy row reusing a real attribute label with an
  /// off-topic value, e.g. sponsored content) — the accuracy hazard for
  /// label-anchored extraction.
  double decoy_rate = 0.08;
};

/// Generates one website over `universe`.
Website GenerateWebsite(const EntityUniverse& universe,
                        const WebsiteOptions& options, Rng& rng);

/// Generates `count` websites with per-site knob jitter (dialect, chrome,
/// noise), covering all three domains round-robin. The standard corpus for
/// the Figure 3 experiment.
std::vector<Website> GenerateWebCorpus(const EntityUniverse& universe,
                                       size_t count, size_t pages_per_site,
                                       Rng& rng);

}  // namespace kg::synth

#endif  // KGRAPH_SYNTH_WEBSITE_GENERATOR_H_
