#include "synth/names.h"

#include <array>

#include "common/strings.h"

namespace kg::synth {

namespace {

constexpr std::array<const char*, 40> kFirstNames = {
    "Ada",    "Ben",    "Clara",  "Daniel", "Elena",  "Felix",  "Grace",
    "Hugo",   "Ines",   "Jonas",  "Karin",  "Liam",   "Marta",  "Nils",
    "Olga",   "Pablo",  "Quinn",  "Rosa",   "Stefan", "Tessa",  "Umar",
    "Vera",   "Wim",    "Xenia",  "Yusuf",  "Zoe",    "Anton",  "Bella",
    "Carlos", "Dora",   "Emil",   "Frida",  "Gustav", "Hanna",  "Igor",
    "Julia",  "Kamal",  "Lena",   "Marco",  "Nadia"};

constexpr std::array<const char*, 40> kLastNames = {
    "Keller",   "Marsh",    "Novak",   "Ortiz",    "Petrov",  "Quiroga",
    "Rossi",    "Schmidt",  "Tanaka",  "Ueda",     "Vargas",  "Weber",
    "Xiang",    "Yilmaz",   "Zhang",   "Anders",   "Bauer",   "Castro",
    "Dvorak",   "Eriksen",  "Fischer", "Gruber",   "Haas",    "Ito",
    "Jansen",   "Kovacs",   "Larsen",  "Moreau",   "Nilsen",  "Okafor",
    "Price",    "Romero",   "Silva",   "Thorne",   "Ustinov", "Vidal",
    "Watts",    "Yamamoto", "Zeman",   "Brandt"};

constexpr std::array<const char*, 32> kTitleAdjectives = {
    "Silent",  "Crimson", "Hidden",  "Golden", "Broken",  "Distant",
    "Frozen",  "Burning", "Lonely",  "Savage", "Gentle",  "Hollow",
    "Iron",    "Velvet",  "Wild",    "Quiet",  "Shining", "Falling",
    "Rising",  "Lost",    "Last",    "First",  "Dark",    "Bright",
    "Ancient", "Endless", "Scarlet", "Winter", "Summer",  "Midnight",
    "Stolen",  "Secret"};

constexpr std::array<const char*, 32> kTitleNouns = {
    "Harbor",  "Road",    "River",   "Mountain", "Garden", "Mirror",
    "Letter",  "Promise", "Journey", "Empire",   "Echo",   "Shadow",
    "Storm",   "Crown",   "Bridge",  "Forest",   "Island", "Lantern",
    "Voyage",  "Symphony","Horizon", "Memory",   "Station","Harvest",
    "Orchard", "Tides",   "Embers",  "Canyon",   "Meadow", "Tower",
    "Compass", "Anthem"};

constexpr std::array<const char*, 20> kNationalities = {
    "American", "British",  "French",   "German",   "Italian",
    "Spanish",  "Japanese", "Chinese",  "Indian",   "Brazilian",
    "Mexican",  "Canadian", "Russian",  "Korean",   "Dutch",
    "Swedish",  "Polish",   "Turkish",  "Egyptian", "Nigerian"};

constexpr std::array<const char*, 14> kGenres = {
    "drama",   "comedy",  "thriller",  "romance", "action",
    "horror",  "sci-fi",  "fantasy",   "musical", "documentary",
    "western", "mystery", "animation", "crime"};

constexpr std::array<const char*, 16> kCompanySuffixes = {
    "Records",  "Studios", "Pictures", "Films",   "Media",  "Sound",
    "Works",    "Labs",    "Group",    "House",   "Press",  "Arts",
    "Partners", "Bros",    "Entertainment", "Productions"};

constexpr std::array<const char*, 48> kWords = {
    "amber",  "basin",  "cedar",  "delta",  "ember",  "fable",  "glade",
    "haven",  "indigo", "jasper", "kernel", "lumen",  "maple",  "nectar",
    "onyx",   "pearl",  "quartz", "raven",  "sage",   "topaz",  "umber",
    "violet", "willow", "xenon",  "yarrow", "zephyr", "aspen",  "birch",
    "coral",  "dune",   "elm",    "fern",   "grove",  "heath",  "iris",
    "juniper","kelp",   "laurel", "moss",   "nova",   "opal",   "pine",
    "reed",   "slate",  "thyme",  "ultra",  "vine",   "wren"};

constexpr std::array<const char*, 4> kBrandSuffixes = {"a", "o", "ex", "is"};

}  // namespace

std::string NameFactory::PersonName() {
  return std::string(kFirstNames[rng_.UniformIndex(kFirstNames.size())]) +
         " " + kLastNames[rng_.UniformIndex(kLastNames.size())];
}

std::string NameFactory::MovieTitle() {
  const char* adj = kTitleAdjectives[rng_.UniformIndex(kTitleAdjectives.size())];
  const char* noun = kTitleNouns[rng_.UniformIndex(kTitleNouns.size())];
  switch (rng_.UniformInt(0, 3)) {
    case 0:
      return std::string("The ") + adj + " " + noun;
    case 1:
      return std::string(adj) + " " + noun;
    case 2:
      return std::string(noun) + " of the " + adj;
    default:
      return std::string("A ") + adj + " " + noun;
  }
}

std::string NameFactory::SongTitle() {
  const char* adj = kTitleAdjectives[rng_.UniformIndex(kTitleAdjectives.size())];
  const char* noun = kTitleNouns[rng_.UniformIndex(kTitleNouns.size())];
  if (rng_.Bernoulli(0.5)) return std::string(adj) + " " + noun;
  return std::string(noun) + " " + kTitleNouns[rng_.UniformIndex(kTitleNouns.size())];
}

std::string NameFactory::CompanyName() {
  std::string word(kWords[rng_.UniformIndex(kWords.size())]);
  word[0] = static_cast<char>(std::toupper(word[0]));
  return word + " " +
         kCompanySuffixes[rng_.UniformIndex(kCompanySuffixes.size())];
}

std::string NameFactory::BrandName() {
  std::string word(kWords[rng_.UniformIndex(kWords.size())]);
  word[0] = static_cast<char>(std::toupper(word[0]));
  return word + kBrandSuffixes[rng_.UniformIndex(kBrandSuffixes.size())];
}

std::string NameFactory::Word() {
  return kWords[rng_.UniformIndex(kWords.size())];
}

std::string NameFactory::Nationality() {
  return kNationalities[rng_.UniformIndex(kNationalities.size())];
}

std::string NameFactory::Genre() {
  return kGenres[rng_.UniformIndex(kGenres.size())];
}

std::string AddTypo(const std::string& name, Rng& rng) {
  if (name.empty()) return name;
  std::string out = name;
  const size_t pos = rng.UniformIndex(out.size());
  switch (rng.UniformInt(0, 2)) {
    case 0:  // substitution
      out[pos] = static_cast<char>('a' + rng.UniformInt(0, 25));
      break;
    case 1:  // deletion
      out.erase(pos, 1);
      break;
    default:  // adjacent swap
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

std::string NameVariant(const std::string& name, double strength,
                        Rng& rng) {
  if (strength <= 0.0 || !rng.Bernoulli(strength)) return name;
  std::vector<std::string> tokens = SplitWhitespace(name);
  switch (rng.UniformInt(0, 4)) {
    case 0:
      return AddTypo(name, rng);
    case 1: {  // abbreviate a middle/first token: "Marta Keller" -> "M. Keller"
      if (tokens.size() >= 2) {
        tokens[0] = tokens[0].substr(0, 1) + ".";
        return Join(tokens, " ");
      }
      return AddTypo(name, rng);
    }
    case 2: {  // drop a middle token
      if (tokens.size() >= 3) {
        tokens.erase(tokens.begin() + 1);
        return Join(tokens, " ");
      }
      return ToLower(name);
    }
    case 3: {  // reorder: "Marta Keller" -> "Keller, Marta"
      if (tokens.size() == 2) return tokens[1] + ", " + tokens[0];
      return name + " Jr.";
    }
    default:
      return ToLower(name);
  }
}

std::string SyntheticWord(Rng& rng, size_t syllables) {
  static constexpr std::array<const char*, 20> kOnsets = {
      "b", "d", "f", "g", "k", "l", "m", "n", "p", "r",
      "s", "t", "v", "z", "ch", "sh", "br", "tr", "pl", "st"};
  static constexpr std::array<const char*, 6> kVowels = {"a", "e", "i",
                                                         "o", "u", "ai"};
  std::string word;
  for (size_t s = 0; s < syllables; ++s) {
    word += kOnsets[rng.UniformIndex(kOnsets.size())];
    word += kVowels[rng.UniformIndex(kVowels.size())];
  }
  return word;
}

}  // namespace kg::synth
