#ifndef KGRAPH_SYNTH_NAMES_H_
#define KGRAPH_SYNTH_NAMES_H_

#include <string>

#include "common/rng.h"

namespace kg::synth {

/// Deterministic fake-name factory. Names are built from fixed pools so
/// that (a) two draws can collide — the entity-disambiguation case the
/// paper calls out ("different entities may share the same name") — and
/// (b) noise functions can produce realistic variants of a clean name.
class NameFactory {
 public:
  explicit NameFactory(Rng rng) : rng_(rng) {}

  /// "Marta Keller"-style person name.
  std::string PersonName();

  /// "The Silent Harbor"-style movie title.
  std::string MovieTitle();

  /// "Crimson Road"-style song title.
  std::string SongTitle();

  /// "Northwind Records"-style organization name.
  std::string CompanyName();

  /// "Velora"-style brand name for products.
  std::string BrandName();

  /// A lowercase content word (for vocabularies and filler text).
  std::string Word();

  /// Country / nationality value from a small fixed pool.
  std::string Nationality();

  /// Movie / music genre from a small fixed pool.
  std::string Genre();

 private:
  Rng rng_;
};

/// Produces a plausible dirty variant of `name`: with probability scaled
/// by `strength` applies one or more of: typo, middle-token abbreviation
/// or drop, token reorder, case change, extra qualifier. `strength` in
/// [0, 1]; 0 returns the input unchanged.
std::string NameVariant(const std::string& name, double strength, Rng& rng);

/// Injects one character-level typo (substitution, deletion, swap).
std::string AddTypo(const std::string& name, Rng& rng);

/// Pronounceable pseudo-word from random syllables ("tarimo"). Gives the
/// product-world generators an effectively unbounded vocabulary.
std::string SyntheticWord(Rng& rng, size_t syllables = 3);

}  // namespace kg::synth

#endif  // KGRAPH_SYNTH_NAMES_H_
