#include "synth/behavior_generator.h"

#include <map>

#include "common/logging.h"

namespace kg::synth {

BehaviorLog GenerateBehavior(const ProductCatalog& catalog,
                             const BehaviorOptions& options, Rng& rng) {
  BehaviorLog log;
  const auto& products = catalog.products();
  KG_CHECK(!products.empty());
  const auto& taxonomy = catalog.taxonomy();

  // Index products by leaf type for on-intent purchases.
  std::map<graph::TypeId, std::vector<uint32_t>> by_type;
  for (const Product& p : products) by_type[p.type].push_back(p.id);

  log.searches.reserve(options.num_searches);
  for (size_t i = 0; i < options.num_searches; ++i) {
    // Intent: a random leaf type that has products.
    const Product& seed = products[rng.UniformIndex(products.size())];
    const graph::TypeId intent = seed.type;

    SearchEvent event;
    const auto& aliases = catalog.TypeAliases(intent);
    if (!aliases.empty() && rng.Bernoulli(options.alias_query_rate)) {
      event.query = rng.Choice(aliases);
    } else if (rng.Bernoulli(options.hypernym_query_rate) &&
               !taxonomy.Parents(intent).empty()) {
      event.query = taxonomy.Name(taxonomy.Parents(intent)[0]);
    } else {
      event.query = taxonomy.Name(intent);
    }

    if (rng.Bernoulli(options.purchase_noise)) {
      event.purchased_product =
          products[rng.UniformIndex(products.size())].id;
    } else {
      const auto& pool = by_type[intent];
      event.purchased_product = pool[rng.UniformIndex(pool.size())];
    }
    log.searches.push_back(std::move(event));
  }

  auto same_category_pick = [&](const Product& a) -> uint32_t {
    const auto& parents = taxonomy.Parents(a.type);
    if (parents.empty()) return products[rng.UniformIndex(products.size())].id;
    // Pick a sibling leaf, then a product of it.
    const auto& siblings = taxonomy.Children(parents[0]);
    for (int tries = 0; tries < 8; ++tries) {
      const graph::TypeId t = siblings[rng.UniformIndex(siblings.size())];
      auto it = by_type.find(t);
      if (it != by_type.end() && !it->second.empty()) {
        return it->second[rng.UniformIndex(it->second.size())];
      }
    }
    return products[rng.UniformIndex(products.size())].id;
  };

  log.co_views.reserve(options.num_co_views);
  for (size_t i = 0; i < options.num_co_views; ++i) {
    const Product& a = products[rng.UniformIndex(products.size())];
    CoEngagementPair pair;
    pair.a = a.id;
    pair.b = rng.Bernoulli(options.co_view_same_category)
                 ? same_category_pick(a)
                 : products[rng.UniformIndex(products.size())].id;
    log.co_views.push_back(pair);
  }

  // Complement structure: category k pairs with category k+1 (cyclic).
  // Index products by top-level category for complement draws.
  std::map<graph::TypeId, std::vector<uint32_t>> by_category;
  std::vector<graph::TypeId> categories;
  for (const Product& p : products) {
    const auto& parents = taxonomy.Parents(p.type);
    const graph::TypeId cat = parents.empty() ? p.type : parents[0];
    if (by_category.emplace(cat, std::vector<uint32_t>{}).second) {
      categories.push_back(cat);
    }
    by_category[cat].push_back(p.id);
  }
  std::map<graph::TypeId, graph::TypeId> complement_of;
  for (size_t c = 0; c < categories.size(); ++c) {
    complement_of[categories[c]] =
        categories[(c + 1) % categories.size()];
  }

  log.co_purchases.reserve(options.num_co_purchases);
  for (size_t i = 0; i < options.num_co_purchases; ++i) {
    const Product& a = products[rng.UniformIndex(products.size())];
    CoEngagementPair pair;
    pair.a = a.id;
    if (rng.Bernoulli(options.co_purchase_complement_rate)) {
      // Complementary purchase: a product from the paired category.
      const auto& parents = taxonomy.Parents(a.type);
      const graph::TypeId cat = parents.empty() ? a.type : parents[0];
      const auto& pool = by_category[complement_of[cat]];
      pair.b = pool[rng.UniformIndex(pool.size())];
    } else {
      pair.b = products[rng.UniformIndex(products.size())].id;
    }
    log.co_purchases.push_back(pair);
  }
  return log;
}

}  // namespace kg::synth
