#include "synth/catalog_generator.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/strings.h"
#include "synth/names.h"

namespace kg::synth {

namespace {

constexpr const char* kAttributeNames[] = {
    "flavor",   "scent",    "color",  "material", "size",     "pattern",
    "fit",      "texture",  "finish", "strength", "form",     "style",
    "roast",    "grain",    "weave",  "cut",      "coating",  "blend",
    "firmness", "thickness"};

constexpr const char* kFillerWords[] = {"premium", "pack",  "gift",
                                        "new",     "value", "classic",
                                        "set",     "bundle"};

// Deterministic per-locale surface transform: locale 0 is identity,
// others suffix every content word — a stand-in for translation that
// keeps token alignment (and thus gold spans) intact.
std::string Localize(const std::string& word, size_t locale) {
  if (locale == 0) return word;
  static constexpr const char* kSuffix[] = {"", "eta", "ito", "ski",
                                            "ova", "ane", "ulu"};
  return word + kSuffix[locale % std::size(kSuffix)];
}

}  // namespace

const std::vector<std::string>& ProductCatalog::AttributesForType(
    graph::TypeId t) const {
  static const std::vector<std::string>* empty =
      new std::vector<std::string>();
  auto it = type_attrs_.find(t);
  return it == type_attrs_.end() ? *empty : it->second;
}

const std::vector<std::string>& ProductCatalog::TypeAliases(
    graph::TypeId t) const {
  static const std::vector<std::string>* empty =
      new std::vector<std::string>();
  auto it = type_aliases_.find(t);
  return it == type_aliases_.end() ? *empty : it->second;
}

ProductCatalog ProductCatalog::Generate(const CatalogOptions& options,
                                        Rng& rng) {
  ProductCatalog catalog;
  catalog.options_ = options;

  // --- Attributes and vocabularies -------------------------------------
  const size_t num_attrs = std::min<size_t>(
      options.num_attributes, std::size(kAttributeNames));
  catalog.attributes_.assign(kAttributeNames,
                             kAttributeNames + num_attrs);
  catalog.clusters_.resize(num_attrs);
  const size_t cluster_size = std::max<size_t>(1,
                                               options.attribute_cluster_size);
  for (size_t a = 0; a < num_attrs; ++a) {
    catalog.clusters_[a] = static_cast<int>(a / cluster_size);
  }
  const int num_clusters = catalog.clusters_.empty()
                               ? 0
                               : catalog.clusters_.back() + 1;

  // Cluster-shared vocab pools plus attribute-unique words; ambiguous
  // words appear in several clusters' pools.
  std::vector<std::string> ambiguous_pool;
  const size_t num_ambiguous = static_cast<size_t>(
      options.ambiguous_word_rate * options.vocab_per_attr * num_clusters);
  for (size_t i = 0; i < num_ambiguous; ++i) {
    ambiguous_pool.push_back(SyntheticWord(rng, 2));
  }
  std::vector<std::vector<std::string>> cluster_pools(num_clusters);
  for (int c = 0; c < num_clusters; ++c) {
    const size_t pool_size = options.vocab_per_attr * cluster_size;
    for (size_t i = 0; i < pool_size; ++i) {
      if (!ambiguous_pool.empty() &&
          rng.Bernoulli(options.ambiguous_word_rate)) {
        cluster_pools[c].push_back(rng.Choice(ambiguous_pool));
      } else {
        cluster_pools[c].push_back(SyntheticWord(rng, 2));
      }
    }
  }
  // Global vocab per attribute: sampled from its cluster pool + uniques.
  std::vector<std::vector<std::string>> attr_vocab(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    const auto& pool = cluster_pools[catalog.clusters_[a]];
    std::set<std::string> chosen;
    while (chosen.size() < options.vocab_per_attr * 3 / 4) {
      chosen.insert(rng.Choice(pool));
    }
    while (chosen.size() < options.vocab_per_attr) {
      chosen.insert(SyntheticWord(rng, 2));
    }
    attr_vocab[a].assign(chosen.begin(), chosen.end());
  }

  // --- Taxonomy ---------------------------------------------------------
  // Two-level tree: categories under the root, leaf types under
  // categories. Leaf names are "<category-word> <type-word>".
  const size_t num_categories = std::max<size_t>(
      1, (options.num_types + options.taxonomy_branching - 1) /
             options.taxonomy_branching);
  std::vector<graph::TypeId> categories;
  for (size_t c = 0; c < num_categories; ++c) {
    categories.push_back(catalog.taxonomy_.AddType(
        SyntheticWord(rng, 2) + "-category", catalog.taxonomy_.root()));
  }
  // Per-category parent vocab subsets drive sibling sharing.
  std::map<std::pair<graph::TypeId, size_t>, std::vector<std::string>>
      category_vocab;
  for (graph::TypeId cat : categories) {
    for (size_t a = 0; a < num_attrs; ++a) {
      std::vector<std::string> subset;
      const size_t take =
          std::max<size_t>(2, options.values_per_type_attr + 2);
      for (size_t i = 0; i < take; ++i) {
        subset.push_back(rng.Choice(attr_vocab[a]));
      }
      std::sort(subset.begin(), subset.end());
      subset.erase(std::unique(subset.begin(), subset.end()), subset.end());
      category_vocab[{cat, a}] = std::move(subset);
    }
  }

  for (size_t t = 0; t < options.num_types; ++t) {
    const graph::TypeId category = categories[t % categories.size()];
    // Applicable attributes: one per cluster first (spreads clusters
    // across types), then random extras.
    std::set<size_t> attr_ids;
    attr_ids.insert(t % num_attrs);
    while (attr_ids.size() < std::min<size_t>(options.attrs_per_type,
                                              num_attrs)) {
      attr_ids.insert(rng.UniformIndex(num_attrs));
    }

    // Per-attribute value vocabularies for this type. Words already
    // claimed by another attribute of THIS type are excluded: one word
    // never means two different attributes on the same product type.
    std::set<std::string> used_by_type;
    std::map<std::string, std::vector<std::string>> type_vocab;
    for (size_t a : attr_ids) {
      std::set<std::string> values;
      const auto& parent_pool = category_vocab[{category, a}];
      size_t attempts = 0;
      while (values.size() < options.values_per_type_attr &&
             attempts < 200) {
        ++attempts;
        const std::string& candidate =
            rng.Bernoulli(options.sibling_vocab_share) &&
                    !parent_pool.empty()
                ? rng.Choice(parent_pool)
                : rng.Choice(attr_vocab[a]);
        if (used_by_type.count(candidate)) continue;
        values.insert(candidate);
      }
      used_by_type.insert(values.begin(), values.end());
      type_vocab[catalog.attributes_[a]] =
          std::vector<std::string>(values.begin(), values.end());
    }

    // Cross-type ambiguity ("dark chocolate" the type vs "dark" the
    // flavor): some type names embed a word that is a value of one of
    // this type's OWN attributes elsewhere in the catalog — but never a
    // value this type itself uses. In this type's titles the word is
    // always a type token (tag O); in other types' titles it is a value.
    // Only type-aware models can satisfy both.
    std::string second_word = SyntheticWord(rng, 2);
    if (rng.Bernoulli(options.cross_type_ambiguity)) {
      const size_t a = *attr_ids.begin();
      for (int tries = 0; tries < 20; ++tries) {
        const std::string& candidate = rng.Choice(attr_vocab[a]);
        if (!used_by_type.count(candidate)) {
          second_word = candidate;
          break;
        }
      }
    }
    const std::string leaf_name = SyntheticWord(rng, 2) + " " + second_word;
    const graph::TypeId leaf =
        catalog.taxonomy_.AddType(leaf_name, category);
    catalog.leaves_.push_back(leaf);
    if (rng.Bernoulli(0.3)) {
      catalog.type_aliases_[leaf].push_back(SyntheticWord(rng, 2));
    }
    for (size_t a : attr_ids) {
      catalog.type_attrs_[leaf].push_back(catalog.attributes_[a]);
    }
    catalog.type_attr_vocab_[leaf] = std::move(type_vocab);
  }

  // --- Products ----------------------------------------------------------
  NameFactory names(rng.Fork());
  catalog.products_.reserve(options.num_products);
  for (size_t p = 0; p < options.num_products; ++p) {
    Product product;
    product.id = static_cast<uint32_t>(p);
    product.type = catalog.leaves_[rng.UniformIndex(catalog.leaves_.size())];
    product.locale = options.num_locales <= 1
                         ? 0
                         : rng.UniformIndex(options.num_locales);
    product.brand = names.BrandName();

    const auto& attrs = catalog.type_attrs_[product.type];
    for (const std::string& attr : attrs) {
      const auto& vocab = catalog.type_attr_vocab_[product.type][attr];
      // Latent values stay canonical; surfaces are localized below.
      product.true_values[attr] = rng.Choice(vocab);
    }

    // Title: brand + shuffled [value phrases] + type name + filler.
    struct Segment {
      std::vector<std::string> tokens;
      std::string attr;  // empty for non-value segments.
    };
    std::vector<Segment> segments;
    for (const auto& [attr, value] : product.true_values) {
      if (!rng.Bernoulli(options.title_mention_rate)) continue;
      segments.push_back({{Localize(value, product.locale)}, attr});
    }
    {
      Segment type_seg;
      for (const auto& word :
           SplitWhitespace(catalog.taxonomy_.Name(product.type))) {
        type_seg.tokens.push_back(Localize(word, product.locale));
      }
      segments.push_back(std::move(type_seg));
    }
    rng.Shuffle(&segments);

    product.title_tokens.push_back(ToLower(product.brand));
    for (const Segment& seg : segments) {
      const size_t begin = product.title_tokens.size();
      for (const auto& tok : seg.tokens) {
        product.title_tokens.push_back(tok);
      }
      if (!seg.attr.empty()) {
        product.title_spans[seg.attr] =
            text::Span{begin, product.title_tokens.size(), seg.attr};
      }
    }
    const size_t fillers = rng.UniformIndex(3);
    for (size_t f = 0; f < fillers; ++f) {
      product.title_tokens.push_back(Localize(
          kFillerWords[rng.UniformIndex(std::size(kFillerWords))],
          product.locale));
    }
    product.title = Join(product.title_tokens, " ");

    // Description sentences.
    std::vector<std::string> sentences;
    sentences.push_back("This " + catalog.taxonomy_.Name(product.type) +
                        " comes from " + product.brand + ".");
    for (const auto& [attr, value] : product.true_values) {
      if (!rng.Bernoulli(options.desc_mention_rate)) continue;
      sentences.push_back(attr + ": " + value + ".");
    }
    product.description = Join(sentences, " ");

    // Structured catalog entry: missing / wrong / true.
    for (const auto& [attr, value] : product.true_values) {
      if (rng.Bernoulli(options.catalog_missing_rate)) continue;
      if (rng.Bernoulli(options.catalog_error_rate)) {
        product.catalog_values[attr] =
            rng.Choice(catalog.type_attr_vocab_[product.type][attr]);
      } else {
        product.catalog_values[attr] = value;
      }
    }

    // Image channel.
    for (const auto& [attr, value] : product.true_values) {
      if (!rng.Bernoulli(options.image_visible_rate)) continue;
      if (rng.Bernoulli(options.image_noise)) {
        product.image_values[attr] =
            rng.Choice(catalog.type_attr_vocab_[product.type][attr]);
      } else {
        product.image_values[attr] = value;
      }
    }

    catalog.products_.push_back(std::move(product));
  }
  return catalog;
}

}  // namespace kg::synth
