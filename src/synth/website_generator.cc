#include "synth/website_generator.h"

#include <algorithm>

#include "common/logging.h"
#include "synth/names.h"

namespace kg::synth {

namespace {

// Per-attribute label vocabularies, indexed by dialect.
const std::map<std::string, std::vector<std::string>>& LabelVocab() {
  static const auto* vocab =
      new std::map<std::string, std::vector<std::string>>{
          {"title", {"Title:", "Name", "Movie"}},
          {"release_year", {"Year:", "Released", "Release date"}},
          {"genre", {"Genre:", "Category", "Type"}},
          {"director", {"Director:", "Directed by", "Film by"}},
          {"name", {"Name:", "Full name", "Person"}},
          {"birth_year", {"Born:", "Year of birth", "Birth year"}},
          {"nationality", {"Nationality:", "Country", "Citizenship"}},
          {"artist", {"Artist:", "Performed by", "By"}},
          {"year", {"Year:", "Released", "Date"}},
      };
  return *vocab;
}

const std::vector<std::string>& ExtraAttrPool(SourceDomain domain) {
  static const auto* movies = new std::vector<std::string>{
      "runtime", "budget", "box_office", "language", "studio", "rating"};
  static const auto* people = new std::vector<std::string>{
      "height", "spouse", "awards", "education", "residence", "debut"};
  static const auto* music = new std::vector<std::string>{
      "album", "label", "duration", "writer", "producer", "chart_peak"};
  switch (domain) {
    case SourceDomain::kMovies:
      return *movies;
    case SourceDomain::kPeople:
      return *people;
    case SourceDomain::kMusic:
      return *music;
  }
  return *movies;
}

std::string LabelFor(const std::string& attr, int dialect, Rng& rng) {
  const auto& vocab = LabelVocab();
  auto it = vocab.find(attr);
  if (it != vocab.end()) {
    return it->second[static_cast<size_t>(dialect) % it->second.size()];
  }
  // Extra attributes: derive a label from the attribute name.
  std::string label = attr;
  std::replace(label.begin(), label.end(), '_', ' ');
  label[0] = static_cast<char>(std::toupper(label[0]));
  if (rng.Bernoulli(0.5)) label += ":";
  return label;
}

// Canonical attribute values for one entity (excluding the topic name,
// which renders in the header, not a row).
std::vector<std::pair<std::string, std::string>> EntityAttributes(
    const EntityUniverse& universe, SourceDomain domain, uint32_t id) {
  switch (domain) {
    case SourceDomain::kMovies: {
      const MovieEntity& m = universe.movies()[id];
      return {{"release_year", std::to_string(m.release_year)},
              {"genre", m.genre},
              {"director", universe.people()[m.director].name}};
    }
    case SourceDomain::kPeople: {
      const PersonEntity& p = universe.people()[id];
      return {{"birth_year", std::to_string(p.birth_year)},
              {"nationality", p.nationality}};
    }
    case SourceDomain::kMusic: {
      const SongEntity& s = universe.songs()[id];
      return {{"artist", universe.people()[s.artist].name},
              {"year", std::to_string(s.year)},
              {"genre", s.genre}};
    }
  }
  return {};
}

std::string TopicName(const EntityUniverse& universe, SourceDomain domain,
                      uint32_t id) {
  switch (domain) {
    case SourceDomain::kMovies:
      return universe.movies()[id].title;
    case SourceDomain::kPeople:
      return universe.people()[id].name;
    case SourceDomain::kMusic:
      return universe.songs()[id].title;
  }
  return "";
}

size_t DomainSize(const EntityUniverse& universe, SourceDomain domain) {
  switch (domain) {
    case SourceDomain::kMovies:
      return universe.movies().size();
    case SourceDomain::kPeople:
      return universe.people().size();
    case SourceDomain::kMusic:
      return universe.songs().size();
  }
  return 0;
}

}  // namespace

Website GenerateWebsite(const EntityUniverse& universe,
                        const WebsiteOptions& options, Rng& rng) {
  Website site;
  site.name = options.site_name;
  site.domain = options.domain;
  NameFactory names(rng.Fork());

  // The site's attribute set: canonical attributes plus site-specific
  // extras with generated values.
  std::vector<std::string> canonical = CanonicalColumns(options.domain);
  // Drop the name/title column — it renders in the header.
  canonical.erase(canonical.begin());
  std::vector<std::string> extra_attrs;
  const auto& pool = ExtraAttrPool(options.domain);
  for (size_t i = 0; i < std::min(options.num_extra_attrs, pool.size());
       ++i) {
    extra_attrs.push_back(pool[i]);
  }
  for (const std::string& attr : canonical) {
    site.attr_labels[attr] = LabelFor(attr, options.label_dialect, rng);
  }
  for (const std::string& attr : extra_attrs) {
    site.attr_labels[attr] = LabelFor(attr, options.label_dialect, rng);
  }

  // Pick covered entities: head-biased sample without replacement.
  const size_t domain_size = DomainSize(universe, options.domain);
  const size_t num_pages = std::min(options.num_pages, domain_size);
  std::vector<uint32_t> entity_ids;
  {
    std::vector<uint32_t> all(domain_size);
    for (size_t i = 0; i < domain_size; ++i) {
      all[i] = static_cast<uint32_t>(i);
    }
    // Head bias: weight rank r by (r+1)^-bias.
    std::vector<double> weights(domain_size);
    for (size_t i = 0; i < domain_size; ++i) {
      weights[i] =
          1.0 / std::pow(static_cast<double>(i + 1),
                         options.popularity_bias);
    }
    for (size_t k = 0; k < num_pages; ++k) {
      const size_t pick = rng.Weighted(weights);
      entity_ids.push_back(all[pick]);
      weights[pick] = 0.0;
    }
  }

  for (uint32_t entity_id : entity_ids) {
    WebPage page;
    page.true_entity = entity_id;
    page.topic_name = TopicName(universe, options.domain, entity_id);
    page.dom.url = "http://" + site.name + ".example/" +
                   std::to_string(entity_id);

    extract::DomPage& dom = page.dom;
    const auto html = dom.AddNode(extract::kInvalidDomNode, "html");
    const auto body = dom.AddNode(html, "body");
    // Site chrome: nav bar plus nested wrapper divs. Varies per site so
    // absolute paths never transfer across sites.
    const auto nav = dom.AddNode(body, "div", "nav");
    dom.AddNode(nav, "a", "", site.name + " home");
    extract::DomNodeId content = body;
    for (size_t d = 0; d < options.chrome_depth; ++d) {
      content = dom.AddNode(content, "div", "wrap" + std::to_string(d));
    }
    dom.AddNode(content, "h1", "topic", page.topic_name);

    const auto table = dom.AddNode(content, "table", "infobox");
    auto add_row = [&](const std::string& label, const std::string& value)
        -> extract::DomNodeId {
      const auto tr = dom.AddNode(table, "tr");
      dom.AddNode(tr, "td", "label", label);
      return dom.AddNode(tr, "td", "value", value);
    };

    // Decoy rows may render ABOVE the real rows (promo boxes often do),
    // which is what actually poisons first-match label anchoring.
    auto maybe_add_decoy = [&](double probability) {
      if (site.attr_labels.empty() || !rng.Bernoulli(probability)) return;
      auto it = site.attr_labels.begin();
      std::advance(it, rng.UniformIndex(site.attr_labels.size()));
      add_row(it->second, names.Word() + " promo");
    };
    maybe_add_decoy(options.decoy_rate / 2);

    // Canonical attribute rows.
    for (const auto& [attr, true_value] :
         EntityAttributes(universe, options.domain, entity_id)) {
      if (rng.Bernoulli(options.attr_missing_rate)) continue;
      std::string value = true_value;
      const bool name_like = attr == "director" || attr == "artist";
      if (name_like) {
        value = NameVariant(value, options.name_noise, rng);
      }
      if (rng.Bernoulli(options.value_noise)) {
        value = name_like ? names.PersonName() : names.Word();
      }
      // Template drift: some pages label the row differently.
      std::string label = site.attr_labels[attr];
      if (rng.Bernoulli(options.label_drift)) {
        label = LabelFor(attr, options.label_dialect + 1, rng);
      }
      const auto value_node = add_row(label, value);
      page.displayed_values[attr] = value;
      page.value_nodes[attr] = value_node;
    }

    // Extra (ontology-unknown) attribute rows; values are stable per
    // (site, entity, attr) because they derive from this page's RNG draw.
    for (const std::string& attr : extra_attrs) {
      if (rng.Bernoulli(options.attr_missing_rate)) continue;
      std::string value = names.Word() + " " + names.Word();
      const auto value_node = add_row(site.attr_labels[attr], value);
      page.displayed_values[attr] = value;
      page.value_nodes[attr] = value_node;
    }

    maybe_add_decoy(options.decoy_rate / 2);

    // Filler rows: legitimate-looking label/value pairs that are NOT
    // attributes of the topic entity (recommendations, ads).
    if (rng.Bernoulli(options.filler_row_rate)) {
      add_row("See also", names.MovieTitle());
    }
    if (rng.Bernoulli(options.filler_row_rate)) {
      add_row("Sponsored", names.CompanyName());
    }
    if (rng.Bernoulli(options.filler_row_rate * 0.5)) {
      add_row("Share", "facebook twitter email");
    }

    // A free-text paragraph (text extraction fodder / OpenIE distractor).
    dom.AddNode(content, "p", "blurb",
                page.topic_name + " is a " + names.Genre() +
                    " favorite among fans of " + names.Word() + ".");

    site.pages.push_back(std::move(page));
  }
  return site;
}

std::vector<Website> GenerateWebCorpus(const EntityUniverse& universe,
                                       size_t count, size_t pages_per_site,
                                       Rng& rng) {
  std::vector<Website> corpus;
  const SourceDomain domains[] = {SourceDomain::kMovies,
                                  SourceDomain::kPeople,
                                  SourceDomain::kMusic};
  for (size_t i = 0; i < count; ++i) {
    WebsiteOptions opt;
    opt.domain = domains[i % 3];
    opt.site_name = "site" + std::to_string(i);
    opt.num_pages = pages_per_site;
    opt.label_dialect = static_cast<int>(i / 3) % 3;
    opt.chrome_depth = i % 3;
    opt.attr_missing_rate = 0.05 + 0.1 * rng.UniformDouble();
    opt.filler_row_rate = 0.3 + 0.4 * rng.UniformDouble();
    opt.value_noise = 0.01 + 0.03 * rng.UniformDouble();
    opt.num_extra_attrs = 2 + i % 3;
    corpus.push_back(GenerateWebsite(universe, opt, rng));
  }
  return corpus;
}

}  // namespace kg::synth
