#include "ingest/pipeline.h"

#include <chrono>
#include <utility>

#include "common/logging.h"

namespace kg::ingest {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

}  // namespace

IngestPipeline::IngestPipeline(store::VersionedKgStore& store,
                               const SurfaceLinker& linker,
                               const CrawlPlan& plan, IngestOptions options)
    : store_(store),
      linker_(linker),
      plan_(plan),
      options_(std::move(options)) {
  ctx_.retry = options_.retry;
  ctx_.seed = options_.seed;
  if (options_.faults.active()) {
    injector_ = std::make_unique<FaultInjector>(options_.faults);
    ctx_.faults = injector_.get();
  }
  const size_t cap = std::max<size_t>(1, options_.queue_capacity);
  input_ = std::make_unique<BoundedQueue<WorkItem>>(cap);
  done_ = std::make_unique<BoundedQueue<DoneItem>>(cap);

  if (options_.registry != nullptr) {
    obs::MetricsRegistry& r = *options_.registry;
    metrics_.units = &r.GetCounter("ingest.units");
    metrics_.mutations = &r.GetCounter("ingest.mutations");
    metrics_.degraded = &r.GetCounter("ingest.units_degraded");
    metrics_.sheds = &r.GetCounter("ingest.sheds");
    metrics_.retries = &r.GetCounter("ingest.retries");
    metrics_.records_dropped = &r.GetCounter("ingest.records_dropped");
    metrics_.claims_corrupted = &r.GetCounter("ingest.claims_corrupted");
    metrics_.commit_batches = &r.GetCounter("ingest.commit_batches");
    const auto& buckets = obs::LatencyBucketsUs();
    metrics_.fetch_us = &r.GetHistogram("ingest.stage.fetch_us", buckets);
    metrics_.extract_us =
        &r.GetHistogram("ingest.stage.extract_us", buckets);
    metrics_.link_us = &r.GetHistogram("ingest.stage.link_us", buckets);
    metrics_.commit_us = &r.GetHistogram("ingest.stage.commit_us", buckets);
    metrics_.input_depth = &r.GetGauge("ingest.input_depth");
  }
}

IngestPipeline::~IngestPipeline() {
  if (started_ && !finished_) Finish();
}

void IngestPipeline::Start() {
  KG_CHECK(!started_) << "IngestPipeline::Start called twice";
  started_ = true;
  root_span_ = obs::Tracer::Start(options_.tracer, "ingest_run");
  root_span_.SetAttr("workers",
                     static_cast<uint64_t>(options_.num_workers));
  root_span_.SetAttr("queue_capacity",
                     static_cast<uint64_t>(options_.queue_capacity));
  root_span_.SetAttr("plan_units",
                     static_cast<uint64_t>(plan_.num_units()));
  const size_t n = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  committer_ = std::thread([this] { CommitterLoop(); });
}

Status IngestPipeline::TrySubmit(size_t unit_index) {
  if (!started_ || finished_) {
    return Status::FailedPrecondition("ingest pipeline is not running");
  }
  KG_CHECK(unit_index < plan_.num_units());
  // The ticket is claimed only when the push succeeds, so the ticket
  // sequence stays dense (the committer releases tickets 0,1,2,...).
  const uint64_t ticket = submitted_.load(std::memory_order_relaxed);
  if (!input_->TryPush(WorkItem{ticket, unit_index})) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.sheds != nullptr) metrics_.sheds->Inc();
    return Status::Unavailable("ingest input queue full (backpressure)");
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.input_depth != nullptr) {
    metrics_.input_depth->Set(static_cast<int64_t>(input_->size()));
  }
  return Status::OK();
}

void IngestPipeline::SubmitBlocking(size_t unit_index) {
  while (true) {
    const Status s = TrySubmit(unit_index);
    if (s.ok()) return;
    KG_CHECK(IsRetriable(s.code())) << s.ToString();
    std::this_thread::yield();
  }
}

IngestReport IngestPipeline::Finish() {
  KG_CHECK(started_) << "IngestPipeline::Finish before Start";
  if (finished_) return report_;
  finished_ = true;

  // Graceful drain: seal the input, let workers exhaust it, then seal
  // the commit queue behind them, let the committer drain the reorder
  // buffer.
  input_->Close();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  done_->Close();
  committer_.join();

  report_.units_submitted =
      static_cast<size_t>(submitted_.load(std::memory_order_relaxed));
  report_.sheds = sheds_.load(std::memory_order_relaxed);
  KG_CHECK(report_.units_processed == report_.units_submitted)
      << "ingest drain lost units: processed " << report_.units_processed
      << " of " << report_.units_submitted;

  root_span_.SetAttr("units",
                     static_cast<uint64_t>(report_.units_processed));
  root_span_.SetAttr("mutations", report_.mutations_committed);
  root_span_.SetAttr("sheds", report_.sheds);
  root_span_.End();
  return report_;
}

IngestReport IngestPipeline::RunAll() {
  Start();
  for (size_t i = 0; i < plan_.num_units(); ++i) SubmitBlocking(i);
  return Finish();
}

void IngestPipeline::WorkerLoop(size_t worker_index) {
  obs::Span span = root_span_.Child("worker@" +
                                    std::to_string(worker_index));
  size_t processed = 0;
  while (auto item = input_->Pop()) {
    UnitResult result =
        ProcessUnit(plan_, plan_.units[item->unit_index], linker_, ctx_);
    if (metrics_.fetch_us != nullptr) {
      metrics_.fetch_us->Observe(result.fetch_us);
      metrics_.extract_us->Observe(result.extract_us);
      metrics_.link_us->Observe(result.link_us);
    }
    ++processed;
    // Push must not drop (zero lost upserts): block until the committer
    // makes room. Only Close() can break the wait, and Finish closes
    // this queue strictly after the workers exit.
    KG_CHECK(done_->Push(DoneItem{item->ticket, std::move(result)}))
        << "commit queue closed while workers were running";
  }
  span.SetAttr("units", static_cast<uint64_t>(processed));
}

void IngestPipeline::CommitBatch(std::vector<store::Mutation>* pending,
                                 size_t units) {
  if (pending->empty()) {
    report_.units_processed += units;
    return;
  }
  const auto start = Clock::now();
  const Status s = store_.ApplyBatch(*pending);
  KG_CHECK(s.ok()) << "ingest commit failed: " << s.ToString();
  report_.mutations_committed += pending->size();
  ++report_.commit_batches;
  report_.units_processed += units;
  if (metrics_.commit_us != nullptr) {
    metrics_.commit_us->Observe(ElapsedUs(start));
  }
  if (metrics_.mutations != nullptr) {
    metrics_.mutations->Inc(pending->size());
    metrics_.commit_batches->Inc();
  }
  pending->clear();
}

void IngestPipeline::CommitterLoop() {
  obs::Span span = root_span_.Child("committer");
  std::vector<store::Mutation> pending;
  size_t pending_units = 0;
  const size_t batch_units = std::max<size_t>(1, options_.commit_unit_batch);

  auto release_ready = [&] {
    for (auto it = reorder_.begin();
         it != reorder_.end() && it->first == next_ticket_;
         it = reorder_.erase(it), ++next_ticket_) {
      UnitResult& r = it->second;
      if (metrics_.units != nullptr) metrics_.units->Inc();
      if (!r.status.ok() && metrics_.degraded != nullptr) {
        metrics_.degraded->Inc();
      }
      if (metrics_.retries != nullptr && r.retries > 0) {
        metrics_.retries->Inc(r.retries);
      }
      if (metrics_.records_dropped != nullptr && r.records_dropped > 0) {
        metrics_.records_dropped->Inc(r.records_dropped);
      }
      if (metrics_.claims_corrupted != nullptr && r.claims_corrupted > 0) {
        metrics_.claims_corrupted->Inc(r.claims_corrupted);
      }
      if (!r.status.ok()) ++report_.units_degraded;
      report_.retries += r.retries;
      report_.records_dropped += r.records_dropped;
      report_.claims_corrupted += r.claims_corrupted;
      report_.virtual_ms += r.virtual_ms;
      if (!r.status.ok() || r.retries > 0 || r.records_dropped > 0 ||
          r.claims_corrupted > 0) {
        SourceDegradation row;
        row.source = r.unit_id;
        row.attempts = r.retries + 1;
        row.retries = r.retries;
        row.quarantined = !r.status.ok();
        row.final_status = r.status;
        row.records_dropped = r.records_dropped;
        row.claims_dropped = r.records_dropped;
        row.claims_corrupted = r.claims_corrupted;
        row.virtual_ms = r.virtual_ms;
        report_.degradation.sources.push_back(std::move(row));
      }
      for (store::Mutation& m : r.mutations) {
        pending.push_back(std::move(m));
      }
      ++pending_units;
      if (pending_units >= batch_units) {
        CommitBatch(&pending, pending_units);
        pending_units = 0;
      }
    }
  };

  while (auto done = done_->Pop()) {
    reorder_.emplace(done->ticket, std::move(done->result));
    release_ready();
  }
  release_ready();
  KG_CHECK(reorder_.empty())
      << "ingest committer drained with " << reorder_.size()
      << " units stuck in the reorder buffer";
  CommitBatch(&pending, pending_units);
  span.SetAttr("commit_batches", report_.commit_batches);
  span.End();
}

}  // namespace kg::ingest
