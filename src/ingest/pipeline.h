#ifndef KGRAPH_INGEST_PIPELINE_H_
#define KGRAPH_INGEST_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/retry.h"
#include "common/status.h"
#include "ingest/bounded_queue.h"
#include "ingest/crawl.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/versioned_store.h"

namespace kg::ingest {

/// Pipeline knobs.
struct IngestOptions {
  /// Extract/link worker threads (the parallel stage).
  size_t num_workers = 1;
  /// Capacity of each inter-stage queue. Small values force
  /// backpressure; TrySubmit then sheds with kUnavailable.
  size_t queue_capacity = 64;
  /// Chaos profile applied at the fetch stage (inactive by default).
  FaultPlan faults;
  RetryPolicy retry;
  /// Base seed of the per-unit retry-jitter streams.
  uint64_t seed = 1;
  /// Units per ApplyBatch commit (batched WAL flush / epoch publish);
  /// the committer still applies strictly in seq order.
  size_t commit_unit_batch = 4;
  /// Observability sinks; both may be null.
  obs::MetricsRegistry* registry = nullptr;
  obs::Tracer* tracer = nullptr;
};

/// What a drained run did. Store-content invariants (fingerprint,
/// committed mutation count) are bit-identical at any worker count;
/// scheduling-dependent observations (sheds, stage timings) are not and
/// feed dashboards, not gates.
struct IngestReport {
  size_t units_submitted = 0;
  size_t units_processed = 0;
  size_t units_degraded = 0;  ///< Lost to terminal faults / retry budget.
  uint64_t mutations_committed = 0;
  uint64_t commit_batches = 0;
  /// Backpressure sheds observed at the submission edge (TrySubmit
  /// returning kUnavailable).
  uint64_t sheds = 0;
  uint64_t retries = 0;
  uint64_t records_dropped = 0;
  uint64_t claims_corrupted = 0;
  double virtual_ms = 0.0;  ///< Chaos latency + backoff (virtual).
  /// Per-unit degradation rows, in seq order (anomalous units only).
  DegradationReport degradation;
};

/// The streaming construction loop: crawl units in, mutation batches
/// into a live VersionedKgStore, while readers keep answering against
/// the store's epochs.
///
///   submit -> [input queue] -> workers: fetch+extract+link (parallel,
///   pure per unit) -> [commit queue] -> committer: reorder to seq
///   order -> store.ApplyBatch
///
/// Determinism: ProcessUnit is a pure function of (plan, unit, ctx), and
/// the single committer holds a reorder buffer that releases unit
/// batches in submission-ticket order — so the store's mutation log, and
/// therefore its authoritative fingerprint, is a pure function of the
/// plan and chaos seed, bit-identical at 1, 2, or 8 workers
/// (ingest_property_test pins this against OfflineRebuild).
///
/// Backpressure: TrySubmit never blocks; a full input queue sheds with
/// retriable kUnavailable, the same contract the rpc admission queue
/// exposes, so RetryWithBackoff/CircuitBreaker wrap the submission edge
/// unchanged. Inside the pipeline nothing is ever dropped (the
/// zero-lost-upserts gate): workers block on the commit queue.
///
/// One-shot: construct over a plan, Start, submit, Finish.
class IngestPipeline {
 public:
  /// `store`, `linker`, and `plan` must outlive the pipeline. The store
  /// should have been opened over the same base graph the linker was
  /// built from, or the offline-rebuild gates will diverge.
  IngestPipeline(store::VersionedKgStore& store, const SurfaceLinker& linker,
                 const CrawlPlan& plan, IngestOptions options);

  /// Joins all stage threads (finishing the run if Finish was not
  /// called).
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Spawns the stage threads. Call once.
  void Start();

  /// Enqueues plan unit `unit_index`. kUnavailable = backpressure shed
  /// (retriable, nothing enqueued); kFailedPrecondition after Finish.
  /// Single-submitter: call from one thread (tickets are claimed
  /// non-atomically with the push, which is what keeps the ticket
  /// sequence dense).
  Status TrySubmit(size_t unit_index);

  /// Blocking submit used by RunAll: spins TrySubmit, counting sheds.
  void SubmitBlocking(size_t unit_index);

  /// Seals the input, drains every stage, joins the threads, and
  /// returns the report. Idempotent.
  IngestReport Finish();

  /// Start + submit every plan unit in order + Finish.
  IngestReport RunAll();

  /// Live backpressure depth (input queue occupancy), for dashboards.
  size_t input_depth() const { return input_->size(); }

 private:
  struct Metrics {
    obs::Counter* units = nullptr;
    obs::Counter* mutations = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* sheds = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* records_dropped = nullptr;
    obs::Counter* claims_corrupted = nullptr;
    obs::Counter* commit_batches = nullptr;
    obs::Histogram* fetch_us = nullptr;
    obs::Histogram* extract_us = nullptr;
    obs::Histogram* link_us = nullptr;
    obs::Histogram* commit_us = nullptr;
    obs::Gauge* input_depth = nullptr;
  };

  /// One submitted unit, stamped with its submission ticket. The
  /// committer releases tickets in order, so the mutation log follows
  /// the submission sequence even when callers submit a subset of the
  /// plan.
  struct WorkItem {
    uint64_t ticket = 0;
    size_t unit_index = 0;
  };
  struct DoneItem {
    uint64_t ticket = 0;
    UnitResult result;
  };

  void WorkerLoop(size_t worker_index);
  void CommitterLoop();

  /// Flushes `pending` (mutations of consecutive ready units) into the
  /// store as one ApplyBatch.
  void CommitBatch(std::vector<store::Mutation>* pending, size_t units);

  store::VersionedKgStore& store_;
  const SurfaceLinker& linker_;
  const CrawlPlan& plan_;
  const IngestOptions options_;
  UnitContext ctx_;
  std::unique_ptr<FaultInjector> injector_;

  std::unique_ptr<BoundedQueue<WorkItem>> input_;
  std::unique_ptr<BoundedQueue<DoneItem>> done_;

  std::vector<std::thread> workers_;
  std::thread committer_;
  bool started_ = false;
  bool finished_ = false;

  obs::Span root_span_;
  Metrics metrics_{};

  // Committer-owned (no locking needed beyond the queue): the reorder
  // buffer and the next ticket to release.
  std::map<uint64_t, UnitResult> reorder_;
  uint64_t next_ticket_ = 0;

  // Report accumulators. `submitted_`/`sheds_` are written by the
  // submitting thread, the rest by the committer; all read after join.
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> sheds_{0};
  IngestReport report_;
};

}  // namespace kg::ingest

#endif  // KGRAPH_INGEST_PIPELINE_H_
