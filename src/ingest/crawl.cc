#include "ingest/crawl.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "common/hash.h"
#include "common/logging.h"
#include "extract/wrapper_induction.h"
#include "text/tokenize.h"

namespace kg::ingest {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

const char* DomainTag(synth::SourceDomain domain) {
  switch (domain) {
    case synth::SourceDomain::kPeople:
      return "people";
    case synth::SourceDomain::kMovies:
      return "movies";
    case synth::SourceDomain::kMusic:
      return "music";
  }
  return "unknown";
}

const char* ClassOf(synth::SourceDomain domain) {
  switch (domain) {
    case synth::SourceDomain::kPeople:
      return "Person";
    case synth::SourceDomain::kMovies:
      return "Movie";
    case synth::SourceDomain::kMusic:
      return "Song";
  }
  return "Thing";
}

const char* SyntheticPrefix(synth::SourceDomain domain) {
  switch (domain) {
    case synth::SourceDomain::kPeople:
      return "person~";
    case synth::SourceDomain::kMovies:
      return "movie~";
    case synth::SourceDomain::kMusic:
      return "song~";
  }
  return "thing~";
}

/// The subject's name-ish canonical attribute ("name" for people,
/// "title" otherwise) — also the predicate its surface is asserted
/// under.
const char* SurfaceAttr(synth::SourceDomain domain) {
  return domain == synth::SourceDomain::kPeople ? "name" : "title";
}

/// Canonical attribute -> KG predicate, with person-reference attributes
/// mapped to their relation names. Returns nullptr for the surface
/// attribute (handled separately).
const char* PredicateFor(synth::SourceDomain domain,
                         const std::string& attr, bool* person_ref) {
  *person_ref = false;
  switch (domain) {
    case synth::SourceDomain::kPeople:
      if (attr == "name") return nullptr;
      return attr.c_str();  // birth_year, nationality
    case synth::SourceDomain::kMovies:
      if (attr == "title") return nullptr;
      if (attr == "director") {
        *person_ref = true;
        return "directed_by";
      }
      return attr.c_str();  // release_year, genre, extras
    case synth::SourceDomain::kMusic:
      if (attr == "title") return nullptr;
      if (attr == "artist") {
        *person_ref = true;
        return "performed_by";
      }
      if (attr == "year") return "song_year";
      if (attr == "genre") return "song_genre";
      return attr.c_str();
  }
  return attr.c_str();
}

/// One record in canonical attribute space, ready to link.
struct CanonicalRecord {
  std::string local_id;
  std::map<std::string, std::string> attrs;  // ordered => deterministic
};

void EmitRecordMutations(synth::SourceDomain domain,
                         const CanonicalRecord& rec,
                         const SurfaceLinker& linker,
                         const std::string& source, uint64_t seq,
                         std::vector<store::Mutation>* out) {
  const auto surface_it = rec.attrs.find(SurfaceAttr(domain));
  if (surface_it == rec.attrs.end() || surface_it->second.empty()) {
    return;  // No subject surface — nothing to anchor the facts to.
  }
  const std::string& surface = surface_it->second;
  const std::string subject = linker.ResolveSubject(domain, surface);
  const graph::Provenance prov{source, 1.0,
                               static_cast<int64_t>(seq)};

  out->push_back(store::Mutation::Upsert(
      subject, SurfaceAttr(domain), surface, graph::NodeKind::kEntity,
      graph::NodeKind::kText, prov));
  out->push_back(store::Mutation::Upsert(
      subject, "type", ClassOf(domain), graph::NodeKind::kEntity,
      graph::NodeKind::kClass, prov));

  for (const auto& [attr, value] : rec.attrs) {
    if (value.empty()) continue;
    bool person_ref = false;
    const char* pred = PredicateFor(domain, attr, &person_ref);
    if (pred == nullptr) continue;  // The surface attribute.
    if (person_ref) {
      const std::string person = linker.ResolvePerson(value);
      out->push_back(store::Mutation::Upsert(
          subject, pred, person, graph::NodeKind::kEntity,
          graph::NodeKind::kEntity, prov));
      // Surface the referenced person so lookups can answer with a name.
      out->push_back(store::Mutation::Upsert(
          person, "name", value, graph::NodeKind::kEntity,
          graph::NodeKind::kText, prov));
    } else {
      out->push_back(store::Mutation::Upsert(
          subject, pred, value, graph::NodeKind::kEntity,
          graph::NodeKind::kText, prov));
    }
  }
}

/// Catalog slice -> canonical records (dialect columns renamed via the
/// positional zip DialectColumns <-> CanonicalColumns, the manual
/// mapping of core::ManualMappingFor).
std::vector<CanonicalRecord> ExtractCatalog(const synth::SourceTable& table,
                                            uint32_t begin, uint32_t end) {
  const std::vector<std::string> dialect =
      synth::DialectColumns(table.domain, table.schema_dialect);
  const std::vector<std::string> canonical =
      synth::CanonicalColumns(table.domain);
  KG_CHECK(dialect.size() == canonical.size());
  std::map<std::string, std::string> to_canonical;
  for (size_t i = 0; i < dialect.size(); ++i) {
    to_canonical[dialect[i]] = canonical[i];
  }
  std::vector<CanonicalRecord> out;
  const uint32_t hi =
      std::min<uint32_t>(end, static_cast<uint32_t>(table.records.size()));
  for (uint32_t i = begin; i < hi; ++i) {
    const synth::SourceRecord& r = table.records[i];
    CanonicalRecord rec;
    rec.local_id = r.local_id;
    for (const auto& [col, value] : r.fields) {
      auto it = to_canonical.find(col);
      if (it == to_canonical.end()) continue;
      rec.attrs[it->second] = value;
    }
    out.push_back(std::move(rec));
  }
  return out;
}

/// One web page -> at most one canonical record: subject surface from
/// the <h1> header, values through the label-anchored extraction
/// primitive (label drift and decoys make this fallibly realistic).
std::vector<CanonicalRecord> ExtractWebPage(const synth::Website& site,
                                            uint32_t page_index) {
  std::vector<CanonicalRecord> out;
  if (page_index >= site.pages.size()) return out;
  const synth::WebPage& page = site.pages[page_index];

  std::string surface;
  for (const extract::DomNode& node : page.dom.nodes) {
    if (node.tag == "h1" && !node.text.empty()) {
      surface = node.text;
      break;
    }
  }
  if (surface.empty()) return out;

  CanonicalRecord rec;
  rec.local_id = page.dom.url;
  rec.attrs[SurfaceAttr(site.domain)] = surface;
  for (const auto& [attr, label] : site.attr_labels) {
    if (attr == SurfaceAttr(site.domain)) continue;
    const extract::DomNodeId value_node =
        extract::FindValueByLabel(page.dom, label);
    if (value_node == extract::kInvalidDomNode) continue;
    const std::string& value = page.dom.node(value_node).text;
    if (!value.empty()) rec.attrs[attr] = value;
  }
  out.push_back(std::move(rec));
  return out;
}

}  // namespace

CrawlPlan BuildCrawlPlan(const synth::EntityUniverse& universe,
                         const CrawlPlanOptions& options, Rng& rng) {
  CrawlPlan plan;
  constexpr synth::SourceDomain kDomains[] = {
      synth::SourceDomain::kPeople, synth::SourceDomain::kMovies,
      synth::SourceDomain::kMusic};

  for (size_t i = 0; i < options.num_catalog_sources; ++i) {
    synth::SourceOptions src;
    src.domain = kDomains[i % 3];
    src.name = std::string("catalog-") + DomainTag(src.domain) + "-" +
               std::to_string(i);
    src.coverage = options.coverage;
    src.popularity_bias = options.popularity_bias;
    src.value_accuracy = options.value_accuracy;
    src.missing_rate = options.missing_rate;
    src.name_noise = options.name_noise;
    src.schema_dialect = static_cast<int>(i % 3);
    src.duplicate_rate = options.duplicate_rate;
    plan.tables.push_back(synth::EmitSource(universe, src, rng));
  }

  for (size_t i = 0; i < options.num_websites; ++i) {
    synth::WebsiteOptions site;
    site.domain = kDomains[i % 3];
    site.site_name = std::string("site-") + DomainTag(site.domain) + "-" +
                     std::to_string(i);
    site.num_pages = options.pages_per_site;
    site.popularity_bias = options.popularity_bias;
    site.attr_missing_rate = options.attr_missing_rate;
    site.name_noise = options.name_noise;
    site.value_noise = 0.0;
    site.label_dialect = static_cast<int>(i % 3);
    site.label_drift = options.label_drift;
    site.decoy_rate = options.decoy_rate;
    plan.websites.push_back(synth::GenerateWebsite(universe, site, rng));
  }

  // Per-source unit streams...
  std::vector<std::vector<CrawlUnit>> streams;
  for (uint32_t s = 0; s < plan.tables.size(); ++s) {
    const synth::SourceTable& table = plan.tables[s];
    std::vector<CrawlUnit> stream;
    const uint32_t n = static_cast<uint32_t>(table.records.size());
    const uint32_t chunk =
        std::max<uint32_t>(1, static_cast<uint32_t>(options.records_per_chunk));
    for (uint32_t k = 0, begin = 0; begin < n; ++k, begin += chunk) {
      CrawlUnit unit;
      unit.kind = UnitKind::kCatalogChunk;
      unit.source_index = s;
      unit.begin = begin;
      unit.end = std::min(begin + chunk, n);
      unit.unit_id = table.source_name + "#" + std::to_string(k);
      stream.push_back(std::move(unit));
    }
    streams.push_back(std::move(stream));
  }
  for (uint32_t s = 0; s < plan.websites.size(); ++s) {
    const synth::Website& site = plan.websites[s];
    std::vector<CrawlUnit> stream;
    for (uint32_t p = 0; p < site.pages.size(); ++p) {
      CrawlUnit unit;
      unit.kind = UnitKind::kWebPage;
      unit.source_index = s;
      unit.begin = p;
      unit.end = p + 1;
      unit.unit_id = site.name + "#" + std::to_string(p);
      stream.push_back(std::move(unit));
    }
    streams.push_back(std::move(stream));
  }

  // ...interleaved round-robin, so a truncated run still mixes sources
  // and every thread count drains the same order.
  size_t remaining = 0;
  for (const auto& s : streams) remaining += s.size();
  std::vector<size_t> cursor(streams.size(), 0);
  while (remaining > 0) {
    for (size_t s = 0; s < streams.size(); ++s) {
      if (cursor[s] >= streams[s].size()) continue;
      CrawlUnit unit = std::move(streams[s][cursor[s]++]);
      unit.seq = plan.units.size();
      plan.units.push_back(std::move(unit));
      --remaining;
    }
  }
  return plan;
}

SurfaceLinker::SurfaceLinker(const graph::KnowledgeGraph& base) {
  const struct {
    const char* predicate;
    std::unordered_map<std::string, std::string>* index;
  } kIndexes[] = {{"name", &by_name_}, {"title", &by_title_}};
  for (const auto& [predicate, index] : kIndexes) {
    auto pred = base.FindPredicate(predicate);
    if (!pred.ok()) continue;
    for (graph::TripleId id : base.TriplesWithPredicate(*pred)) {
      const graph::Triple& t = base.triple(id);
      // First writer wins (KgAnswerer's disambiguation rule).
      index->emplace(text::NormalizeForMatch(base.NodeName(t.object)),
                     base.NodeName(t.subject));
    }
  }
}

std::string SurfaceLinker::ResolvePerson(const std::string& surface) const {
  const std::string norm = text::NormalizeForMatch(surface);
  auto it = by_name_.find(norm);
  if (it != by_name_.end()) return it->second;
  return SyntheticPrefix(synth::SourceDomain::kPeople) + norm;
}

std::string SurfaceLinker::ResolveSubject(synth::SourceDomain domain,
                                          const std::string& surface) const {
  const std::string norm = text::NormalizeForMatch(surface);
  const auto& index =
      domain == synth::SourceDomain::kPeople ? by_name_ : by_title_;
  auto it = index.find(norm);
  if (it != index.end()) return it->second;
  return SyntheticPrefix(domain) + norm;
}

UnitResult ProcessUnit(const CrawlPlan& plan, const CrawlUnit& unit,
                       const SurfaceLinker& linker,
                       const UnitContext& ctx) {
  UnitResult result;
  result.seq = unit.seq;
  result.unit_id = unit.unit_id;

  // --- Fetch: the only stage chaos touches. -----------------------------
  const auto fetch_start = Clock::now();
  double keep_fraction = 1.0;
  if (ctx.faults != nullptr && ctx.faults->plan().active()) {
    // Jitter stream and breaker are scoped per unit: a breaker shared
    // across concurrently-processed units would make one unit's outcome
    // depend on which others ran first — scheduling, i.e. thread count.
    CircuitBreaker breaker(ctx.retry.breaker_failure_threshold);
    const RetryOutcome outcome = RetryWithBackoff(
        ctx.retry, Rng(ctx.seed).Split(Fnv1a64(unit.unit_id)), &breaker,
        [&](size_t attempt) {
          const FaultInjector::Attempt a =
              ctx.faults->Probe(unit.unit_id, attempt);
          return AttemptResult{a.status, a.latency_ms};
        });
    result.retries = outcome.retries;
    result.virtual_ms = outcome.virtual_ms;
    result.status = outcome.status;
    keep_fraction = ctx.faults->KeepFraction(unit.unit_id);
  }

  const uint32_t carried = unit.end - unit.begin;
  result.records_in = carried;
  if (!result.status.ok()) {
    // The unit is lost, not the pipeline: degradation, by design.
    result.records_dropped = carried;
    result.fetch_us = ElapsedUs(fetch_start);
    return result;
  }
  result.fetch_us = ElapsedUs(fetch_start);

  // --- Extract. ---------------------------------------------------------
  const auto extract_start = Clock::now();
  const synth::SourceDomain domain =
      unit.kind == UnitKind::kCatalogChunk
          ? plan.tables[unit.source_index].domain
          : plan.websites[unit.source_index].domain;
  const std::string& source_name =
      unit.kind == UnitKind::kCatalogChunk
          ? plan.tables[unit.source_index].source_name
          : plan.websites[unit.source_index].name;
  std::vector<CanonicalRecord> records =
      unit.kind == UnitKind::kCatalogChunk
          ? ExtractCatalog(plan.tables[unit.source_index], unit.begin,
                           unit.end)
          : ExtractWebPage(plan.websites[unit.source_index], unit.begin);

  // Truncation drops trailing records; corruption rewrites claim values
  // (both pure functions of (plan seed, unit, claim), like everything
  // the injector does).
  if (keep_fraction < 1.0) {
    const size_t kept = static_cast<size_t>(
        std::floor(static_cast<double>(records.size()) * keep_fraction));
    result.records_dropped = records.size() - kept;
    records.resize(kept);
  }
  if (ctx.faults != nullptr && ctx.faults->plan().corrupt_rate > 0.0) {
    for (CanonicalRecord& rec : records) {
      for (auto& [attr, value] : rec.attrs) {
        std::string maybe = ctx.faults->MaybeCorrupt(
            unit.unit_id, rec.local_id + "/" + attr, value);
        if (maybe != value) {
          ++result.claims_corrupted;
          value = std::move(maybe);
        }
      }
    }
  }
  result.extract_us = ElapsedUs(extract_start);

  // --- Link + mutation assembly. ----------------------------------------
  const auto link_start = Clock::now();
  for (const CanonicalRecord& rec : records) {
    EmitRecordMutations(domain, rec, linker, source_name, unit.seq,
                        &result.mutations);
  }
  result.link_us = ElapsedUs(link_start);
  return result;
}

void ApplyMutationToKg(graph::KnowledgeGraph& kg,
                       const store::Mutation& m) {
  if (m.op == store::MutationOp::kUpsert) {
    kg.AddTriple(m.subject, m.predicate, m.object, m.subject_kind,
                 m.object_kind, m.prov);
    return;
  }
  const auto s = kg.FindNode(m.subject, m.subject_kind);
  const auto p = kg.FindPredicate(m.predicate);
  const auto o = kg.FindNode(m.object, m.object_kind);
  if (!s.ok() || !p.ok() || !o.ok()) return;
  const graph::TripleId id = kg.FindTriple(*s, *p, *o);
  if (id != graph::kInvalidTriple) kg.RemoveTriple(id);
}

graph::KnowledgeGraph OfflineRebuild(const CrawlPlan& plan,
                                     const graph::KnowledgeGraph& base,
                                     const SurfaceLinker& linker,
                                     const UnitContext& ctx,
                                     DegradationReport* degradation,
                                     uint64_t* total_mutations) {
  graph::KnowledgeGraph kg = base;
  uint64_t mutations = 0;
  for (const CrawlUnit& unit : plan.units) {
    UnitResult r = ProcessUnit(plan, unit, linker, ctx);
    for (const store::Mutation& m : r.mutations) {
      ApplyMutationToKg(kg, m);
    }
    mutations += r.mutations.size();
    if (degradation != nullptr &&
        (!r.status.ok() || r.retries > 0 || r.records_dropped > 0 ||
         r.claims_corrupted > 0)) {
      SourceDegradation row;
      row.source = r.unit_id;
      row.attempts = r.retries + 1;
      row.retries = r.retries;
      row.quarantined = !r.status.ok();
      row.final_status = r.status;
      row.records_dropped = r.records_dropped;
      row.claims_dropped = r.records_dropped;
      row.claims_corrupted = r.claims_corrupted;
      row.virtual_ms = r.virtual_ms;
      degradation->sources.push_back(std::move(row));
    }
  }
  if (total_mutations != nullptr) *total_mutations = mutations;
  return kg;
}

}  // namespace kg::ingest
