#ifndef KGRAPH_INGEST_BOUNDED_QUEUE_H_
#define KGRAPH_INGEST_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/logging.h"

namespace kg::ingest {

/// Fixed-capacity MPMC handoff between pipeline stages. The shape of the
/// backpressure contract:
///   - TryPush never blocks: false means "full or closed", which the
///     pipeline surfaces as a retriable kUnavailable (the same shed
///     signal the rpc admission queue uses).
///   - Push blocks until space frees — the internal stages use it where
///     an item must not be dropped (the zero-lost-upserts gate).
///   - Pop blocks until an item arrives or the queue is closed *and*
///     drained, so closing is a graceful drain barrier, not an abort.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    KG_CHECK(capacity_ > 0);
  }

  /// Non-blocking; false when the queue is at capacity or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking; false only when the queue was closed before space freed.
  bool Push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty
  /// (then nullopt — the consumer's termination signal).
  std::optional<T> Pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Seals the queue: pushes fail from here on, Pop drains what remains.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace kg::ingest

#endif  // KGRAPH_INGEST_BOUNDED_QUEUE_H_
