#ifndef KGRAPH_INGEST_CRAWL_H_
#define KGRAPH_INGEST_CRAWL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fault.h"
#include "common/retry.h"
#include "common/rng.h"
#include "graph/knowledge_graph.h"
#include "store/wal.h"
#include "synth/entity_universe.h"
#include "synth/structured_source.h"
#include "synth/website_generator.h"

namespace kg::ingest {

/// What one crawl unit is: a slice of a structured catalog or a single
/// semi-structured web page.
enum class UnitKind : uint8_t {
  kCatalogChunk = 0,
  kWebPage = 1,
};

/// One unit of crawl work. Units reference their source by index into
/// the owning CrawlPlan (stable, copyable, cheap to queue). `seq` is the
/// unit's submission ticket: the committer applies unit batches in seq
/// order, which is the whole determinism story of the pipeline — the
/// mutation log is a pure function of the plan, not of scheduling.
struct CrawlUnit {
  UnitKind kind = UnitKind::kCatalogChunk;
  uint32_t source_index = 0;  ///< Into plan.tables or plan.websites.
  uint32_t begin = 0;         ///< First record (catalog) / page index (web).
  uint32_t end = 0;           ///< One-past-last record; begin+1 for pages.
  std::string unit_id;        ///< "<source>#<k>" — the fault-channel key.
  uint64_t seq = 0;           ///< Submission ticket (index in plan.units).
};

/// Shape of the synthetic crawl frontier.
struct CrawlPlanOptions {
  /// Structured catalog sources (round-robin over people/movies/music,
  /// cycling schema dialects).
  size_t num_catalog_sources = 3;
  size_t records_per_chunk = 16;
  /// Semi-structured websites (round-robin over the three domains).
  size_t num_websites = 3;
  size_t pages_per_site = 60;
  /// Source noise profile. Name noise is kept at zero by default so
  /// surface linkage is exact and answer-divergence gates are sharp;
  /// crank it to study lossy linkage instead.
  double coverage = 0.5;
  double popularity_bias = 0.7;
  double duplicate_rate = 0.05;
  double name_noise = 0.0;
  double value_accuracy = 1.0;
  double missing_rate = 0.05;
  /// Website noise (decoys/drift stay on by default — extraction, unlike
  /// linkage, is supposed to be fallible here).
  double label_drift = 0.05;
  double decoy_rate = 0.05;
  double attr_missing_rate = 0.08;
};

/// A fully materialized crawl frontier: the noisy sources plus the unit
/// list, interleaved round-robin across sources so every worker count
/// sees the same mix. Pure function of (universe, options, rng).
struct CrawlPlan {
  std::vector<synth::SourceTable> tables;
  std::vector<synth::Website> websites;
  std::vector<CrawlUnit> units;

  size_t num_units() const { return units.size(); }
};

CrawlPlan BuildCrawlPlan(const synth::EntityUniverse& universe,
                         const CrawlPlanOptions& options, Rng& rng);

/// Linkage/dedup for streaming ingest: resolves a noisy subject surface
/// to a canonical KG node name. Known entities (those with a name/title
/// triple in the base graph) resolve to their existing node; unknown
/// surfaces map to a synthetic canonical name ("person~<normalized>"),
/// which is a pure function of the surface — so two units mentioning the
/// same new entity dedup to one node no matter which commits first.
///
/// Immutable after construction; shared by all workers.
class SurfaceLinker {
 public:
  /// Indexes `base`'s name/title triples (first-writer-wins, the same
  /// disambiguation rule as dual::KgAnswerer).
  explicit SurfaceLinker(const graph::KnowledgeGraph& base);

  /// Canonical node name for a person surface.
  std::string ResolvePerson(const std::string& surface) const;

  /// Canonical node name for the subject of a `domain` record.
  std::string ResolveSubject(synth::SourceDomain domain,
                             const std::string& surface) const;

  size_t known_people() const { return by_name_.size(); }
  size_t known_titles() const { return by_title_.size(); }

 private:
  /// normalized person name -> canonical node name.
  std::unordered_map<std::string, std::string> by_name_;
  /// normalized movie/song title -> canonical node name.
  std::unordered_map<std::string, std::string> by_title_;
};

/// Everything one processed unit produced. `mutations` is empty when the
/// unit was dropped (terminal fault / retries exhausted) — recorded in
/// `status` so the degradation report can say why.
struct UnitResult {
  uint64_t seq = 0;
  std::string unit_id;
  Status status;  ///< OK, or why the unit's payload was lost.
  std::vector<store::Mutation> mutations;
  size_t records_in = 0;       ///< Records/pages the unit carried.
  size_t records_dropped = 0;  ///< Lost to fault truncation.
  size_t claims_corrupted = 0;
  size_t retries = 0;
  double virtual_ms = 0.0;  ///< Chaos latency + backoff (virtual time).
  /// Wall-clock stage timings, microseconds.
  double fetch_us = 0.0;
  double extract_us = 0.0;
  double link_us = 0.0;
};

/// Chaos + retry context shared by every unit of a run.
struct UnitContext {
  const FaultInjector* faults = nullptr;  ///< Null = no chaos.
  RetryPolicy retry;
  uint64_t seed = 1;  ///< Base of the per-unit backoff-jitter streams.
};

/// Processes one unit end to end — fetch (with fault
/// injection/retry/per-unit circuit breaker), extract, link — and
/// returns the unit's mutation batch. Pure function of (plan, unit,
/// linker, ctx): no shared mutable state, so any number of workers can
/// run units concurrently and the results only ever differ in wall-clock
/// stage timings.
UnitResult ProcessUnit(const CrawlPlan& plan, const CrawlUnit& unit,
                       const SurfaceLinker& linker, const UnitContext& ctx);

/// Applies a mutation to a plain KnowledgeGraph with the exact semantics
/// VersionedKgStore applies to its authoritative graph (upsert =
/// AddTriple provenance-append; retract of an absent triple = no-op).
/// The oracle mirror every ingest gate compares against.
void ApplyMutationToKg(graph::KnowledgeGraph& kg, const store::Mutation& m);

/// Offline oracle: runs every unit serially in seq order over a copy of
/// `base` and returns the resulting graph. A drained pipeline's store
/// must fingerprint-match this exactly (TripleSetFingerprint ==
/// VersionedKgStore::AuthoritativeFingerprint). `degradation` (optional)
/// receives one row per unit that saw faults; `total_mutations`
/// (optional) receives the committed-mutation count for the
/// zero-lost-upserts gate.
graph::KnowledgeGraph OfflineRebuild(const CrawlPlan& plan,
                                     const graph::KnowledgeGraph& base,
                                     const SurfaceLinker& linker,
                                     const UnitContext& ctx,
                                     DegradationReport* degradation = nullptr,
                                     uint64_t* total_mutations = nullptr);

}  // namespace kg::ingest

#endif  // KGRAPH_INGEST_CRAWL_H_
