#include "ann/hnsw.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <queue>
#include <tuple>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"

namespace kg::ann {
namespace {

// Hard cap on layer draws; with mL = 1/ln(M) the probability of ever
// reaching it is ~M^-32.
constexpr uint8_t kMaxLevelCap = 32;

// (dist, id) is the one total order everything in this file uses: heaps,
// neighbor selection, final results. dist ties are broken by id, so the
// order is total and every traversal is deterministic.
bool Closer(const Neighbor& a, const Neighbor& b) {
  return std::tie(a.dist, a.id) < std::tie(b.dist, b.id);
}

// Max neighbors kept on `layer`.
size_t MaxDegree(const HnswOptions& options, size_t layer) {
  return layer == 0 ? options.M * 2 : options.M;
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out->append(buf, sizeof v);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out->append(buf, sizeof v);
}

// Little cursor over the serialized bytes; every Read checks bounds so a
// truncated container fails cleanly instead of reading past the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadBytes(void* out, size_t n) {
    if (data_.size() - pos_ < n) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool ReadU32(uint32_t* v) { return ReadBytes(v, sizeof *v); }
  bool ReadU64(uint64_t* v) { return ReadBytes(v, sizeof *v); }

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

float HnswIndex::Distance(std::span<const float> a, const float* b) const {
  float sum = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

const std::vector<uint32_t>& HnswIndex::LinksAt(uint32_t node,
                                               size_t layer) const {
  static const std::vector<uint32_t> kEmpty;
  if (node >= links_.size()) return kEmpty;
  const auto& per_node = links_[node];
  if (layer >= per_node.size()) return kEmpty;
  return per_node[layer];
}

std::vector<Neighbor> HnswIndex::SearchLayer(std::span<const float> query,
                                             uint32_t entry, size_t ef,
                                             size_t layer) const {
  // Min-heap of frontier candidates and max-heap of current best `ef`,
  // both ordered by (dist, id).
  auto frontier_cmp = [](const Neighbor& a, const Neighbor& b) {
    return Closer(b, a);  // smallest on top
  };
  auto best_cmp = [](const Neighbor& a, const Neighbor& b) {
    return Closer(a, b);  // largest on top
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>,
                      decltype(frontier_cmp)>
      frontier(frontier_cmp);
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(best_cmp)>
      best(best_cmp);
  std::unordered_set<uint32_t> visited;

  const Neighbor start{
      Distance(query, vectors_.data() +
                          static_cast<size_t>(entry) * options_.dim),
      entry};
  frontier.push(start);
  best.push(start);
  visited.insert(entry);

  while (!frontier.empty()) {
    const Neighbor cur = frontier.top();
    frontier.pop();
    if (best.size() >= ef && Closer(best.top(), cur)) break;
    for (uint32_t next : LinksAt(cur.id, layer)) {
      if (next >= count_ || !visited.insert(next).second) continue;
      const Neighbor cand{
          Distance(query, vectors_.data() +
                              static_cast<size_t>(next) * options_.dim),
          next};
      if (best.size() < ef || Closer(cand, best.top())) {
        frontier.push(cand);
        best.push(cand);
        if (best.size() > ef) best.pop();
      }
    }
  }

  std::vector<Neighbor> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  std::reverse(out.begin(), out.end());  // closest first
  return out;
}

HnswIndex HnswIndex::Build(std::vector<float> vectors,
                           const HnswOptions& options) {
  KG_CHECK(options.dim > 0) << "HnswOptions.dim must be positive";
  KG_CHECK(options.M >= 2) << "HnswOptions.M must be >= 2";
  KG_CHECK(vectors.size() % options.dim == 0)
      << "vector blob size " << vectors.size()
      << " is not a multiple of dim " << options.dim;

  HnswIndex index;
  index.options_ = options;
  index.count_ = vectors.size() / options.dim;
  index.vectors_ = std::move(vectors);
  index.levels_.reserve(index.count_);
  index.links_.reserve(index.count_);

  // Level draws are Split(id) off the build seed: a pure function of
  // (seed, id), independent of insertion history.
  const Rng base(options.seed);
  const double ml = 1.0 / std::log(static_cast<double>(options.M));
  const size_t ef_c = std::max(options.ef_construction, options.M + 1);

  for (uint32_t id = 0; id < index.count_; ++id) {
    Rng draw = base.Split(id);
    // UniformDouble() is [0, 1); 1-u is (0, 1] so the log is finite.
    const double u = 1.0 - draw.UniformDouble();
    const int drawn = static_cast<int>(-std::log(u) * ml);
    const uint8_t level = static_cast<uint8_t>(
        std::min<int>(drawn, kMaxLevelCap));

    index.levels_.push_back(level);
    index.links_.emplace_back(level + 1);

    if (id == 0) {
      index.entry_point_ = 0;
      index.max_level_ = level;
      continue;
    }

    const std::span<const float> query = index.vector(id);

    // Greedy descent through layers above the new node's level.
    const uint32_t ep = index.entry_point_;
    Neighbor cur{
        index.Distance(query, index.vectors_.data() +
                                  static_cast<size_t>(ep) * options.dim),
        ep};
    for (size_t layer = index.max_level_;
         layer > static_cast<size_t>(level); --layer) {
      bool improved = true;
      while (improved) {
        improved = false;
        for (uint32_t next : index.LinksAt(cur.id, layer)) {
          const Neighbor cand{
              index.Distance(query,
                             index.vectors_.data() +
                                 static_cast<size_t>(next) * options.dim),
              next};
          if (Closer(cand, cur)) {
            cur = cand;
            improved = true;
          }
        }
      }
    }

    // Beam search + connect on every layer at or below the node's level.
    for (size_t layer = std::min<size_t>(level, index.max_level_);; --layer) {
      std::vector<Neighbor> cands =
          index.SearchLayer(query, cur.id, ef_c, layer);
      const size_t max_degree = MaxDegree(options, layer);
      const size_t take = std::min(max_degree, cands.size());

      auto& fwd = index.links_[id][layer];
      for (size_t i = 0; i < take; ++i) {
        const uint32_t peer = cands[i].id;
        fwd.push_back(peer);
        // Reverse link; shrink the peer back to its cap by keeping the
        // closest (dist, id) neighbors.
        auto& back = index.links_[peer][layer];
        back.push_back(id);
        if (back.size() > max_degree) {
          std::vector<Neighbor> scored;
          scored.reserve(back.size());
          const std::span<const float> peer_vec = index.vector(peer);
          for (uint32_t n : back) {
            scored.push_back(
                {index.Distance(peer_vec,
                                index.vectors_.data() +
                                    static_cast<size_t>(n) * options.dim),
                 n});
          }
          std::sort(scored.begin(), scored.end(), Closer);
          back.clear();
          for (size_t j = 0; j < max_degree; ++j) {
            back.push_back(scored[j].id);
          }
        }
      }
      if (!cands.empty()) cur = cands.front();
      if (layer == 0) break;
    }

    if (level > index.max_level_) {
      index.max_level_ = level;
      index.entry_point_ = id;
    }
  }

  // Canonical form: adjacency sorted ascending. Search is heap-ordered,
  // so this changes nothing observable except making Serialize a pure
  // function of the graph.
  for (auto& per_node : index.links_) {
    for (auto& layer : per_node) {
      std::sort(layer.begin(), layer.end());
    }
  }
  return index;
}

std::vector<Neighbor> HnswIndex::Search(std::span<const float> query,
                                        size_t k) const {
  return Search(query, k, options_.ef_search);
}

std::vector<Neighbor> HnswIndex::Search(std::span<const float> query,
                                        size_t k, size_t ef) const {
  if (count_ == 0 || k == 0) return {};
  KG_CHECK(query.size() == options_.dim)
      << "query dim " << query.size() << " != index dim " << options_.dim;

  uint32_t ep = entry_point_;
  Neighbor cur{Distance(query, vectors_.data() +
                                   static_cast<size_t>(ep) * options_.dim),
               ep};
  for (size_t layer = max_level_; layer > 0; --layer) {
    bool improved = true;
    while (improved) {
      improved = false;
      for (uint32_t next : LinksAt(cur.id, layer)) {
        if (next >= count_) continue;
        const Neighbor cand{
            Distance(query, vectors_.data() +
                                static_cast<size_t>(next) * options_.dim),
            next};
        if (Closer(cand, cur)) {
          cur = cand;
          improved = true;
        }
      }
    }
  }

  std::vector<Neighbor> found =
      SearchLayer(query, cur.id, std::max(ef, k), 0);
  if (found.size() > k) found.resize(k);
  return found;
}

std::vector<Neighbor> HnswIndex::BruteForce(std::span<const float> query,
                                            size_t k) const {
  if (count_ == 0 || k == 0) return {};
  KG_CHECK(query.size() == options_.dim)
      << "query dim " << query.size() << " != index dim " << options_.dim;
  std::vector<Neighbor> all;
  all.reserve(count_);
  for (uint32_t id = 0; id < count_; ++id) {
    all.push_back({Distance(query, vectors_.data() +
                                       static_cast<size_t>(id) *
                                           options_.dim),
                   id});
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(), Closer);
  all.resize(take);
  return all;
}

std::string HnswIndex::Serialize() const {
  // Payload first so the header can carry its size + checksum.
  std::string payload;
  payload.reserve(count_ * (1 + options_.dim * sizeof(float)));
  payload.append(reinterpret_cast<const char*>(levels_.data()),
                 levels_.size());
  for (uint32_t id = 0; id < count_; ++id) {
    for (size_t layer = 0; layer < links_[id].size(); ++layer) {
      const auto& nbrs = links_[id][layer];
      AppendU32(&payload, static_cast<uint32_t>(nbrs.size()));
      for (uint32_t n : nbrs) AppendU32(&payload, n);
    }
  }
  payload.append(reinterpret_cast<const char*>(vectors_.data()),
                 vectors_.size() * sizeof(float));

  std::string out;
  out.append(kAnnMagic, sizeof kAnnMagic);
  AppendU32(&out, kAnnContainerVersion);
  AppendU32(&out, static_cast<uint32_t>(options_.dim));
  AppendU32(&out, static_cast<uint32_t>(count_));
  AppendU32(&out, static_cast<uint32_t>(options_.M));
  AppendU32(&out, static_cast<uint32_t>(options_.ef_construction));
  AppendU32(&out, static_cast<uint32_t>(options_.ef_search));
  AppendU64(&out, options_.seed);
  AppendU32(&out, entry_point_);
  AppendU32(&out, max_level_);
  AppendU64(&out, payload.size());
  AppendU32(&out, Checksum32(payload));
  // The header checksum covers every byte before it.
  AppendU32(&out, Checksum32(out));
  out += payload;
  return out;
}

Result<HnswIndex> HnswIndex::Deserialize(std::string_view data) {
  Reader r(data);
  char magic[sizeof kAnnMagic];
  if (!r.ReadBytes(magic, sizeof magic)) {
    return Status::InvalidArgument("ann index: truncated magic");
  }
  if (std::memcmp(magic, kAnnMagic, sizeof magic) != 0) {
    return Status::InvalidArgument("ann index: bad magic");
  }
  uint32_t version = 0, dim = 0, count = 0, m = 0, ef_c = 0, ef_s = 0,
           entry = 0, max_level = 0, payload_checksum = 0,
           header_checksum = 0;
  uint64_t seed = 0, payload_size = 0;
  if (!r.ReadU32(&version) || !r.ReadU32(&dim) || !r.ReadU32(&count) ||
      !r.ReadU32(&m) || !r.ReadU32(&ef_c) || !r.ReadU32(&ef_s) ||
      !r.ReadU64(&seed) || !r.ReadU32(&entry) || !r.ReadU32(&max_level) ||
      !r.ReadU64(&payload_size) || !r.ReadU32(&payload_checksum)) {
    return Status::InvalidArgument("ann index: truncated header");
  }
  const size_t header_end = r.pos();
  if (!r.ReadU32(&header_checksum)) {
    return Status::InvalidArgument("ann index: truncated header checksum");
  }
  if (Checksum32(data.substr(0, header_end)) != header_checksum) {
    return Status::InvalidArgument("ann index: header checksum mismatch");
  }
  if (version > kAnnContainerVersion) {
    // Retriable by contract: a newer writer produced this file; an
    // upgraded reader may succeed.
    return Status::Unavailable("ann index: container version " +
                               std::to_string(version) +
                               " is newer than supported");
  }
  if (dim == 0 || m < 2 || max_level > kMaxLevelCap) {
    return Status::InvalidArgument("ann index: invalid header fields");
  }
  if (r.remaining() != payload_size) {
    return Status::InvalidArgument("ann index: payload size mismatch");
  }
  const std::string_view payload = data.substr(r.pos());
  if (Checksum32(payload) != payload_checksum) {
    return Status::InvalidArgument("ann index: payload checksum mismatch");
  }
  if (count > 0 && entry >= count) {
    return Status::InvalidArgument("ann index: entry point out of range");
  }

  HnswIndex index;
  index.options_.dim = dim;
  index.options_.M = m;
  index.options_.ef_construction = ef_c;
  index.options_.ef_search = ef_s;
  index.options_.seed = seed;
  index.count_ = count;
  index.entry_point_ = entry;
  index.max_level_ = static_cast<uint8_t>(max_level);

  Reader p(payload);
  index.levels_.resize(count);
  if (!p.ReadBytes(index.levels_.data(), count)) {
    return Status::InvalidArgument("ann index: truncated levels");
  }
  index.links_.resize(count);
  for (uint32_t id = 0; id < count; ++id) {
    if (index.levels_[id] > max_level) {
      return Status::InvalidArgument("ann index: node level above max");
    }
    index.links_[id].resize(index.levels_[id] + 1);
    for (size_t layer = 0; layer <= index.levels_[id]; ++layer) {
      uint32_t n = 0;
      if (!p.ReadU32(&n)) {
        return Status::InvalidArgument("ann index: truncated adjacency");
      }
      const size_t cap = layer == 0 ? static_cast<size_t>(m) * 2
                                    : static_cast<size_t>(m);
      if (n > cap || n > p.remaining() / sizeof(uint32_t)) {
        return Status::InvalidArgument("ann index: degree out of range");
      }
      auto& nbrs = index.links_[id][layer];
      nbrs.resize(n);
      if (n > 0 &&
          !p.ReadBytes(nbrs.data(), static_cast<size_t>(n) * sizeof(uint32_t))) {
        return Status::InvalidArgument("ann index: truncated adjacency");
      }
      for (uint32_t nbr : nbrs) {
        if (nbr >= count) {
          return Status::InvalidArgument("ann index: neighbor id out of range");
        }
      }
    }
  }
  const uint64_t vec_bytes =
      static_cast<uint64_t>(count) * dim * sizeof(float);
  if (p.remaining() != vec_bytes) {
    return Status::InvalidArgument("ann index: vector blob size mismatch");
  }
  index.vectors_.resize(static_cast<size_t>(count) * dim);
  if (vec_bytes > 0 &&
      !p.ReadBytes(index.vectors_.data(), static_cast<size_t>(vec_bytes))) {
    return Status::InvalidArgument("ann index: truncated vectors");
  }
  return index;
}

Status HnswIndex::Save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("ann index: cannot open " + tmp);
    const std::string bytes = Serialize();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return Status::IoError("ann index: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("ann index: rename to " + path + " failed");
  }
  return Status::OK();
}

Result<HnswIndex> HnswIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("ann index: cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IoError("ann index: read failed for " + path);
  }
  return Deserialize(bytes);
}

}  // namespace kg::ann
