#ifndef KGRAPH_ANN_HNSW_H_
#define KGRAPH_ANN_HNSW_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kg::ann {

/// Container generation of the serialized index (header layout + framing),
/// mirroring the snapshot-binary idiom: a newer container is refused with
/// a retriable kUnavailable, any structural violation with
/// kInvalidArgument.
inline constexpr uint32_t kAnnContainerVersion = 1;

/// The 8-byte magic that opens every serialized index.
inline constexpr char kAnnMagic[8] = {'K', 'G', 'A', 'N', 'N', 'I', 'X',
                                      '\0'};

/// HNSW construction/search knobs (Malkov & Yashunin 2018). Defaults are
/// sized for the TransE embedding sets the dual-QA path searches
/// (thousands to low-millions of vectors, dim 16-128).
struct HnswOptions {
  size_t dim = 32;
  /// Max neighbors per node on layers >= 1; layer 0 keeps 2*M.
  size_t M = 16;
  /// Beam width while inserting.
  size_t ef_construction = 128;
  /// Default beam width while searching (callers can override per query;
  /// recall grows with ef at linear cost).
  size_t ef_search = 64;
  /// Seed of the level draws. Levels are drawn from Rng::Split(id), so
  /// construction is a pure function of (vectors, options) — independent
  /// of machine, run, or anything else.
  uint64_t seed = 1;
};

/// One search hit: squared-L2 distance to the query plus the vector id.
/// Results are ordered by (dist, id) — the total order every internal
/// candidate heap uses, which is what makes search deterministic.
struct Neighbor {
  float dist = 0.0f;
  uint32_t id = 0;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// A from-scratch HNSW index over float vectors with deterministic
/// seeded construction: vectors are inserted in id order, level draws
/// are pure functions of (seed, id), and every tie in every priority
/// queue breaks on id. Two Build calls with equal inputs produce
/// byte-identical serialized indexes (ann_index_test pins this).
///
/// Thread-safety: Build is single-threaded by design (HNSW insertion
/// mutates shared adjacency; a deterministic parallel build would need
/// fine-grained ordering for no payoff at this scale). A built index is
/// immutable — Search is const and safe to call concurrently.
class HnswIndex {
 public:
  HnswIndex() = default;

  /// Builds over `vectors` (row-major, size == n * options.dim; n is
  /// derived). Aborts on a size mismatch.
  static HnswIndex Build(std::vector<float> vectors,
                         const HnswOptions& options);

  /// Top-k by squared L2, ordered (dist, id), using options.ef_search.
  std::vector<Neighbor> Search(std::span<const float> query,
                               size_t k) const;

  /// Same with an explicit beam width (ef is clamped up to k).
  std::vector<Neighbor> Search(std::span<const float> query, size_t k,
                               size_t ef) const;

  /// Exact top-k by linear scan — the oracle recall tests compare
  /// against, and the sane path for tiny indexes.
  std::vector<Neighbor> BruteForce(std::span<const float> query,
                                   size_t k) const;

  size_t size() const { return count_; }
  size_t dim() const { return options_.dim; }
  const HnswOptions& options() const { return options_; }

  /// The stored vector for `id`; empty span when out of range (clamped,
  /// never UB — the serialized-container contract).
  std::span<const float> vector(uint32_t id) const {
    if (id >= count_) return {};
    return {vectors_.data() + static_cast<size_t>(id) * options_.dim,
            options_.dim};
  }

  /// Serialized container: fixed checksummed header + payload (levels,
  /// adjacency, vectors). Deterministic: equal indexes serialize
  /// byte-identically.
  std::string Serialize() const;

  /// Inverts Serialize. Rejects truncated/oversized/corrupt bytes with
  /// kInvalidArgument (every byte of the payload is covered by a
  /// Checksum32, every neighbor id bounds-checked against the count),
  /// and a newer container version with kUnavailable.
  static Result<HnswIndex> Deserialize(std::string_view data);

  /// Atomic save (temp file + rename) / whole-file load.
  Status Save(const std::string& path) const;
  static Result<HnswIndex> Load(const std::string& path);

 private:
  /// Neighbor list of `node` on `layer` (empty when out of range).
  const std::vector<uint32_t>& LinksAt(uint32_t node, size_t layer) const;

  float Distance(std::span<const float> a, const float* b) const;

  /// Greedy beam search on one layer from `entry`, returning up to `ef`
  /// candidates ordered (dist, id).
  std::vector<Neighbor> SearchLayer(std::span<const float> query,
                                    uint32_t entry, size_t ef,
                                    size_t layer) const;

  HnswOptions options_;
  size_t count_ = 0;
  std::vector<float> vectors_;        ///< count_ * dim, row-major.
  std::vector<uint8_t> levels_;       ///< Top layer of each node.
  /// links_[node][layer] = neighbor ids, kept sorted ascending (the
  /// canonical form Serialize emits).
  std::vector<std::vector<std::vector<uint32_t>>> links_;
  uint32_t entry_point_ = 0;
  uint8_t max_level_ = 0;
};

}  // namespace kg::ann

#endif  // KGRAPH_ANN_HNSW_H_
