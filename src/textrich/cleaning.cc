#include "textrich/cleaning.h"

#include "text/tokenize.h"

namespace kg::textrich {

void CatalogCleaner::Fit(const std::vector<CatalogAssertion>& corpus) {
  frequency_.clear();
  totals_.clear();
  for (const CatalogAssertion& a : corpus) {
    const auto key = std::make_pair(a.type_name, a.attribute);
    ++frequency_[key][a.value];
    ++totals_[key];
  }
}

bool CatalogCleaner::ShouldDrop(const CatalogAssertion& assertion,
                                const Options& options) const {
  const auto key = std::make_pair(assertion.type_name, assertion.attribute);
  auto it = frequency_.find(key);
  size_t count = 0;
  size_t total = 0;
  if (it != frequency_.end()) {
    auto vit = it->second.find(assertion.value);
    if (vit != it->second.end()) count = vit->second;
    total = totals_.at(key);
  }
  const double share =
      total == 0 ? 0.0
                 : static_cast<double>(count) / static_cast<double>(total);
  const bool population_ok =
      count >= options.min_type_support && share >= options.min_type_share;
  if (population_ok) return false;
  if (options.text_rescue) {
    // The value phrase appearing verbatim in the product's own text is
    // strong evidence it is real.
    const std::string norm_text =
        text::NormalizeForMatch(assertion.evidence_text);
    const std::string norm_value =
        text::NormalizeForMatch(assertion.value);
    if (!norm_value.empty() &&
        norm_text.find(norm_value) != std::string::npos) {
      return false;
    }
  }
  return true;
}

std::vector<CatalogAssertion> CatalogCleaner::Clean(
    const std::vector<CatalogAssertion>& batch,
    const Options& options) const {
  std::vector<CatalogAssertion> kept;
  kept.reserve(batch.size());
  for (const CatalogAssertion& a : batch) {
    if (!ShouldDrop(a, options)) kept.push_back(a);
  }
  return kept;
}

}  // namespace kg::textrich
