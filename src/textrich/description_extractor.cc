#include "textrich/description_extractor.h"

#include <algorithm>

#include "common/strings.h"

namespace kg::textrich {

std::vector<DescriptionExtraction> ExtractFromDescription(
    const std::string& description,
    const std::vector<std::string>& known_attributes) {
  std::vector<DescriptionExtraction> out;
  // Clause-split on sentence boundaries, then look for "attr: value".
  for (const std::string& raw : Split(description, '.')) {
    const std::string clause(Trim(raw));
    const size_t colon = clause.find(':');
    if (colon == std::string::npos) continue;
    const std::string attr = ToLower(std::string(
        Trim(clause.substr(0, colon))));
    if (std::find(known_attributes.begin(), known_attributes.end(),
                  attr) == known_attributes.end()) {
      continue;
    }
    std::string value(Trim(clause.substr(colon + 1)));
    while (!value.empty() &&
           (value.back() == '.' || value.back() == ',')) {
      value.pop_back();
    }
    if (value.empty()) continue;
    out.push_back(DescriptionExtraction{attr, value});
  }
  return out;
}

std::map<std::string, std::string> MergeExtractionStreams(
    const std::vector<std::map<std::string, std::string>>& streams) {
  std::map<std::string, std::string> merged;
  for (const auto& stream : streams) {
    for (const auto& [attr, value] : stream) {
      merged.emplace(attr, value);  // First (highest-priority) wins.
    }
  }
  return merged;
}

}  // namespace kg::textrich
