#ifndef KGRAPH_TEXTRICH_TAXONOMY_MINING_H_
#define KGRAPH_TEXTRICH_TAXONOMY_MINING_H_

#include <map>
#include <string>
#include <vector>

#include "synth/behavior_generator.h"
#include "synth/catalog_generator.h"

namespace kg::textrich {

/// A mined is-a edge: `child` type-phrase is a subtype of `parent`.
struct HypernymEdge {
  std::string child;
  std::string parent;
  double score = 0.0;
};

/// A mined synonym pair of type phrases.
struct SynonymPair {
  std::string a;
  std::string b;
  double score = 0.0;
};

/// Octet-lite (§3.1): mines type relationships from search-to-purchase
/// behavior. The signals:
///  * hypernym: query q leads to purchases spread over several types whose
///    own queries are purchase-concentrated ("tea" buyers buy green tea;
///    "green tea" buyers rarely buy other teas);
///  * synonym: two query strings whose purchase distributions over types
///    are nearly identical.
struct TaxonomyMiningOptions {
  /// Minimum events for a query string to be considered.
  size_t min_query_support = 20;
  /// A query is "concentrated" when its top type takes at least this
  /// purchase share (these are leaf-type queries).
  double concentration_threshold = 0.7;
  /// Minimum purchase share a child type must take of a broad query.
  double min_child_share = 0.05;
  /// Cosine similarity over purchase distributions above which two
  /// queries are synonyms.
  double synonym_similarity = 0.9;
};

struct MinedTaxonomy {
  std::vector<HypernymEdge> hypernyms;
  std::vector<SynonymPair> synonyms;
};

/// Mines from a behavior log. Product ids resolve to types via `catalog`
/// (only the product->type mapping is used — no taxonomy peeking).
MinedTaxonomy MineTaxonomy(const synth::ProductCatalog& catalog,
                           const synth::BehaviorLog& log,
                           const TaxonomyMiningOptions& options);

/// Precision/recall of mined hypernym edges against the generator's true
/// taxonomy (an edge is correct when child's true leaf type sits under
/// the parent query's category, or parent is an alias of an ancestor).
struct MiningScore {
  double hypernym_precision = 0.0;
  double hypernym_recall = 0.0;
  double synonym_precision = 0.0;
  size_t hypernyms_mined = 0;
  size_t synonyms_mined = 0;
};

MiningScore ScoreMinedTaxonomy(const synth::ProductCatalog& catalog,
                               const MinedTaxonomy& mined);

}  // namespace kg::textrich

#endif  // KGRAPH_TEXTRICH_TAXONOMY_MINING_H_
