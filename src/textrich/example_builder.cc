#include "textrich/example_builder.h"

#include <map>
#include <set>

#include "common/logging.h"
#include "text/tokenize.h"

namespace kg::textrich {

bool FindValueSpan(const std::vector<std::string>& tokens,
                   const std::string& value, size_t* begin, size_t* end) {
  const auto value_tokens = text::Tokenize(value);
  if (value_tokens.empty() || value_tokens.size() > tokens.size()) {
    return false;
  }
  for (size_t i = 0; i + value_tokens.size() <= tokens.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < value_tokens.size(); ++j) {
      if (tokens[i + j] != value_tokens[j]) {
        match = false;
        break;
      }
    }
    if (match) {
      *begin = i;
      *end = i + value_tokens.size();
      return true;
    }
  }
  return false;
}

std::vector<extract::AttributeExample> BuildAttributeExamples(
    const synth::ProductCatalog& catalog,
    const std::vector<size_t>& product_indices,
    const std::string& attribute, const ExampleBuildOptions& options) {
  std::vector<extract::AttributeExample> examples;
  const auto& taxonomy = catalog.taxonomy();

  // (type, attribute) -> value tokens observed in the structured catalog
  // across ALL products: a label-free lexicon for gazetteer features.
  std::map<std::pair<graph::TypeId, std::string>, std::set<std::string>>
      lexicon;
  if (options.attach_lexicon) {
    for (const auto& product : catalog.products()) {
      for (const auto& [attr, value] : product.catalog_values) {
        for (const auto& token : text::Tokenize(value)) {
          lexicon[{product.type, attr}].insert(token);
        }
      }
    }
  }
  // Attribute -> cluster name lookup.
  auto cluster_of = [&](const std::string& attr) -> std::string {
    for (size_t a = 0; a < catalog.attributes().size(); ++a) {
      if (catalog.attributes()[a] == attr) {
        return "c" + std::to_string(catalog.attribute_clusters()[a]);
      }
    }
    return "";
  };

  for (size_t idx : product_indices) {
    KG_CHECK(idx < catalog.products().size());
    const synth::Product& product = catalog.products()[idx];
    for (const std::string& attr :
         catalog.AttributesForType(product.type)) {
      if (!attribute.empty() && attr != attribute) continue;
      extract::AttributeExample ex;
      ex.tokens = product.title_tokens;
      ex.attribute = attr;
      ex.type_name = taxonomy.Name(product.type);
      const auto& parents = taxonomy.Parents(product.type);
      if (!parents.empty()) ex.category_name = taxonomy.Name(parents[0]);
      ex.attribute_cluster = cluster_of(attr);
      if (product.locale != 0) {
        ex.locale = "loc" + std::to_string(product.locale);
      }
      if (options.attach_image_signals) {
        auto it = product.image_values.find(attr);
        if (it != product.image_values.end()) {
          ex.extra_context.push_back("imgval=" + it->second);
        }
      }
      if (options.attach_lexicon) {
        auto lit = lexicon.find({product.type, attr});
        if (lit != lexicon.end()) {
          ex.lexicon_tokens.assign(lit->second.begin(),
                                   lit->second.end());
        }
      }
      switch (options.label_source) {
        case LabelSource::kGold: {
          auto it = product.title_spans.find(attr);
          if (it != product.title_spans.end()) {
            ex.gold_spans.push_back(it->second);
          }
          break;
        }
        case LabelSource::kDistant: {
          auto it = product.catalog_values.find(attr);
          if (it != product.catalog_values.end()) {
            size_t begin = 0, end = 0;
            if (FindValueSpan(ex.tokens, it->second, &begin, &end)) {
              ex.gold_spans.push_back(text::Span{begin, end, attr});
            }
          }
          break;
        }
      }
      examples.push_back(std::move(ex));
    }
  }
  return examples;
}

std::vector<extract::AttributeExample> FilterDistantExamples(
    const std::vector<extract::AttributeExample>& examples,
    double keep_empty_fraction) {
  std::vector<extract::AttributeExample> kept;
  kept.reserve(examples.size());
  const size_t stride =
      keep_empty_fraction <= 0.0
          ? 0
          : std::max<size_t>(1, static_cast<size_t>(1.0 /
                                                    keep_empty_fraction));
  size_t empty_seen = 0;
  for (const auto& ex : examples) {
    if (!ex.gold_spans.empty()) {
      kept.push_back(ex);
    } else if (stride != 0 && empty_seen++ % stride == 0) {
      kept.push_back(ex);
    }
  }
  return kept;
}

void SplitIndices(size_t n, double train_fraction,
                  std::vector<size_t>* train, std::vector<size_t>* test) {
  train->clear();
  test->clear();
  const size_t cut = static_cast<size_t>(train_fraction *
                                         static_cast<double>(n));
  for (size_t i = 0; i < n; ++i) {
    (i < cut ? train : test)->push_back(i);
  }
}

}  // namespace kg::textrich
