#ifndef KGRAPH_TEXTRICH_CLEANING_H_
#define KGRAPH_TEXTRICH_CLEANING_H_

#include <map>
#include <string>
#include <vector>

namespace kg::textrich {

/// A (product, attribute, value) assertion to be vetted by cleaning.
struct CatalogAssertion {
  uint32_t product_id = 0;
  std::string type_name;
  std::string attribute;
  std::string value;
  /// Free text associated with the product (title + description) for
  /// text-consistency checks.
  std::string evidence_text;
};

/// AutoKnow-style catalog cleaning (§3.2): flags assertions that are
/// inconsistent with (a) the value distribution of their (type,
/// attribute) population — "spicy is unlikely to be the flavor of
/// icecreams" — or (b) their own product's text evidence. Frequencies are
/// learned from the (noisy) corpus itself; no gold data involved.
class CatalogCleaner {
 public:
  struct Options {
    /// A value observed fewer than this many times for its (type, attr)
    /// population is anomalous…
    size_t min_type_support = 2;
    /// …unless the product's own text mentions it (text rescues rare but
    /// correct values).
    bool text_rescue = true;
    /// Fraction of the population a value must reach to be trusted
    /// without text evidence.
    double min_type_share = 0.02;
  };

  CatalogCleaner() = default;

  /// Learns (type, attribute) -> value frequency tables.
  void Fit(const std::vector<CatalogAssertion>& corpus);

  /// True when the assertion should be dropped.
  bool ShouldDrop(const CatalogAssertion& assertion,
                  const Options& options) const;

  /// Filters a batch; returns the kept assertions.
  std::vector<CatalogAssertion> Clean(
      const std::vector<CatalogAssertion>& batch,
      const Options& options) const;

 private:
  // (type, attribute) -> value -> count.
  std::map<std::pair<std::string, std::string>,
           std::map<std::string, size_t>>
      frequency_;
  std::map<std::pair<std::string, std::string>, size_t> totals_;
};

}  // namespace kg::textrich

#endif  // KGRAPH_TEXTRICH_CLEANING_H_
