#ifndef KGRAPH_TEXTRICH_EXAMPLE_BUILDER_H_
#define KGRAPH_TEXTRICH_EXAMPLE_BUILDER_H_

#include <string>
#include <vector>

#include "extract/opentag.h"
#include "synth/catalog_generator.h"

namespace kg::textrich {

/// How attribute-extraction examples are labeled.
enum class LabelSource {
  kGold,     ///< Generator gold spans — "manual labeling".
  kDistant,  ///< Spans found by matching the (noisy) structured catalog
             ///< value inside the title — "distant supervision" (§3.2).
};

struct ExampleBuildOptions {
  LabelSource label_source = LabelSource::kGold;
  /// Attach image-channel signals as extra context (the PAM modality).
  bool attach_image_signals = false;
  /// Attach a (type, attribute) value lexicon mined from the structured
  /// catalog (observable without gold labels) for gazetteer features.
  bool attach_lexicon = false;
};

/// Builds one extraction example per (product, applicable attribute) for
/// products at `product_indices`. When `attribute` is non-empty, restricts
/// to that attribute. Examples carry type/category/cluster metadata for
/// the type-/attribute-aware extractors.
std::vector<extract::AttributeExample> BuildAttributeExamples(
    const synth::ProductCatalog& catalog,
    const std::vector<size_t>& product_indices,
    const std::string& attribute, const ExampleBuildOptions& options);

/// Convenience: indices [0, n) split deterministically into train/test at
/// `train_fraction` (no shuffle — product order is already random).
void SplitIndices(size_t n, double train_fraction,
                  std::vector<size_t>* train, std::vector<size_t>* test);

/// Distant-supervision hygiene: catalog-missing does NOT mean
/// value-absent, so unmatched examples are mostly false negatives. Keeps
/// every example with a matched span plus a deterministic
/// `keep_empty_fraction` slice of span-less ones (the model still needs
/// true negatives).
std::vector<extract::AttributeExample> FilterDistantExamples(
    const std::vector<extract::AttributeExample>& examples,
    double keep_empty_fraction = 0.2);

/// Finds `value`'s tokens as a contiguous subsequence of `tokens`;
/// returns true and fills [begin, end) on success. The distant-label
/// matcher.
bool FindValueSpan(const std::vector<std::string>& tokens,
                   const std::string& value, size_t* begin, size_t* end);

}  // namespace kg::textrich

#endif  // KGRAPH_TEXTRICH_EXAMPLE_BUILDER_H_
