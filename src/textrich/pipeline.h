#ifndef KGRAPH_TEXTRICH_PIPELINE_H_
#define KGRAPH_TEXTRICH_PIPELINE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "synth/catalog_generator.h"
#include "textrich/cleaning.h"
#include "textrich/example_builder.h"

namespace kg::textrich {

/// Quality and cost after one pipeline stage.
struct PipelineStageReport {
  std::string stage;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  /// Cumulative human cost in person-days (the paper's months-to-weeks
  /// axis, Figure 5).
  double cost_person_days = 0.0;
};

/// Result of a full pipeline run for one attribute.
struct PipelineResult {
  std::vector<PipelineStageReport> stages;
  double final_f1 = 0.0;
  double total_cost_person_days = 0.0;
  bool passed_gate = false;
};

/// The §3.2 production extraction pipeline, in both flavors:
///   kManual (Figure 5a): human-labeled training data, hand hyper-tuning,
///     hand-written rule post-processing — high quality, high cost;
///   kAutomated (Figure 5b): distant supervision from the catalog, AutoML
///     tuning, ML-based cleaning, a small human-labeled benchmark only.
enum class PipelineMode { kManual, kAutomated };

struct PipelineOptions {
  PipelineMode mode = PipelineMode::kAutomated;
  /// Train/test split over products.
  double train_fraction = 0.7;
  /// Quality bar of the pre-publish gate.
  double gate_f1 = 0.90;
  /// Hyper-parameter tuning on/off (its cost depends on mode).
  bool tune = true;
  CatalogCleaner::Options cleaning;
};

/// Runs the pipeline for `attribute` over `catalog`; every stage is real
/// computation (train, tune, filter, evaluate) — only the person-day
/// constants are annotations.
PipelineResult RunExtractionPipeline(const synth::ProductCatalog& catalog,
                                     const std::string& attribute,
                                     const PipelineOptions& options,
                                     Rng& rng);

}  // namespace kg::textrich

#endif  // KGRAPH_TEXTRICH_PIPELINE_H_
