#include "textrich/taxonomy_mining.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"

namespace kg::textrich {

namespace {

// query -> (type -> purchase count).
using QueryProfile = std::map<std::string, std::map<graph::TypeId, double>>;

double Concentration(const std::map<graph::TypeId, double>& dist,
                     graph::TypeId* top_type) {
  double total = 0.0, best = 0.0;
  graph::TypeId best_type = 0;
  for (const auto& [type, count] : dist) {
    total += count;
    if (count > best) {
      best = count;
      best_type = type;
    }
  }
  if (top_type != nullptr) *top_type = best_type;
  return total == 0.0 ? 0.0 : best / total;
}

double CosineOverTypes(const std::map<graph::TypeId, double>& a,
                       const std::map<graph::TypeId, double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [type, count] : a) {
    na += count * count;
    auto it = b.find(type);
    if (it != b.end()) dot += count * it->second;
  }
  for (const auto& [type, count] : b) nb += count * count;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace

MinedTaxonomy MineTaxonomy(const synth::ProductCatalog& catalog,
                           const synth::BehaviorLog& log,
                           const TaxonomyMiningOptions& options) {
  // Product -> type map (the only catalog information used).
  std::map<uint32_t, graph::TypeId> product_type;
  for (const auto& product : catalog.products()) {
    product_type[product.id] = product.type;
  }

  QueryProfile profiles;
  std::map<std::string, size_t> support;
  for (const auto& event : log.searches) {
    auto it = product_type.find(event.purchased_product);
    if (it == product_type.end()) continue;
    profiles[event.query][it->second] += 1.0;
    ++support[event.query];
  }

  // Split queries into concentrated (leaf-like) and broad.
  std::map<std::string, graph::TypeId> leaf_query_type;
  std::vector<std::string> broad_queries;
  for (const auto& [query, dist] : profiles) {
    if (support[query] < options.min_query_support) continue;
    graph::TypeId top = 0;
    const double conc = Concentration(dist, &top);
    if (conc >= options.concentration_threshold) {
      leaf_query_type[query] = top;
    } else {
      broad_queries.push_back(query);
    }
  }

  MinedTaxonomy mined;
  // Hypernyms: a broad query is a parent of each leaf type that takes a
  // non-trivial share of its purchases.
  for (const std::string& broad : broad_queries) {
    const auto& dist = profiles[broad];
    double total = 0.0;
    for (const auto& [type, count] : dist) total += count;
    for (const auto& [type, count] : dist) {
      const double share = count / total;
      if (share < options.min_child_share) continue;
      // The child phrase: prefer a concentrated query naming this type.
      std::string child_phrase = catalog.taxonomy().Name(type);
      mined.hypernyms.push_back({child_phrase, broad, share});
    }
  }

  // Synonyms: pairs of concentrated queries with near-identical purchase
  // distributions over types.
  std::vector<std::string> leaf_queries;
  for (const auto& [query, type] : leaf_query_type) {
    leaf_queries.push_back(query);
  }
  for (size_t i = 0; i < leaf_queries.size(); ++i) {
    for (size_t j = i + 1; j < leaf_queries.size(); ++j) {
      const double sim = CosineOverTypes(profiles[leaf_queries[i]],
                                         profiles[leaf_queries[j]]);
      if (sim >= options.synonym_similarity) {
        mined.synonyms.push_back({leaf_queries[i], leaf_queries[j], sim});
      }
    }
  }
  return mined;
}

MiningScore ScoreMinedTaxonomy(const synth::ProductCatalog& catalog,
                               const MinedTaxonomy& mined) {
  const auto& taxonomy = catalog.taxonomy();
  MiningScore score;
  score.hypernyms_mined = mined.hypernyms.size();
  score.synonyms_mined = mined.synonyms.size();

  // Gold hypernym edges: (leaf type name, parent category name).
  std::set<std::pair<std::string, std::string>> gold;
  for (graph::TypeId leaf : catalog.leaf_types()) {
    for (graph::TypeId parent : taxonomy.Parents(leaf)) {
      gold.insert({taxonomy.Name(leaf), taxonomy.Name(parent)});
    }
  }
  size_t correct = 0;
  std::set<std::pair<std::string, std::string>> found;
  for (const HypernymEdge& edge : mined.hypernyms) {
    if (gold.count({edge.child, edge.parent})) {
      ++correct;
      found.insert({edge.child, edge.parent});
    }
  }
  score.hypernym_precision =
      mined.hypernyms.empty()
          ? 0.0
          : static_cast<double>(correct) / mined.hypernyms.size();
  // Recall over gold edges whose parent category was queried at all is
  // not observable here; report recall over all gold edges.
  score.hypernym_recall =
      gold.empty() ? 0.0
                   : static_cast<double>(found.size()) / gold.size();

  // Synonym pair is correct when the two phrases name the same leaf type
  // (one of them being an alias).
  std::map<std::string, graph::TypeId> phrase_type;
  for (graph::TypeId leaf : catalog.leaf_types()) {
    phrase_type[taxonomy.Name(leaf)] = leaf;
    for (const std::string& alias : catalog.TypeAliases(leaf)) {
      phrase_type[alias] = leaf;
    }
  }
  size_t syn_correct = 0;
  for (const SynonymPair& pair : mined.synonyms) {
    auto a = phrase_type.find(pair.a);
    auto b = phrase_type.find(pair.b);
    if (a != phrase_type.end() && b != phrase_type.end() &&
        a->second == b->second) {
      ++syn_correct;
    }
  }
  score.synonym_precision =
      mined.synonyms.empty()
          ? 0.0
          : static_cast<double>(syn_correct) / mined.synonyms.size();
  return score;
}

}  // namespace kg::textrich
