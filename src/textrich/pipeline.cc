#include "textrich/pipeline.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "text/bio.h"

namespace kg::textrich {

namespace {

// Person-day cost constants. Sources: the paper's qualitative claim that
// automation shrinks time-to-deploy from "a couple of months to a couple
// of weeks" (§3.2); the split across stages is kgraph's annotation.
struct StageCosts {
  double labeling;
  double tuning;
  double postprocessing;
  double evaluation;
};
constexpr StageCosts kManualCosts{18.0, 8.0, 10.0, 4.0};     // ~2 months.
constexpr StageCosts kAutomatedCosts{1.5, 0.5, 1.0, 1.0};    // ~2 weeks.

text::SpanScore Evaluate(
    const extract::TitleExtractor& extractor,
    const std::vector<extract::AttributeExample>& test, bool rule_filter,
    const CatalogCleaner* cleaner,
    const CatalogCleaner::Options& clean_options) {
  text::SpanScorer scorer;
  for (const auto& ex : test) {
    auto predicted = extractor.Extract(ex);
    if (rule_filter || cleaner != nullptr) {
      std::vector<text::Span> kept;
      for (const text::Span& span : predicted) {
        std::vector<std::string> tokens(
            ex.tokens.begin() + static_cast<long>(span.begin),
            ex.tokens.begin() + static_cast<long>(span.end));
        const std::string value = Join(tokens, " ");
        bool drop = false;
        if (cleaner != nullptr) {
          CatalogAssertion assertion;
          assertion.type_name = ex.type_name;
          assertion.attribute = ex.attribute;
          assertion.value = value;
          assertion.evidence_text = Join(ex.tokens, " ");
          drop = cleaner->ShouldDrop(assertion, clean_options);
        }
        if (!drop) kept.push_back(span);
      }
      predicted = std::move(kept);
    }
    scorer.Add(ex.gold_spans, predicted);
  }
  return scorer.Score();
}

}  // namespace

PipelineResult RunExtractionPipeline(const synth::ProductCatalog& catalog,
                                     const std::string& attribute,
                                     const PipelineOptions& options,
                                     Rng& rng) {
  PipelineResult result;
  const StageCosts& costs = options.mode == PipelineMode::kManual
                                ? kManualCosts
                                : kAutomatedCosts;
  double cost = 0.0;

  std::vector<size_t> train_idx, test_idx;
  SplitIndices(catalog.products().size(), options.train_fraction,
               &train_idx, &test_idx);

  // Stage 1: training data.
  ExampleBuildOptions build;
  build.label_source = options.mode == PipelineMode::kManual
                           ? LabelSource::kGold
                           : LabelSource::kDistant;
  build.attach_lexicon = true;
  auto train =
      BuildAttributeExamples(catalog, train_idx, attribute, build);
  if (build.label_source == LabelSource::kDistant) {
    train = FilterDistantExamples(train);
  }
  // Test is always scored against gold spans (the paper's small manually
  // labeled benchmark, present in both modes).
  ExampleBuildOptions gold_build;
  gold_build.label_source = LabelSource::kGold;
  gold_build.attach_lexicon = true;
  const auto test =
      BuildAttributeExamples(catalog, test_idx, attribute, gold_build);
  cost += costs.labeling;

  auto record = [&](const std::string& stage, const text::SpanScore& s) {
    result.stages.push_back(
        PipelineStageReport{stage, s.precision, s.recall, s.f1, cost});
  };

  // Stage 2: base model.
  extract::TitleExtractor extractor;
  extract::TitleExtractorOptions base_options;
  base_options.tagger.epochs = 2;
  base_options.tagger.cross_context_with_tokens = false;
  {
    Rng fit_rng = rng.Fork();
    extractor.Fit(train, base_options, fit_rng);
  }
  record("base_model",
         Evaluate(extractor, test, false, nullptr, {}));

  // Stage 3: hyper-parameter tuning — pick the better of two configs on a
  // dev slice of train.
  if (options.tune) {
    const size_t dev_cut = train.size() * 4 / 5;
    std::vector<extract::AttributeExample> tune_train(
        train.begin(), train.begin() + static_cast<long>(dev_cut));
    std::vector<extract::AttributeExample> dev(
        train.begin() + static_cast<long>(dev_cut), train.end());
    // Candidate grid: longer training, and type-aware conditioning (the
    // "understand the domain and attributes" knob of Figure 5a).
    std::vector<extract::TitleExtractorOptions> candidates;
    for (size_t epochs : {2, 8}) {
      for (bool type_aware : {false, true}) {
        for (bool lexicon : {false, true}) {
          extract::TitleExtractorOptions candidate = base_options;
          candidate.tagger.epochs = epochs;
          candidate.type_aware = type_aware;
          candidate.tagger.cross_context_with_tokens = type_aware;
          candidate.use_lexicon_features = lexicon;
          candidates.push_back(candidate);
        }
      }
    }
    extract::TitleExtractorOptions best_options = base_options;
    double best_f1 = -1.0;
    for (const auto& candidate : candidates) {
      extract::TitleExtractor trial;
      Rng fit_rng = rng.Fork();
      trial.Fit(tune_train, candidate, fit_rng);
      const double f1 =
          Evaluate(trial, dev, false, nullptr, {}).f1;
      if (f1 > best_f1) {
        best_f1 = f1;
        best_options = candidate;
      }
    }
    Rng fit_rng = rng.Fork();
    extractor.Fit(train, best_options, fit_rng);
    cost += costs.tuning;
    record("tuned_model",
           Evaluate(extractor, test, false, nullptr, {}));
  }

  // Stage 4: post-processing — consistency cleaning learned from the
  // catalog population (rule-based filtering in manual mode is the same
  // computation; the cost differs).
  CatalogCleaner cleaner;
  {
    std::vector<CatalogAssertion> corpus;
    for (const auto& product : catalog.products()) {
      for (const auto& [attr, value] : product.catalog_values) {
        corpus.push_back(CatalogAssertion{product.id,
                                          catalog.taxonomy().Name(
                                              product.type),
                                          attr, value, product.title});
      }
    }
    cleaner.Fit(corpus);
  }
  cost += costs.postprocessing;
  const auto cleaned_score = Evaluate(extractor, test, true, &cleaner,
                                      options.cleaning);
  record("postprocessed", cleaned_score);

  // Stage 5: pre-publish gate.
  cost += costs.evaluation;
  result.final_f1 = cleaned_score.f1;
  result.passed_gate = cleaned_score.f1 >= options.gate_f1;
  result.total_cost_person_days = cost;
  record(result.passed_gate ? "gate_passed" : "gate_failed",
         cleaned_score);
  return result;
}

}  // namespace kg::textrich
