#ifndef KGRAPH_TEXTRICH_RELATED_PRODUCTS_H_
#define KGRAPH_TEXTRICH_RELATED_PRODUCTS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "synth/behavior_generator.h"
#include "synth/catalog_generator.h"

namespace kg::textrich {

/// Relationship between two products mined from engagement.
enum class RelatedKind {
  kSubstitute,   ///< Interchangeable alternatives (co-viewed peers).
  kComplement,   ///< Bought together across categories (P-Companion).
};

struct RelatedPair {
  uint32_t a = 0;
  uint32_t b = 0;
  RelatedKind kind = RelatedKind::kSubstitute;
  double score = 0.0;
};

/// P-Companion-lite (§3.1: behavior signals "are also used to establish
/// the substitutes and complements between products"). The heuristics:
///  * substitutes: products co-VIEWED often — the customer compared them
///    before choosing one;
///  * complements: products co-PURCHASED often but NOT frequently
///    co-viewed — bought together, not compared (diversified
///    complementary recommendation).
struct RelatedProductsOptions {
  /// Minimum co-engagement events for a pair to be considered.
  size_t min_support = 3;
  /// A co-purchased pair with co-view support above this fraction of its
  /// co-purchase support is reclassified as substitute-ish and dropped
  /// from complements.
  double max_coview_ratio_for_complement = 0.5;
};

/// Mines substitute and complement pairs from a behavior log.
std::vector<RelatedPair> MineRelatedProducts(
    const synth::BehaviorLog& log, const RelatedProductsOptions& options);

/// Quality of mined pairs against the generator's latent structure:
/// substitutes should share a taxonomy category; complements should
/// cross categories.
struct RelatedScore {
  size_t substitutes = 0;
  size_t complements = 0;
  double substitute_same_category_rate = 0.0;
  double complement_cross_category_rate = 0.0;
};

RelatedScore ScoreRelatedProducts(const synth::ProductCatalog& catalog,
                                  const std::vector<RelatedPair>& pairs);

}  // namespace kg::textrich

#endif  // KGRAPH_TEXTRICH_RELATED_PRODUCTS_H_
