#include "textrich/related_products.h"

#include <algorithm>

#include "common/hash.h"

namespace kg::textrich {

namespace {

using PairKey = std::pair<uint32_t, uint32_t>;

PairKey Key(uint32_t a, uint32_t b) {
  return a < b ? PairKey{a, b} : PairKey{b, a};
}

}  // namespace

std::vector<RelatedPair> MineRelatedProducts(
    const synth::BehaviorLog& log, const RelatedProductsOptions& options) {
  std::map<PairKey, size_t> co_view, co_purchase;
  for (const auto& p : log.co_views) {
    if (p.a == p.b) continue;
    ++co_view[Key(p.a, p.b)];
  }
  for (const auto& p : log.co_purchases) {
    if (p.a == p.b) continue;
    ++co_purchase[Key(p.a, p.b)];
  }

  std::vector<RelatedPair> out;
  for (const auto& [key, views] : co_view) {
    if (views < options.min_support) continue;
    out.push_back({key.first, key.second, RelatedKind::kSubstitute,
                   static_cast<double>(views)});
  }
  for (const auto& [key, purchases] : co_purchase) {
    if (purchases < options.min_support) continue;
    auto cv = co_view.find(key);
    const double view_ratio =
        cv == co_view.end()
            ? 0.0
            : static_cast<double>(cv->second) /
                  static_cast<double>(purchases);
    if (view_ratio > options.max_coview_ratio_for_complement) continue;
    out.push_back({key.first, key.second, RelatedKind::kComplement,
                   static_cast<double>(purchases)});
  }
  std::sort(out.begin(), out.end(),
            [](const RelatedPair& a, const RelatedPair& b) {
              return a.score > b.score;
            });
  return out;
}

RelatedScore ScoreRelatedProducts(const synth::ProductCatalog& catalog,
                                  const std::vector<RelatedPair>& pairs) {
  RelatedScore score;
  const auto& taxonomy = catalog.taxonomy();
  auto category_of = [&](uint32_t product) {
    const auto type = catalog.products()[product].type;
    const auto& parents = taxonomy.Parents(type);
    return parents.empty() ? type : parents[0];
  };
  size_t sub_same = 0, comp_cross = 0;
  for (const RelatedPair& p : pairs) {
    const bool same = category_of(p.a) == category_of(p.b);
    if (p.kind == RelatedKind::kSubstitute) {
      ++score.substitutes;
      sub_same += same;
    } else {
      ++score.complements;
      comp_cross += !same;
    }
  }
  if (score.substitutes > 0) {
    score.substitute_same_category_rate =
        static_cast<double>(sub_same) / score.substitutes;
  }
  if (score.complements > 0) {
    score.complement_cross_category_rate =
        static_cast<double>(comp_cross) / score.complements;
  }
  return score;
}

}  // namespace kg::textrich
