#ifndef KGRAPH_TEXTRICH_PRODUCT_GRAPH_H_
#define KGRAPH_TEXTRICH_PRODUCT_GRAPH_H_

#include <map>
#include <string>

#include "graph/knowledge_graph.h"
#include "synth/catalog_generator.h"
#include "textrich/taxonomy_mining.h"

namespace kg::textrich {

/// Builds the text-rich product KG of Figure 1b: product entity nodes on
/// one side, free-text value nodes on the other (bipartite but for
/// taxonomy and synonym edges), class nodes for the type hierarchy.
/// `assertions` carries the (cleaned) attribute values per product id;
/// `mined` optionally contributes synonym edges between text nodes.
graph::KnowledgeGraph BuildProductGraph(
    const synth::ProductCatalog& catalog,
    const std::map<uint32_t, std::map<std::string, std::string>>&
        assertions,
    const MinedTaxonomy* mined = nullptr);

/// Shape statistics used to verify the "mostly bipartite" property the
/// paper ascribes to text-rich KGs.
struct ProductGraphStats {
  size_t product_nodes = 0;
  size_t text_nodes = 0;
  size_t class_nodes = 0;
  size_t triples = 0;
  /// Fraction of triples whose object is a free-text node.
  double text_object_fraction = 0.0;
};

ProductGraphStats ComputeProductGraphStats(
    const graph::KnowledgeGraph& kg);

}  // namespace kg::textrich

#endif  // KGRAPH_TEXTRICH_PRODUCT_GRAPH_H_
