#include "textrich/product_graph.h"

namespace kg::textrich {

graph::KnowledgeGraph BuildProductGraph(
    const synth::ProductCatalog& catalog,
    const std::map<uint32_t, std::map<std::string, std::string>>&
        assertions,
    const MinedTaxonomy* mined) {
  using graph::NodeKind;
  graph::KnowledgeGraph kg;
  const graph::Provenance prov{"catalog", 1.0, 0};

  // Taxonomy as class nodes with subtype_of edges.
  const auto& taxonomy = catalog.taxonomy();
  for (graph::TypeId t = 0; t < taxonomy.size(); ++t) {
    kg.AddNode(taxonomy.Name(t), NodeKind::kClass);
    for (graph::TypeId parent : taxonomy.Parents(t)) {
      kg.AddTriple(taxonomy.Name(t), "subtype_of", taxonomy.Name(parent),
                   NodeKind::kClass, NodeKind::kClass, prov);
    }
  }

  for (const auto& product : catalog.products()) {
    const std::string product_node = "product:" +
                                     std::to_string(product.id);
    kg.AddTriple(product_node, "has_type",
                 taxonomy.Name(product.type), NodeKind::kEntity,
                 NodeKind::kClass, prov);
    kg.AddTriple(product_node, "brand", product.brand, NodeKind::kEntity,
                 NodeKind::kText, prov);
    auto it = assertions.find(product.id);
    if (it == assertions.end()) continue;
    for (const auto& [attr, value] : it->second) {
      kg.AddTriple(product_node, attr, value, NodeKind::kEntity,
                   NodeKind::kText, prov);
    }
  }

  if (mined != nullptr) {
    const graph::Provenance mined_prov{"behavior_mining", 0.9, 0};
    for (const SynonymPair& pair : mined->synonyms) {
      kg.AddTriple(pair.a, "synonym", pair.b, NodeKind::kText,
                   NodeKind::kText, mined_prov);
    }
  }
  return kg;
}

ProductGraphStats ComputeProductGraphStats(
    const graph::KnowledgeGraph& kg) {
  ProductGraphStats stats;
  for (graph::NodeId id = 0; id < kg.num_nodes(); ++id) {
    switch (kg.GetNodeKind(id)) {
      case graph::NodeKind::kEntity:
        ++stats.product_nodes;
        break;
      case graph::NodeKind::kText:
        ++stats.text_nodes;
        break;
      case graph::NodeKind::kClass:
        ++stats.class_nodes;
        break;
    }
  }
  size_t text_objects = 0;
  const auto all = kg.AllTriples();
  stats.triples = all.size();
  for (graph::TripleId id : all) {
    if (kg.GetNodeKind(kg.triple(id).object) == graph::NodeKind::kText) {
      ++text_objects;
    }
  }
  stats.text_object_fraction =
      stats.triples == 0
          ? 0.0
          : static_cast<double>(text_objects) /
                static_cast<double>(stats.triples);
  return stats;
}

}  // namespace kg::textrich
