#ifndef KGRAPH_TEXTRICH_DESCRIPTION_EXTRACTOR_H_
#define KGRAPH_TEXTRICH_DESCRIPTION_EXTRACTOR_H_

#include <map>
#include <string>
#include <vector>

namespace kg::textrich {

/// Rule-based extraction from product descriptions (§3.1 grounds product
/// knowledge in "product names, descriptions, and bullets"; descriptions
/// carry semi-regular "attribute: value" phrasing that cheap rules
/// harvest at high precision). Complements the title NER extractor —
/// AutoKnow merges both streams.
struct DescriptionExtraction {
  std::string attribute;
  std::string value;
};

/// Extracts "attr: value" statements from `description`, keeping only
/// attributes in `known_attributes` (the closed-IE schema). Values are
/// trimmed of trailing punctuation.
std::vector<DescriptionExtraction> ExtractFromDescription(
    const std::string& description,
    const std::vector<std::string>& known_attributes);

/// Merges extraction streams by per-attribute priority: earlier streams
/// win (the caller orders them by trust, e.g. title NER > description
/// rules > structured catalog).
std::map<std::string, std::string> MergeExtractionStreams(
    const std::vector<std::map<std::string, std::string>>& streams);

}  // namespace kg::textrich

#endif  // KGRAPH_TEXTRICH_DESCRIPTION_EXTRACTOR_H_
