#include "extract/pattern_bootstrap.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/strings.h"

namespace kg::extract {

namespace {

// Applies one infix pattern to a sentence: subject = text before the
// infix, object = text after it up to the next clause boundary. Returns
// false when the pattern does not occur or yields empty spans.
bool ApplyPattern(const std::string& sentence, const std::string& infix,
                  std::string* subject, std::string* object) {
  const size_t pos = sentence.find(infix);
  if (pos == std::string::npos || pos == 0) return false;
  *subject = std::string(Trim(sentence.substr(0, pos)));
  // Strip common determiners/lead-ins so "the movie X" yields "X".
  for (const char* lead : {"the movie ", "critics called "}) {
    if (StartsWith(*subject, lead)) {
      *subject = subject->substr(std::string(lead).size());
    }
  }
  std::string rest = sentence.substr(pos + infix.size());
  // Object ends at the first clause boundary.
  size_t end = rest.size();
  for (const char* boundary : {" .", " ,"}) {
    const size_t b = rest.find(boundary);
    if (b != std::string::npos) end = std::min(end, b);
  }
  *object = std::string(Trim(rest.substr(0, end)));
  return !subject->empty() && !object->empty();
}

}  // namespace

BootstrapResult PatternBootstrapper::Run(
    const std::vector<std::string>& sentences,
    const std::map<std::string, std::string>& initial_seeds,
    const BootstrapOptions& options) const {
  BootstrapResult result;
  std::map<std::string, std::string> seeds = initial_seeds;
  std::map<std::string, double> pair_confidence;  // "s\x01o" -> conf.

  for (size_t round = 0; round < options.iterations; ++round) {
    BootstrapRound round_report;

    // 1. Harvest candidate infixes from seed occurrences.
    std::map<std::string, std::set<std::string>> infix_support;
    for (const std::string& sentence : sentences) {
      for (const auto& [subject, object] : seeds) {
        const size_t s_pos = sentence.find(subject);
        if (s_pos == std::string::npos) continue;
        const size_t o_pos =
            sentence.find(object, s_pos + subject.size());
        if (o_pos == std::string::npos) continue;
        const std::string infix = sentence.substr(
            s_pos + subject.size(), o_pos - s_pos - subject.size());
        if (infix.empty() || infix.size() > options.max_infix_length) {
          continue;
        }
        infix_support[infix].insert(subject);
      }
    }

    // 2. Score candidates by seed consistency (Snowball): contradictions
    //    are negatives, novel subjects neutral.
    std::vector<TextPattern> kept;
    for (const auto& [infix, supporters] : infix_support) {
      if (supporters.size() < options.min_pattern_support) continue;
      size_t positive = 0, negative = 0;
      for (const std::string& sentence : sentences) {
        std::string subject, object;
        if (!ApplyPattern(sentence, infix, &subject, &object)) continue;
        auto it = seeds.find(subject);
        if (it == seeds.end()) continue;
        if (it->second == object) ++positive;
        else ++negative;
      }
      if (positive + negative == 0) continue;
      const double precision =
          static_cast<double>(positive) / (positive + negative);
      if (precision < options.pattern_precision_threshold) continue;
      kept.push_back(TextPattern{infix, precision, supporters.size()});
    }
    round_report.patterns_kept = kept.size();

    // 3. Corpus-wide extraction with surviving patterns.
    std::map<std::string, std::pair<std::string, double>> best_for_subject;
    for (const std::string& sentence : sentences) {
      for (const TextPattern& pattern : kept) {
        std::string subject, object;
        if (!ApplyPattern(sentence, pattern.infix, &subject, &object)) {
          continue;
        }
        ++round_report.extractions;
        const std::string key = subject + "\x01" + object;
        auto it = pair_confidence.find(key);
        if (it == pair_confidence.end() ||
            it->second < pattern.precision) {
          pair_confidence[key] = pattern.precision;
        }
        auto& best = best_for_subject[subject];
        if (pattern.precision > best.second) {
          best = {object, pattern.precision};
        }
      }
    }

    // 4. Promote the most confident novel subjects into the seeds.
    std::vector<std::pair<double, std::string>> candidates;
    for (const auto& [subject, best] : best_for_subject) {
      if (seeds.count(subject)) continue;
      candidates.emplace_back(best.second, subject);
    }
    std::sort(candidates.rbegin(), candidates.rend());
    const size_t promote =
        std::min(options.promote_per_round, candidates.size());
    for (size_t i = 0; i < promote; ++i) {
      const std::string& subject = candidates[i].second;
      seeds[subject] = best_for_subject[subject].first;
    }
    round_report.promoted_to_seeds = promote;
    round_report.cumulative_pairs = pair_confidence.size();
    result.rounds.push_back(round_report);
    result.patterns = std::move(kept);
    if (promote == 0) break;  // Fixed point.
  }

  result.pairs.reserve(pair_confidence.size());
  for (const auto& [key, confidence] : pair_confidence) {
    const size_t sep = key.find('\x01');
    ExtractedPair pair;
    pair.subject = key.substr(0, sep);
    pair.object = key.substr(sep + 1);
    pair.confidence = confidence;
    result.pairs.push_back(std::move(pair));
  }
  std::sort(result.pairs.begin(), result.pairs.end(),
            [](const ExtractedPair& a, const ExtractedPair& b) {
              return a.confidence > b.confidence;
            });
  return result;
}

}  // namespace kg::extract
