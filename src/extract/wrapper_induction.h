#ifndef KGRAPH_EXTRACT_WRAPPER_INDUCTION_H_
#define KGRAPH_EXTRACT_WRAPPER_INDUCTION_H_

#include <map>
#include <string>
#include <vector>

#include "extract/dom.h"

namespace kg::extract {

/// A manual annotation on one page: attribute -> node holding the value.
using PageAnnotation = std::map<std::string, DomNodeId>;

/// Wrapper induction (Kushmerick 1997 lineage, §2.3): from a handful of
/// annotated pages of ONE site, induce per-attribute extraction rules that
/// generalize across the site's template. Rules are tried in order:
///   1. the majority absolute NodePath of the annotated value nodes;
///   2. a label-anchored rule (the text of the sibling label cell), which
///      survives row insertions/deletions that shift absolute paths.
class Wrapper {
 public:
  Wrapper() = default;

  /// Induces rules from `pages` and their `annotations` (parallel
  /// vectors). Requires at least one annotation per attribute.
  static Wrapper Induce(const std::vector<const DomPage*>& pages,
                        const std::vector<PageAnnotation>& annotations);

  /// Applies the wrapper to a page of the same site.
  std::vector<Extraction> Extract(const DomPage& page) const;

  /// Attributes this wrapper extracts.
  std::vector<std::string> Attributes() const;

 private:
  struct Rule {
    std::string path;        ///< Majority absolute path ("" = none).
    std::string label_text;  ///< Anchor label text ("" = none).
  };
  std::map<std::string, Rule> rules_;
};

/// Finds the value cell following a label cell whose text equals
/// `label_text` (exposed for reuse by the open extractor).
DomNodeId FindValueByLabel(const DomPage& page,
                           const std::string& label_text);

}  // namespace kg::extract

#endif  // KGRAPH_EXTRACT_WRAPPER_INDUCTION_H_
