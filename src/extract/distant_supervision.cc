#include "extract/distant_supervision.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "text/tokenize.h"

namespace kg::extract {

void SeedKnowledge::AddEntity(const std::string& name,
                              std::map<std::string, std::string> attributes) {
  entities_[text::NormalizeForMatch(name)] = std::move(attributes);
}

SeedKnowledge SeedKnowledge::FromKnowledgeGraph(
    const graph::KnowledgeGraph& kg, const std::string& name_predicate) {
  SeedKnowledge seed;
  auto name_pred = kg.FindPredicate(name_predicate);
  if (!name_pred.ok()) return seed;
  for (graph::TripleId id : kg.TriplesWithPredicate(*name_pred)) {
    const graph::Triple& t = kg.triple(id);
    const std::string& surface = kg.NodeName(t.object);
    std::map<std::string, std::string> attrs;
    for (graph::TripleId other : kg.TriplesWithSubject(t.subject)) {
      const graph::Triple& ot = kg.triple(other);
      if (ot.predicate == *name_pred) continue;
      if (kg.GetNodeKind(ot.object) != graph::NodeKind::kText) continue;
      attrs[kg.PredicateName(ot.predicate)] = kg.NodeName(ot.object);
    }
    seed.AddEntity(surface, std::move(attrs));
  }
  return seed;
}

const std::map<std::string, std::string>* SeedKnowledge::Find(
    const std::string& surface) const {
  auto it = entities_.find(text::NormalizeForMatch(surface));
  return it == entities_.end() ? nullptr : &it->second;
}

std::vector<std::string> SeedKnowledge::KnownAttributes() const {
  std::vector<std::string> attrs;
  for (const auto& [name, attributes] : entities_) {
    for (const auto& [attr, value] : attributes) {
      if (std::find(attrs.begin(), attrs.end(), attr) == attrs.end()) {
        attrs.push_back(attr);
      }
    }
  }
  std::sort(attrs.begin(), attrs.end());
  return attrs;
}

std::string DistantlySupervisedExtractor::TopicOf(const DomPage& page) {
  for (const DomNode& node : page.nodes) {
    if (node.tag == "h1" && !node.text.empty()) return node.text;
  }
  return "";
}

std::vector<std::string> DistantlySupervisedExtractor::NodeFeatures(
    const DomPage& page, DomNodeId id,
    const std::vector<DomNodeId>& parents) {
  const DomNode& node = page.nodes[id];
  std::vector<std::string> feats;
  feats.push_back("tag=" + node.tag);
  if (!node.css_class.empty()) feats.push_back("class=" + node.css_class);
  // Depth.
  size_t depth = 0;
  for (DomNodeId cur = id; parents[cur] != kInvalidDomNode;
       cur = parents[cur]) {
    ++depth;
  }
  feats.push_back("depth=" + std::to_string(depth));
  // Preceding label sibling — the single most informative signal on
  // template pages.
  const DomNodeId parent = parents[id];
  if (parent != kInvalidDomNode) {
    std::string label;
    size_t position = 0, my_position = 0;
    for (DomNodeId sibling : page.nodes[parent].children) {
      if (sibling == id) {
        my_position = position;
        break;
      }
      if (!page.nodes[sibling].text.empty()) {
        label = page.nodes[sibling].text;
      }
      ++position;
    }
    if (!label.empty()) {
      feats.push_back("label=" + text::NormalizeForMatch(label));
    }
    feats.push_back("sibpos=" + std::to_string(my_position));
    feats.push_back("ptag=" + page.nodes[parent].tag);
    // Grandparent ordinal among same-tag rows (row index in a table).
    const DomNodeId grand = parents[parent];
    if (grand != kInvalidDomNode) {
      size_t row = 0;
      for (DomNodeId uncle : page.nodes[grand].children) {
        if (uncle == parent) break;
        if (page.nodes[uncle].tag == page.nodes[parent].tag) ++row;
      }
      feats.push_back("row=" + std::to_string(row));
    }
  }
  // Text shape.
  size_t digits = 0;
  for (char c : node.text) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  const size_t tokens = text::Tokenize(node.text).size();
  feats.push_back(digits * 2 >= node.text.size() ? "numeric" : "textual");
  feats.push_back("len=" + std::to_string(std::min<size_t>(tokens, 6)));
  return feats;
}

size_t DistantlySupervisedExtractor::Fit(
    const std::vector<const DomPage*>& pages, const SeedKnowledge& seed,
    const Options& options) {
  options_ = options;
  classes_ = {"<none>"};
  std::map<std::string, int> class_index{{"<none>", 0}};
  for (const std::string& attr : seed.KnownAttributes()) {
    class_index.emplace(attr, static_cast<int>(classes_.size()));
    classes_.push_back(attr);
  }

  std::vector<std::vector<std::string>> docs;
  std::vector<int> labels;
  size_t matched_pages = 0, matches = 0;
  for (const DomPage* page : pages) {
    if (matched_pages >= options.max_training_pages) break;
    const std::string topic = TopicOf(*page);
    const auto* known = seed.Find(topic);
    if (known == nullptr || known->empty()) continue;
    ++matched_pages;
    const auto parents = ParentMap(*page);
    for (DomNodeId id : page->TextNodes()) {
      const std::string normalized =
          text::NormalizeForMatch(page->nodes[id].text);
      std::string matched_attr;
      for (const auto& [attr, value] : *known) {
        if (normalized == text::NormalizeForMatch(value)) {
          matched_attr = attr;
          break;
        }
      }
      // Topic header is not an attribute value.
      if (page->nodes[id].tag == "h1") continue;
      docs.push_back(NodeFeatures(*page, id, parents));
      if (matched_attr.empty()) {
        labels.push_back(0);
      } else {
        labels.push_back(class_index[matched_attr]);
        ++matches;
      }
    }
  }
  if (matches == 0) {
    trained_ = false;
    return 0;
  }
  classifier_.Fit(docs, labels, /*alpha=*/0.5);
  trained_ = true;
  return matches;
}

std::vector<Extraction> DistantlySupervisedExtractor::Extract(
    const DomPage& page) const {
  std::vector<Extraction> out;
  if (!trained_) return out;
  const auto parents = ParentMap(page);
  // Per attribute keep the best-scoring node on the page.
  std::map<std::string, Extraction> best;
  for (DomNodeId id : page.TextNodes()) {
    if (page.nodes[id].tag == "h1") continue;
    const auto feats = NodeFeatures(page, id, parents);
    const auto scores = classifier_.Scores(feats);
    // Softmax over classes for a calibrated-ish confidence.
    double max_score = scores[0];
    for (double s : scores) max_score = std::max(max_score, s);
    double z = 0.0;
    for (double s : scores) z += std::exp(s - max_score);
    for (size_t c = 1; c < classes_.size(); ++c) {
      const double p = std::exp(scores[c] - max_score) / z;
      if (p < options_.min_confidence) continue;
      auto it = best.find(classes_[c]);
      if (it == best.end() || p > it->second.confidence) {
        best[classes_[c]] =
            Extraction{classes_[c], page.nodes[id].text, p, id};
      }
    }
  }
  out.reserve(best.size());
  for (auto& [attr, extraction] : best) out.push_back(std::move(extraction));
  return out;
}

}  // namespace kg::extract
