#include "extract/wrapper_induction.h"

#include <algorithm>

#include "common/logging.h"

namespace kg::extract {

DomNodeId FindValueByLabel(const DomPage& page,
                           const std::string& label_text) {
  if (label_text.empty()) return kInvalidDomNode;
  const auto parents = ParentMap(page);
  for (DomNodeId id = 0; id < page.nodes.size(); ++id) {
    if (page.nodes[id].text != label_text) continue;
    const DomNodeId parent = parents[id];
    if (parent == kInvalidDomNode) continue;
    // The value is the next sibling with text under the same parent.
    const auto& siblings = page.nodes[parent].children;
    bool past_label = false;
    for (DomNodeId sibling : siblings) {
      if (sibling == id) {
        past_label = true;
        continue;
      }
      if (past_label && !page.nodes[sibling].text.empty()) {
        return sibling;
      }
    }
  }
  return kInvalidDomNode;
}

Wrapper Wrapper::Induce(const std::vector<const DomPage*>& pages,
                        const std::vector<PageAnnotation>& annotations) {
  KG_CHECK(pages.size() == annotations.size());
  Wrapper wrapper;
  // attribute -> (path -> votes), (label -> votes).
  std::map<std::string, std::map<std::string, int>> path_votes;
  std::map<std::string, std::map<std::string, int>> label_votes;
  for (size_t p = 0; p < pages.size(); ++p) {
    const DomPage& page = *pages[p];
    const auto parents = ParentMap(page);
    for (const auto& [attr, node] : annotations[p]) {
      KG_CHECK(node < page.nodes.size());
      ++path_votes[attr][NodePath(page, node)];
      // Label anchor: preceding sibling text under the same parent.
      const DomNodeId parent = parents[node];
      if (parent != kInvalidDomNode) {
        std::string label;
        for (DomNodeId sibling : page.nodes[parent].children) {
          if (sibling == node) break;
          if (!page.nodes[sibling].text.empty()) {
            label = page.nodes[sibling].text;
          }
        }
        if (!label.empty()) ++label_votes[attr][label];
      }
    }
  }
  auto majority = [](const std::map<std::string, int>& votes) {
    std::string best;
    int best_count = 0;
    for (const auto& [key, count] : votes) {
      if (count > best_count) {
        best_count = count;
        best = key;
      }
    }
    return best;
  };
  for (const auto& [attr, votes] : path_votes) {
    Rule rule;
    rule.path = majority(votes);
    auto it = label_votes.find(attr);
    if (it != label_votes.end()) rule.label_text = majority(it->second);
    wrapper.rules_[attr] = std::move(rule);
  }
  return wrapper;
}

std::vector<Extraction> Wrapper::Extract(const DomPage& page) const {
  std::vector<Extraction> out;
  for (const auto& [attr, rule] : rules_) {
    // Label anchoring first: it is invariant to row shifts, which are the
    // dominant template perturbation. When the rule has a label anchor
    // but the page lacks it, the attribute is absent from this page —
    // abstain rather than let the absolute path hit a shifted row. The
    // path is only a fallback for label-less rules.
    DomNodeId node = kInvalidDomNode;
    if (!rule.label_text.empty()) {
      node = FindValueByLabel(page, rule.label_text);
    } else if (!rule.path.empty()) {
      node = ResolvePath(page, rule.path);
    }
    if (node == kInvalidDomNode || page.nodes[node].text.empty()) continue;
    out.push_back(Extraction{attr, page.nodes[node].text, 0.97, node});
  }
  return out;
}

std::vector<std::string> Wrapper::Attributes() const {
  std::vector<std::string> attrs;
  attrs.reserve(rules_.size());
  for (const auto& [attr, rule] : rules_) attrs.push_back(attr);
  return attrs;
}

}  // namespace kg::extract
