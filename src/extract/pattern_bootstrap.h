#ifndef KGRAPH_EXTRACT_PATTERN_BOOTSTRAP_H_
#define KGRAPH_EXTRACT_PATTERN_BOOTSTRAP_H_

#include <map>
#include <string>
#include <vector>

namespace kg::extract {

/// A learned textual extraction pattern: the infix between subject and
/// object mentions ("<subject> was directed by <object> .").
struct TextPattern {
  std::string infix;
  double precision = 0.0;  ///< Seed-consistency estimate.
  size_t support = 0;      ///< Seed pairs that instantiated it.
};

/// One (subject, object) extraction with its provenance pattern.
struct ExtractedPair {
  std::string subject;
  std::string object;
  double confidence = 0.0;
  std::string pattern;
};

/// Per-iteration progress (the NELL "reading the web" loop).
struct BootstrapRound {
  size_t patterns_kept = 0;
  size_t extractions = 0;
  size_t promoted_to_seeds = 0;
  size_t cumulative_pairs = 0;  ///< Distinct pairs known after the round.
};

struct BootstrapResult {
  std::vector<ExtractedPair> pairs;      ///< Final deduplicated output.
  std::vector<TextPattern> patterns;     ///< Final pattern set.
  std::vector<BootstrapRound> rounds;
};

/// Snowball/NELL-style bootstrapped relation extraction from raw text
/// (§2.4: "NELL focuses on text extraction"; distant supervision per
/// Brin 1998 / Agichtein 2000 / Mintz 2009). The loop:
///   1. locate seed (subject, object) pairs in sentences, harvest the
///      infix between them as a candidate pattern;
///   2. score each pattern against the seed dictionary — an extraction
///      that CONTRADICTS a seed (same subject, different object) is a
///      negative, novel subjects are neutral (Snowball's scoring);
///   3. apply surviving patterns corpus-wide, promote the most confident
///      novel pairs into the seed dictionary, repeat.
/// Iterating trades precision for recall — the semantic-drift behavior
/// the paper's §2.4 volume-vs-quality discussion describes.
struct BootstrapOptions {
  size_t iterations = 3;
  /// Patterns below this seed-consistency are rejected.
  double pattern_precision_threshold = 0.75;
  /// Patterns must be instantiated by this many distinct seed pairs.
  size_t min_pattern_support = 3;
  /// Most-confident novel pairs promoted into the seeds per round.
  size_t promote_per_round = 100;
  /// Longest infix considered a pattern (characters).
  size_t max_infix_length = 60;
};

class PatternBootstrapper {
 public:
  /// Runs the loop over `sentences` starting from `seeds`
  /// (subject -> object; the relation is implicit).
  BootstrapResult Run(const std::vector<std::string>& sentences,
                      const std::map<std::string, std::string>& seeds,
                      const BootstrapOptions& options) const;
};

}  // namespace kg::extract

#endif  // KGRAPH_EXTRACT_PATTERN_BOOTSTRAP_H_
