#include "extract/opentag.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/strings.h"

namespace kg::extract {

std::vector<std::string> TitleExtractor::ContextOf(
    const AttributeExample& ex) const {
  std::vector<std::string> context;
  if (options_.attribute_conditioned) {
    context.push_back("attr=" + ex.attribute);
    if (options_.use_cluster_features && !ex.attribute_cluster.empty()) {
      context.push_back("cluster=" + ex.attribute_cluster);
    }
  }
  if (options_.type_aware) {
    if (!ex.type_name.empty()) context.push_back("type=" + ex.type_name);
    if (!ex.category_name.empty()) {
      context.push_back("cat=" + ex.category_name);
    }
  }
  if (options_.locale_aware && !ex.locale.empty()) {
    context.push_back("loc=" + ex.locale);
  }
  if (options_.use_extra_context) {
    for (const std::string& c : ex.extra_context) {
      context.push_back("sig=" + c);
    }
  }
  if (options_.use_lexicon_features) {
    for (const std::string& token : ex.lexicon_tokens) {
      context.push_back("lex=" + token);
    }
  }
  return context;
}

void TitleExtractor::Fit(const std::vector<AttributeExample>& examples,
                         const TitleExtractorOptions& options, Rng& rng) {
  KG_CHECK(!examples.empty());
  options_ = options;
  std::vector<ml::TaggedSequence> data;
  data.reserve(examples.size());
  for (const AttributeExample& ex : examples) {
    // Single-attribute tagging: gold spans carry the attribute label but
    // the tag alphabet stays B/I/O, conditioned on context.
    std::vector<text::Span> spans = ex.gold_spans;
    for (text::Span& s : spans) s.label = "V";
    auto tags = text::SpansToBio(spans, ex.tokens.size());
    KG_CHECK(tags.ok()) << tags.status();
    ml::TaggedSequence seq;
    seq.tokens = ex.tokens;
    seq.context = ContextOf(ex);
    seq.tags = std::move(tags).value();
    data.push_back(std::move(seq));
  }
  tagger_.Fit(data, options.tagger, rng);
  trained_ = true;
}

std::vector<text::Span> TitleExtractor::Extract(
    const AttributeExample& example) const {
  KG_CHECK(trained_) << "Extract before Fit";
  const auto tags = tagger_.Predict(example.tokens, ContextOf(example));
  auto spans = text::BioToSpans(tags);
  for (text::Span& s : spans) s.label = example.attribute;
  return spans;
}

std::vector<std::string> TitleExtractor::ExtractValues(
    const AttributeExample& example) const {
  std::vector<std::string> values;
  for (const text::Span& s : Extract(example)) {
    std::vector<std::string> tokens(
        example.tokens.begin() + static_cast<long>(s.begin),
        example.tokens.begin() + static_cast<long>(s.end));
    values.push_back(Join(tokens, " "));
  }
  return values;
}

void TypeClassifier::Fit(
    const std::vector<std::vector<std::string>>& token_lists,
    const std::vector<std::string>& type_names) {
  KG_CHECK(token_lists.size() == type_names.size());
  std::map<std::string, int> index;
  std::vector<int> labels(type_names.size());
  type_names_.clear();
  for (size_t i = 0; i < type_names.size(); ++i) {
    auto [it, inserted] =
        index.emplace(type_names[i], static_cast<int>(type_names_.size()));
    if (inserted) type_names_.push_back(type_names[i]);
    labels[i] = it->second;
  }
  nb_.Fit(token_lists, labels);
}

std::string TypeClassifier::Predict(
    const std::vector<std::string>& tokens) const {
  KG_CHECK(!type_names_.empty());
  return type_names_[static_cast<size_t>(nb_.Predict(tokens))];
}

}  // namespace kg::extract
