#ifndef KGRAPH_EXTRACT_OPEN_EXTRACTION_H_
#define KGRAPH_EXTRACT_OPEN_EXTRACTION_H_

#include <string>
#include <vector>

#include "extract/dom.h"

namespace kg::extract {

/// OpenCeres-lite OpenIE (§2.3): extracts (attribute, value) pairs with
/// NO schema — the attribute name is the page's own label text. Finds
/// label/value sibling structures heuristically. Yield is high (it picks
/// up attributes no ontology knows), precision is lower (filler rows and
/// navigation look exactly like label/value pairs), matching the Figure 3
/// trade-off.
struct OpenExtractionOptions {
  /// Labels longer than this many tokens are not attribute names.
  size_t max_label_tokens = 3;
  /// Values longer than this many tokens are prose, not values.
  size_t max_value_tokens = 6;
};

/// Extracts open pairs from `page`. The attribute of each Extraction is
/// the normalized label text ("directed by" rather than a KG predicate).
std::vector<Extraction> OpenExtract(const DomPage& page,
                                    const OpenExtractionOptions& options);

/// Normalizes a page label into an open attribute name: lowercase,
/// punctuation stripped ("Directed by:" -> "directed by").
std::string NormalizeOpenAttribute(const std::string& label);

}  // namespace kg::extract

#endif  // KGRAPH_EXTRACT_OPEN_EXTRACTION_H_
