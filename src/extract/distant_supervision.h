#ifndef KGRAPH_EXTRACT_DISTANT_SUPERVISION_H_
#define KGRAPH_EXTRACT_DISTANT_SUPERVISION_H_

#include <map>
#include <string>
#include <vector>

#include "extract/dom.h"
#include "graph/knowledge_graph.h"
#include "ml/naive_bayes.h"

namespace kg::extract {

/// A seed knowledge base for distant supervision: entity surface name ->
/// (attribute -> value). Built from an existing KG's triples; this is the
/// "compare knowledge in existing KGs and data on the websites" step of
/// §2.3.
class SeedKnowledge {
 public:
  /// Adds one entity's known attributes under its surface `name`.
  void AddEntity(const std::string& name,
                 std::map<std::string, std::string> attributes);

  /// Builds seed knowledge from text-valued triples of `kg`: subjects
  /// become entities keyed by their `name_predicate` value; every other
  /// text predicate becomes an attribute.
  static SeedKnowledge FromKnowledgeGraph(const graph::KnowledgeGraph& kg,
                                          const std::string& name_predicate);

  /// Entity lookup by normalized surface form; nullptr when unknown.
  const std::map<std::string, std::string>* Find(
      const std::string& surface) const;

  size_t size() const { return entities_.size(); }

  /// The set of attributes seen anywhere in the seed (the ClosedIE
  /// schema).
  std::vector<std::string> KnownAttributes() const;

 private:
  // normalized name -> attributes.
  std::map<std::string, std::map<std::string, std::string>> entities_;
};

/// Ceres-lite: distantly supervised ClosedIE extraction for ONE site.
/// Training pages whose topic entity matches the seed get auto-annotated
/// (value node <- KG value match); a per-site node classifier then
/// extracts from every page, including pages the seed knows nothing
/// about — which is where the knowledge gain comes from.
class DistantlySupervisedExtractor {
 public:
  struct Options {
    /// Minimum classifier confidence to emit an extraction.
    double min_confidence = 0.6;
    /// Maximum auto-annotated pages used for training.
    size_t max_training_pages = 200;
  };

  DistantlySupervisedExtractor() = default;

  /// Trains on `pages` of one site against `seed`. Returns the number of
  /// auto-annotated (page, attribute) training matches found.
  size_t Fit(const std::vector<const DomPage*>& pages,
             const SeedKnowledge& seed, const Options& options);

  /// Extracts attribute-value pairs from one page of the same site.
  std::vector<Extraction> Extract(const DomPage& page) const;

  /// The page's topic surface form (its h1/header text).
  static std::string TopicOf(const DomPage& page);

 private:
  /// Categorical feature tokens describing a candidate value node.
  static std::vector<std::string> NodeFeatures(const DomPage& page,
                                               DomNodeId id,
                                               const std::vector<DomNodeId>&
                                                   parents);

  ml::MultinomialNaiveBayes classifier_;
  std::vector<std::string> classes_;  ///< index -> attribute; 0 = none.
  Options options_;
  bool trained_ = false;
};

}  // namespace kg::extract

#endif  // KGRAPH_EXTRACT_DISTANT_SUPERVISION_H_
