#include "extract/dom.h"

#include "common/logging.h"
#include "common/strings.h"

namespace kg::extract {

DomNodeId DomPage::AddNode(DomNodeId parent, std::string tag,
                           std::string css_class, std::string text) {
  const DomNodeId id = static_cast<DomNodeId>(nodes.size());
  if (parent == kInvalidDomNode) {
    KG_CHECK(nodes.empty()) << "root must be the first node";
  } else {
    KG_CHECK(parent < nodes.size());
  }
  nodes.push_back(DomNode{std::move(tag), std::move(css_class),
                          std::move(text), {}});
  if (parent != kInvalidDomNode) nodes[parent].children.push_back(id);
  return id;
}

std::vector<DomNodeId> DomPage::TextNodes() const {
  std::vector<DomNodeId> out;
  for (DomNodeId id = 0; id < nodes.size(); ++id) {
    if (!nodes[id].text.empty()) out.push_back(id);
  }
  return out;
}

std::string DomPage::SubtreeText(DomNodeId id) const {
  KG_CHECK(id < nodes.size());
  std::string out;
  std::vector<DomNodeId> stack{id};
  // Manual DFS preserving document order.
  std::vector<DomNodeId> order;
  while (!stack.empty()) {
    const DomNodeId cur = stack.back();
    stack.pop_back();
    order.push_back(cur);
    const auto& children = nodes[cur].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  for (DomNodeId n : order) {
    if (nodes[n].text.empty()) continue;
    if (!out.empty()) out.push_back(' ');
    out.append(nodes[n].text);
  }
  return out;
}

std::vector<DomNodeId> ParentMap(const DomPage& page) {
  std::vector<DomNodeId> parent(page.nodes.size(), kInvalidDomNode);
  for (DomNodeId id = 0; id < page.nodes.size(); ++id) {
    for (DomNodeId child : page.nodes[id].children) {
      parent[child] = id;
    }
  }
  return parent;
}

std::string NodePath(const DomPage& page, DomNodeId id) {
  KG_CHECK(id < page.nodes.size());
  const auto parents = ParentMap(page);
  std::vector<std::string> segments;
  DomNodeId cur = id;
  while (cur != kInvalidDomNode) {
    const DomNodeId parent = parents[cur];
    size_t ordinal = 0;
    if (parent != kInvalidDomNode) {
      for (DomNodeId sibling : page.nodes[parent].children) {
        if (sibling == cur) break;
        if (page.nodes[sibling].tag == page.nodes[cur].tag) ++ordinal;
      }
    }
    segments.push_back(page.nodes[cur].tag + "[" +
                       std::to_string(ordinal) + "]");
    cur = parent;
  }
  std::string path;
  for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
    path.push_back('/');
    path.append(*it);
  }
  return path;
}

DomNodeId ResolvePath(const DomPage& page, const std::string& path) {
  if (page.nodes.empty()) return kInvalidDomNode;
  std::vector<std::string> segments;
  for (const auto& seg : Split(path, '/')) {
    if (!seg.empty()) segments.push_back(seg);
  }
  if (segments.empty()) return kInvalidDomNode;
  auto parse = [](const std::string& seg) -> std::pair<std::string, size_t> {
    const size_t bracket = seg.find('[');
    if (bracket == std::string::npos) return {seg, 0};
    return {seg.substr(0, bracket),
            static_cast<size_t>(
                std::stoul(seg.substr(bracket + 1,
                                      seg.size() - bracket - 2)))};
  };
  // Match the root segment.
  auto [root_tag, root_ord] = parse(segments[0]);
  if (page.nodes[0].tag != root_tag || root_ord != 0) {
    return kInvalidDomNode;
  }
  DomNodeId cur = 0;
  for (size_t s = 1; s < segments.size(); ++s) {
    auto [tag, ordinal] = parse(segments[s]);
    DomNodeId next = kInvalidDomNode;
    size_t seen = 0;
    for (DomNodeId child : page.nodes[cur].children) {
      if (page.nodes[child].tag != tag) continue;
      if (seen == ordinal) {
        next = child;
        break;
      }
      ++seen;
    }
    if (next == kInvalidDomNode) return kInvalidDomNode;
    cur = next;
  }
  return cur;
}

}  // namespace kg::extract
