#ifndef KGRAPH_EXTRACT_ZEROSHOT_EXTRACTION_H_
#define KGRAPH_EXTRACT_ZEROSHOT_EXTRACTION_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "extract/dom.h"
#include "ml/graph_propagation.h"

namespace kg::extract {

/// ZeroshotCeres-lite (§2.3): one extraction model for ALL sites,
/// including sites in domains with no training data. Pages become graphs
/// (tree + sibling edges), nodes get language-independent layout/shape
/// features, and a propagation classifier learns "is this node an
/// attribute value?" from annotated sites of OTHER domains. Attribute
/// names come from the label sibling (open-style), since the target
/// domain's schema is unknown by assumption.
class ZeroshotExtractor {
 public:
  struct Options {
    ml::GnnNodeClassifier::Options gnn;
    double min_confidence = 0.5;
  };

  ZeroshotExtractor() = default;

  /// One annotated training page: the DOM plus which nodes are values.
  struct TrainingPage {
    const DomPage* page = nullptr;
    std::vector<DomNodeId> value_nodes;
  };

  /// Trains the cross-site value-node model.
  void Fit(const std::vector<TrainingPage>& pages, const Options& options,
           Rng& rng);

  /// Extracts (label-derived attribute, value) pairs from an unseen page.
  std::vector<Extraction> Extract(const DomPage& page) const;

  /// Layout/shape features of every node of `page` (exposed for tests).
  static std::vector<ml::FeatureVector> PageFeatures(const DomPage& page);

  /// Graph over the page: tree edges both ways plus sibling edges.
  static ml::Adjacency PageAdjacency(const DomPage& page);

 private:
  ml::GnnNodeClassifier classifier_;
  Options options_;
  bool trained_ = false;
};

}  // namespace kg::extract

#endif  // KGRAPH_EXTRACT_ZEROSHOT_EXTRACTION_H_
