#include "extract/open_extraction.h"

#include "text/tokenize.h"

namespace kg::extract {

std::string NormalizeOpenAttribute(const std::string& label) {
  return text::NormalizeForMatch(label);
}

std::vector<Extraction> OpenExtract(const DomPage& page,
                                    const OpenExtractionOptions& options) {
  std::vector<Extraction> out;
  // Scan parents whose children contain a short text node followed by
  // another text node: the (label, value) shape.
  for (DomNodeId parent = 0; parent < page.nodes.size(); ++parent) {
    const auto& children = page.nodes[parent].children;
    if (children.size() < 2) continue;
    std::string label;
    for (DomNodeId child : children) {
      const std::string& txt = page.nodes[child].text;
      if (txt.empty()) continue;
      if (label.empty()) {
        // Candidate label: short text, first textual child.
        if (text::Tokenize(txt).size() <= options.max_label_tokens) {
          label = txt;
        } else {
          break;  // First text is prose; not a label/value row.
        }
        continue;
      }
      // Candidate value following the label.
      if (text::Tokenize(txt).size() > options.max_value_tokens) break;
      out.push_back(Extraction{NormalizeOpenAttribute(label), txt, 0.7,
                               child});
      break;
    }
  }
  return out;
}

}  // namespace kg::extract
