#include "extract/zeroshot_extraction.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"
#include "extract/open_extraction.h"
#include "text/tokenize.h"

namespace kg::extract {

std::vector<ml::FeatureVector> ZeroshotExtractor::PageFeatures(
    const DomPage& page) {
  const auto parents = ParentMap(page);
  // Depth per node.
  std::vector<size_t> depth(page.nodes.size(), 0);
  for (DomNodeId id = 1; id < page.nodes.size(); ++id) {
    depth[id] = depth[parents[id]] + 1;
  }
  std::vector<ml::FeatureVector> features(page.nodes.size());
  for (DomNodeId id = 0; id < page.nodes.size(); ++id) {
    const DomNode& node = page.nodes[id];
    const std::string& txt = node.text;
    size_t digits = 0;
    for (char c : txt) {
      if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
    }
    const size_t num_tokens = text::Tokenize(txt).size();
    // Sibling context: position among siblings, does a short text node
    // precede it (a label shape), does the text end with ':'.
    double sib_position = 0.0;
    double preceded_by_short_text = 0.0;
    const DomNodeId parent = parents[id];
    if (parent != kInvalidDomNode) {
      size_t pos = 0;
      std::string prev_text;
      for (DomNodeId sibling : page.nodes[parent].children) {
        if (sibling == id) break;
        prev_text = page.nodes[sibling].text.empty()
                        ? prev_text
                        : page.nodes[sibling].text;
        ++pos;
      }
      sib_position = static_cast<double>(pos);
      if (!prev_text.empty() && text::Tokenize(prev_text).size() <= 3) {
        preceded_by_short_text = 1.0;
      }
    }
    const bool ends_colon = !txt.empty() && txt.back() == ':';
    auto tag_is = [&](const char* t) {
      return node.tag == t ? 1.0 : 0.0;
    };
    features[id] = ml::FeatureVector{
        static_cast<double>(depth[id]) / 8.0,
        static_cast<double>(num_tokens) / 8.0,
        txt.empty() ? 0.0 : 1.0,
        txt.empty() ? 0.0
                    : static_cast<double>(digits) /
                          static_cast<double>(txt.size()),
        sib_position / 4.0,
        preceded_by_short_text,
        ends_colon ? 1.0 : 0.0,
        tag_is("td"),
        tag_is("tr"),
        tag_is("table"),
        tag_is("h1"),
        tag_is("p"),
        tag_is("a"),
        tag_is("div"),
        static_cast<double>(node.children.size()) / 4.0,
    };
  }
  return features;
}

ml::Adjacency ZeroshotExtractor::PageAdjacency(const DomPage& page) {
  ml::Adjacency adj(page.nodes.size());
  for (DomNodeId id = 0; id < page.nodes.size(); ++id) {
    const auto& children = page.nodes[id].children;
    for (size_t c = 0; c < children.size(); ++c) {
      adj[id].push_back(children[c]);
      adj[children[c]].push_back(id);
      if (c + 1 < children.size()) {  // sibling edges
        adj[children[c]].push_back(children[c + 1]);
        adj[children[c + 1]].push_back(children[c]);
      }
    }
  }
  return adj;
}

void ZeroshotExtractor::Fit(const std::vector<TrainingPage>& pages,
                            const Options& options, Rng& rng) {
  options_ = options;
  std::vector<std::vector<ml::FeatureVector>> graph_features;
  std::vector<ml::Adjacency> graph_adjacency;
  std::vector<std::vector<int>> labels;
  for (const TrainingPage& tp : pages) {
    KG_CHECK(tp.page != nullptr);
    graph_features.push_back(PageFeatures(*tp.page));
    graph_adjacency.push_back(PageAdjacency(*tp.page));
    std::vector<int> page_labels(tp.page->nodes.size(), -1);
    // Text nodes are candidates; value nodes positive, the rest negative.
    for (DomNodeId id : tp.page->TextNodes()) page_labels[id] = 0;
    for (DomNodeId id : tp.value_nodes) {
      KG_CHECK(id < page_labels.size());
      page_labels[id] = 1;
    }
    labels.push_back(std::move(page_labels));
  }
  classifier_.Fit(graph_features, graph_adjacency, labels, options.gnn,
                  rng);
  trained_ = true;
}

std::vector<Extraction> ZeroshotExtractor::Extract(
    const DomPage& page) const {
  KG_CHECK(trained_) << "Extract before Fit";
  const auto proba =
      classifier_.Predict(PageFeatures(page), PageAdjacency(page));
  const auto parents = ParentMap(page);
  std::vector<Extraction> out;
  for (DomNodeId id : page.TextNodes()) {
    if (proba[id] < options_.min_confidence) continue;
    // Attribute name = preceding label sibling, open-style.
    const DomNodeId parent = parents[id];
    if (parent == kInvalidDomNode) continue;
    std::string label;
    for (DomNodeId sibling : page.nodes[parent].children) {
      if (sibling == id) break;
      if (!page.nodes[sibling].text.empty()) {
        label = page.nodes[sibling].text;
      }
    }
    if (label.empty()) continue;
    out.push_back(Extraction{NormalizeOpenAttribute(label),
                             page.nodes[id].text, proba[id], id});
  }
  return out;
}

}  // namespace kg::extract
