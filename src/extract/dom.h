#ifndef KGRAPH_EXTRACT_DOM_H_
#define KGRAPH_EXTRACT_DOM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace kg::extract {

/// Index of a node within a DomPage.
using DomNodeId = uint32_t;

inline constexpr DomNodeId kInvalidDomNode = 0xffffffffu;

/// One node of the simplified DOM every semi-structured extractor works
/// on: tag, optional CSS class, leaf text, children. This models what the
/// paper's systems consume after HTML parsing and rendering-feature
/// computation.
struct DomNode {
  std::string tag;              ///< "html", "body", "h1", "table", "tr"…
  std::string css_class;        ///< Site template hook (may be empty).
  std::string text;             ///< Leaf text content (may be empty).
  std::vector<DomNodeId> children;
};

/// A parsed web page: a node arena rooted at node 0, plus a URL.
struct DomPage {
  std::string url;
  std::vector<DomNode> nodes;

  /// Appends a node under `parent` and returns its id. Root is created by
  /// passing parent == kInvalidDomNode exactly once, first.
  DomNodeId AddNode(DomNodeId parent, std::string tag,
                    std::string css_class = "", std::string text = "");

  const DomNode& node(DomNodeId id) const { return nodes[id]; }
  size_t size() const { return nodes.size(); }

  /// All node ids with non-empty text, in document order.
  std::vector<DomNodeId> TextNodes() const;

  /// Concatenated text of the subtree under `id`, space-separated,
  /// document order.
  std::string SubtreeText(DomNodeId id) const;
};

/// An absolute XPath-like locator: "/html[0]/body[0]/table[0]/tr[2]/td[1]"
/// (tag with per-tag sibling ordinal). Wrapper induction learns these.
std::string NodePath(const DomPage& page, DomNodeId id);

/// Resolves a NodePath back to a node id on (possibly another) page of the
/// same template; kInvalidDomNode when the path does not exist there.
DomNodeId ResolvePath(const DomPage& page, const std::string& path);

/// Parent ids for every node (root's parent = kInvalidDomNode).
std::vector<DomNodeId> ParentMap(const DomPage& page);

/// An extracted (subject implied by the page) attribute-value pair with a
/// confidence — the output unit of all semi-structured extractors.
struct Extraction {
  std::string attribute;
  std::string value;
  double confidence = 1.0;
  DomNodeId value_node = kInvalidDomNode;
};

}  // namespace kg::extract

#endif  // KGRAPH_EXTRACT_DOM_H_
