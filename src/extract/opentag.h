#ifndef KGRAPH_EXTRACT_OPENTAG_H_
#define KGRAPH_EXTRACT_OPENTAG_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/naive_bayes.h"
#include "ml/sequence_tagger.h"
#include "text/bio.h"

namespace kg::extract {

/// One attribute-extraction training/eval instance: a product title and
/// the gold value spans of ONE target attribute, plus the metadata the
/// type-/attribute-aware variants condition on.
struct AttributeExample {
  std::vector<std::string> tokens;        ///< Title tokens.
  std::string attribute;                  ///< Target attribute name.
  std::vector<text::Span> gold_spans;     ///< Spans labeled `attribute`.
  std::string type_name;                  ///< Leaf product type.
  std::string category_name;              ///< Parent category.
  std::string attribute_cluster;          ///< Vocabulary-sharing cluster id.
  std::string locale;                     ///< Locale tag ("loc2"), may be "".
  std::vector<std::string> extra_context; ///< Modality signals (PAM).
  /// Candidate value tokens for this (type, attribute) from a lexicon
  /// (e.g. the structured catalog's observed values). Consumed as
  /// positional gazetteer features when use_lexicon_features is on.
  std::vector<std::string> lexicon_tokens;
};

/// Conditioning configuration — this single switchboard realizes the
/// paper's §3 model family:
///  * all off ............ OpenTag (one model per attribute, type-blind)
///  * type_aware ......... TXtract (type embedding + taxonomy ancestors)
///  * attribute_conditioned + cluster ... AdaTag (attribute embedding +
///     mixture-of-experts sharing across related attributes)
///  * extra context ...... PAM (image-signal features attend with text)
struct TitleExtractorOptions {
  bool type_aware = false;
  bool attribute_conditioned = false;
  bool use_cluster_features = false;
  bool use_extra_context = false;
  /// Gazetteer features from AttributeExample::lexicon_tokens — the
  /// dictionary signal production OpenTag deployments lean on.
  bool use_lexicon_features = false;
  /// Cross locale tags with tokens (the multi-locale one-size-fits-all
  /// axis of §3.3).
  bool locale_aware = false;
  ml::TaggerOptions tagger;
};

/// NER-style attribute-value extractor over product titles (the OpenTag
/// model family, §3.1-3.4). Wraps one averaged-perceptron BIO tagger whose
/// context features implement the type-/attribute-aware variants.
class TitleExtractor {
 public:
  TitleExtractor() = default;

  /// Trains on `examples` (each contributes one BIO-tagged sequence).
  void Fit(const std::vector<AttributeExample>& examples,
           const TitleExtractorOptions& options, Rng& rng);

  /// Predicted value spans of `example.attribute` in `example.tokens`.
  std::vector<text::Span> Extract(const AttributeExample& example) const;

  /// Extracted surface values (joined span tokens).
  std::vector<std::string> ExtractValues(
      const AttributeExample& example) const;

 private:
  std::vector<std::string> ContextOf(const AttributeExample& ex) const;

  ml::SequenceTagger tagger_;
  TitleExtractorOptions options_;
  bool trained_ = false;
};

/// Product-type text classifier — TXtract's auxiliary task. When the type
/// of an instance is unknown at inference, its prediction feeds the
/// extractor's type context.
class TypeClassifier {
 public:
  void Fit(const std::vector<std::vector<std::string>>& token_lists,
           const std::vector<std::string>& type_names);

  std::string Predict(const std::vector<std::string>& tokens) const;

 private:
  ml::MultinomialNaiveBayes nb_;
  std::vector<std::string> type_names_;
};

}  // namespace kg::extract

#endif  // KGRAPH_EXTRACT_OPENTAG_H_
