#include "graph/knowledge_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace kg::graph {

namespace {
std::string NodeKey(std::string_view name, NodeKind kind) {
  std::string key;
  key.reserve(name.size() + 1);
  key.push_back(static_cast<char>(kind));
  key.append(name);
  return key;
}
}  // namespace

NodeId KnowledgeGraph::AddNode(std::string_view name, NodeKind kind) {
  std::string key = NodeKey(name, kind);
  auto it = node_index_.find(key);
  if (it != node_index_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeRecord{std::string(name), kind});
  node_index_.emplace(std::move(key), id);
  return id;
}

Result<NodeId> KnowledgeGraph::FindNode(std::string_view name,
                                        NodeKind kind) const {
  auto it = node_index_.find(NodeKey(name, kind));
  if (it == node_index_.end()) {
    return Status::NotFound("node: " + std::string(name));
  }
  return it->second;
}

PredicateId KnowledgeGraph::AddPredicate(std::string_view name) {
  auto it = predicate_index_.find(std::string(name));
  if (it != predicate_index_.end()) return it->second;
  const PredicateId id = static_cast<PredicateId>(predicate_names_.size());
  predicate_names_.emplace_back(name);
  predicate_index_.emplace(std::string(name), id);
  return id;
}

Result<PredicateId> KnowledgeGraph::FindPredicate(
    std::string_view name) const {
  auto it = predicate_index_.find(std::string(name));
  if (it == predicate_index_.end()) {
    return Status::NotFound("predicate: " + std::string(name));
  }
  return it->second;
}

const std::string& KnowledgeGraph::NodeName(NodeId id) const {
  KG_CHECK(id < nodes_.size());
  return nodes_[id].name;
}

NodeKind KnowledgeGraph::GetNodeKind(NodeId id) const {
  KG_CHECK(id < nodes_.size());
  return nodes_[id].kind;
}

const std::string& KnowledgeGraph::PredicateName(PredicateId id) const {
  KG_CHECK(id < predicate_names_.size());
  return predicate_names_[id];
}

TripleId KnowledgeGraph::AddTriple(NodeId s, PredicateId p, NodeId o,
                                   Provenance prov) {
  KG_CHECK(s < nodes_.size()) << "bad subject";
  KG_CHECK(o < nodes_.size()) << "bad object";
  KG_CHECK(p < predicate_names_.size()) << "bad predicate";
  const uint64_t key = TripleKey(s, p, o);
  auto it = spo_index_.find(key);
  if (it != spo_index_.end()) {
    for (TripleId id : it->second) {
      const Triple& t = triples_[id];
      if (t.subject == s && t.predicate == p && t.object == o) {
        if (removed_[id]) {
          removed_[id] = false;
          ++live_triples_;
          provenance_[id].clear();
        }
        provenance_[id].push_back(std::move(prov));
        return id;
      }
    }
  }
  const TripleId id = static_cast<TripleId>(triples_.size());
  triples_.push_back(Triple{s, p, o});
  provenance_.push_back({std::move(prov)});
  removed_.push_back(false);
  ++live_triples_;
  spo_index_[key].push_back(id);
  s_index_[s].push_back(id);
  o_index_[o].push_back(id);
  p_index_[p].push_back(id);
  return id;
}

TripleId KnowledgeGraph::AddTriple(std::string_view subject,
                                   std::string_view predicate,
                                   std::string_view object,
                                   NodeKind subject_kind,
                                   NodeKind object_kind, Provenance prov) {
  const NodeId s = AddNode(subject, subject_kind);
  const PredicateId p = AddPredicate(predicate);
  const NodeId o = AddNode(object, object_kind);
  return AddTriple(s, p, o, std::move(prov));
}

void KnowledgeGraph::RemoveTriple(TripleId id) {
  KG_CHECK(id < triples_.size());
  if (!removed_[id]) {
    removed_[id] = true;
    --live_triples_;
  }
}

TripleId KnowledgeGraph::FindTriple(NodeId s, PredicateId p,
                                    NodeId o) const {
  auto it = spo_index_.find(TripleKey(s, p, o));
  if (it == spo_index_.end()) return kInvalidTriple;
  for (TripleId id : it->second) {
    const Triple& t = triples_[id];
    if (t.subject == s && t.predicate == p && t.object == o &&
        !removed_[id]) {
      return id;
    }
  }
  return kInvalidTriple;
}

bool KnowledgeGraph::HasTriple(NodeId s, PredicateId p, NodeId o) const {
  return FindTriple(s, p, o) != kInvalidTriple;
}

std::vector<NodeId> KnowledgeGraph::Objects(NodeId s, PredicateId p) const {
  std::vector<NodeId> out;
  auto it = s_index_.find(s);
  if (it == s_index_.end()) return out;
  for (TripleId id : it->second) {
    if (!removed_[id] && triples_[id].predicate == p) {
      out.push_back(triples_[id].object);
    }
  }
  return out;
}

std::vector<NodeId> KnowledgeGraph::Subjects(PredicateId p,
                                             NodeId o) const {
  std::vector<NodeId> out;
  auto it = o_index_.find(o);
  if (it == o_index_.end()) return out;
  for (TripleId id : it->second) {
    if (!removed_[id] && triples_[id].predicate == p) {
      out.push_back(triples_[id].subject);
    }
  }
  return out;
}

namespace {
std::vector<TripleId> FilterLive(
    const std::unordered_map<uint32_t, std::vector<TripleId>>& index,
    uint32_t key, const std::vector<bool>& removed) {
  std::vector<TripleId> out;
  auto it = index.find(key);
  if (it == index.end()) return out;
  out.reserve(it->second.size());
  for (TripleId id : it->second) {
    if (!removed[id]) out.push_back(id);
  }
  return out;
}
}  // namespace

std::vector<TripleId> KnowledgeGraph::TriplesWithSubject(NodeId s) const {
  return FilterLive(s_index_, s, removed_);
}

std::vector<TripleId> KnowledgeGraph::TriplesWithObject(NodeId o) const {
  return FilterLive(o_index_, o, removed_);
}

std::vector<TripleId> KnowledgeGraph::TriplesWithPredicate(
    PredicateId p) const {
  return FilterLive(p_index_, p, removed_);
}

std::vector<TripleId> KnowledgeGraph::AllTriples() const {
  std::vector<TripleId> out;
  out.reserve(live_triples_);
  for (TripleId id = 0; id < triples_.size(); ++id) {
    if (!removed_[id]) out.push_back(id);
  }
  return out;
}

std::string KnowledgeGraph::TripleToString(TripleId id) const {
  KG_CHECK(id < triples_.size());
  const Triple& t = triples_[id];
  return nodes_[t.subject].name + " --" + predicate_names_[t.predicate] +
         "--> " + nodes_[t.object].name;
}

uint64_t TripleSetFingerprint(const KnowledgeGraph& kg) {
  uint64_t fingerprint = 0;
  for (TripleId id : kg.AllTriples()) {
    const Triple& t = kg.triple(id);
    std::string key;
    key += kg.NodeName(t.subject);
    key += '\x01';
    key += static_cast<char>(kg.GetNodeKind(t.subject));
    key += '\x01';
    key += kg.PredicateName(t.predicate);
    key += '\x01';
    key += kg.NodeName(t.object);
    key += '\x01';
    key += static_cast<char>(kg.GetNodeKind(t.object));
    // Commutative combine (sum) keeps the fingerprint independent of
    // triple enumeration order.
    fingerprint += Fnv1a64(key);
  }
  return fingerprint;
}

double KnowledgeGraph::MaxConfidence(TripleId id) const {
  KG_CHECK(id < provenance_.size());
  double best = 0.0;
  for (const Provenance& p : provenance_[id]) {
    best = std::max(best, p.confidence);
  }
  return best;
}

}  // namespace kg::graph
