#include "graph/ontology.h"

namespace kg::graph {

void Ontology::DeclareRelation(RelationDecl decl) {
  auto it = relation_index_.find(decl.name);
  if (it != relation_index_.end()) {
    relations_[it->second] = std::move(decl);
    return;
  }
  relation_index_.emplace(decl.name, relations_.size());
  relations_.push_back(std::move(decl));
}

Result<RelationDecl> Ontology::FindRelation(std::string_view name) const {
  auto it = relation_index_.find(std::string(name));
  if (it == relation_index_.end()) {
    return Status::NotFound("relation: " + std::string(name));
  }
  return relations_[it->second];
}

void Ontology::SetInstanceType(NodeId node, TypeId type) {
  instance_types_[node] = type;
}

TypeId Ontology::InstanceType(NodeId node) const {
  auto it = instance_types_.find(node);
  return it == instance_types_.end() ? taxonomy_.root() : it->second;
}

bool Ontology::IsInstanceOf(NodeId node, TypeId type) const {
  return taxonomy_.IsAncestor(InstanceType(node), type);
}

Status Ontology::ValidateTriple(const KnowledgeGraph& kg,
                                TripleId id) const {
  const Triple& t = kg.triple(id);
  const std::string& pred = kg.PredicateName(t.predicate);
  auto rel = FindRelation(pred);
  if (!rel.ok()) {
    return Status::NotFound("undeclared relation: " + pred);
  }
  if (!IsInstanceOf(t.subject, rel->domain)) {
    return Status::InvalidArgument(
        "domain violation: subject " + kg.NodeName(t.subject) +
        " is not a " + taxonomy_.Name(rel->domain));
  }
  if (rel->range_kind == RangeKind::kEntity) {
    if (kg.GetNodeKind(t.object) != NodeKind::kEntity) {
      return Status::InvalidArgument("range violation: object " +
                                     kg.NodeName(t.object) +
                                     " is not an entity");
    }
    if (!IsInstanceOf(t.object, rel->range_type)) {
      return Status::InvalidArgument(
          "range violation: object " + kg.NodeName(t.object) +
          " is not a " + taxonomy_.Name(rel->range_type));
    }
  }
  if (rel->functional) {
    if (kg.Objects(t.subject, t.predicate).size() > 1) {
      return Status::FailedPrecondition(
          "functionality violation: multiple objects for " +
          kg.NodeName(t.subject) + " / " + pred);
    }
  }
  return Status::OK();
}

}  // namespace kg::graph
