#include "graph/paths.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/logging.h"

namespace kg::graph {

std::string RelationPathToString(const KnowledgeGraph& kg,
                                 const RelationPath& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += "/";
    if (path[i].inverse) out += "^";
    out += kg.PredicateName(path[i].predicate);
  }
  return out;
}

std::vector<TripleId> ShortestPath(const KnowledgeGraph& kg, NodeId from,
                                   NodeId to, size_t max_depth) {
  if (from == to) return {};
  // BFS over undirected edges, remembering the triple that discovered each
  // node.
  std::unordered_map<NodeId, TripleId> via;
  std::unordered_map<NodeId, NodeId> prev;
  std::deque<std::pair<NodeId, size_t>> frontier{{from, 0}};
  std::unordered_set<NodeId> seen{from};
  while (!frontier.empty()) {
    auto [cur, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= max_depth) continue;
    auto expand = [&](TripleId tid, NodeId next) {
      if (!seen.insert(next).second) return false;
      via[next] = tid;
      prev[next] = cur;
      if (next == to) return true;
      frontier.push_back({next, depth + 1});
      return false;
    };
    for (TripleId tid : kg.TriplesWithSubject(cur)) {
      if (expand(tid, kg.triple(tid).object)) goto found;
    }
    for (TripleId tid : kg.TriplesWithObject(cur)) {
      if (expand(tid, kg.triple(tid).subject)) goto found;
    }
  }
  return {};
found:
  std::vector<TripleId> path;
  for (NodeId cur = to; cur != from; cur = prev[cur]) {
    path.push_back(via[cur]);
  }
  return {path.rbegin(), path.rend()};
}

std::vector<NodeId> Neighborhood(const KnowledgeGraph& kg, NodeId center,
                                 size_t radius) {
  std::vector<NodeId> out{center};
  std::unordered_set<NodeId> seen{center};
  size_t level_end = 1;
  for (size_t depth = 0; depth < radius; ++depth) {
    const size_t start = out.size() - level_end;
    const size_t end = out.size();
    for (size_t i = start; i < end; ++i) {
      const NodeId cur = out[i];
      for (TripleId tid : kg.TriplesWithSubject(cur)) {
        const NodeId next = kg.triple(tid).object;
        if (seen.insert(next).second) out.push_back(next);
      }
      for (TripleId tid : kg.TriplesWithObject(cur)) {
        const NodeId next = kg.triple(tid).subject;
        if (seen.insert(next).second) out.push_back(next);
      }
    }
    level_end = out.size() - end;
    if (level_end == 0) break;
  }
  return out;
}

namespace {

void EnumerateRec(const KnowledgeGraph& kg, NodeId cur, NodeId to,
                  size_t remaining, RelationPath* prefix,
                  std::unordered_map<std::string, int>* counts,
                  size_t* budget) {
  if (*budget == 0) return;
  if (!prefix->empty() && cur == to) {
    ++(*counts)[RelationPathToString(kg, *prefix)];
    // A grounding may continue through `to`, so do not return.
  }
  if (remaining == 0) return;
  for (TripleId tid : kg.TriplesWithSubject(cur)) {
    if (*budget == 0) return;
    --*budget;
    prefix->push_back({kg.triple(tid).predicate, false});
    EnumerateRec(kg, kg.triple(tid).object, to, remaining - 1, prefix,
                 counts, budget);
    prefix->pop_back();
  }
  for (TripleId tid : kg.TriplesWithObject(cur)) {
    if (*budget == 0) return;
    --*budget;
    prefix->push_back({kg.triple(tid).predicate, true});
    EnumerateRec(kg, kg.triple(tid).subject, to, remaining - 1, prefix,
                 counts, budget);
    prefix->pop_back();
  }
}

}  // namespace

std::unordered_map<std::string, int> EnumerateRelationPaths(
    const KnowledgeGraph& kg, NodeId from, NodeId to, size_t max_len,
    size_t max_groundings) {
  std::unordered_map<std::string, int> counts;
  RelationPath prefix;
  size_t budget = max_groundings;
  EnumerateRec(kg, from, to, max_len, &prefix, &counts, &budget);
  return counts;
}

double PathReachProbability(const KnowledgeGraph& kg, NodeId from, NodeId to,
                            const RelationPath& path,
                            const Triple* excluded) {
  // Distribution over nodes after each step of a uniform random walk
  // constrained to the path's predicates.
  std::unordered_map<NodeId, double> dist{{from, 1.0}};
  for (const PathStep& step : path) {
    std::unordered_map<NodeId, double> next;
    for (const auto& [node, prob] : dist) {
      std::vector<NodeId> targets =
          step.inverse ? kg.Subjects(step.predicate, node)
                       : kg.Objects(node, step.predicate);
      if (excluded != nullptr && step.predicate == excluded->predicate) {
        // Leave-one-out: drop the excluded edge's endpoint when this hop
        // would traverse exactly that edge.
        const NodeId here = step.inverse ? excluded->object
                                         : excluded->subject;
        const NodeId there = step.inverse ? excluded->subject
                                          : excluded->object;
        if (node == here) {
          targets.erase(std::remove(targets.begin(), targets.end(), there),
                        targets.end());
        }
      }
      if (targets.empty()) continue;
      const double share = prob / static_cast<double>(targets.size());
      for (NodeId t : targets) next[t] += share;
    }
    dist = std::move(next);
    if (dist.empty()) return 0.0;
  }
  auto it = dist.find(to);
  return it == dist.end() ? 0.0 : it->second;
}

}  // namespace kg::graph
