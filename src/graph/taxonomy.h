#ifndef KGRAPH_GRAPH_TAXONOMY_H_
#define KGRAPH_GRAPH_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace kg::graph {

/// Handle for a taxonomy type.
using TypeId = uint32_t;

/// A rooted is-a hierarchy (DAG: a type may have several parents, as with
/// "fashion swimwear" under both "swimwear" and "fashion"). Entity-based
/// KGs use it as the ontology's class hierarchy; text-rich KGs use deep
/// instances of it as the product taxonomy (Figure 1b top).
class Taxonomy {
 public:
  /// Creates a taxonomy containing only the root type.
  explicit Taxonomy(std::string root_name = "Thing");

  TypeId root() const { return 0; }

  /// Adds (or returns existing) `name` as a child of `parent`.
  TypeId AddType(std::string_view name, TypeId parent);

  /// Adds an extra parent edge; rejects edges that would create a cycle.
  Status AddParent(TypeId type, TypeId parent);

  Result<TypeId> Find(std::string_view name) const;
  const std::string& Name(TypeId id) const;
  size_t size() const { return names_.size(); }

  const std::vector<TypeId>& Parents(TypeId id) const;
  const std::vector<TypeId>& Children(TypeId id) const;

  /// True when `ancestor` is reachable from `type` by parent edges
  /// (reflexive: IsAncestor(t, t) is true).
  bool IsAncestor(TypeId type, TypeId ancestor) const;

  /// All ancestors including `type` itself, deduplicated, root last not
  /// guaranteed — BFS order from `type`.
  std::vector<TypeId> Ancestors(TypeId type) const;

  /// All descendants including `type` itself, BFS order.
  std::vector<TypeId> Descendants(TypeId type) const;

  /// Types with no children.
  std::vector<TypeId> Leaves() const;

  /// Length of the shortest parent-path to the root (root = 0).
  int Depth(TypeId type) const;

  /// Lowest common ancestor by shortest depth; root when disjoint.
  TypeId Lca(TypeId a, TypeId b) const;

  /// Wu-Palmer similarity in [0, 1]: 2*depth(lca) / (depth(a)+depth(b)).
  /// Used by type-aware extraction to measure how related two types are.
  double WuPalmerSimilarity(TypeId a, TypeId b) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TypeId> index_;
  std::vector<std::vector<TypeId>> parents_;
  std::vector<std::vector<TypeId>> children_;
};

}  // namespace kg::graph

#endif  // KGRAPH_GRAPH_TAXONOMY_H_
