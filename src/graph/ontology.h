#ifndef KGRAPH_GRAPH_ONTOLOGY_H_
#define KGRAPH_GRAPH_ONTOLOGY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/knowledge_graph.h"
#include "graph/taxonomy.h"

namespace kg::graph {

/// What a relation's object may be.
enum class RangeKind : uint8_t {
  kEntity,  ///< Object must be an entity of `range_type`.
  kText,    ///< Object is a free-text / literal value.
};

/// Declared relation: domain class, range (class or literal), cardinality.
struct RelationDecl {
  std::string name;
  TypeId domain = 0;          ///< Subject must be an instance of this type.
  RangeKind range_kind = RangeKind::kText;
  TypeId range_type = 0;      ///< Meaningful when range_kind == kEntity.
  bool functional = false;    ///< At most one object per subject.
};

/// The KG schema: a class taxonomy plus declared relations with
/// domain/range constraints (§1: "data instances follow the ontology as
/// the schema"). Entity-based KGs keep this manually curated and clean;
/// text-rich KGs relax it.
class Ontology {
 public:
  Ontology() = default;

  Taxonomy& taxonomy() { return taxonomy_; }
  const Taxonomy& taxonomy() const { return taxonomy_; }

  /// Declares a relation; re-declaring a name overwrites the declaration.
  void DeclareRelation(RelationDecl decl);

  Result<RelationDecl> FindRelation(std::string_view name) const;
  const std::vector<RelationDecl>& relations() const { return relations_; }

  /// Records that entity-node `node` is an instance of `type`.
  void SetInstanceType(NodeId node, TypeId type);

  /// The declared type of `node` (root type when unknown).
  TypeId InstanceType(NodeId node) const;

  /// True when `node` is an instance of `type` or any of its descendants.
  bool IsInstanceOf(NodeId node, TypeId type) const;

  /// Validates a triple against the declared schema. Returns OK, or an
  /// explanation (unknown relation, domain violation, range violation,
  /// functionality violation). This is the rule layer knowledge cleaning
  /// builds on.
  Status ValidateTriple(const KnowledgeGraph& kg, TripleId id) const;

 private:
  Taxonomy taxonomy_;
  std::vector<RelationDecl> relations_;
  std::unordered_map<std::string, size_t> relation_index_;
  std::unordered_map<NodeId, TypeId> instance_types_;
};

}  // namespace kg::graph

#endif  // KGRAPH_GRAPH_ONTOLOGY_H_
