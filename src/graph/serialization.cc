#include "graph/serialization.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace kg::graph {

namespace {

const char* KindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kEntity:
      return "entity";
    case NodeKind::kText:
      return "text";
    case NodeKind::kClass:
      return "class";
  }
  return "entity";
}

Result<NodeKind> ParseKind(const std::string& name) {
  if (name == "entity") return NodeKind::kEntity;
  if (name == "text") return NodeKind::kText;
  if (name == "class") return NodeKind::kClass;
  return Status::InvalidArgument("unknown node kind: " + name);
}

}  // namespace

// Tabs and newlines inside names would corrupt the line format.
std::string EscapeTsvField(std::string_view s) {
  std::string out = ReplaceAll(s, "\\", "\\\\");
  out = ReplaceAll(out, "\t", "\\t");
  out = ReplaceAll(out, "\n", "\\n");
  return out;
}

std::string UnescapeTsvField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      default:
        out.push_back(s[i]);
    }
  }
  return out;
}

std::string SerializeKg(const KnowledgeGraph& kg) {
  std::ostringstream out;
  for (TripleId id : kg.AllTriples()) {
    const Triple& t = kg.triple(id);
    for (const Provenance& prov : kg.provenance(id)) {
      out << EscapeTsvField(kg.NodeName(t.subject)) << '\t'
          << KindName(kg.GetNodeKind(t.subject)) << '\t'
          << EscapeTsvField(kg.PredicateName(t.predicate)) << '\t'
          << EscapeTsvField(kg.NodeName(t.object)) << '\t'
          << KindName(kg.GetNodeKind(t.object)) << '\t'
          << EscapeTsvField(prov.source) << '\t' << prov.confidence << '\t'
          << prov.timestamp << '\n';
    }
  }
  return out.str();
}

Result<KnowledgeGraph> DeserializeKg(const std::string& data) {
  KnowledgeGraph kg;
  size_t line_number = 0;
  for (const std::string& line : Split(data, '\n')) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 8) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected 8 fields, "
          "got " + std::to_string(fields.size()));
    }
    KG_ASSIGN_OR_RETURN(const NodeKind subject_kind, ParseKind(fields[1]));
    KG_ASSIGN_OR_RETURN(const NodeKind object_kind, ParseKind(fields[4]));
    Provenance prov;
    prov.source = UnescapeTsvField(fields[5]);
    try {
      prov.confidence = std::stod(fields[6]);
      prov.timestamp = std::stoll(fields[7]);
    } catch (const std::exception&) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": bad confidence/timestamp");
    }
    kg.AddTriple(UnescapeTsvField(fields[0]), UnescapeTsvField(fields[2]),
                 UnescapeTsvField(fields[3]), subject_kind, object_kind,
                 std::move(prov));
  }
  return kg;
}

Status SaveKg(const KnowledgeGraph& kg, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path);
  out << SerializeKg(kg);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<KnowledgeGraph> LoadKg(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DeserializeKg(buf.str());
}

}  // namespace kg::graph
