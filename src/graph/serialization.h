#ifndef KGRAPH_GRAPH_SERIALIZATION_H_
#define KGRAPH_GRAPH_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "graph/knowledge_graph.h"

namespace kg::graph {

/// Serializes a KG to a TSV-style text format, one provenance entry per
/// line:
///   subject \t subject_kind \t predicate \t object \t object_kind \t
///   source \t confidence \t timestamp
/// Node kinds are "entity" / "text" / "class". Removed triples are not
/// emitted. The format is line-stable (sorted by triple id), so
/// serialized KGs diff cleanly.
std::string SerializeKg(const KnowledgeGraph& kg);

/// Parses a serialized KG. Rejects malformed lines with a descriptive
/// status; on success the returned graph round-trips (same triples,
/// kinds, and provenance, possibly different internal ids).
Result<KnowledgeGraph> DeserializeKg(const std::string& data);

/// File convenience wrappers.
Status SaveKg(const KnowledgeGraph& kg, const std::string& path);
Result<KnowledgeGraph> LoadKg(const std::string& path);

}  // namespace kg::graph

#endif  // KGRAPH_GRAPH_SERIALIZATION_H_
