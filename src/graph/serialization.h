#ifndef KGRAPH_GRAPH_SERIALIZATION_H_
#define KGRAPH_GRAPH_SERIALIZATION_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "graph/knowledge_graph.h"

namespace kg::graph {

/// Escapes backslashes, tabs, and newlines so an arbitrary byte string can
/// ride in one field of the line/tab-delimited formats (`SerializeKg`,
/// snapshot serialization). The output contains no raw '\t' or '\n'.
std::string EscapeTsvField(std::string_view s);

/// Inverts `EscapeTsvField`. Unknown escapes decode to the escaped
/// character; a trailing lone backslash decodes to itself.
std::string UnescapeTsvField(std::string_view s);

/// Serializes a KG to a TSV-style text format, one provenance entry per
/// line:
///   subject \t subject_kind \t predicate \t object \t object_kind \t
///   source \t confidence \t timestamp
/// Node kinds are "entity" / "text" / "class". Removed triples are not
/// emitted. The format is line-stable (sorted by triple id), so
/// serialized KGs diff cleanly.
std::string SerializeKg(const KnowledgeGraph& kg);

/// Parses a serialized KG. Rejects malformed lines with a descriptive
/// status; on success the returned graph round-trips (same triples,
/// kinds, and provenance, possibly different internal ids).
Result<KnowledgeGraph> DeserializeKg(const std::string& data);

/// File convenience wrappers.
Status SaveKg(const KnowledgeGraph& kg, const std::string& path);
Result<KnowledgeGraph> LoadKg(const std::string& path);

}  // namespace kg::graph

#endif  // KGRAPH_GRAPH_SERIALIZATION_H_
