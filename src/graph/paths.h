#ifndef KGRAPH_GRAPH_PATHS_H_
#define KGRAPH_GRAPH_PATHS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "graph/knowledge_graph.h"

namespace kg::graph {

/// One step of a relation path: a predicate traversed forward (s->o) or
/// backward (o->s).
struct PathStep {
  PredicateId predicate = 0;
  bool inverse = false;

  friend bool operator==(const PathStep&, const PathStep&) = default;
};

/// A typed relation path, e.g. [acted_in, ^directed_by] — the feature
/// alphabet of PRA-style link prediction (§2.4).
using RelationPath = std::vector<PathStep>;

/// Renders "acted_in/^directed_by" for reports.
std::string RelationPathToString(const KnowledgeGraph& kg,
                                 const RelationPath& path);

/// Undirected shortest path between two nodes; empty when unreachable or
/// when source == target. Each element is a triple id along the path.
std::vector<TripleId> ShortestPath(const KnowledgeGraph& kg, NodeId from,
                                   NodeId to, size_t max_depth = 6);

/// Nodes within `radius` undirected hops of `center` (includes center).
std::vector<NodeId> Neighborhood(const KnowledgeGraph& kg, NodeId center,
                                 size_t radius);

/// Enumerates the distinct relation paths of length <= `max_len` from
/// `from` to `to`, with the number of groundings of each (how many concrete
/// node sequences realize it). Bounded by `max_paths` explored groundings.
std::unordered_map<std::string, int> EnumerateRelationPaths(
    const KnowledgeGraph& kg, NodeId from, NodeId to, size_t max_len,
    size_t max_groundings = 10000);

/// Random-walk probability that a walk from `from` following `path`
/// terminates at `to` (PRA's path feature value), estimated exactly by
/// dynamic programming over the reachable distribution. When `excluded`
/// is non-null, walks may not traverse that specific edge in either
/// direction — PRA's leave-one-out rule, which prevents a path from
/// "proving" a triple by walking over the triple itself.
double PathReachProbability(const KnowledgeGraph& kg, NodeId from, NodeId to,
                            const RelationPath& path,
                            const Triple* excluded = nullptr);

}  // namespace kg::graph

#endif  // KGRAPH_GRAPH_PATHS_H_
