#ifndef KGRAPH_GRAPH_KNOWLEDGE_GRAPH_H_
#define KGRAPH_GRAPH_KNOWLEDGE_GRAPH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace kg::graph {

/// Interned node handle. Nodes are entities, free-text values, or ontology
/// classes; the distinction is the defining difference between the paper's
/// entity-based KGs (mostly kEntity nodes) and text-rich KGs (mostly kText
/// value nodes forming a bipartite graph).
using NodeId = uint32_t;
/// Interned predicate (relation / attribute name) handle.
using PredicateId = uint32_t;
/// Dense triple handle; stable for the life of the graph (removal
/// tombstones rather than reindexes).
using TripleId = uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr TripleId kInvalidTriple =
    std::numeric_limits<TripleId>::max();

/// The role a node plays in the graph.
enum class NodeKind : uint8_t {
  kEntity = 0,  ///< Named real-world entity with identity (person, movie).
  kText = 1,    ///< Non-canonical text value (product flavor "mocha").
  kClass = 2,   ///< Ontology class / taxonomy type.
};

/// Where a triple came from and how much we believe it. A triple can carry
/// several provenances (one per contributing source or extractor).
struct Provenance {
  std::string source;        ///< Source or extractor identifier.
  double confidence = 1.0;   ///< Extraction/fusion confidence in [0, 1].
  int64_t timestamp = 0;     ///< Logical time the fact was asserted.
};

/// (subject, predicate, object) — the unit of knowledge.
struct Triple {
  NodeId subject = kInvalidNode;
  PredicateId predicate = 0;
  NodeId object = kInvalidNode;

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// An in-memory knowledge graph: interned nodes and predicates, deduplicated
/// triples with per-source provenance, and subject/object/predicate indexes
/// for the query patterns the construction pipelines need.
///
/// Thread-compatible: concurrent readers are safe once mutation stops.
class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;

  // --- Vocabulary -------------------------------------------------------

  /// Interns a node, creating it on first use. A (name, kind) pair
  /// identifies a node: "Avatar" the entity and "Avatar" the text value
  /// are distinct nodes.
  NodeId AddNode(std::string_view name, NodeKind kind);

  /// Looks up an existing node.
  Result<NodeId> FindNode(std::string_view name, NodeKind kind) const;

  /// Interns a predicate, creating it on first use.
  PredicateId AddPredicate(std::string_view name);

  /// Looks up an existing predicate.
  Result<PredicateId> FindPredicate(std::string_view name) const;

  const std::string& NodeName(NodeId id) const;
  NodeKind GetNodeKind(NodeId id) const;
  const std::string& PredicateName(PredicateId id) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_predicates() const { return predicate_names_.size(); }

  // --- Triples ----------------------------------------------------------

  /// Adds (s, p, o) with `prov`; if the triple already exists, appends the
  /// provenance instead of duplicating. Returns the triple handle.
  ///
  /// Duplicate-assertion semantics (pinned by
  /// KnowledgeGraphTest.DuplicateAssertionIsProvenanceAppend): asserting
  /// the same (s, p, o) twice yields ONE triple — same handle, one
  /// AllTriples entry, unchanged query answers — whose provenance list
  /// holds every assertion in order, with MaxConfidence tracking the
  /// best of them. Re-asserting a *removed* triple revives the same
  /// handle carrying only the new provenance (the tombstoned history
  /// does not resurrect).
  TripleId AddTriple(NodeId s, PredicateId p, NodeId o, Provenance prov);

  /// Convenience overload interning names on the fly. `object_kind` selects
  /// between entity objects (entity-based KGs) and text-value objects
  /// (text-rich KGs).
  TripleId AddTriple(std::string_view subject, std::string_view predicate,
                     std::string_view object, NodeKind subject_kind,
                     NodeKind object_kind, Provenance prov);

  /// Tombstones a triple (knowledge cleaning). Queries no longer return it.
  void RemoveTriple(TripleId id);

  bool IsRemoved(TripleId id) const { return removed_[id]; }

  /// Whether (s, p, o) is asserted (and not removed).
  bool HasTriple(NodeId s, PredicateId p, NodeId o) const;

  /// Finds the live triple (s, p, o), or kInvalidTriple.
  TripleId FindTriple(NodeId s, PredicateId p, NodeId o) const;

  const Triple& triple(TripleId id) const { return triples_[id]; }
  const std::vector<Provenance>& provenance(TripleId id) const {
    return provenance_[id];
  }

  /// Count of live (non-removed) triples.
  size_t num_triples() const { return live_triples_; }
  /// Count including tombstones (the valid TripleId range).
  size_t num_triples_allocated() const { return triples_.size(); }

  // --- Queries ----------------------------------------------------------

  /// Objects o with (s, p, o).
  std::vector<NodeId> Objects(NodeId s, PredicateId p) const;

  /// Subjects s with (s, p, o).
  std::vector<NodeId> Subjects(PredicateId p, NodeId o) const;

  /// Live triples with subject `s`.
  std::vector<TripleId> TriplesWithSubject(NodeId s) const;

  /// Live triples with object `o`.
  std::vector<TripleId> TriplesWithObject(NodeId o) const;

  /// Live triples with predicate `p`.
  std::vector<TripleId> TriplesWithPredicate(PredicateId p) const;

  /// All live triple ids.
  std::vector<TripleId> AllTriples() const;

  /// Renders "subject --predicate--> object" for debugging.
  std::string TripleToString(TripleId id) const;

  /// Highest confidence among a triple's provenances (0 if none).
  double MaxConfidence(TripleId id) const;

 private:
  struct NodeRecord {
    std::string name;
    NodeKind kind;
  };

  static uint64_t TripleKey(NodeId s, PredicateId p, NodeId o) {
    uint64_t h = kg::HashCombine(std::hash<uint64_t>()(s),
                                 std::hash<uint64_t>()(p));
    return kg::HashCombine(h, std::hash<uint64_t>()(o));
  }

  std::vector<NodeRecord> nodes_;
  // (kind, name) -> NodeId. Key embeds the kind in the first byte.
  std::unordered_map<std::string, NodeId> node_index_;
  std::vector<std::string> predicate_names_;
  std::unordered_map<std::string, PredicateId> predicate_index_;

  std::vector<Triple> triples_;
  std::vector<std::vector<Provenance>> provenance_;
  std::vector<bool> removed_;
  size_t live_triples_ = 0;

  // spo hash -> candidate triple ids (collisions resolved by comparison).
  std::unordered_map<uint64_t, std::vector<TripleId>> spo_index_;
  std::unordered_map<NodeId, std::vector<TripleId>> s_index_;
  std::unordered_map<NodeId, std::vector<TripleId>> o_index_;
  std::unordered_map<PredicateId, std::vector<TripleId>> p_index_;
};

/// Order-insensitive 64-bit fingerprint of the live triple set: FNV-1a of
/// each (subject name+kind, predicate name, object name+kind) combined
/// commutatively. Two graphs asserting the same knowledge fingerprint
/// identically regardless of node ids or insertion order; stable across
/// platforms and runs (built on Fnv1a64, not std::hash). Used by the
/// parallel-determinism golden tests and the scaling benches to assert the
/// serial ≡ parallel invariant.
uint64_t TripleSetFingerprint(const KnowledgeGraph& kg);

}  // namespace kg::graph

#endif  // KGRAPH_GRAPH_KNOWLEDGE_GRAPH_H_
