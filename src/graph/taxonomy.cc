#include "graph/taxonomy.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/logging.h"

namespace kg::graph {

Taxonomy::Taxonomy(std::string root_name) {
  names_.push_back(root_name);
  index_.emplace(std::move(root_name), 0);
  parents_.emplace_back();
  children_.emplace_back();
}

TypeId Taxonomy::AddType(std::string_view name, TypeId parent) {
  KG_CHECK(parent < names_.size());
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    const TypeId id = it->second;
    if (!IsAncestor(id, parent) && !IsAncestor(parent, id)) {
      KG_CHECK_OK(AddParent(id, parent));
    }
    return id;
  }
  const TypeId id = static_cast<TypeId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string(name), id);
  parents_.push_back({parent});
  children_.emplace_back();
  children_[parent].push_back(id);
  return id;
}

Status Taxonomy::AddParent(TypeId type, TypeId parent) {
  KG_CHECK(type < names_.size());
  KG_CHECK(parent < names_.size());
  if (type == parent || IsAncestor(parent, type)) {
    return Status::InvalidArgument("parent edge would create a cycle: " +
                                   names_[type] + " -> " + names_[parent]);
  }
  auto& ps = parents_[type];
  if (std::find(ps.begin(), ps.end(), parent) == ps.end()) {
    ps.push_back(parent);
    children_[parent].push_back(type);
  }
  return Status::OK();
}

Result<TypeId> Taxonomy::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Status::NotFound("type: " + std::string(name));
  }
  return it->second;
}

const std::string& Taxonomy::Name(TypeId id) const {
  KG_CHECK(id < names_.size());
  return names_[id];
}

const std::vector<TypeId>& Taxonomy::Parents(TypeId id) const {
  KG_CHECK(id < parents_.size());
  return parents_[id];
}

const std::vector<TypeId>& Taxonomy::Children(TypeId id) const {
  KG_CHECK(id < children_.size());
  return children_[id];
}

bool Taxonomy::IsAncestor(TypeId type, TypeId ancestor) const {
  KG_CHECK(type < names_.size());
  KG_CHECK(ancestor < names_.size());
  if (type == ancestor) return true;
  std::deque<TypeId> frontier{type};
  std::unordered_set<TypeId> seen{type};
  while (!frontier.empty()) {
    const TypeId cur = frontier.front();
    frontier.pop_front();
    for (TypeId p : parents_[cur]) {
      if (p == ancestor) return true;
      if (seen.insert(p).second) frontier.push_back(p);
    }
  }
  return false;
}

namespace {
std::vector<TypeId> Bfs(TypeId start,
                        const std::vector<std::vector<TypeId>>& edges) {
  std::vector<TypeId> out{start};
  std::unordered_set<TypeId> seen{start};
  for (size_t i = 0; i < out.size(); ++i) {
    for (TypeId next : edges[out[i]]) {
      if (seen.insert(next).second) out.push_back(next);
    }
  }
  return out;
}
}  // namespace

std::vector<TypeId> Taxonomy::Ancestors(TypeId type) const {
  KG_CHECK(type < names_.size());
  return Bfs(type, parents_);
}

std::vector<TypeId> Taxonomy::Descendants(TypeId type) const {
  KG_CHECK(type < names_.size());
  return Bfs(type, children_);
}

std::vector<TypeId> Taxonomy::Leaves() const {
  std::vector<TypeId> out;
  for (TypeId id = 0; id < names_.size(); ++id) {
    if (children_[id].empty()) out.push_back(id);
  }
  return out;
}

int Taxonomy::Depth(TypeId type) const {
  KG_CHECK(type < names_.size());
  // BFS toward the root over parent edges; depths are small, so no memo.
  std::deque<std::pair<TypeId, int>> frontier{{type, 0}};
  std::unordered_set<TypeId> seen{type};
  while (!frontier.empty()) {
    auto [cur, d] = frontier.front();
    frontier.pop_front();
    if (cur == 0) return d;
    for (TypeId p : parents_[cur]) {
      if (seen.insert(p).second) frontier.push_back({p, d + 1});
    }
  }
  return -1;  // Unreachable from root: malformed taxonomy.
}

TypeId Taxonomy::Lca(TypeId a, TypeId b) const {
  const std::vector<TypeId> a_anc = Ancestors(a);
  std::unordered_set<TypeId> a_set(a_anc.begin(), a_anc.end());
  // Among common ancestors pick the deepest.
  TypeId best = 0;
  int best_depth = -1;
  for (TypeId anc : Ancestors(b)) {
    if (a_set.count(anc)) {
      const int d = Depth(anc);
      if (d > best_depth) {
        best_depth = d;
        best = anc;
      }
    }
  }
  return best;
}

double Taxonomy::WuPalmerSimilarity(TypeId a, TypeId b) const {
  const TypeId lca = Lca(a, b);
  const int da = Depth(a);
  const int db = Depth(b);
  const int dl = Depth(lca);
  if (da + db == 0) return 1.0;
  return 2.0 * dl / (da + db);
}

}  // namespace kg::graph
