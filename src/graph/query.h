#ifndef KGRAPH_GRAPH_QUERY_H_
#define KGRAPH_GRAPH_QUERY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/knowledge_graph.h"

namespace kg::graph {

/// A term in a triple pattern: a variable ("?x") or a constant bound to
/// a node/predicate by name.
struct Term {
  bool is_variable = false;
  std::string name;  ///< Variable name (without '?') or constant surface.

  static Term Var(std::string name) { return {true, std::move(name)}; }
  static Term Const(std::string name) { return {false, std::move(name)}; }
};

/// One triple pattern (subject, predicate, object).
struct TriplePattern {
  Term subject;
  Term predicate;
  Term object;
};

/// A variable binding: variable name -> node id.
using Binding = std::map<std::string, NodeId>;

/// Conjunctive (basic-graph-pattern) queries over a KnowledgeGraph —
/// the lookup layer behind the paper's "knowledge-based QA" industry
/// success (§5). Evaluation is pattern-at-a-time index nested-loop join
/// with greedy selectivity ordering; fine for the OLTP-style lookups KGs
/// serve.
class QueryEngine {
 public:
  explicit QueryEngine(const KnowledgeGraph& kg) : kg_(kg) {}

  /// Evaluates the conjunction of `patterns`; returns all bindings of
  /// the variables. Constants that name unknown nodes/predicates yield
  /// an empty result (not an error — absence of knowledge is a normal
  /// answer).
  std::vector<Binding> Evaluate(
      const std::vector<TriplePattern>& patterns) const;

  /// Parses "?m directed_by ?p . ?p name 'Ada Novak'" style query
  /// strings: whitespace-separated triples joined by '.', variables
  /// marked with '?', multi-word constants single-quoted.
  static Result<std::vector<TriplePattern>> Parse(const std::string& text);

  /// Convenience: parse + evaluate.
  Result<std::vector<Binding>> Query(const std::string& text) const;

 private:
  /// Matches one pattern under a partial binding, emitting extensions.
  void MatchPattern(const TriplePattern& pattern, const Binding& binding,
                    std::vector<Binding>* out) const;

  const KnowledgeGraph& kg_;
};

}  // namespace kg::graph

#endif  // KGRAPH_GRAPH_QUERY_H_
