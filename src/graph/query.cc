#include "graph/query.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace kg::graph {

namespace {

// Resolves a constant surface form to a node id, trying the kinds in
// order of likelihood. Returns kInvalidNode when unknown.
NodeId ResolveNode(const KnowledgeGraph& kg, const std::string& name) {
  for (NodeKind kind :
       {NodeKind::kEntity, NodeKind::kText, NodeKind::kClass}) {
    auto id = kg.FindNode(name, kind);
    if (id.ok()) return *id;
  }
  return kInvalidNode;
}

// How many of a pattern's terms are fixed under `binding` (constants or
// already-bound variables). Used for greedy join ordering.
int Boundness(const TriplePattern& p, const Binding& binding) {
  auto fixed = [&](const Term& t) {
    return !t.is_variable || binding.count(t.name) ? 1 : 0;
  };
  return fixed(p.subject) + 2 * /*predicates are cheap filters*/ 1 *
             fixed(p.predicate) +
         fixed(p.object);
}

}  // namespace

void QueryEngine::MatchPattern(const TriplePattern& pattern,
                               const Binding& binding,
                               std::vector<Binding>* out) const {
  // Resolve subject/object under the binding; -1 = unbound variable.
  auto resolve = [&](const Term& t, bool& known, NodeId& node) {
    known = false;
    if (!t.is_variable) {
      node = ResolveNode(kg_, t.name);
      known = true;
      return node != kInvalidNode;
    }
    auto it = binding.find(t.name);
    if (it != binding.end()) {
      node = it->second;
      known = true;
    }
    return true;
  };
  bool s_known = false, o_known = false;
  NodeId s_node = kInvalidNode, o_node = kInvalidNode;
  if (!resolve(pattern.subject, s_known, s_node)) return;
  if (!resolve(pattern.object, o_known, o_node)) return;
  KG_CHECK(!pattern.predicate.is_variable)
      << "predicate variables are not supported";
  auto pred = kg_.FindPredicate(pattern.predicate.name);
  if (!pred.ok()) return;

  // Choose the cheapest index for the access path.
  std::vector<TripleId> candidates;
  if (s_known) {
    candidates = kg_.TriplesWithSubject(s_node);
  } else if (o_known) {
    candidates = kg_.TriplesWithObject(o_node);
  } else {
    candidates = kg_.TriplesWithPredicate(*pred);
  }
  for (TripleId tid : candidates) {
    const Triple& t = kg_.triple(tid);
    if (t.predicate != *pred) continue;
    if (s_known && t.subject != s_node) continue;
    if (o_known && t.object != o_node) continue;
    Binding extended = binding;
    if (pattern.subject.is_variable) {
      extended[pattern.subject.name] = t.subject;
    }
    if (pattern.object.is_variable) {
      extended[pattern.object.name] = t.object;
    }
    out->push_back(std::move(extended));
  }
}

std::vector<Binding> QueryEngine::Evaluate(
    const std::vector<TriplePattern>& patterns) const {
  std::vector<Binding> frontier{{}};
  std::vector<bool> used(patterns.size(), false);
  for (size_t step = 0; step < patterns.size(); ++step) {
    // Greedy: next evaluate the most-bound remaining pattern (w.r.t. a
    // representative binding — all frontier bindings share a domain).
    const Binding& representative =
        frontier.empty() ? Binding{} : frontier.front();
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (used[i]) continue;
      const int score = Boundness(patterns[i], representative);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    used[best] = true;
    std::vector<Binding> next;
    for (const Binding& binding : frontier) {
      MatchPattern(patterns[best], binding, &next);
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

Result<std::vector<TriplePattern>> QueryEngine::Parse(
    const std::string& text) {
  std::vector<TriplePattern> patterns;
  for (const std::string& clause : Split(text, '.')) {
    const std::string trimmed(Trim(clause));
    if (trimmed.empty()) continue;
    // Tokenize respecting single-quoted constants.
    std::vector<Term> terms;
    size_t i = 0;
    while (i < trimmed.size()) {
      while (i < trimmed.size() && trimmed[i] == ' ') ++i;
      if (i >= trimmed.size()) break;
      if (trimmed[i] == '\'') {
        const size_t close = trimmed.find('\'', i + 1);
        if (close == std::string::npos) {
          return Status::InvalidArgument("unterminated quote in: " +
                                         trimmed);
        }
        terms.push_back(Term::Const(trimmed.substr(i + 1, close - i - 1)));
        i = close + 1;
      } else {
        size_t end = trimmed.find(' ', i);
        if (end == std::string::npos) end = trimmed.size();
        const std::string token = trimmed.substr(i, end - i);
        if (token[0] == '?') {
          if (token.size() < 2) {
            return Status::InvalidArgument("bare '?' in: " + trimmed);
          }
          terms.push_back(Term::Var(token.substr(1)));
        } else {
          terms.push_back(Term::Const(token));
        }
        i = end;
      }
    }
    if (terms.size() != 3) {
      return Status::InvalidArgument(
          "pattern must have 3 terms, got " +
          std::to_string(terms.size()) + " in: " + trimmed);
    }
    if (terms[1].is_variable) {
      return Status::InvalidArgument(
          "predicate variables are not supported: " + trimmed);
    }
    patterns.push_back(TriplePattern{terms[0], terms[1], terms[2]});
  }
  if (patterns.empty()) {
    return Status::InvalidArgument("empty query");
  }
  return patterns;
}

Result<std::vector<Binding>> QueryEngine::Query(
    const std::string& text) const {
  KG_ASSIGN_OR_RETURN(const auto patterns, Parse(text));
  return Evaluate(patterns);
}

}  // namespace kg::graph
