#ifndef KGRAPH_INTEGRATE_SCHEMA_ALIGNMENT_H_
#define KGRAPH_INTEGRATE_SCHEMA_ALIGNMENT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "integrate/record.h"

namespace kg::integrate {

/// A source-column -> canonical-attribute mapping. In production this is
/// "mostly done manually to ensure semantics correctness" (§2.2); the
/// manual path is a literal map, the automatic path is InferMapping.
struct SchemaMapping {
  std::map<std::string, std::string> source_to_canonical;

  /// Rewrites a raw record's keys into canonical attribute space,
  /// dropping unmapped columns.
  Record Apply(const std::string& source_name,
               const std::string& local_id,
               const std::map<std::string, std::string>& raw_fields) const;
};

/// Automatic schema matching (the "not-yet-successful in industry" §5
/// technique — implemented here both as a baseline and because it works
/// well enough on strongly-typed columns): scores column pairs by name
/// similarity plus instance-value overlap against a reference sample,
/// then greedily assigns best matches.
SchemaMapping InferMapping(
    const std::vector<std::string>& source_columns,
    const std::vector<std::map<std::string, std::string>>& source_sample,
    const std::vector<std::string>& canonical_columns,
    const std::vector<std::map<std::string, std::string>>&
        canonical_sample);

/// Fraction of source columns mapped to the correct canonical column.
double MappingAccuracy(const SchemaMapping& inferred,
                       const SchemaMapping& gold);

}  // namespace kg::integrate

#endif  // KGRAPH_INTEGRATE_SCHEMA_ALIGNMENT_H_
