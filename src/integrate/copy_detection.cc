#include "integrate/copy_detection.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace kg::integrate {

namespace {

// source -> fraction of its claims agreeing with the naive consensus;
// used to orient copier -> original.
std::map<std::string, double> ConsensusAgreement(const ClaimSet& claims) {
  const auto vote = MajorityVote(claims);
  std::map<std::string, std::pair<double, double>> agree;
  for (const auto& [item, item_claims] : claims) {
    const std::string& winner = vote.at(item).value;
    for (const Claim& c : item_claims) {
      auto& [hits, n] = agree[c.source];
      n += 1.0;
      if (c.value == winner) hits += 1.0;
    }
  }
  std::map<std::string, double> out;
  for (const auto& [source, pn] : agree) {
    out[source] = pn.second == 0.0 ? 0.0 : pn.first / pn.second;
  }
  return out;
}

}  // namespace

std::vector<CopyEvidence> DetectCopying(
    const ClaimSet& claims, const CopyDetectionOptions& options) {
  // Per item: value -> asserting sources, and source -> value.
  struct ItemView {
    std::map<std::string, std::vector<std::string>> value_sources;
    std::map<std::string, std::string> source_value;
  };
  std::map<std::string, ItemView> items;
  std::set<std::string> sources;
  for (const auto& [item, item_claims] : claims) {
    ItemView& view = items[item];
    for (const Claim& c : item_claims) {
      view.value_sources[c.value].push_back(c.source);
      view.source_value[c.source] = c.value;
      sources.insert(c.source);
    }
  }

  // Pairwise: count exclusive agreements (value asserted by exactly the
  // two of them while others dissent) vs. opportunities.
  std::map<std::pair<std::string, std::string>,
           std::pair<size_t, size_t>>  // (exclusive shared, opportunities)
      pair_stats;
  for (const auto& [item, view] : items) {
    if (view.source_value.size() < 3) continue;  // Need dissenters.
    for (auto a = view.source_value.begin(); a != view.source_value.end();
         ++a) {
      for (auto b = std::next(a); b != view.source_value.end(); ++b) {
        auto& [shared, opportunities] =
            pair_stats[{a->first, b->first}];
        ++opportunities;
        if (a->second != b->second) continue;
        // Exclusive: nobody else asserts this value.
        if (view.value_sources.at(a->second).size() == 2) ++shared;
      }
    }
  }

  const auto consensus = ConsensusAgreement(claims);
  const double chance = 1.0 / std::max(2.0, options.n_false_values);
  std::vector<CopyEvidence> evidence;
  for (const auto& [pair, stats] : pair_stats) {
    const auto& [shared, opportunities] = stats;
    if (opportunities < options.min_overlap) continue;
    const double rate =
        static_cast<double>(shared) / static_cast<double>(opportunities);
    const double score =
        std::max(0.0, (rate - chance) / (1.0 - chance));
    if (score < options.score_threshold) continue;
    CopyEvidence e;
    // The less consensus-consistent source is flagged as the copier.
    const bool first_worse =
        consensus.at(pair.first) <= consensus.at(pair.second);
    e.copier = first_worse ? pair.first : pair.second;
    e.original = first_worse ? pair.second : pair.first;
    e.score = score;
    e.shared_errors = shared;
    e.overlap = opportunities;
    evidence.push_back(std::move(e));
  }
  std::sort(evidence.begin(), evidence.end(),
            [](const CopyEvidence& a, const CopyEvidence& b) {
              return a.score > b.score;
            });
  return evidence;
}

AccuFusion::Result CopyAwareFusion(
    const ClaimSet& claims, const CopyDetectionOptions& copy_options,
    const AccuFusion::Options& accu_options) {
  const auto evidence = DetectCopying(claims, copy_options);
  // copier -> originals it copies from.
  std::map<std::string, std::set<std::string>> copies_from;
  for (const CopyEvidence& e : evidence) {
    copies_from[e.copier].insert(e.original);
  }
  // Remove a copier's claim when it duplicates any of its originals'
  // claims on the same item: dependent evidence must not count twice.
  ClaimSet filtered;
  for (const auto& [item, item_claims] : claims) {
    std::map<std::string, std::string> by_source;
    for (const Claim& c : item_claims) by_source[c.source] = c.value;
    for (const Claim& c : item_claims) {
      bool copied = false;
      auto it = copies_from.find(c.source);
      if (it != copies_from.end()) {
        for (const std::string& original : it->second) {
          auto ov = by_source.find(original);
          if (ov != by_source.end() && ov->second == c.value) {
            copied = true;
            break;
          }
        }
      }
      if (!copied) filtered[item].push_back(c);
    }
  }
  return AccuFusion::Run(filtered, accu_options);
}

}  // namespace kg::integrate
