#ifndef KGRAPH_INTEGRATE_FUSION_H_
#define KGRAPH_INTEGRATE_FUSION_H_

#include <map>
#include <string>
#include <vector>

namespace kg::integrate {

/// One source's assertion about a data item ((entity, attribute) pair).
struct Claim {
  std::string source;
  std::string value;
};

/// Claims grouped by data item id.
using ClaimSet = std::map<std::string, std::vector<Claim>>;

/// Fused decision for one item.
struct FusedValue {
  std::string value;
  double confidence = 0.0;
};

/// Baseline data fusion: per item, the most-asserted value (ties broken
/// lexicographically for determinism). Confidence = vote share.
std::map<std::string, FusedValue> MajorityVote(const ClaimSet& claims);

/// ACCU-style fusion (Dong & Naumann 2009 lineage, §2.2 "data fusion"):
/// EM that alternates between (a) scoring values by accuracy-weighted
/// votes and (b) re-estimating each source's accuracy from how often it
/// agrees with the current winners. Beats voting whenever source quality
/// varies.
class AccuFusion {
 public:
  struct Options {
    size_t max_iterations = 20;
    double initial_accuracy = 0.8;
    double convergence_epsilon = 1e-4;
    /// Number of plausible distinct values per item (controls the weight
    /// of a vote against).
    double n_false_values = 10.0;
  };

  struct Result {
    std::map<std::string, FusedValue> fused;
    std::map<std::string, double> source_accuracy;
    size_t iterations = 0;
  };

  /// Runs EM to a fixed point.
  static Result Run(const ClaimSet& claims, const Options& options);
};

}  // namespace kg::integrate

#endif  // KGRAPH_INTEGRATE_FUSION_H_
