#include "integrate/dedup.h"

#include <map>
#include <numeric>

#include "common/logging.h"

namespace kg::integrate {

namespace {

/// Minimal union-find with path compression.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[b] = a;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

DedupResult DedupRecords(const RecordSet& records,
                         const EntityLinker& linker,
                         const LinkageSchema& schema, double threshold) {
  DedupResult result;
  const size_t n = records.records.size();
  UnionFind uf(n);
  // Self-join: block the set against itself, skip trivial i == j and
  // symmetric duplicates.
  for (const auto& [i, j] : BlockCandidates(records, records, schema)) {
    if (i >= j) continue;
    ++result.pairs_scored;
    const double score =
        linker.ScorePair(records.records[i], records.records[j], schema);
    if (score >= threshold) {
      if (uf.Union(i, j)) ++result.pairs_merged;
    }
  }
  // Densify cluster ids.
  result.cluster_of.resize(n);
  std::map<size_t, size_t> dense;
  for (size_t i = 0; i < n; ++i) {
    const size_t root = uf.Find(i);
    auto [it, inserted] = dense.emplace(root, dense.size());
    result.cluster_of[i] = it->second;
  }
  result.num_clusters = dense.size();
  return result;
}

RecordSet MergeClusters(const RecordSet& records,
                        const DedupResult& dedup) {
  KG_CHECK(dedup.cluster_of.size() == records.records.size());
  // cluster -> attribute -> value -> count.
  std::vector<std::map<std::string, std::map<std::string, size_t>>>
      votes(dedup.num_clusters);
  std::vector<std::string> local_ids(dedup.num_clusters);
  for (size_t i = 0; i < records.records.size(); ++i) {
    const size_t c = dedup.cluster_of[i];
    if (local_ids[c].empty()) {
      local_ids[c] = records.records[i].local_id;
    }
    for (const auto& [attr, value] : records.records[i].attrs) {
      ++votes[c][attr][value];
    }
  }
  RecordSet merged;
  merged.source_name = records.source_name;
  merged.records.resize(dedup.num_clusters);
  for (size_t c = 0; c < dedup.num_clusters; ++c) {
    Record& rec = merged.records[c];
    rec.source = records.source_name;
    rec.local_id = local_ids[c];
    for (const auto& [attr, value_votes] : votes[c]) {
      std::string best;
      size_t best_count = 0;
      for (const auto& [value, count] : value_votes) {
        if (count > best_count) {
          best_count = count;
          best = value;
        }
      }
      rec.attrs[attr] = best;
    }
  }
  return merged;
}

}  // namespace kg::integrate
