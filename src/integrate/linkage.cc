#include "integrate/linkage.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <unordered_map>

#include "common/logging.h"
#include "text/similarity.h"
#include "text/tokenize.h"

namespace kg::integrate {

std::vector<std::string> LinkageFeatureNames(const LinkageSchema& schema) {
  std::vector<std::string> names;
  for (const auto& attr : schema.name_attrs) {
    names.push_back(attr + ".jw");
    names.push_back(attr + ".jaccard");
    names.push_back(attr + ".monge_elkan");
    names.push_back(attr + ".missing");
  }
  for (const auto& attr : schema.numeric_attrs) {
    names.push_back(attr + ".num_sim");
    names.push_back(attr + ".missing");
  }
  for (const auto& attr : schema.categorical_attrs) {
    names.push_back(attr + ".equal");
    names.push_back(attr + ".missing");
  }
  return names;
}

ml::FeatureVector PairFeatures(const Record& a, const Record& b,
                               const LinkageSchema& schema) {
  ml::FeatureVector f;
  for (const auto& attr : schema.name_attrs) {
    const std::string& va = a.Get(attr);
    const std::string& vb = b.Get(attr);
    if (va.empty() || vb.empty()) {
      f.insert(f.end(), {0.0, 0.0, 0.0, 1.0});
      continue;
    }
    const std::string na = text::NormalizeForMatch(va);
    const std::string nb = text::NormalizeForMatch(vb);
    const auto ta = text::Tokenize(na);
    const auto tb = text::Tokenize(nb);
    f.push_back(text::JaroWinklerSimilarity(na, nb));
    f.push_back(text::JaccardSimilarity(ta, tb));
    f.push_back(std::max(text::MongeElkanSimilarity(ta, tb),
                         text::MongeElkanSimilarity(tb, ta)));
    f.push_back(0.0);
  }
  for (const auto& attr : schema.numeric_attrs) {
    const std::string& va = a.Get(attr);
    const std::string& vb = b.Get(attr);
    if (va.empty() || vb.empty()) {
      f.insert(f.end(), {0.0, 1.0});
      continue;
    }
    f.push_back(text::NumericSimilarity(std::atof(va.c_str()),
                                        std::atof(vb.c_str()), 2.0));
    f.push_back(0.0);
  }
  for (const auto& attr : schema.categorical_attrs) {
    const std::string& va = a.Get(attr);
    const std::string& vb = b.Get(attr);
    if (va.empty() || vb.empty()) {
      f.insert(f.end(), {0.0, 1.0});
      continue;
    }
    f.push_back(text::NormalizeForMatch(va) == text::NormalizeForMatch(vb)
                    ? 1.0
                    : 0.0);
    f.push_back(0.0);
  }
  return f;
}

std::vector<std::pair<size_t, size_t>> BlockCandidates(
    const RecordSet& a, const RecordSet& b, const LinkageSchema& schema,
    const ExecPolicy& exec) {
  const std::vector<std::string>& blocking =
      schema.blocking_attrs.empty() ? schema.name_attrs
                                    : schema.blocking_attrs;
  // Key = any token of any blocking attribute. The index is built once,
  // serially; shards below only read it.
  std::unordered_map<std::string, std::vector<size_t>> index_b;
  for (size_t j = 0; j < b.records.size(); ++j) {
    for (const auto& attr : blocking) {
      for (const auto& token :
           text::Tokenize(b.records[j].Get(attr))) {
        index_b[token].push_back(j);
      }
    }
  }
  // Stop-token pruning: tokens appearing in a large fraction of records
  // ("the", "of") would make blocking quadratic while adding no
  // discriminative signal.
  const size_t frequency_cap =
      std::max<size_t>(20, b.records.size() / 20);
  // One slot per a-record: a pair (i, j) can only be produced while
  // visiting record i, so per-record dedup equals global dedup and the
  // in-order concatenation of slots equals the serial scan.
  std::vector<std::vector<size_t>> matches_of(a.records.size());
  ParallelForChunked(exec, a.records.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      std::set<size_t> seen_j;
      for (const auto& attr : blocking) {
        for (const auto& token :
             text::Tokenize(a.records[i].Get(attr))) {
          auto it = index_b.find(token);
          if (it == index_b.end()) continue;
          if (it->second.size() > frequency_cap) continue;
          for (size_t j : it->second) {
            if (seen_j.insert(j).second) matches_of[i].push_back(j);
          }
        }
      }
    }
  });
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t i = 0; i < matches_of.size(); ++i) {
    for (size_t j : matches_of[i]) pairs.emplace_back(i, j);
  }
  return pairs;
}

void EntityLinker::Fit(const ml::Dataset& pairs,
                       const ml::ForestOptions& options, Rng& rng) {
  forest_.Fit(pairs, options, rng);
}

double EntityLinker::ScorePair(const Record& a, const Record& b,
                               const LinkageSchema& schema) const {
  return forest_.PredictPositiveProba(PairFeatures(a, b, schema));
}

std::vector<Match> EntityLinker::Link(const RecordSet& a,
                                      const RecordSet& b,
                                      const LinkageSchema& schema,
                                      double threshold,
                                      const ExecPolicy& exec) const {
  const auto candidates = BlockCandidates(a, b, schema, exec);
  // Score into index-addressed slots (featurization + forest inference is
  // the hot loop); the threshold filter below runs serially in candidate
  // order, so the scored list matches the serial scan exactly.
  std::vector<double> scores(candidates.size());
  ParallelForChunked(exec, candidates.size(),
                     [&](size_t begin, size_t end) {
                       for (size_t c = begin; c < end; ++c) {
                         const auto& [i, j] = candidates[c];
                         scores[c] = ScorePair(a.records[i], b.records[j],
                                               schema);
                       }
                     });
  std::vector<Match> scored;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (scores[c] >= threshold) {
      scored.push_back({candidates[c].first, candidates[c].second,
                        scores[c]});
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const Match& x, const Match& y) { return x.score > y.score; });
  std::set<size_t> used_a, used_b;
  std::vector<Match> result;
  for (const Match& m : scored) {
    if (used_a.count(m.index_a) || used_b.count(m.index_b)) continue;
    used_a.insert(m.index_a);
    used_b.insert(m.index_b);
    result.push_back(m);
  }
  return result;
}

}  // namespace kg::integrate
