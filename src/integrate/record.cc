#include "integrate/record.h"

namespace kg::integrate {

const std::string& Record::Get(const std::string& attr) const {
  static const std::string* empty = new std::string();
  auto it = attrs.find(attr);
  return it == attrs.end() ? *empty : it->second;
}

}  // namespace kg::integrate
