#ifndef KGRAPH_INTEGRATE_RECORD_H_
#define KGRAPH_INTEGRATE_RECORD_H_

#include <map>
#include <string>
#include <vector>

namespace kg::integrate {

/// A source record in canonical attribute space — the unit knowledge
/// integration works on after schema alignment. `source` + `local_id`
/// identify the record; attrs map canonical attribute -> value.
struct Record {
  std::string source;
  std::string local_id;
  std::map<std::string, std::string> attrs;

  /// Value of `attr`, or "" when absent.
  const std::string& Get(const std::string& attr) const;
};

/// A collection of records from one source.
struct RecordSet {
  std::string source_name;
  std::vector<Record> records;
};

}  // namespace kg::integrate

#endif  // KGRAPH_INTEGRATE_RECORD_H_
