#ifndef KGRAPH_INTEGRATE_DEDUP_H_
#define KGRAPH_INTEGRATE_DEDUP_H_

#include <vector>

#include "integrate/linkage.h"

namespace kg::integrate {

/// Within-source entity resolution: one source often lists the same
/// real-world entity under several local ids (the paper's entity
/// heterogeneity is not only cross-source). Dedup runs the trained
/// linker over a single record set's blocked pairs and merges matches
/// by transitive closure (union-find), so A~B and B~C put A, B, C in
/// one cluster even when A~C scores below threshold.
struct DedupResult {
  /// cluster id per record (dense, 0-based).
  std::vector<size_t> cluster_of;
  size_t num_clusters = 0;
  size_t pairs_scored = 0;
  size_t pairs_merged = 0;
};

DedupResult DedupRecords(const RecordSet& records,
                         const EntityLinker& linker,
                         const LinkageSchema& schema,
                         double threshold = 0.5);

/// Merges each cluster into one canonical record: per attribute, the
/// most frequent value among members (ties: lexicographically first).
RecordSet MergeClusters(const RecordSet& records,
                        const DedupResult& dedup);

}  // namespace kg::integrate

#endif  // KGRAPH_INTEGRATE_DEDUP_H_
