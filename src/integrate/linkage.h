#ifndef KGRAPH_INTEGRATE_LINKAGE_H_
#define KGRAPH_INTEGRATE_LINKAGE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/exec_policy.h"
#include "common/rng.h"
#include "integrate/record.h"
#include "ml/dataset.h"
#include "ml/random_forest.h"

namespace kg::integrate {

/// Which canonical attributes exist and how each should be compared when
/// building pairwise similarity features.
struct LinkageSchema {
  /// Name-like attributes: Jaro-Winkler + token Jaccard + Monge-Elkan.
  std::vector<std::string> name_attrs;
  /// Numeric attributes (years): exp-scaled distance.
  std::vector<std::string> numeric_attrs;
  /// Categorical attributes: exact-match indicator.
  std::vector<std::string> categorical_attrs;
  /// Attributes whose tokens form blocking keys; defaults to
  /// `name_attrs` when empty. Narrowing this keeps high-recall but
  /// non-identifying comparison attributes (a person's filmography) from
  /// exploding the candidate space.
  std::vector<std::string> blocking_attrs;
};

/// Names of the features PairFeatures produces, in order.
std::vector<std::string> LinkageFeatureNames(const LinkageSchema& schema);

/// The attribute-wise value-similarity feature vector of a record pair —
/// exactly the feature family the paper reports works with random forests
/// (§2.2).
ml::FeatureVector PairFeatures(const Record& a, const Record& b,
                               const LinkageSchema& schema);

/// Candidate generation: all cross-source pairs sharing a blocking key
/// (any name-attribute token, lowercased). Without blocking the pair
/// space is |A|x|B|; with it, linkage scales to millions of records.
/// Sharded over `a`'s records under `exec`; the candidate list is
/// identical for every thread count (per-record results are concatenated
/// in record order, and deduplication is per-record by construction).
std::vector<std::pair<size_t, size_t>> BlockCandidates(
    const RecordSet& a, const RecordSet& b, const LinkageSchema& schema,
    const ExecPolicy& exec = {});

/// A scored match between record indices of two record sets.
struct Match {
  size_t index_a = 0;
  size_t index_b = 0;
  double score = 0.0;
};

/// Random-forest entity linker (§2.2, Figure 2).
class EntityLinker {
 public:
  EntityLinker() = default;

  /// Trains the forest on a labeled pair dataset (label 1 = same entity).
  void Fit(const ml::Dataset& pairs, const ml::ForestOptions& options,
           Rng& rng);

  /// P(same entity) for one candidate pair.
  double ScorePair(const Record& a, const Record& b,
                   const LinkageSchema& schema) const;

  /// Links two record sets: blocks, scores, thresholds, then enforces a
  /// 1-1 constraint greedily by descending score. Candidate pairing and
  /// forest scoring shard under `exec` (scores land in index-addressed
  /// slots), so matches are bit-identical for any thread count.
  std::vector<Match> Link(const RecordSet& a, const RecordSet& b,
                          const LinkageSchema& schema,
                          double threshold = 0.5,
                          const ExecPolicy& exec = {}) const;

  const ml::RandomForest& forest() const { return forest_; }

 private:
  ml::RandomForest forest_;
};

}  // namespace kg::integrate

#endif  // KGRAPH_INTEGRATE_LINKAGE_H_
