#include "integrate/schema_alignment.h"

#include <algorithm>
#include <set>

#include "text/similarity.h"
#include "text/tokenize.h"

namespace kg::integrate {

Record SchemaMapping::Apply(
    const std::string& source_name, const std::string& local_id,
    const std::map<std::string, std::string>& raw_fields) const {
  Record rec;
  rec.source = source_name;
  rec.local_id = local_id;
  for (const auto& [column, value] : raw_fields) {
    auto it = source_to_canonical.find(column);
    if (it == source_to_canonical.end()) continue;
    rec.attrs[it->second] = value;
  }
  return rec;
}

namespace {

// Instance-level signature of a column: the set of normalized values plus
// a numeric-fraction summary.
struct ColumnProfile {
  std::set<std::string> values;
  double numeric_fraction = 0.0;
};

ColumnProfile ProfileColumn(
    const std::string& column,
    const std::vector<std::map<std::string, std::string>>& sample) {
  ColumnProfile profile;
  size_t numeric = 0, present = 0;
  for (const auto& row : sample) {
    auto it = row.find(column);
    if (it == row.end() || it->second.empty()) continue;
    ++present;
    profile.values.insert(text::NormalizeForMatch(it->second));
    bool all_digits = !it->second.empty();
    for (char c : it->second) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        all_digits = false;
        break;
      }
    }
    if (all_digits) ++numeric;
  }
  profile.numeric_fraction =
      present == 0 ? 0.0
                   : static_cast<double>(numeric) /
                         static_cast<double>(present);
  return profile;
}

double ValueOverlap(const ColumnProfile& a, const ColumnProfile& b) {
  if (a.values.empty() || b.values.empty()) return 0.0;
  size_t intersection = 0;
  for (const auto& v : a.values) {
    if (b.values.count(v)) ++intersection;
  }
  return static_cast<double>(intersection) /
         static_cast<double>(std::min(a.values.size(), b.values.size()));
}

}  // namespace

SchemaMapping InferMapping(
    const std::vector<std::string>& source_columns,
    const std::vector<std::map<std::string, std::string>>& source_sample,
    const std::vector<std::string>& canonical_columns,
    const std::vector<std::map<std::string, std::string>>&
        canonical_sample) {
  std::vector<ColumnProfile> source_profiles, canonical_profiles;
  source_profiles.reserve(source_columns.size());
  for (const auto& c : source_columns) {
    source_profiles.push_back(ProfileColumn(c, source_sample));
  }
  canonical_profiles.reserve(canonical_columns.size());
  for (const auto& c : canonical_columns) {
    canonical_profiles.push_back(ProfileColumn(c, canonical_sample));
  }

  // Score every pair, then greedy 1-1 assignment best-first.
  struct Cell {
    double score;
    size_t s, c;
  };
  std::vector<Cell> cells;
  for (size_t s = 0; s < source_columns.size(); ++s) {
    for (size_t c = 0; c < canonical_columns.size(); ++c) {
      const double name_sim = text::JaroWinklerSimilarity(
          text::NormalizeForMatch(source_columns[s]),
          text::NormalizeForMatch(canonical_columns[c]));
      const double overlap =
          ValueOverlap(source_profiles[s], canonical_profiles[c]);
      const double type_match =
          1.0 - std::abs(source_profiles[s].numeric_fraction -
                         canonical_profiles[c].numeric_fraction);
      cells.push_back(
          {0.35 * name_sim + 0.5 * overlap + 0.15 * type_match, s, c});
    }
  }
  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.score > b.score; });
  SchemaMapping mapping;
  std::set<size_t> used_source, used_canonical;
  for (const Cell& cell : cells) {
    if (cell.score < 0.3) break;  // Leave weak columns unmapped.
    if (used_source.count(cell.s) || used_canonical.count(cell.c)) continue;
    used_source.insert(cell.s);
    used_canonical.insert(cell.c);
    mapping.source_to_canonical[source_columns[cell.s]] =
        canonical_columns[cell.c];
  }
  return mapping;
}

double MappingAccuracy(const SchemaMapping& inferred,
                       const SchemaMapping& gold) {
  if (gold.source_to_canonical.empty()) return 0.0;
  size_t correct = 0;
  for (const auto& [column, target] : gold.source_to_canonical) {
    auto it = inferred.source_to_canonical.find(column);
    if (it != inferred.source_to_canonical.end() && it->second == target) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(gold.source_to_canonical.size());
}

}  // namespace kg::integrate
