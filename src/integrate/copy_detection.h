#ifndef KGRAPH_INTEGRATE_COPY_DETECTION_H_
#define KGRAPH_INTEGRATE_COPY_DETECTION_H_

#include <map>
#include <string>
#include <vector>

#include "integrate/fusion.h"

namespace kg::integrate {

/// A detected directional dependence: `copier` appears to copy from
/// `original` with the given score.
struct CopyEvidence {
  std::string copier;
  std::string original;
  double score = 0.0;            ///< Dependence strength in [0, 1].
  size_t shared_errors = 0;      ///< Co-asserted non-majority values.
  size_t overlap = 0;            ///< Items both sources cover.
};

/// Copy detection (Dong, Berti-Équille, Srivastava lineage; the paper
/// cites "Scaling up copy detection" in §2.2's fusion discussion). The
/// tell is SHARED FALSE VALUES: independent sources make independent
/// errors, so two sources agreeing on the same minority value far more
/// often than chance are dependent. The source with lower overall
/// apparent accuracy is flagged as the copier.
struct CopyDetectionOptions {
  /// Minimum items two sources must both cover to be testable.
  size_t min_overlap = 10;
  /// Dependence score above which a pair is reported.
  double score_threshold = 0.3;
  /// Assumed number of distinct false values per item (chance level of
  /// an accidental shared error is ~1/n).
  double n_false_values = 10.0;
};

/// Analyzes a claim set and returns detected copier pairs, strongest
/// first.
std::vector<CopyEvidence> DetectCopying(
    const ClaimSet& claims, const CopyDetectionOptions& options);

/// Fusion that discounts copiers: runs copy detection, down-weights each
/// detected copier's claims by (1 - score) when they agree with the
/// claimed original, then runs ACCU. Fixes the colluding-sources failure
/// mode that plain vote/ACCU cannot (they count dependent assertions as
/// independent evidence).
AccuFusion::Result CopyAwareFusion(const ClaimSet& claims,
                                   const CopyDetectionOptions& copy_options,
                                   const AccuFusion::Options& accu_options);

}  // namespace kg::integrate

#endif  // KGRAPH_INTEGRATE_COPY_DETECTION_H_
