#include "integrate/fusion.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kg::integrate {

std::map<std::string, FusedValue> MajorityVote(const ClaimSet& claims) {
  std::map<std::string, FusedValue> fused;
  for (const auto& [item, item_claims] : claims) {
    std::map<std::string, size_t> votes;
    for (const Claim& c : item_claims) ++votes[c.value];
    std::string best;
    size_t best_votes = 0;
    for (const auto& [value, count] : votes) {
      if (count > best_votes) {
        best_votes = count;
        best = value;
      }
    }
    fused[item] = FusedValue{
        best, item_claims.empty()
                  ? 0.0
                  : static_cast<double>(best_votes) / item_claims.size()};
  }
  return fused;
}

AccuFusion::Result AccuFusion::Run(const ClaimSet& claims,
                                   const Options& options) {
  Result result;
  // Initialize source accuracies.
  for (const auto& [item, item_claims] : claims) {
    for (const Claim& c : item_claims) {
      result.source_accuracy.emplace(c.source, options.initial_accuracy);
    }
  }

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // E-step: per item, score each value by sum over sources of
    // log( a_s * n / (1 - a_s) ) for a vote, where n = n_false_values
    // (the ACCU vote-count formulation). Keep the full softmax — the
    // M-step uses expected agreement (soft EM), which avoids the
    // systematic bias a hard tie-break would inject on 1-vote-each items.
    std::map<std::string, FusedValue> fused;
    std::map<std::string, std::map<std::string, double>> value_proba;
    for (const auto& [item, item_claims] : claims) {
      std::map<std::string, double> score;
      for (const Claim& c : item_claims) {
        const double a = std::clamp(result.source_accuracy[c.source],
                                    0.01, 0.99);
        score[c.value] +=
            std::log(options.n_false_values * a / (1.0 - a));
      }
      std::string best;
      double best_score = -1e300;
      double z = 0.0;
      for (const auto& [value, s] : score) z += std::exp(s);
      for (const auto& [value, s] : score) {
        value_proba[item][value] = z > 0.0 ? std::exp(s) / z : 0.0;
        if (s > best_score) {
          best_score = s;
          best = value;
        }
      }
      fused[item] =
          FusedValue{best, z > 0.0 ? std::exp(best_score) / z : 0.0};
    }

    // M-step: source accuracy = expected agreement with the truth under
    // the current posterior.
    std::map<std::string, std::pair<double, double>> agree;  // (hits, n)
    for (const auto& [item, item_claims] : claims) {
      for (const Claim& c : item_claims) {
        auto& [hits, n] = agree[c.source];
        n += 1.0;
        hits += value_proba[item][c.value];
      }
    }
    double max_delta = 0.0;
    for (auto& [source, accuracy] : result.source_accuracy) {
      const auto& [hits, n] = agree[source];
      // Smoothed accuracy estimate.
      const double updated = (hits + 1.0) / (n + 2.0);
      max_delta = std::max(max_delta, std::abs(updated - accuracy));
      accuracy = updated;
    }
    result.fused = std::move(fused);
    if (max_delta < options.convergence_epsilon) break;
  }
  return result;
}

}  // namespace kg::integrate
