#ifndef KGRAPH_OBS_TRACE_H_
#define KGRAPH_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace kg::obs {

/// Clock injected into a Tracer. Production uses WallTraceClock;
/// replay/determinism tests use FixedTraceClock so two runs of the
/// same seeded workload produce byte-identical trace JSON.
class TraceClock {
 public:
  virtual ~TraceClock() = default;
  virtual double NowSeconds() = 0;
};

/// Monotonic wall clock, zeroed at construction.
class WallTraceClock : public TraceClock {
 public:
  WallTraceClock();
  double NowSeconds() override;

 private:
  uint64_t origin_ns_ = 0;
};

/// Returns a programmed value; Advance lets tests script timelines.
/// Thread-safe (C++20 atomic<double>).
class FixedTraceClock : public TraceClock {
 public:
  explicit FixedTraceClock(double now_seconds = 0.0) : now_(now_seconds) {}
  double NowSeconds() override {
    return now_.load(std::memory_order_relaxed);
  }
  void Set(double seconds) { now_.store(seconds, std::memory_order_relaxed); }
  void Advance(double seconds) {
    now_.fetch_add(seconds, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> now_;
};

/// One finished span as recorded by the tracer.
struct SpanRecord {
  uint64_t id = 0;         // Fnv1a64(seed "|" qualified path)
  uint64_t parent_id = 0;  // 0 for roots
  std::string name;
  std::string path;  // qualified: parent.path + "/" + name + "#" + seq
  uint32_t seq = 0;  // per-(parent,name) occurrence index
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  // Insertion-ordered key/value annotations (counts, statuses...).
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer;

/// RAII span handle. Default-constructed (or moved-from) spans are
/// inert: every operation is a cheap no-op, so call sites can be
/// written unconditionally against a possibly-null tracer. The span
/// records itself with the tracer when it ends (destructor or End()).
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  ~Span() { End(); }

  /// Starts a child span; inert if this span is inert. Safe to call
  /// concurrently from worker threads sharing a parent — but for
  /// deterministic ids, concurrent same-name siblings must be
  /// disambiguated by the caller (e.g. "chunk@128" with the chunk's
  /// begin index), because sequence numbers are assigned in completion
  /// order otherwise.
  Span Child(std::string_view name);

  void SetAttr(std::string_view key, std::string_view value);
  void SetAttr(std::string_view key, int64_t value);
  void SetAttr(std::string_view key, uint64_t value);
  void SetAttr(std::string_view key, double value, int digits = 6);

  /// Finishes the span (idempotent): stamps the end time and hands the
  /// record to the tracer.
  void End();

  bool active() const { return tracer_ != nullptr; }
  uint64_t id() const { return rec_.id; }
  const std::string& path() const { return rec_.path; }

 private:
  friend class Tracer;
  Tracer* tracer_ = nullptr;
  SpanRecord rec_;
};

/// Collects finished spans and exports them as a schema-versioned JSON
/// tree. Span ids are Fnv1a64 over (seed, qualified path) where the
/// qualified path chains "name#seq" segments from the root — a pure
/// function of the trace *structure*, so replaying a seeded workload
/// reproduces identical ids at any thread count. Export sorts children
/// by (name, seq), making the JSON independent of completion order.
class Tracer {
 public:
  /// `clock` may be null (a WallTraceClock is created and owned).
  explicit Tracer(uint64_t seed, TraceClock* clock = nullptr);

  /// Starts a root span.
  Span Root(std::string_view name);

  /// Starts a span whose parent arrived over the wire: `parent_span_id`
  /// is a span id minted by a remote tracer (rpc::TraceContext). The
  /// new span's path is anchored at "~<hex parent id>/<name>", so its
  /// id stays a pure function of (seed, remote parent id, structure) —
  /// same-seed distributed runs reproduce identical ids. When the
  /// parent happens to be recorded by this same tracer (in-process
  /// transport), export nests the span under it; otherwise the span
  /// renders as a root of its local forest.
  Span RootWithParent(uint64_t parent_span_id, std::string_view name);

  /// Null-safe start helper: inert span when `tracer` is null (or the
  /// library is built with KG_OBS_NOOP).
  static Span Start(Tracer* tracer, std::string_view name);

  /// Null-safe RootWithParent. Falls back to a plain root when
  /// `parent_span_id` is zero (no context on the wire).
  static Span StartWithParent(Tracer* tracer, uint64_t parent_span_id,
                              std::string_view name);

  /// {"schema_version":1,"seed":...,"span_count":N,"spans":[...]}
  /// with spans nested under their parents. Unfinished spans are not
  /// included — export after the traced work completes.
  std::string ToJson() const;

  size_t finished_spans() const;
  void Clear();
  uint64_t seed() const { return seed_; }

 private:
  friend class Span;
  Span NewSpan(const SpanRecord* parent, std::string_view name);
  void Finish(SpanRecord rec);

  uint64_t seed_;
  TraceClock* clock_;
  std::unique_ptr<TraceClock> owned_clock_;
  mutable std::mutex mu_;
  // Next sequence number per (parent path, name) base path.
  std::unordered_map<std::string, uint32_t> next_seq_;
  std::vector<SpanRecord> finished_;
};

/// "0x%016x" rendering of a span/trace id — the form used in trace
/// JSON and in the remote-parent path anchor.
std::string HexSpanId(uint64_t id);

}  // namespace kg::obs

#endif  // KGRAPH_OBS_TRACE_H_
