#include "obs/stage_timer.h"

#include "common/strings.h"
#include "common/table_printer.h"

namespace kg {

StageTimer::StageTimer()
    : owned_registry_(std::make_unique<obs::MetricsRegistry>()),
      registry_(owned_registry_.get()) {}

StageTimer::StageTimer(obs::MetricsRegistry* registry)
    : registry_(registry) {}

StageTimer::StageHandles& StageTimer::HandlesFor(const std::string& stage) {
  auto [it, inserted] = index_.emplace(stage, stages_.size());
  if (inserted) {
    StageHandles handles;
    handles.stage = stage;
    const std::string prefix = "stage." + stage;
    handles.calls = &registry_->GetCounter(prefix + ".calls");
    handles.items = &registry_->GetCounter(prefix + ".items");
    handles.seconds_ticks = &registry_->GetCounter(prefix + ".seconds_ticks");
    stages_.push_back(std::move(handles));
  }
  return stages_[it->second];
}

void StageTimer::Record(const std::string& stage, double seconds,
                        size_t items) {
  std::lock_guard<std::mutex> lock(mu_);
  StageHandles& handles = HandlesFor(stage);
  handles.calls->Inc(1);
  if (items > 0) handles.items->Inc(items);
  if (seconds > 0.0) {
    handles.seconds_ticks->Inc(
        static_cast<uint64_t>(obs::Histogram::ToTicks(seconds)));
  }
}

std::vector<StageTimer::Row> StageTimer::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Row> rows;
  rows.reserve(stages_.size());
  for (const StageHandles& handles : stages_) {
    Row row;
    row.stage = handles.stage;
    row.calls = handles.calls->Value();
    row.items = handles.items->Value();
    row.seconds = static_cast<double>(handles.seconds_ticks->Value()) /
                  obs::kFixedPointScale;
    rows.push_back(std::move(row));
  }
  return rows;
}

void StageTimer::Print(std::ostream& os) const {
  TablePrinter table({"stage", "calls", "wall_s", "items", "items/s"});
  for (const Row& row : rows()) {
    table.AddRow({row.stage, std::to_string(row.calls),
                  FormatDouble(row.seconds, 3),
                  FormatCount(static_cast<int64_t>(row.items)),
                  FormatCount(static_cast<int64_t>(row.ItemsPerSec()))});
  }
  table.Print(os);
}

void StageTimer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (StageHandles& handles : stages_) {
    handles.calls->Reset();
    handles.items->Reset();
    handles.seconds_ticks->Reset();
  }
  stages_.clear();
  index_.clear();
}

}  // namespace kg
