#include "obs/bench_sink.h"

#include <fstream>
#include <iostream>

#include "obs/json.h"

namespace kg::obs {

std::string GitDescribe() {
#ifdef KG_GIT_DESCRIBE
  return KG_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

JsonSink::JsonSink(std::string bench_name, uint64_t seed, size_t threads)
    : bench_name_(std::move(bench_name)),
      seed_(seed),
      threads_(threads),
      git_(GitDescribe()) {}

std::string JsonSink::Render(std::string_view payload_json) const {
  JsonWriter w;
  w.BeginObject();
  // 2: benches may carry per-stage breakdown sections (stage_us.*
  // histogram rows) in their payloads alongside the PR-10 tracing work.
  w.Key("schema_version").Int(2);
  w.Key("bench").String(bench_name_);
  w.Key("seed").UInt(seed_);
  w.Key("threads").UInt(static_cast<uint64_t>(threads_));
  w.Key("git").String(git_);
  w.Key("payload").Raw(payload_json);
  w.EndObject();
  return w.Take();
}

Status JsonSink::WriteFile(const std::string& path,
                           std::string_view payload_json) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << Render(payload_json) << "\n";
  if (!out) {
    return Status::IoError("short write to " + path);
  }
  std::cout << "wrote " << path << "\n";
  return Status::OK();
}

}  // namespace kg::obs
