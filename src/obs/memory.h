#ifndef KGRAPH_OBS_MEMORY_H_
#define KGRAPH_OBS_MEMORY_H_

#include <cstdint>

#include "obs/metrics.h"

namespace kg::obs {

/// Process memory as the kernel accounts it, in bytes. Zeros on
/// platforms without /proc (the scale experiments only assert budgets
/// where the numbers exist).
struct ProcessMemory {
  uint64_t rss_bytes = 0;   ///< VmRSS: resident set right now
  uint64_t peak_bytes = 0;  ///< VmHWM: resident high-water mark
};

/// Reads /proc/self/status. Cheap (one small pseudo-file parse), safe to
/// call from bench loops between phases.
ProcessMemory ReadProcessMemory();

/// Publishes ReadProcessMemory() as "process.mem.rss_bytes" /
/// "process.mem.peak_bytes" gauges. The memory-budget view the scale
/// bench (E25) exports next to the snapshot's own footprint gauges.
void PublishProcessMemory(MetricsRegistry& registry);

}  // namespace kg::obs

#endif  // KGRAPH_OBS_MEMORY_H_
