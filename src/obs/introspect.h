#ifndef KGRAPH_OBS_INTROSPECT_H_
#define KGRAPH_OBS_INTROSPECT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace kg::obs {

/// The eight stages a served request can spend its time in, across the
/// whole distributed path: connection admission and body decode on the
/// server event loop, worker-queue wait, engine execution, the result
/// cache probe inside the engine, WAL append and overlay merge inside
/// the versioned store's write path, and scatter-gather fan-out/merge
/// wait in the cluster router. Per-stage histograms turn an opaque p99
/// into an attribution ("the 2.3x tail is overlay merge, not fan-out").
enum class Stage : uint8_t {
  kAdmission = 0,
  kDecode = 1,
  kQueueWait = 2,
  kEngineExecute = 3,
  kCacheProbe = 4,
  kWalAppend = 5,
  kOverlayMerge = 6,
  kFanout = 7,
};

inline constexpr size_t kNumStages = 8;

/// Stable lowercase identifier ("admission", "wal_append"...) used in
/// metric names and JSON keys.
const char* StageName(Stage stage);

/// The classless stage histogram "stage_us.<stage>" on the repo-wide
/// latency buckets — for stages that run below the query-class level
/// (WAL append covers a whole batch, not one query class).
Histogram& StageHistogram(MetricsRegistry& registry, Stage stage);

/// The per-class stage histogram "stage_us.<stage>.<class>" — for
/// stages on the per-request path, keyed by serve::QueryKindName.
Histogram& StageHistogram(MetricsRegistry& registry, Stage stage,
                          std::string_view query_class);

/// One retained slow request: identity (trace id + root span id link it
/// to the trace dump), class, total duration, and the per-stage
/// breakdown, all in the histogram layer's fixed-point ticks so two
/// runs that measured the same values render the same bytes.
struct SlowQuery {
  uint64_t trace_id = 0;
  uint64_t root_span_id = 0;
  std::string query_class;
  int64_t duration_ticks = 0;  ///< Histogram::ToTicks(duration_us).
  uint64_t seq = 0;            ///< Caller-assigned admission order.
  std::vector<std::pair<Stage, int64_t>> stage_ticks;
};

/// Bounded worst-N retention of slow requests: a deterministic
/// threshold sampler, not a lossy ring — Offer keeps the N worst
/// requests at or above the threshold, ordered by (duration desc,
/// trace_id, seq), so a seeded serial workload fills it identically on
/// every run. Offer is mutex-guarded and cheap in the common case (one
/// compare against the current floor); under KG_OBS_NOOP it compiles
/// to nothing.
class SlowQueryRing {
 public:
  SlowQueryRing(size_t capacity, double threshold_us);

  void Offer(SlowQuery query);

  size_t size() const;
  void Clear();
  std::vector<SlowQuery> Snapshot() const;

  /// {"schema_version":1,"capacity":...,"threshold_us":...,
  ///  "count":...,"slow_queries":[...]} — entries in retention order
  /// (worst first), stage breakdowns keyed by StageName.
  std::string ToJson() const;

  size_t capacity() const { return capacity_; }
  double threshold_us() const { return threshold_us_; }

 private:
  size_t capacity_;
  double threshold_us_;
  int64_t threshold_ticks_;
  mutable std::mutex mu_;
  std::vector<SlowQuery> worst_;  // sorted: worst (highest duration) first
};

}  // namespace kg::obs

#endif  // KGRAPH_OBS_INTROSPECT_H_
