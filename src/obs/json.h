#ifndef KGRAPH_OBS_JSON_H_
#define KGRAPH_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kg::obs {

/// Escapes `text` for use inside a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through
/// byte-for-byte, so valid UTF-8 stays valid UTF-8).
std::string JsonEscape(std::string_view text);

/// Streaming compact-JSON builder. Every exposition sink and bench
/// report in the repo renders through this one writer, so escaping,
/// number formatting, and comma placement are decided in exactly one
/// place and every emitted document parses with `ParseJson`.
///
/// Usage is push-down: Begin/End pairs must nest correctly and object
/// members are written as `Key(...)` followed by one value. The writer
/// KG_CHECKs misuse (value without key inside an object, unbalanced
/// End) — malformed JSON is a programmer error, never an output.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Starts an object member; must be followed by exactly one value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  /// Fixed-point rendering with `digits` decimals — deterministic for
  /// equal doubles, matching the repo's FormatDouble convention.
  JsonWriter& Double(double value, int digits = 6);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Splices pre-rendered JSON (e.g. a nested document from another
  /// writer) as one value. The caller vouches for its validity.
  JsonWriter& Raw(std::string_view json);

  /// The finished document. KG_CHECKs that every container was closed.
  std::string Take();

 private:
  void BeforeValue();

  enum class Frame : uint8_t { kObject, kArray };
  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;   // parallel to stack_: no comma needed yet
  bool expect_value_ = false; // a Key was written, value must follow
};

/// Parsed JSON document. Objects use std::map so iteration (and any
/// re-serialization) is deterministic regardless of input key order.
struct JsonValue {
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  Array array;
  Object object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_bool() const { return type == Type::kBool; }

  /// Member lookup; null when absent or this is not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Strict recursive-descent parse of one JSON document (trailing
/// whitespace allowed, trailing garbage rejected). Used by the
/// round-trip tests that hold every BENCH_*.json writer to the shared
/// schema.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace kg::obs

#endif  // KGRAPH_OBS_JSON_H_
