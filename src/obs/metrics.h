#ifndef KGRAPH_OBS_METRICS_H_
#define KGRAPH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace kg::obs {

// Number of cache-line-padded shards behind every counter/histogram.
// Writers pick a shard from a thread-local slot, so concurrent
// increments from different threads usually land on different cache
// lines; readers sum the shards. Collisions are correct (atomics),
// just slower.
inline constexpr size_t kMetricShards = 16;

// Fixed-point tick used to accumulate histogram sums: 1e-9 of the
// observed unit. Integer accumulation makes the merged sum independent
// of the order shards are combined in, so exposition is bit-identical
// at any thread count (doubles would not associate).
inline constexpr double kFixedPointScale = 1e9;

namespace internal {
/// Thread-local shard slot, assigned round-robin at first use per
/// thread and reused for every metric.
size_t ShardSlot();
}  // namespace internal

/// Monotonic event counter. Inc is a single relaxed fetch_add on a
/// thread-striped cache line — cheap enough for per-query hot paths.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
#ifndef KG_OBS_NOOP
    shards_[internal::ShardSlot()].value.fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  /// Sum over shards. Integer addition, so the value is exact and
  /// independent of which thread incremented where.
  uint64_t Value() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-writer-wins instantaneous value (epoch version, delta size...).
/// Set/Add are single atomics; gauges are written from cold paths.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
#ifndef KG_OBS_NOOP
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t delta) {
#ifndef KG_OBS_NOOP
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket upper bounds are sorted, inclusive
/// ("le" semantics, Prometheus style), with an implicit +inf overflow
/// bucket. Observe is a branchless-ish binary search plus two relaxed
/// fetch_adds on a thread-striped shard. The sum is accumulated in
/// fixed-point ticks (see kFixedPointScale) so merged exposition is
/// bit-identical regardless of thread count.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value) {
#ifndef KG_OBS_NOOP
    Shard& shard = shards_[internal::ShardSlot()];
    shard.buckets[BucketIndex(value)].fetch_add(1,
                                                std::memory_order_relaxed);
    shard.sum_ticks.fetch_add(ToTicks(value), std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

  /// Merged per-bucket counts (size = upper_bounds()+1; last is the
  /// +inf overflow bucket).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const;
  int64_t SumTicks() const;
  double Sum() const {
    return static_cast<double>(SumTicks()) / kFixedPointScale;
  }

  /// Quantile estimate by linear interpolation inside the bucket that
  /// holds rank q*count. Exact up to bucket resolution: the returned
  /// value lies in the same bucket as the true quantile. Returns 0 on
  /// an empty histogram; values in the overflow bucket clamp to the
  /// last finite bound.
  double Quantile(double q) const;

  void Reset();

  static int64_t ToTicks(double value) {
    return static_cast<int64_t>(std::llround(value * kFixedPointScale));
  }

 private:
  size_t BucketIndex(double value) const;

  struct alignas(64) Shard {
    // Heap array (atomics are not movable, so no vector): one slot per
    // bound plus the +inf overflow bucket, zero-initialized.
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<int64_t> sum_ticks{0};
  };
  std::vector<double> upper_bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Log-spaced bucket bounds: start, start*factor, ... (count bounds).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);
/// The repo-wide latency bucket layout, in microseconds: 0.1us to
/// ~0.13s at 1.25x spacing (64 buckets). Tight enough that a
/// bucket-resolution p99 stays well inside the 2x store budget.
const std::vector<double>& LatencyBucketsUs();

/// Named metric registry. Registration (Get*) takes a mutex and is
/// meant for setup paths; the returned references are stable for the
/// registry's lifetime and are the hot-path handles. Exposition
/// walks metrics in name order, so two registries with the same
/// contents serialize identically.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// Bounds must match across calls for the same name (checked).
  Histogram& GetHistogram(std::string_view name,
                          const std::vector<double>& upper_bounds);

  /// Schema-versioned machine-readable snapshot:
  ///   {"schema_version":1,"counters":{...},"gauges":{...},
  ///    "histograms":{name:{"le":[...],"counts":[...],"count":N,
  ///                        "sum":S,"p50":...,"p99":...}}}
  std::string ToJson() const;

  /// Prometheus text exposition (counter/gauge/histogram families,
  /// names sanitized to [a-z0-9_] with a kg_ prefix).
  std::string ToPrometheus() const;

  /// Zeroes every metric value; registrations and handles survive.
  void Reset();

  /// Process-wide default registry.
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Mirrors the process-wide event counters from common/events.h
/// (thread pool chunking, retry/backoff, breaker, fault injector) into
/// `registry` as gauges under "events.*". Call before exposition; the
/// common layer cannot depend on obs, so the bridge lives here.
void CaptureProcessEvents(MetricsRegistry& registry);

}  // namespace kg::obs

#endif  // KGRAPH_OBS_METRICS_H_
