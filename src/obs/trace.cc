#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "common/hash.h"
#include "common/strings.h"
#include "obs/json.h"

namespace kg::obs {

namespace {

uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

WallTraceClock::WallTraceClock() : origin_ns_(MonotonicNs()) {}

double WallTraceClock::NowSeconds() {
  return static_cast<double>(MonotonicNs() - origin_ns_) * 1e-9;
}

// ---------------------------------------------------------------------------
// Span

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_), rec_(std::move(other.rec_)) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    rec_ = std::move(other.rec_);
    other.tracer_ = nullptr;
  }
  return *this;
}

Span Span::Child(std::string_view name) {
  if (tracer_ == nullptr) return Span();
  return tracer_->NewSpan(&rec_, name);
}

void Span::SetAttr(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  rec_.attrs.emplace_back(std::string(key), std::string(value));
}

void Span::SetAttr(std::string_view key, int64_t value) {
  SetAttr(key, std::string_view(std::to_string(value)));
}

void Span::SetAttr(std::string_view key, uint64_t value) {
  SetAttr(key, std::string_view(std::to_string(value)));
}

void Span::SetAttr(std::string_view key, double value, int digits) {
  SetAttr(key, std::string_view(FormatDouble(value, digits)));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->Finish(std::move(rec_));
}

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer(uint64_t seed, TraceClock* clock) : seed_(seed) {
  if (clock != nullptr) {
    clock_ = clock;
  } else {
    owned_clock_ = std::make_unique<WallTraceClock>();
    clock_ = owned_clock_.get();
  }
}

Span Tracer::Root(std::string_view name) { return NewSpan(nullptr, name); }

Span Tracer::RootWithParent(uint64_t parent_span_id, std::string_view name) {
#ifdef KG_OBS_NOOP
  (void)parent_span_id;
  (void)name;
  return Span();
#else
  // Anchor the path at the remote parent's id, not at any local state:
  // a replica and a fresh process tracing the same request derive the
  // same path, hence the same span id.
  SpanRecord remote_parent;
  remote_parent.id = parent_span_id;
  remote_parent.path = "~" + HexSpanId(parent_span_id);
  return NewSpan(&remote_parent, name);
#endif
}

Span Tracer::Start(Tracer* tracer, std::string_view name) {
#ifdef KG_OBS_NOOP
  (void)tracer;
  (void)name;
  return Span();
#else
  if (tracer == nullptr) return Span();
  return tracer->Root(name);
#endif
}

Span Tracer::StartWithParent(Tracer* tracer, uint64_t parent_span_id,
                             std::string_view name) {
#ifdef KG_OBS_NOOP
  (void)tracer;
  (void)parent_span_id;
  (void)name;
  return Span();
#else
  if (tracer == nullptr) return Span();
  if (parent_span_id == 0) return tracer->Root(name);
  return tracer->RootWithParent(parent_span_id, name);
#endif
}

Span Tracer::NewSpan(const SpanRecord* parent, std::string_view name) {
#ifdef KG_OBS_NOOP
  (void)parent;
  (void)name;
  return Span();
#else
  Span span;
  span.tracer_ = this;
  SpanRecord& rec = span.rec_;
  rec.name = std::string(name);
  rec.parent_id = parent == nullptr ? 0 : parent->id;
  std::string base = parent == nullptr ? "/" : parent->path + "/";
  base += rec.name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rec.seq = next_seq_[base]++;
  }
  rec.path = base + "#" + std::to_string(rec.seq);
  rec.id = Fnv1a64(std::to_string(seed_) + "|" + rec.path);
  rec.start_seconds = clock_->NowSeconds();
  return span;
#endif
}

void Tracer::Finish(SpanRecord rec) {
  rec.end_seconds = clock_->NowSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  finished_.push_back(std::move(rec));
}

size_t Tracer::finished_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  finished_.clear();
  next_seq_.clear();
}

std::string HexSpanId(uint64_t id) {
  static const char* kDigits = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kDigits[(id >> shift) & 0xF];
  }
  return out;
}

namespace {

void WriteSpan(JsonWriter& w, const SpanRecord& rec,
               const std::unordered_map<uint64_t, std::vector<const SpanRecord*>>&
                   children) {
  w.BeginObject();
  w.Key("name").String(rec.name);
  w.Key("id").String(HexSpanId(rec.id));
  w.Key("seq").UInt(rec.seq);
  if (rec.parent_id != 0) {
    w.Key("parent_id").String(HexSpanId(rec.parent_id));
  }
  w.Key("start_s").Double(rec.start_seconds, 9);
  w.Key("end_s").Double(rec.end_seconds, 9);
  if (!rec.attrs.empty()) {
    w.Key("attrs").BeginObject();
    for (const auto& [key, value] : rec.attrs) {
      w.Key(key).String(value);
    }
    w.EndObject();
  }
  auto it = children.find(rec.id);
  if (it != children.end()) {
    w.Key("children").BeginArray();
    for (const SpanRecord* child : it->second) {
      WriteSpan(w, *child, children);
    }
    w.EndArray();
  }
  w.EndObject();
}

}  // namespace

std::string Tracer::ToJson() const {
  std::vector<SpanRecord> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = finished_;
  }
  // Completion order is scheduling-dependent; (name, seq, path) order
  // is a pure function of structure, so sort children deterministically
  // (path breaks ties between same-named spans from different parents,
  // e.g. two remote-rooted forests meeting at the root list).
  const auto by_name_seq = [](const SpanRecord* a, const SpanRecord* b) {
    if (a->name != b->name) return a->name < b->name;
    if (a->seq != b->seq) return a->seq < b->seq;
    return a->path < b->path;
  };
  std::unordered_map<uint64_t, std::vector<const SpanRecord*>> children;
  std::unordered_map<uint64_t, size_t> recorded;
  recorded.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    recorded.emplace(spans[i].id, i);
  }
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& rec : spans) {
    // A span whose parent was recorded by a *remote* tracer (wire trace
    // propagation) has a nonzero parent_id with no local record; render
    // it as a root of its local forest instead of dropping it.
    if (rec.parent_id == 0 || recorded.find(rec.parent_id) == recorded.end()) {
      roots.push_back(&rec);
    } else {
      children[rec.parent_id].push_back(&rec);
    }
  }
  for (auto& [id, kids] : children) {
    std::sort(kids.begin(), kids.end(), by_name_seq);
  }
  std::sort(roots.begin(), roots.end(), by_name_seq);

  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("seed").UInt(seed_);
  w.Key("span_count").UInt(static_cast<uint64_t>(spans.size()));
  w.Key("spans").BeginArray();
  for (const SpanRecord* root : roots) {
    WriteSpan(w, *root, children);
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace kg::obs
