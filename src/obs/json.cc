#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace kg::obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (expect_value_) {
    expect_value_ = false;
    return;
  }
  KG_CHECK(stack_.empty() || stack_.back() == Frame::kArray)
      << "JsonWriter: value inside an object requires a Key first";
  if (!stack_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  } else {
    KG_CHECK(out_.empty()) << "JsonWriter: only one top-level value allowed";
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  KG_CHECK(!stack_.empty() && stack_.back() == Frame::kObject &&
           !expect_value_)
      << "JsonWriter: unbalanced EndObject";
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  KG_CHECK(!stack_.empty() && stack_.back() == Frame::kArray &&
           !expect_value_)
      << "JsonWriter: unbalanced EndArray";
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  KG_CHECK(!stack_.empty() && stack_.back() == Frame::kObject &&
           !expect_value_)
      << "JsonWriter: Key outside an object";
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  expect_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value, int digits) {
  BeforeValue();
  if (!std::isfinite(value)) {
    // JSON has no inf/nan literals; null is the conventional stand-in.
    out_ += "null";
    return *this;
  }
  out_ += FormatDouble(value, digits);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

std::string JsonWriter::Take() {
  KG_CHECK(stack_.empty() && !expect_value_)
      << "JsonWriter: Take with unclosed containers";
  return std::move(out_);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("json: trailing garbage at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      }
      case 't':
        if (ConsumeLiteral("true")) {
          out->type = JsonValue::Type::kBool;
          out->bool_value = true;
          return Status::OK();
        }
        return Fail("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          out->type = JsonValue::Type::kBool;
          out->bool_value = false;
          return Status::OK();
        }
        return Fail("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          out->type = JsonValue::Type::kNull;
          return Status::OK();
        }
        return Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type = JsonValue::Type::kObject;
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type = JsonValue::Type::kArray;
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      Status s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          return Fail("raw control character in string");
        }
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            return Fail("surrogate \\u escapes unsupported");
          }
          // UTF-8 encode the BMP codepoint.
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      return Fail("malformed number");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace kg::obs
