#ifndef KGRAPH_OBS_STAGE_TIMER_H_
#define KGRAPH_OBS_STAGE_TIMER_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/timer.h"
#include "obs/metrics.h"

namespace kg {

/// Per-stage pipeline metrics: wall time, item counts, and derived
/// throughput. Historically a standalone mutex-guarded table; now a
/// thin view over an obs::MetricsRegistry — each stage becomes three
/// metrics ("stage.<name>.calls", "stage.<name>.items", and
/// "stage.<name>.seconds_ticks" in fixed-point nanoseconds), so stage
/// cost shows up in the same exposition as every other metric. The
/// rows()/Print/Clear API and insertion ordering are unchanged, and
/// builders still record through an optional `StageTimer*`.
///
/// By default the timer owns a private registry; pass an external one
/// to merge stage rows into a wider exposition. Under KG_OBS_NOOP the
/// underlying counters are compiled out and every row reads zero.
class StageTimer {
 public:
  struct Row {
    std::string stage;
    size_t calls = 0;
    double seconds = 0.0;
    size_t items = 0;
    /// items / seconds, or 0 when no time was recorded.
    double ItemsPerSec() const {
      return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
    }
  };

  /// RAII measurement: adds elapsed wall time and `items` to `stage` when
  /// destroyed. Null `timer` makes the scope a no-op, so pipelines can
  /// instrument unconditionally and callers opt in by passing a registry.
  class Scope {
   public:
    Scope(StageTimer* timer, std::string stage, size_t items = 0)
        : timer_(timer), stage_(std::move(stage)), items_(items) {}
    Scope(Scope&& other) noexcept
        : timer_(other.timer_),
          stage_(std::move(other.stage_)),
          items_(other.items_),
          clock_(other.clock_) {
      other.timer_ = nullptr;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;
    ~Scope() {
      if (timer_ != nullptr) {
        timer_->Record(stage_, clock_.ElapsedSeconds(), items_);
      }
    }

    /// Attributes `n` more processed items to this measurement.
    void AddItems(size_t n) { items_ += n; }

   private:
    StageTimer* timer_;
    std::string stage_;
    size_t items_;
    WallTimer clock_;
  };

  /// Owns a private registry.
  StageTimer();
  /// Records into `registry` (not owned; must outlive the timer).
  explicit StageTimer(obs::MetricsRegistry* registry);

  /// Adds one call with `seconds` of wall time and `items` processed to
  /// `stage`, creating the stage's metrics on first use (insertion
  /// order is kept for rows()/Print).
  void Record(const std::string& stage, double seconds, size_t items = 0);

  /// Rows in first-recorded order.
  std::vector<Row> rows() const;

  /// Renders "stage | calls | wall_s | items | items/s" via TablePrinter.
  void Print(std::ostream& os) const;

  void Clear();

  /// The backing registry (owned or external).
  obs::MetricsRegistry& registry() { return *registry_; }
  const obs::MetricsRegistry& registry() const { return *registry_; }

 private:
  struct StageHandles {
    std::string stage;
    obs::Counter* calls = nullptr;
    obs::Counter* items = nullptr;
    obs::Counter* seconds_ticks = nullptr;
  };

  StageHandles& HandlesFor(const std::string& stage);

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  mutable std::mutex mu_;
  std::vector<StageHandles> stages_;  // insertion order
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace kg

#endif  // KGRAPH_OBS_STAGE_TIMER_H_
