#include "obs/introspect.h"

#include <algorithm>

#include "obs/json.h"
#include "obs/trace.h"

namespace kg::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kAdmission:
      return "admission";
    case Stage::kDecode:
      return "decode";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kEngineExecute:
      return "engine_execute";
    case Stage::kCacheProbe:
      return "cache_probe";
    case Stage::kWalAppend:
      return "wal_append";
    case Stage::kOverlayMerge:
      return "overlay_merge";
    case Stage::kFanout:
      return "fanout";
  }
  return "unknown";
}

Histogram& StageHistogram(MetricsRegistry& registry, Stage stage) {
  return registry.GetHistogram(std::string("stage_us.") + StageName(stage),
                               LatencyBucketsUs());
}

Histogram& StageHistogram(MetricsRegistry& registry, Stage stage,
                          std::string_view query_class) {
  std::string name = "stage_us.";
  name += StageName(stage);
  name += '.';
  name += query_class;
  return registry.GetHistogram(name, LatencyBucketsUs());
}

// ---------------------------------------------------------------------------
// SlowQueryRing

namespace {

/// Retention order: longest first; ties broken by the deterministic
/// identity fields so retention never depends on arrival order.
bool Worse(const SlowQuery& a, const SlowQuery& b) {
  if (a.duration_ticks != b.duration_ticks) {
    return a.duration_ticks > b.duration_ticks;
  }
  if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
  return a.seq < b.seq;
}

}  // namespace

SlowQueryRing::SlowQueryRing(size_t capacity, double threshold_us)
    : capacity_(capacity),
      threshold_us_(threshold_us),
      threshold_ticks_(Histogram::ToTicks(threshold_us)) {}

void SlowQueryRing::Offer(SlowQuery query) {
#ifdef KG_OBS_NOOP
  (void)query;
#else
  if (capacity_ == 0 || query.duration_ticks < threshold_ticks_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (worst_.size() == capacity_ && !Worse(query, worst_.back())) return;
  const auto pos =
      std::upper_bound(worst_.begin(), worst_.end(), query, Worse);
  worst_.insert(pos, std::move(query));
  if (worst_.size() > capacity_) worst_.pop_back();
#endif
}

size_t SlowQueryRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return worst_.size();
}

void SlowQueryRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  worst_.clear();
}

std::vector<SlowQuery> SlowQueryRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return worst_;
}

std::string SlowQueryRing::ToJson() const {
  const std::vector<SlowQuery> entries = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("capacity").UInt(static_cast<uint64_t>(capacity_));
  w.Key("threshold_us").Double(threshold_us_, 3);
  w.Key("count").UInt(static_cast<uint64_t>(entries.size()));
  w.Key("slow_queries").BeginArray();
  for (const SlowQuery& q : entries) {
    w.BeginObject();
    w.Key("trace_id").String(HexSpanId(q.trace_id));
    w.Key("root_span_id").String(HexSpanId(q.root_span_id));
    w.Key("class").String(q.query_class);
    w.Key("duration_us")
        .Double(static_cast<double>(q.duration_ticks) / kFixedPointScale, 3);
    w.Key("seq").UInt(q.seq);
    w.Key("stages_us").BeginObject();
    for (const auto& [stage, ticks] : q.stage_ticks) {
      w.Key(StageName(stage))
          .Double(static_cast<double>(ticks) / kFixedPointScale, 3);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace kg::obs
