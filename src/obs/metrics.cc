#include "obs/metrics.h"

#include <algorithm>

#include "common/events.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/json.h"

namespace kg::obs {

namespace internal {

size_t ShardSlot() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Counter

uint64_t Counter::Value() const {
  uint64_t sum = 0;
  for (const Shard& shard : shards_) {
    sum += shard.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  KG_CHECK(!upper_bounds_.empty()) << "histogram needs at least one bound";
  KG_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()))
      << "histogram bounds must be sorted ascending";
  const size_t n = upper_bounds_.size() + 1;  // +inf overflow bucket
  for (Shard& shard : shards_) {
    shard.buckets = std::make_unique<std::atomic<uint64_t>[]>(n);
  }
}

size_t Histogram::BucketIndex(double value) const {
  // First bound >= value ("le" semantics); past-the-end = overflow.
  auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  return static_cast<size_t>(it - upper_bounds_.begin());
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(upper_bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (uint64_t c : BucketCounts()) total += c;
  return total;
}

int64_t Histogram::SumTicks() const {
  int64_t sum = 0;
  for (const Shard& shard : shards_) {
    sum += shard.sum_ticks.load(std::memory_order_relaxed);
  }
  return sum;
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target) {
      if (i == upper_bounds_.size()) {
        // Overflow bucket: clamp to the last finite bound.
        return upper_bounds_.back();
      }
      const double lo = i == 0 ? 0.0 : upper_bounds_[i - 1];
      const double hi = upper_bounds_[i];
      const double frac =
          std::min(1.0, std::max(0.0, (target - cumulative) /
                                          static_cast<double>(counts[i])));
      return lo + (hi - lo) * frac;
    }
    cumulative = next;
  }
  return upper_bounds_.back();
}

void Histogram::Reset() {
  const size_t n = upper_bounds_.size() + 1;
  for (Shard& shard : shards_) {
    for (size_t i = 0; i < n; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
    shard.sum_ticks.store(0, std::memory_order_relaxed);
  }
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  KG_CHECK(start > 0.0 && factor > 1.0 && count > 0)
      << "ExponentialBuckets needs start>0, factor>1, count>0";
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

const std::vector<double>& LatencyBucketsUs() {
  static const std::vector<double> buckets =
      ExponentialBuckets(0.1, 1.25, 64);
  return buckets;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(
    std::string_view name, const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  } else {
    KG_CHECK(it->second->upper_bounds() == upper_bounds)
        << "histogram '" << std::string(name)
        << "' re-registered with different bounds";
  }
  return *it->second;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name).UInt(counter->Value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Key(name).Int(gauge->Value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, hist] : histograms_) {
    w.Key(name).BeginObject();
    w.Key("le").BeginArray();
    for (double bound : hist->upper_bounds()) w.Double(bound, 6);
    w.EndArray();
    w.Key("counts").BeginArray();
    for (uint64_t c : hist->BucketCounts()) w.UInt(c);
    w.EndArray();
    w.Key("count").UInt(hist->Count());
    w.Key("sum").Double(hist->Sum(), 6);
    w.Key("p50").Double(hist->Quantile(0.50), 6);
    w.Key("p99").Double(hist->Quantile(0.99), 6);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = "kg_";
  out.reserve(name.size() + 3);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (c >= 'A' && c <= 'Z') {
      out += static_cast<char>(c - 'A' + 'a');
    } else {
      out += ok ? c : '_';
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(gauge->Value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " histogram\n";
    const std::vector<uint64_t> counts = hist->BucketCounts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist->upper_bounds().size(); ++i) {
      cumulative += counts[i];
      out += prom + "_bucket{le=\"" +
             FormatDouble(hist->upper_bounds()[i], 6) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += counts.back();
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += prom + "_sum " + FormatDouble(hist->Sum(), 6) + "\n";
    out += prom + "_count " + std::to_string(cumulative) + "\n";
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

// ---------------------------------------------------------------------------
// Process-event bridge

void CaptureProcessEvents(MetricsRegistry& registry) {
  const events::ProcessEvents& ev = events::Process();
  const auto set = [&registry](std::string_view name,
                               const std::atomic<uint64_t>& value) {
    registry.GetGauge(name).Set(
        static_cast<int64_t>(value.load(std::memory_order_relaxed)));
  };
  set("events.pool.loops", ev.pool_loops);
  set("events.pool.chunks", ev.pool_chunks);
  set("events.retry.attempts", ev.retry_attempts);
  set("events.retry.backoffs", ev.retry_backoffs);
  set("events.retry.successes", ev.retry_successes);
  set("events.retry.giveups", ev.retry_giveups);
  set("events.breaker.trips", ev.breaker_trips);
  set("events.breaker.rejections", ev.breaker_rejections);
  set("events.fault.transient", ev.fault_transient);
  set("events.fault.slow", ev.fault_slow);
  set("events.fault.terminal", ev.fault_terminal);
  set("events.fault.truncated_payloads", ev.fault_truncated_payloads);
  set("events.fault.corrupted_claims", ev.fault_corrupted_claims);
}

}  // namespace kg::obs
