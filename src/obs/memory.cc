#include "obs/memory.h"

#include <cstdio>
#include <cstring>

namespace kg::obs {

ProcessMemory ReadProcessMemory() {
  ProcessMemory out;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return out;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
      out.rss_bytes = static_cast<uint64_t>(kb) * 1024;
    } else if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      out.peak_bytes = static_cast<uint64_t>(kb) * 1024;
    }
  }
  std::fclose(f);
  return out;
}

void PublishProcessMemory(MetricsRegistry& registry) {
  const ProcessMemory mem = ReadProcessMemory();
  registry.GetGauge("process.mem.rss_bytes")
      .Set(static_cast<int64_t>(mem.rss_bytes));
  registry.GetGauge("process.mem.peak_bytes")
      .Set(static_cast<int64_t>(mem.peak_bytes));
}

}  // namespace kg::obs
