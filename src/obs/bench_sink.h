#ifndef KGRAPH_OBS_BENCH_SINK_H_
#define KGRAPH_OBS_BENCH_SINK_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace kg::obs {

/// The git description baked in at configure time (KG_GIT_DESCRIBE),
/// or "unknown" outside a git checkout.
std::string GitDescribe();

/// Shared envelope for every BENCH_*.json artifact:
///   {"schema_version":2,"bench":...,"seed":...,"threads":...,
///    "git":...,"payload":{...}}
/// Benches render their payload with JsonWriter and hand it here, so
/// every emitted number carries the same metadata and every file
/// parses under one schema (enforced by the round-trip test).
class JsonSink {
 public:
  JsonSink(std::string bench_name, uint64_t seed, size_t threads);

  /// Full envelope with `payload_json` (a valid JSON value) spliced in.
  std::string Render(std::string_view payload_json) const;

  /// Renders and writes `path` (with trailing newline), logging the
  /// destination to stdout the way the benches always have.
  Status WriteFile(const std::string& path,
                   std::string_view payload_json) const;

 private:
  std::string bench_name_;
  uint64_t seed_;
  size_t threads_;
  std::string git_;
};

}  // namespace kg::obs

#endif  // KGRAPH_OBS_BENCH_SINK_H_
