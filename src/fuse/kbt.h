#ifndef KGRAPH_FUSE_KBT_H_
#define KGRAPH_FUSE_KBT_H_

#include <map>
#include <string>
#include <vector>

namespace kg::fuse {

/// One observed extraction: extractor `e` claims that source `s` asserts
/// `value` for data item `item`. Knowledge-Based Trust's key move (§2.4)
/// is treating the observation as a two-stage channel — extraction noise
/// on top of source noise — and estimating both.
struct ExtractedClaim {
  std::string item;
  std::string source;
  std::string extractor;
  std::string value;
};

/// Output of the KBT estimator.
struct KbtResult {
  /// item -> believed true value.
  std::map<std::string, std::string> truth;
  /// source -> estimated accuracy (the "web source trustworthiness" the
  /// paper describes KBT computing).
  std::map<std::string, double> source_accuracy;
  /// extractor -> estimated accuracy.
  std::map<std::string, double> extractor_accuracy;
  size_t iterations = 0;
};

/// Two-layer EM:
///   layer 1: per (source, item), the source's *intended* value is the
///            extractor-accuracy-weighted consensus of claims about that
///            source;
///   layer 2: per item, the truth is the source-accuracy-weighted
///            consensus of intended values (ACCU);
///   updates: extractor accuracy = agreement with intended values,
///            source accuracy = agreement of its intended values with the
///            truth.
/// Separating the layers is what lets KBT blame a bad extraction on the
/// extractor rather than the page.
struct KbtOptions {
  size_t max_iterations = 25;
  double initial_accuracy = 0.8;
  double n_false_values = 10.0;
  double convergence_epsilon = 1e-4;
};

KbtResult RunKbt(const std::vector<ExtractedClaim>& claims,
                 const KbtOptions& options);

}  // namespace kg::fuse

#endif  // KGRAPH_FUSE_KBT_H_
