#include "fuse/kbt.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kg::fuse {

namespace {

using Distribution = std::map<std::string, double>;

double VoteWeight(double accuracy, double n_false) {
  const double a = std::clamp(accuracy, 0.01, 0.99);
  return std::log(n_false * a / (1.0 - a));
}

// Normalizes exp(score) into a probability distribution.
Distribution Softmax(const Distribution& scores) {
  Distribution out;
  double max_score = -1e300;
  for (const auto& [value, s] : scores) {
    max_score = std::max(max_score, s);
  }
  double z = 0.0;
  for (const auto& [value, s] : scores) z += std::exp(s - max_score);
  for (const auto& [value, s] : scores) {
    out[value] = std::exp(s - max_score) / z;
  }
  return out;
}

std::string ArgMax(const Distribution& dist) {
  std::string best;
  double best_p = -1.0;
  for (const auto& [value, p] : dist) {
    if (p > best_p) {
      best_p = p;
      best = value;
    }
  }
  return best;
}

}  // namespace

KbtResult RunKbt(const std::vector<ExtractedClaim>& claims,
                 const KbtOptions& options) {
  KbtResult result;
  // Index claims by (source, item).
  std::map<std::pair<std::string, std::string>,
           std::vector<const ExtractedClaim*>>
      by_source_item;
  for (const ExtractedClaim& c : claims) {
    by_source_item[{c.source, c.item}].push_back(&c);
    result.source_accuracy.emplace(c.source, options.initial_accuracy);
    result.extractor_accuracy.emplace(c.extractor,
                                      options.initial_accuracy);
  }

  // Soft EM throughout: hard winners with deterministic tie-breaks would
  // systematically credit whichever value sorts first, which under
  // sparse coverage (1-2 extractors per source-item) derails the whole
  // estimation.
  std::map<std::string, Distribution> truth_prior;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Layer 1: P(source intended value v) per (source, item), combining
    // extractor votes with the current truth posterior: a value
    // corroborated by OTHER sources is a more plausible reading of this
    // source too (sources correlate with the truth) — this cross-source
    // coupling is what breaks ties between extractors.
    std::map<std::pair<std::string, std::string>, Distribution> intended;
    for (const auto& [key, source_claims] : by_source_item) {
      Distribution scores;
      for (const ExtractedClaim* c : source_claims) {
        scores[c->value] +=
            VoteWeight(result.extractor_accuracy[c->extractor],
                       options.n_false_values);
      }
      auto prior_it = truth_prior.find(key.second);
      if (prior_it != truth_prior.end()) {
        const double w = VoteWeight(result.source_accuracy[key.first],
                                    options.n_false_values);
        for (auto& [value, score] : scores) {
          auto p = prior_it->second.find(value);
          if (p != prior_it->second.end()) score += w * p->second;
        }
      }
      intended[key] = Softmax(scores);
    }

    // Layer 2: P(truth of item = v) from source-weighted intended
    // distributions.
    std::map<std::string, Distribution> item_scores;
    for (const auto& [key, dist] : intended) {
      const double w = VoteWeight(result.source_accuracy[key.first],
                                  options.n_false_values);
      for (const auto& [value, p] : dist) {
        item_scores[key.second][value] += w * p;
      }
    }
    std::map<std::string, Distribution> item_proba;
    std::map<std::string, std::string> truth;
    for (const auto& [item, scores] : item_scores) {
      item_proba[item] = Softmax(scores);
      truth[item] = ArgMax(item_proba[item]);
    }

    // Updates (expected agreements).
    std::map<std::string, std::pair<double, double>> extractor_agree;
    for (const ExtractedClaim& c : claims) {
      auto& [hits, n] = extractor_agree[c.extractor];
      n += 1.0;
      hits += intended[{c.source, c.item}][c.value];
    }
    std::map<std::string, std::pair<double, double>> source_agree;
    for (const auto& [key, dist] : intended) {
      auto& [hits, n] = source_agree[key.first];
      n += 1.0;
      // P(source's intended value is the truth) = sum_v P1(v) P2(v).
      const auto& posterior = item_proba[key.second];
      for (const auto& [value, p] : dist) {
        auto it = posterior.find(value);
        if (it != posterior.end()) hits += p * it->second;
      }
    }
    double max_delta = 0.0;
    for (auto& [extractor, accuracy] : result.extractor_accuracy) {
      const auto& [hits, n] = extractor_agree[extractor];
      const double updated = (hits + 1.0) / (n + 2.0);
      max_delta = std::max(max_delta, std::abs(updated - accuracy));
      accuracy = updated;
    }
    for (auto& [source, accuracy] : result.source_accuracy) {
      const auto& [hits, n] = source_agree[source];
      const double updated = (hits + 1.0) / (n + 2.0);
      max_delta = std::max(max_delta, std::abs(updated - accuracy));
      accuracy = updated;
    }
    result.truth = std::move(truth);
    truth_prior = std::move(item_proba);
    if (max_delta < options.convergence_epsilon) break;
  }
  return result;
}

}  // namespace kg::fuse
