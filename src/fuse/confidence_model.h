#ifndef KGRAPH_FUSE_CONFIDENCE_MODEL_H_
#define KGRAPH_FUSE_CONFIDENCE_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/logistic_regression.h"

namespace kg::fuse {

/// One candidate triple produced by a (source, extractor) pair during
/// web-scale extraction — the raw material of knowledge fusion (§2.4).
struct CandidateTriple {
  std::string subject;
  std::string predicate;
  std::string object;
  std::string source;      ///< Which web source asserted it.
  std::string extractor;   ///< Which extractor family produced it.
  double extractor_score = 1.0;  ///< The extractor's own confidence.
};

/// Knowledge-Vault-style fusion: a calibrated classifier predicting
/// P(triple is true) from extraction-pattern features — how many sources
/// assert it, how many extractor families agree, their scores. Trained on
/// a labeled subset (in KV: agreement with Freebase; here: agreement with
/// the seed KG).
class ExtractionConfidenceModel {
 public:
  ExtractionConfidenceModel() = default;

  /// Supervised calibration. `labels[i]` says whether candidate group i is
  /// true; groups come from GroupCandidates.
  struct Group {
    std::string subject, predicate, object;
    std::vector<const CandidateTriple*> supporters;
  };

  /// Groups raw candidates by (s, p, o).
  static std::vector<Group> GroupCandidates(
      const std::vector<CandidateTriple>& candidates);

  /// Feature vector of one group (num sources, num extractors, max/mean
  /// extractor score, per-family indicators…).
  static ml::FeatureVector GroupFeatures(const Group& group);

  void Fit(const std::vector<Group>& groups,
           const std::vector<int>& labels, Rng& rng);

  /// P(true) for a group.
  double Score(const Group& group) const;

 private:
  ml::LogisticRegression lr_;
};

}  // namespace kg::fuse

#endif  // KGRAPH_FUSE_CONFIDENCE_MODEL_H_
