#include "fuse/confidence_model.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "ml/dataset.h"

namespace kg::fuse {

std::vector<ExtractionConfidenceModel::Group>
ExtractionConfidenceModel::GroupCandidates(
    const std::vector<CandidateTriple>& candidates) {
  std::map<std::string, Group> by_key;
  for (const CandidateTriple& c : candidates) {
    const std::string key =
        c.subject + "\x01" + c.predicate + "\x01" + c.object;
    Group& g = by_key[key];
    if (g.supporters.empty()) {
      g.subject = c.subject;
      g.predicate = c.predicate;
      g.object = c.object;
    }
    g.supporters.push_back(&c);
  }
  std::vector<Group> groups;
  groups.reserve(by_key.size());
  for (auto& [key, group] : by_key) groups.push_back(std::move(group));
  return groups;
}

namespace {
// The extractor families KV distinguishes (§2.4).
const char* const kExtractorFamilies[] = {"semistructured", "text",
                                          "webtable", "annotation"};
}  // namespace

ml::FeatureVector ExtractionConfidenceModel::GroupFeatures(
    const Group& group) {
  std::set<std::string> sources, extractors;
  double max_score = 0.0, sum_score = 0.0;
  for (const CandidateTriple* c : group.supporters) {
    sources.insert(c->source);
    extractors.insert(c->extractor);
    max_score = std::max(max_score, c->extractor_score);
    sum_score += c->extractor_score;
  }
  ml::FeatureVector f;
  // Log-scaled counts keep the LR well-conditioned at web scale.
  f.push_back(std::log(1.0 + static_cast<double>(sources.size())));
  f.push_back(std::log(1.0 + static_cast<double>(extractors.size())));
  f.push_back(max_score);
  f.push_back(sum_score / static_cast<double>(group.supporters.size()));
  for (const char* family : kExtractorFamilies) {
    f.push_back(extractors.count(family) ? 1.0 : 0.0);
  }
  return f;
}

void ExtractionConfidenceModel::Fit(const std::vector<Group>& groups,
                                    const std::vector<int>& labels,
                                    Rng& rng) {
  KG_CHECK(groups.size() == labels.size());
  KG_CHECK(!groups.empty());
  ml::Dataset data;
  data.examples.reserve(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    data.examples.push_back(
        ml::Example{GroupFeatures(groups[i]), labels[i]});
  }
  data.feature_names.resize(data.examples[0].features.size());
  ml::LogisticRegression::Options options;
  options.epochs = 30;
  lr_.Fit(data, options, rng);
}

double ExtractionConfidenceModel::Score(const Group& group) const {
  return lr_.PredictProba(GroupFeatures(group));
}

}  // namespace kg::fuse
