#include "fuse/pra.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "ml/dataset.h"

namespace kg::fuse {

namespace {

// Enumerates relation paths (as PathStep sequences) from `from` to `to`
// up to `max_len`, accumulating grounding counts per serialized path.
void Enumerate(const graph::KnowledgeGraph& kg, graph::NodeId cur,
               graph::NodeId to, size_t remaining,
               graph::RelationPath* prefix,
               std::map<std::string, std::pair<graph::RelationPath, int>>*
                   counts,
               size_t* budget) {
  if (*budget == 0) return;
  if (!prefix->empty() && cur == to) {
    auto& entry = (*counts)[graph::RelationPathToString(kg, *prefix)];
    entry.first = *prefix;
    ++entry.second;
  }
  if (remaining == 0) return;
  for (graph::TripleId tid : kg.TriplesWithSubject(cur)) {
    if (*budget == 0) return;
    --*budget;
    prefix->push_back({kg.triple(tid).predicate, false});
    Enumerate(kg, kg.triple(tid).object, to, remaining - 1, prefix, counts,
              budget);
    prefix->pop_back();
  }
  for (graph::TripleId tid : kg.TriplesWithObject(cur)) {
    if (*budget == 0) return;
    --*budget;
    prefix->push_back({kg.triple(tid).predicate, true});
    Enumerate(kg, kg.triple(tid).subject, to, remaining - 1, prefix,
              counts, budget);
    prefix->pop_back();
  }
}

}  // namespace

void PraModel::Fit(const graph::KnowledgeGraph& kg,
                   graph::PredicateId predicate, const Options& options,
                   Rng& rng) {
  predicate_ = predicate;
  const auto positives = kg.TriplesWithPredicate(predicate);
  KG_CHECK(!positives.empty()) << "no positive triples for PRA";

  // Mine candidate paths from a sample of positive pairs.
  std::map<std::string, std::pair<graph::RelationPath, int>> counts;
  const size_t sample = std::min<size_t>(positives.size(), 50);
  for (size_t i = 0; i < sample; ++i) {
    const graph::Triple& t = kg.triple(positives[rng.UniformIndex(
        positives.size())]);
    graph::RelationPath prefix;
    size_t budget = 4000;
    Enumerate(kg, t.subject, t.object, options.max_path_length, &prefix,
              &counts, &budget);
  }
  // Drop the target predicate's own direct edge (label leakage).
  std::vector<std::pair<int, std::string>> ranked;
  for (const auto& [key, entry] : counts) {
    const auto& path = entry.first;
    if (path.size() == 1 && path[0].predicate == predicate &&
        !path[0].inverse) {
      continue;
    }
    ranked.emplace_back(entry.second, key);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  paths_.clear();
  for (size_t i = 0; i < std::min(options.max_paths, ranked.size()); ++i) {
    paths_.push_back(counts[ranked[i].second].first);
  }
  KG_CHECK(!paths_.empty()) << "no feature paths mined";

  // Build the training set: positives + corrupted negatives.
  std::vector<graph::NodeId> all_objects;
  for (graph::TripleId tid : positives) {
    all_objects.push_back(kg.triple(tid).object);
  }
  ml::Dataset data;
  for (graph::TripleId tid : positives) {
    const graph::Triple& t = kg.triple(tid);
    data.examples.push_back(
        ml::Example{PairFeatures(kg, t.subject, t.object), 1});
    for (size_t n = 0; n < options.negatives_per_positive; ++n) {
      const graph::NodeId wrong =
          all_objects[rng.UniformIndex(all_objects.size())];
      if (kg.HasTriple(t.subject, predicate, wrong)) continue;
      data.examples.push_back(
          ml::Example{PairFeatures(kg, t.subject, wrong), 0});
    }
  }
  data.feature_names.resize(paths_.size());
  lr_.Fit(data, options.lr, rng);
  trained_ = true;
}

ml::FeatureVector PraModel::PairFeatures(const graph::KnowledgeGraph& kg,
                                         graph::NodeId s,
                                         graph::NodeId o) const {
  // Leave-one-out: the (s, predicate, o) edge itself, when present, must
  // not contribute to its own features.
  const graph::Triple excluded{s, predicate_, o};
  ml::FeatureVector f;
  f.reserve(paths_.size());
  for (const graph::RelationPath& path : paths_) {
    f.push_back(graph::PathReachProbability(kg, s, o, path, &excluded));
  }
  return f;
}

double PraModel::Score(const graph::KnowledgeGraph& kg, graph::NodeId s,
                       graph::NodeId o) const {
  KG_CHECK(trained_) << "Score before Fit";
  return lr_.PredictProba(PairFeatures(kg, s, o));
}

}  // namespace kg::fuse
