#ifndef KGRAPH_FUSE_PRA_H_
#define KGRAPH_FUSE_PRA_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/knowledge_graph.h"
#include "graph/paths.h"
#include "ml/logistic_regression.h"

namespace kg::fuse {

/// Path Ranking Algorithm (Lao & Cohen; "PRA in NELL", §2.4): link
/// prediction for one target predicate. Features of a candidate (s, o)
/// pair are random-walk reachability probabilities along relation paths
/// mined from known positive pairs; a logistic regression ranks
/// candidates. kgraph uses it to validate extracted triples (knowledge
/// cleaning) and as the symbolic counterpart to TransE.
class PraModel {
 public:
  struct Options {
    size_t max_path_length = 3;
    /// Paths kept as features (most frequent across positives).
    size_t max_paths = 20;
    /// Training pairs mined per positive (1 positive + k corrupted).
    size_t negatives_per_positive = 2;
    ml::LogisticRegression::Options lr;
  };

  PraModel() = default;

  /// Trains for `predicate`. Positive pairs are the predicate's existing
  /// triples; negatives corrupt the object uniformly. The predicate's own
  /// direct edge is excluded from path features (no label leakage).
  void Fit(const graph::KnowledgeGraph& kg, graph::PredicateId predicate,
           const Options& options, Rng& rng);

  /// P((s, predicate, o) holds).
  double Score(const graph::KnowledgeGraph& kg, graph::NodeId s,
               graph::NodeId o) const;

  /// The mined feature paths (for reports).
  const std::vector<graph::RelationPath>& feature_paths() const {
    return paths_;
  }

 private:
  ml::FeatureVector PairFeatures(const graph::KnowledgeGraph& kg,
                                 graph::NodeId s, graph::NodeId o) const;

  graph::PredicateId predicate_ = 0;
  std::vector<graph::RelationPath> paths_;
  ml::LogisticRegression lr_;
  bool trained_ = false;
};

}  // namespace kg::fuse

#endif  // KGRAPH_FUSE_PRA_H_
