#ifndef KGRAPH_SERVE_SNAPSHOT_BINARY_H_
#define KGRAPH_SERVE_SNAPSHOT_BINARY_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "serve/snapshot.h"

namespace kg::serve {

/// Container generation of the binary snapshot file itself — the header
/// layout and section framing. Independent of kSnapshotSchemaVersion,
/// which describes the *section contents* and is carried inside the
/// header: a future schema can ship in the same container.
inline constexpr uint32_t kBinarySnapshotContainerVersion = 1;

/// The 8-byte magic that opens every binary snapshot file.
inline constexpr char kBinarySnapshotMagic[8] = {'K', 'G', 'S', 'N',
                                                 'A', 'P', 'B', '\0'};

/// Fixed header size in bytes. Layout (all little-endian):
///   [0]   magic[8]
///   [8]   u32 container_version
///   [12]  u32 schema_version
///   [16]  u64 num_nodes
///   [24]  u64 num_predicates
///   [32]  u64 num_triples
///   [40]  u64 fingerprint
///   [48]  {u64 offset, u64 size}[kNumSnapshotSections] section table
///   [288] u32 payload_checksum   (Checksum32 of file[296, file_size))
///   [292] u32 header_checksum    (Checksum32 of file[0, 292))
/// Sections start at 8-byte-aligned offsets with zero padding between
/// them; the payload checksum covers the padding too, so *every* bit of
/// the file after the header is integrity-checked.
inline constexpr size_t kBinarySnapshotHeaderSize =
    8 + 4 + 4 + 4 * 8 + kNumSnapshotSections * 16 + 4 + 4;
static_assert(kBinarySnapshotHeaderSize % 8 == 0);

/// How much of a binary snapshot to verify at load time.
enum class BinaryVerify {
  /// Structural validation only: magic, versions, header checksum, and
  /// every section bounds- and size-checked against the header counts.
  /// O(1) work — no byte of the payload is touched, so an mmap'd load
  /// stays O(pages touched) and pages fault in lazily as queries read
  /// them. For files whose integrity is already trusted (local cache,
  /// checksummed transport).
  kHeader,
  /// kHeader plus the full payload Checksum32. O(file size), touches
  /// every page once. Any bit flip anywhere in the file is rejected.
  kChecksum,
};

/// Serializes to the binary container format. Deterministic: equal
/// snapshots serialize byte-identically.
std::string SerializeSnapshotBinary(const KgSnapshot& snapshot);

/// Parses binary bytes into a snapshot backed by a fresh 8-aligned heap
/// copy of `data` (the copy is what makes arbitrary test/fuzz buffers
/// safe — std::string storage guarantees no alignment). Rejects with
/// InvalidArgument on any structural violation, Unavailable on a newer
/// container version.
Result<KgSnapshot> DeserializeSnapshotBinary(
    std::string_view data, BinaryVerify verify = BinaryVerify::kChecksum);

/// Writes `SerializeSnapshotBinary` output to `path` (atomic: temp file
/// then rename).
Status SaveSnapshotBinary(const KgSnapshot& snapshot,
                          const std::string& path);

/// mmaps `path` read-only and wraps it as a snapshot without copying:
/// load cost is validation plus O(pages touched) — with kHeader that is
/// a handful of pages regardless of file size. The mapping lives as long
/// as the returned snapshot (or any copy of it).
Result<KgSnapshot> LoadSnapshotBinary(
    const std::string& path, BinaryVerify verify = BinaryVerify::kChecksum);

}  // namespace kg::serve

#endif  // KGRAPH_SERVE_SNAPSHOT_BINARY_H_
