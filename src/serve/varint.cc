#include "serve/varint.h"

namespace kg::serve {

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

size_t DecodeVarint(const uint8_t* p, const uint8_t* end, uint64_t* out) {
  uint64_t value = 0;
  size_t n = 0;
  for (; n < kMaxVarintBytes && p + n < end; ++n) {
    const uint8_t byte = p[n];
    const uint64_t group = byte & 0x7f;
    if (n == 9) {
      // Groups 0..8 cover 63 bits; the 10th group may only carry bit 63.
      if (group > 1) return 0;  // would overflow uint64_t
    }
    value |= group << (7 * n);
    if ((byte & 0x80) == 0) {
      // Canonical form is minimal: a multi-byte encoding must not end in
      // an all-zero group (it would also encode in one fewer byte).
      if (n > 0 && group == 0) return 0;
      *out = value;
      return n + 1;
    }
  }
  return 0;  // truncated, or continuation bit set past the 10-byte cap
}

void EncodeDeltaList(const std::vector<uint64_t>& ids, std::string* out) {
  AppendVarint(out, ids.size());
  uint64_t prev = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    AppendVarint(out, i == 0 ? ids[0] : ids[i] - prev);
    prev = ids[i];
  }
}

namespace {

bool DecodeDeltaListImpl(std::string_view bytes,
                         std::vector<uint64_t>* out) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(bytes.data());
  const uint8_t* end = p + bytes.size();
  uint64_t count = 0;
  size_t n = DecodeVarint(p, end, &count);
  if (n == 0) return false;
  p += n;
  // Each element costs at least one byte; a count the payload cannot hold
  // is rejected up front so a hostile header can't drive a huge reserve.
  if (count > static_cast<uint64_t>(end - p)) return false;
  out->reserve(count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    n = DecodeVarint(p, end, &delta);
    if (n == 0) return false;
    p += n;
    const uint64_t value = (i == 0) ? delta : prev + delta;
    if (i > 0 && value < prev) return false;  // delta overflowed
    out->push_back(value);
    prev = value;
  }
  return p == end;  // strict: no trailing garbage
}

}  // namespace

bool DecodeDeltaList(std::string_view bytes, std::vector<uint64_t>* out) {
  out->clear();
  if (DecodeDeltaListImpl(bytes, out)) return true;
  out->clear();
  return false;
}

}  // namespace kg::serve
