#include "serve/lru_cache.h"

#include <algorithm>

#include "common/hash.h"

namespace kg::serve {

ShardedLruCache::ShardedLruCache(size_t capacity, size_t num_shards)
    : capacity_(capacity) {
  num_shards = std::max<size_t>(1, std::min(num_shards, capacity));
  if (capacity == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity =
        capacity / num_shards + (i < capacity % num_shards ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

size_t ShardedLruCache::ShardOf(const std::string& key) const {
  return Fnv1a64(key) % shards_.size();
}

bool ShardedLruCache::Get(const std::string& key, Value* out) {
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.counters.misses;
    return false;
  }
  ++shard.counters.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (out != nullptr) *out = it->second->second;
  return true;
}

void ShardedLruCache::Put(const std::string& key, Value value) {
  Shard& shard = *shards_[ShardOf(key)];
  if (shard.capacity == 0) return;
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
  ++shard.counters.inserts;
  while (shard.lru.size() > shard.capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.counters.evictions;
  }
}

bool ShardedLruCache::Erase(const std::string& key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  shard.lru.erase(it->second);
  shard.index.erase(it);
  ++shard.counters.invalidations;
  return true;
}

size_t ShardedLruCache::InvalidateShard(size_t shard_id) {
  Shard& shard = *shards_[shard_id % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  const size_t dropped = shard.lru.size();
  shard.lru.clear();
  shard.index.clear();
  shard.counters.invalidations += dropped;
  return dropped;
}

size_t ShardedLruCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

void ShardedLruCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

void ShardedLruCache::ResetCounters() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->counters = Counters{};
  }
}

ShardedLruCache::Counters ShardedLruCache::counters() const {
  Counters total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->counters.hits;
    total.misses += shard->counters.misses;
    total.evictions += shard->counters.evictions;
    total.inserts += shard->counters.inserts;
    total.invalidations += shard->counters.invalidations;
  }
  return total;
}

}  // namespace kg::serve
