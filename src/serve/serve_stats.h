#ifndef KGRAPH_SERVE_SERVE_STATS_H_
#define KGRAPH_SERVE_SERVE_STATS_H_

#include <array>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "serve/lru_cache.h"
#include "serve/query_engine.h"

namespace kg::serve {

/// Nearest-rank percentile of `samples` (q in [0, 1]); 0 when empty.
/// Sorts a copy, so callers keep their sample order.
double Percentile(std::vector<double> samples, double q);

/// Per-query-class latency/throughput aggregation for a serving replay,
/// plus the result-cache counters, rendered as a `table_printer` report
/// and as machine-readable JSON (`BENCH_serve.json`). Recording is
/// mutex-guarded so replay loops may record from worker threads; reading
/// is meant for after the run.
class ServeStats {
 public:
  struct Row {
    std::string query_class;
    size_t calls = 0;
    double total_seconds = 0.0;
    double qps = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
  };

  /// Adds one query's wall time to its class.
  void Record(QueryKind kind, double seconds);

  /// Attaches the replay's cache counters to the report.
  void SetCacheCounters(const ShardedLruCache::Counters& counters);

  /// Per-class rows (classes with at least one sample, enum order),
  /// followed by an "all" row aggregating every sample.
  std::vector<Row> rows() const;

  std::optional<ShardedLruCache::Counters> cache_counters() const;

  /// Renders the class table and a cache summary line.
  void Print(std::ostream& os) const;

  /// {"classes": [...], "overall": {...}, "cache": {...}} — the
  /// BENCH_serve.json payload.
  std::string ToJson() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  std::array<std::vector<double>, kNumQueryKinds> samples_;
  std::optional<ShardedLruCache::Counters> cache_;
};

}  // namespace kg::serve

#endif  // KGRAPH_SERVE_SERVE_STATS_H_
