#ifndef KGRAPH_SERVE_SERVE_STATS_H_
#define KGRAPH_SERVE_SERVE_STATS_H_

#include <array>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/lru_cache.h"
#include "serve/query_engine.h"

namespace kg::serve {

/// Nearest-rank percentile of `samples` (q in [0, 1]); 0 when empty.
/// Sorts a copy, so callers keep their sample order.
double Percentile(std::vector<double> samples, double q);

/// Per-query-class latency/throughput aggregation for a serving replay,
/// plus the result-cache counters, rendered as a `table_printer` report
/// and as machine-readable JSON (the BENCH_serve.json payload).
///
/// Historically this kept raw per-class sample vectors; it is now a
/// thin view over an obs::MetricsRegistry — each class records into a
/// "serve.latency_us.<class>" histogram (fixed log-spaced buckets,
/// LatencyBucketsUs) plus a "serve.latency_us.all" aggregate, and
/// cache counters land in "serve.cache.*" gauges. Percentiles are
/// therefore bucket-resolution estimates (1.25x spacing), unbounded
/// memory per run becomes ~KBs, and recording is lock-free. Reading is
/// meant for after the run.
class ServeStats {
 public:
  struct Row {
    std::string query_class;
    size_t calls = 0;
    double total_seconds = 0.0;
    double qps = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
  };

  /// Owns a private registry.
  ServeStats();
  /// Records into `registry` (not owned; must outlive the stats).
  explicit ServeStats(obs::MetricsRegistry* registry);

  /// Adds one query's wall time to its class.
  void Record(QueryKind kind, double seconds);

  /// Attaches the replay's cache counters to the report (and mirrors
  /// them into serve.cache.{hits,misses,evictions} gauges).
  void SetCacheCounters(const ShardedLruCache::Counters& counters);

  /// Per-class rows (classes with at least one sample, enum order),
  /// followed by an "all" row aggregating every sample.
  std::vector<Row> rows() const;

  std::optional<ShardedLruCache::Counters> cache_counters() const;

  /// Renders the class table and a cache summary line.
  void Print(std::ostream& os) const;

  /// {"classes": [...], "overall": {...}, "cache": {...}} — the
  /// BENCH_serve.json payload (rendered through obs::JsonWriter).
  std::string ToJson() const;

  void Clear();

  /// The backing registry (owned or external).
  obs::MetricsRegistry& registry() { return *registry_; }
  const obs::MetricsRegistry& registry() const { return *registry_; }

 private:
  void RegisterHistograms();

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  std::array<obs::Histogram*, kNumQueryKinds> per_kind_us_{};
  obs::Histogram* all_us_ = nullptr;
  mutable std::mutex mu_;  // guards cache_ only
  std::optional<ShardedLruCache::Counters> cache_;
};

}  // namespace kg::serve

#endif  // KGRAPH_SERVE_SERVE_STATS_H_
