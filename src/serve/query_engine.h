#ifndef KGRAPH_SERVE_QUERY_ENGINE_H_
#define KGRAPH_SERVE_QUERY_ENGINE_H_

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/exec_policy.h"
#include "common/stage_timer.h"
#include "graph/knowledge_graph.h"
#include "obs/metrics.h"
#include "serve/lru_cache.h"
#include "serve/snapshot.h"

namespace kg::serve {

/// The four point-read shapes consumer KG serving is made of (§5's
/// knowledge-based QA: entity cards, neighborhoods, typed attribute
/// scans, related-entity shelves).
enum class QueryKind : uint8_t {
  kPointLookup = 0,     ///< Objects of (node, predicate, ?).
  kNeighborhood = 1,    ///< All out- and in-edges of a node.
  kAttributeByType = 2, ///< (s, predicate, ?) for every s of a class.
  kTopKRelated = 3,     ///< Entities ranked by shared-neighbor count.
};

inline constexpr size_t kNumQueryKinds = 4;

/// Canonical lower_snake name of `kind` (stable; used for stage metrics
/// and the JSON report).
const char* QueryKindName(QueryKind kind);

/// One serving query. Nodes are addressed by (name, kind) exactly as in
/// the KnowledgeGraph vocabulary; names that are not in the snapshot yield
/// empty results (absence of knowledge is a normal answer, never an
/// error).
struct Query {
  QueryKind kind = QueryKind::kPointLookup;
  /// Subject / center node (point lookup, neighborhood, top-k).
  std::string node;
  graph::NodeKind node_kind = graph::NodeKind::kEntity;
  /// Attribute predicate (point lookup, attribute-by-type).
  std::string predicate;
  /// Class node name + membership predicate (attribute-by-type).
  std::string type_name;
  std::string type_predicate = "type";
  /// Result budget (top-k).
  size_t k = 10;

  static Query PointLookup(std::string node, std::string predicate,
                           graph::NodeKind kind = graph::NodeKind::kEntity);
  static Query Neighborhood(std::string node,
                            graph::NodeKind kind = graph::NodeKind::kEntity);
  static Query AttributeByType(std::string type_name, std::string predicate,
                               std::string type_predicate = "type");
  static Query TopKRelated(std::string node, size_t k,
                           graph::NodeKind kind = graph::NodeKind::kEntity);

  /// Injective canonical rendering (length-prefixed fields), used as the
  /// result-cache key. Two queries with equal keys are the same query.
  std::string CacheKey() const;
};

/// Deterministic result rows. Every query kind defines a total order on
/// its rows (lexicographic, except top-k: score-desc then name), so equal
/// knowledge always serves byte-equal results — the invariant the
/// property harness checks against a brute-force scan.
///
/// Row shapes ("<node>" is RenderNode's kind-tagged form):
///   point lookup:      "<object>"
///   neighborhood:      "out\t<predicate>\t<object>" /
///                      "in\t<predicate>\t<subject>"
///   attribute-by-type: "<subject>\t<object>"
///   top-k related:     "<entity>\t<shared-neighbor count>"
using QueryResult = std::vector<std::string>;

/// "E:name" / "T:name" / "C:name" — the kind-tagged node rendering used in
/// result rows (kinds can share a surface name, so the tag keeps rows
/// unambiguous).
std::string RenderNodeName(std::string_view name, graph::NodeKind kind);

/// A query answer tagged with the replication epoch the serving member
/// had applied when the answer was computed. The tag is read *before*
/// the rows, so the rows always reflect at least the tagged state —
/// that inequality is what lets a router enforce a bounded-staleness
/// policy: an answer tagged >= the router's committed epoch is provably
/// equal to the committed state's answer (kg::cluster::QueryRouter).
struct EpochTaggedResult {
  uint64_t epoch = 0;
  QueryResult rows;
};

/// Deterministic scatter-gather merge for shard-partitioned answers:
/// folds per-shard sorted row lists (indexed by shard) into one sorted
/// list with a stable merge, so equal rows keep lower-shard-index order
/// and the output is a pure function of the inputs. Correct for the
/// row-sorted query classes (point lookup, neighborhood,
/// attribute-by-type) over a disjoint subject partition, where every
/// row is produced by exactly one shard; top-k rows are score-ordered
/// and need the router's rank-aware path instead.
QueryResult MergeShardResults(std::vector<QueryResult> parts);

struct ServeOptions {
  /// Sharding policy for BatchExecute.
  ExecPolicy exec;
  /// Result-cache entries; 0 serves every query uncached.
  size_t cache_capacity = 0;
  size_t cache_shards = 8;
  /// Per-query-class wall time, recorded when non-null.
  StageTimer* metrics = nullptr;
  /// Per-class "serve.queries.<class>" counters land here when
  /// non-null (one sharded-atomic increment per query — hot-path
  /// safe; see bench_obs for the measured bound). Not owned; must
  /// outlive the engine.
  obs::MetricsRegistry* registry = nullptr;
  /// With `registry`, also time every query into a
  /// "serve.latency_us.<class>" histogram. Costs two clock reads per
  /// query, so it is opt-in rather than implied by `registry`.
  bool time_queries = false;
  /// With `registry`, also time the result-cache probe (key render +
  /// lookup) into per-class "stage_us.cache_probe.<class>" histograms —
  /// the engine's contribution to the request-path stage attribution.
  /// Same opt-in rationale as time_queries.
  bool time_stages = false;
};

/// Read path over an immutable KgSnapshot. Thread-safe: Execute only
/// reads the snapshot, and the result cache is internally sharded/locked.
/// BatchExecute shards a query vector over ExecPolicy with index-addressed
/// result slots, so its output is bit-identical at any thread count (the
/// cache can reorder *work*, never *answers*).
class QueryEngine {
 public:
  explicit QueryEngine(const KgSnapshot& snapshot, ServeOptions options = {});

  /// Answers one query, through the result cache when enabled.
  QueryResult Execute(const Query& query) const;

  /// Execute with the forward-compatibility gate: refuses with
  /// kUnavailable — the retriable "try another replica" signal, never a
  /// crash or a plausible-but-wrong empty answer — when the snapshot's
  /// schema generation is newer than this build understands. The RPC
  /// handshake makes the same check at connection time; this is its
  /// in-process twin, and the path the RPC server serves through.
  Result<QueryResult> TryExecute(const Query& query) const;

  /// Bypasses the cache (the reference path the cache is checked against).
  QueryResult ExecuteUncached(const Query& query) const;

  /// Answers `queries[i]` into slot i, sharded over `options.exec`.
  std::vector<QueryResult> BatchExecute(
      const std::vector<Query>& queries) const;

  /// Null when the cache is disabled.
  ShardedLruCache* cache() const { return cache_.get(); }

  const KgSnapshot& snapshot() const { return snapshot_; }

  /// Mirrors the result cache's hit/miss/eviction counters into
  /// "serve.cache.*" gauges of the configured registry. The cache
  /// already counts its own traffic in atomics, so the bridge runs at
  /// exposition time instead of taxing every lookup. No-op without a
  /// registry or cache.
  void PublishCacheMetrics() const;

 private:
  QueryResult ExecuteCacheAware(const Query& query) const;
  QueryResult PointLookup(const Query& query) const;
  QueryResult Neighborhood(const Query& query) const;
  QueryResult AttributeByType(const Query& query) const;
  QueryResult TopKRelated(const Query& query) const;

  const KgSnapshot& snapshot_;
  ServeOptions options_;
  // Pre-resolved registry handles (null when options_.registry is):
  // registration takes a lock, so it happens once here, never per query.
  std::array<obs::Counter*, kNumQueryKinds> query_counters_{};
  std::array<obs::Histogram*, kNumQueryKinds> latency_us_{};
  std::array<obs::Histogram*, kNumQueryKinds> stage_cache_probe_{};
  // Mutable by design: caching must be invisible to callers, and the
  // sharded cache is internally synchronized.
  mutable std::unique_ptr<ShardedLruCache> cache_;
};

}  // namespace kg::serve

#endif  // KGRAPH_SERVE_QUERY_ENGINE_H_
