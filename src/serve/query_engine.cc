#include "serve/query_engine.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/timer.h"
#include "obs/introspect.h"

namespace kg::serve {

namespace {

// Sorted-unique nodes adjacent to `id` (either edge direction). Multiple
// predicates between the same pair collapse to one adjacency.
std::vector<NodeId> AdjacentNodes(const KgSnapshot& snap, NodeId id) {
  std::vector<NodeId> out;
  out.reserve(snap.OutDegree(id) + snap.InDegree(id));
  for (const KgSnapshot::Edge& e : snap.OutEdges(id)) {
    out.push_back(e.second);
  }
  for (const KgSnapshot::Edge& e : snap.InEdges(id)) {
    out.push_back(e.second);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string RenderNode(const KgSnapshot& snap, NodeId id) {
  return RenderNodeName(snap.NodeName(id), snap.NodeKindOf(id));
}

void AppendField(std::string* key, const std::string& field) {
  key->append(std::to_string(field.size()));
  key->push_back(':');
  key->append(field);
  key->push_back('|');
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPointLookup:
      return "point_lookup";
    case QueryKind::kNeighborhood:
      return "neighborhood";
    case QueryKind::kAttributeByType:
      return "attribute_by_type";
    case QueryKind::kTopKRelated:
      return "topk_related";
  }
  return "unknown";
}

std::string RenderNodeName(std::string_view name, graph::NodeKind kind) {
  char tag = 'E';
  switch (kind) {
    case graph::NodeKind::kEntity:
      tag = 'E';
      break;
    case graph::NodeKind::kText:
      tag = 'T';
      break;
    case graph::NodeKind::kClass:
      tag = 'C';
      break;
  }
  std::string out;
  out.reserve(name.size() + 2);
  out.push_back(tag);
  out.push_back(':');
  out.append(name);
  return out;
}

QueryResult MergeShardResults(std::vector<QueryResult> parts) {
  QueryResult merged;
  for (QueryResult& part : parts) {
    if (part.empty()) continue;
    if (merged.empty()) {
      merged = std::move(part);
      continue;
    }
    QueryResult next;
    next.reserve(merged.size() + part.size());
    // std::merge is stable: equal rows come from the lower-indexed
    // shard first, so the fold order *is* the tie-break rule.
    std::merge(std::make_move_iterator(merged.begin()),
               std::make_move_iterator(merged.end()),
               std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()),
               std::back_inserter(next));
    merged = std::move(next);
  }
  return merged;
}

Query Query::PointLookup(std::string node, std::string predicate,
                         graph::NodeKind kind) {
  Query q;
  q.kind = QueryKind::kPointLookup;
  q.node = std::move(node);
  q.node_kind = kind;
  q.predicate = std::move(predicate);
  return q;
}

Query Query::Neighborhood(std::string node, graph::NodeKind kind) {
  Query q;
  q.kind = QueryKind::kNeighborhood;
  q.node = std::move(node);
  q.node_kind = kind;
  return q;
}

Query Query::AttributeByType(std::string type_name, std::string predicate,
                             std::string type_predicate) {
  Query q;
  q.kind = QueryKind::kAttributeByType;
  q.type_name = std::move(type_name);
  q.predicate = std::move(predicate);
  q.type_predicate = std::move(type_predicate);
  return q;
}

Query Query::TopKRelated(std::string node, size_t k,
                         graph::NodeKind kind) {
  Query q;
  q.kind = QueryKind::kTopKRelated;
  q.node = std::move(node);
  q.node_kind = kind;
  q.k = k;
  return q;
}

std::string Query::CacheKey() const {
  std::string key;
  key.append(std::to_string(static_cast<int>(kind)));
  key.push_back('|');
  key.append(std::to_string(static_cast<int>(node_kind)));
  key.push_back('|');
  key.append(std::to_string(k));
  key.push_back('|');
  AppendField(&key, node);
  AppendField(&key, predicate);
  AppendField(&key, type_name);
  AppendField(&key, type_predicate);
  return key;
}

QueryEngine::QueryEngine(const KgSnapshot& snapshot, ServeOptions options)
    : snapshot_(snapshot), options_(std::move(options)) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ShardedLruCache>(options_.cache_capacity,
                                               options_.cache_shards);
  }
  if (options_.registry != nullptr) {
    for (size_t i = 0; i < kNumQueryKinds; ++i) {
      const char* name = QueryKindName(static_cast<QueryKind>(i));
      query_counters_[i] = &options_.registry->GetCounter(
          std::string("serve.queries.") + name);
      if (options_.time_queries) {
        latency_us_[i] = &options_.registry->GetHistogram(
            std::string("serve.latency_us.") + name,
            obs::LatencyBucketsUs());
      }
      if (options_.time_stages && options_.cache_capacity > 0) {
        stage_cache_probe_[i] = &obs::StageHistogram(
            *options_.registry, obs::Stage::kCacheProbe, name);
      }
    }
  }
}

QueryResult QueryEngine::Execute(const Query& query) const {
  const size_t k = static_cast<size_t>(query.kind);
  if (query_counters_[k] != nullptr) query_counters_[k]->Inc();
  if (options_.metrics == nullptr && latency_us_[k] == nullptr) {
    // Hot path: no timing requested, so no clock reads and no string
    // for a StageTimer scope.
    return ExecuteCacheAware(query);
  }
  WallTimer timer;
  QueryResult result = ExecuteCacheAware(query);
  const double seconds = timer.ElapsedSeconds();
  if (latency_us_[k] != nullptr) latency_us_[k]->Observe(seconds * 1e6);
  if (options_.metrics != nullptr) {
    options_.metrics->Record(QueryKindName(query.kind), seconds, 1);
  }
  return result;
}

Result<QueryResult> QueryEngine::TryExecute(const Query& query) const {
  if (snapshot_.schema_version() > kSnapshotSchemaVersion) {
    return Status::Unavailable(
        "snapshot schema version " +
        std::to_string(snapshot_.schema_version()) +
        " is newer than this engine supports (" +
        std::to_string(kSnapshotSchemaVersion) + ")");
  }
  return Execute(query);
}

QueryResult QueryEngine::ExecuteCacheAware(const Query& query) const {
  if (cache_ == nullptr) return ExecuteUncached(query);
  obs::Histogram* probe_hist =
      stage_cache_probe_[static_cast<size_t>(query.kind)];
  if (probe_hist == nullptr) {
    const std::string key = query.CacheKey();
    QueryResult cached;
    if (cache_->Get(key, &cached)) return cached;
    QueryResult result = ExecuteUncached(query);
    cache_->Put(key, result);
    return result;
  }
  WallTimer timer;
  const std::string key = query.CacheKey();
  QueryResult cached;
  const bool hit = cache_->Get(key, &cached);
  probe_hist->Observe(timer.ElapsedSeconds() * 1e6);
  if (hit) return cached;
  QueryResult result = ExecuteUncached(query);
  cache_->Put(key, result);
  return result;
}

void QueryEngine::PublishCacheMetrics() const {
  if (options_.registry == nullptr || cache_ == nullptr) return;
  const ShardedLruCache::Counters counters = cache_->counters();
  options_.registry->GetGauge("serve.cache.hits")
      .Set(static_cast<int64_t>(counters.hits));
  options_.registry->GetGauge("serve.cache.misses")
      .Set(static_cast<int64_t>(counters.misses));
  options_.registry->GetGauge("serve.cache.evictions")
      .Set(static_cast<int64_t>(counters.evictions));
}

QueryResult QueryEngine::ExecuteUncached(const Query& query) const {
  switch (query.kind) {
    case QueryKind::kPointLookup:
      return PointLookup(query);
    case QueryKind::kNeighborhood:
      return Neighborhood(query);
    case QueryKind::kAttributeByType:
      return AttributeByType(query);
    case QueryKind::kTopKRelated:
      return TopKRelated(query);
  }
  return {};
}

std::vector<QueryResult> QueryEngine::BatchExecute(
    const std::vector<Query>& queries) const {
  std::vector<QueryResult> results(queries.size());
  // Index-addressed slots: shard i writes only results[b, e), so the
  // assembled vector is identical for any thread count or schedule.
  ParallelForChunked(options_.exec, queries.size(),
                     [&](size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         results[i] = Execute(queries[i]);
                       }
                     });
  return results;
}

QueryResult QueryEngine::PointLookup(const Query& query) const {
  const auto node = snapshot_.FindNode(query.node, query.node_kind);
  const auto pred = snapshot_.FindPredicate(query.predicate);
  if (!node.ok() || !pred.ok()) return {};
  QueryResult rows;
  for (NodeId o : snapshot_.Objects(*node, *pred)) {
    rows.push_back(RenderNode(snapshot_, o));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

QueryResult QueryEngine::Neighborhood(const Query& query) const {
  const auto node = snapshot_.FindNode(query.node, query.node_kind);
  if (!node.ok()) return {};
  QueryResult rows;
  rows.reserve(snapshot_.OutDegree(*node) + snapshot_.InDegree(*node));
  for (const KgSnapshot::Edge& e : snapshot_.OutEdges(*node)) {
    rows.push_back("out\t" + std::string(snapshot_.PredicateName(e.first)) +
                   '\t' + RenderNode(snapshot_, e.second));
  }
  for (const KgSnapshot::Edge& e : snapshot_.InEdges(*node)) {
    rows.push_back("in\t" + std::string(snapshot_.PredicateName(e.first)) +
                   '\t' + RenderNode(snapshot_, e.second));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

QueryResult QueryEngine::AttributeByType(const Query& query) const {
  const auto cls =
      snapshot_.FindNode(query.type_name, graph::NodeKind::kClass);
  const auto type_pred = snapshot_.FindPredicate(query.type_predicate);
  const auto attr_pred = snapshot_.FindPredicate(query.predicate);
  if (!cls.ok() || !type_pred.ok() || !attr_pred.ok()) return {};
  QueryResult rows;
  for (NodeId s : snapshot_.Subjects(*type_pred, *cls)) {
    const std::string subject = RenderNode(snapshot_, s);
    for (NodeId o : snapshot_.Objects(s, *attr_pred)) {
      rows.push_back(subject + '\t' + RenderNode(snapshot_, o));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

QueryResult QueryEngine::TopKRelated(const Query& query) const {
  const auto center = snapshot_.FindNode(query.node, query.node_kind);
  if (!center.ok() || query.k == 0) return {};
  // Score every entity m by the number of distinct length-2 paths
  // center — n — m (shared neighbors), both edge directions, any
  // predicate. The center itself never appears in its own shelf.
  std::unordered_map<NodeId, size_t> score;
  for (NodeId n : AdjacentNodes(snapshot_, *center)) {
    if (n == *center) continue;
    for (NodeId m : AdjacentNodes(snapshot_, n)) {
      if (m == *center) continue;
      if (snapshot_.NodeKindOf(m) != graph::NodeKind::kEntity) continue;
      ++score[m];
    }
  }
  std::vector<std::pair<NodeId, size_t>> ranked(score.begin(), score.end());
  std::sort(ranked.begin(), ranked.end(),
            [this](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return snapshot_.NodeName(a.first) <
                     snapshot_.NodeName(b.first);
            });
  if (ranked.size() > query.k) ranked.resize(query.k);
  QueryResult rows;
  rows.reserve(ranked.size());
  for (const auto& [m, count] : ranked) {
    rows.push_back(RenderNode(snapshot_, m) + '\t' + std::to_string(count));
  }
  return rows;
}

}  // namespace kg::serve
