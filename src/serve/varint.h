#ifndef KGRAPH_SERVE_VARINT_H_
#define KGRAPH_SERVE_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kg::serve {

/// Canonical LEB128: 7 value bits per byte, low group first, high bit set
/// on every byte except the last. "Canonical" means minimal length — a
/// multi-byte encoding whose final group is zero is rejected by the
/// decoder, so every decodable byte string has exactly one value and
/// encode(decode(bytes)) == bytes holds everywhere. uint64_t needs at
/// most 10 bytes; the 10th carries only the top bit of the value.
inline constexpr size_t kMaxVarintBytes = 10;

/// Appends the canonical encoding of `v` to `out`.
void AppendVarint(std::string* out, uint64_t v);

/// Decodes one canonical varint from [p, end). Returns the number of
/// bytes consumed (>= 1) and stores the value in `*out`; returns 0 on
/// truncated input, a non-canonical (overlong) encoding, or a value that
/// would overflow 64 bits. Never reads at or past `end`.
size_t DecodeVarint(const uint8_t* p, const uint8_t* end, uint64_t* out);

/// Appends the delta encoding of an ascending id list: varint(count),
/// varint(ids[0]), then varint(ids[i] - ids[i-1]) for the rest. Runs of
/// equal ids encode as zero deltas (one byte each). Precondition: `ids`
/// is non-descending.
void EncodeDeltaList(const std::vector<uint64_t>& ids, std::string* out);

/// Inverse of EncodeDeltaList. Strict: the whole of `bytes` must be
/// consumed, the count must be consistent, and deltas must not overflow.
/// Returns false (leaving `*out` cleared) on any violation.
bool DecodeDeltaList(std::string_view bytes, std::vector<uint64_t>* out);

}  // namespace kg::serve

#endif  // KGRAPH_SERVE_VARINT_H_
