#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "common/table_printer.h"
#include "obs/json.h"

namespace kg::serve {

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest sample covering fraction q of the mass.
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

ServeStats::ServeStats()
    : owned_registry_(std::make_unique<obs::MetricsRegistry>()),
      registry_(owned_registry_.get()) {
  RegisterHistograms();
}

ServeStats::ServeStats(obs::MetricsRegistry* registry)
    : registry_(registry) {
  RegisterHistograms();
}

void ServeStats::RegisterHistograms() {
  const std::vector<double>& buckets = obs::LatencyBucketsUs();
  for (size_t i = 0; i < kNumQueryKinds; ++i) {
    per_kind_us_[i] = &registry_->GetHistogram(
        std::string("serve.latency_us.") +
            QueryKindName(static_cast<QueryKind>(i)),
        buckets);
  }
  all_us_ = &registry_->GetHistogram("serve.latency_us.all", buckets);
}

void ServeStats::Record(QueryKind kind, double seconds) {
  const double us = seconds * 1e6;
  per_kind_us_[static_cast<size_t>(kind)]->Observe(us);
  all_us_->Observe(us);
}

void ServeStats::SetCacheCounters(
    const ShardedLruCache::Counters& counters) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_ = counters;
  }
  registry_->GetGauge("serve.cache.hits")
      .Set(static_cast<int64_t>(counters.hits));
  registry_->GetGauge("serve.cache.misses")
      .Set(static_cast<int64_t>(counters.misses));
  registry_->GetGauge("serve.cache.evictions")
      .Set(static_cast<int64_t>(counters.evictions));
}

namespace {

ServeStats::Row MakeRow(const std::string& name,
                        const obs::Histogram& hist) {
  ServeStats::Row row;
  row.query_class = name;
  row.calls = hist.Count();
  row.total_seconds = hist.Sum() * 1e-6;  // histogram unit is us
  row.qps = row.total_seconds > 0.0
                ? static_cast<double>(row.calls) / row.total_seconds
                : 0.0;
  row.p50_us = hist.Quantile(0.50);
  row.p99_us = hist.Quantile(0.99);
  return row;
}

void WriteJsonRow(obs::JsonWriter& w, const ServeStats::Row& row) {
  w.BeginObject();
  w.Key("class").String(row.query_class);
  w.Key("calls").UInt(static_cast<uint64_t>(row.calls));
  w.Key("qps").Double(row.qps, 1);
  w.Key("p50_us").Double(row.p50_us, 3);
  w.Key("p99_us").Double(row.p99_us, 3);
  w.EndObject();
}

}  // namespace

std::vector<ServeStats::Row> ServeStats::rows() const {
  std::vector<Row> out;
  for (size_t i = 0; i < kNumQueryKinds; ++i) {
    if (per_kind_us_[i]->Count() == 0) continue;
    out.push_back(MakeRow(QueryKindName(static_cast<QueryKind>(i)),
                          *per_kind_us_[i]));
  }
  out.push_back(MakeRow("all", *all_us_));
  return out;
}

std::optional<ShardedLruCache::Counters> ServeStats::cache_counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_;
}

void ServeStats::Print(std::ostream& os) const {
  TablePrinter table({"query class", "calls", "qps", "p50 us", "p99 us"});
  for (const Row& row : rows()) {
    table.AddRow({row.query_class, FormatCount(static_cast<int64_t>(row.calls)),
                  FormatDouble(row.qps, 0), FormatDouble(row.p50_us, 2),
                  FormatDouble(row.p99_us, 2)});
  }
  table.Print(os);
  if (const auto cache = cache_counters()) {
    os << "cache: " << cache->hits << " hits, " << cache->misses
       << " misses, " << cache->evictions << " evictions (hit rate "
       << FormatDouble(cache->HitRate(), 3) << ")\n";
  }
}

std::string ServeStats::ToJson() const {
  const auto all_rows = rows();
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("classes").BeginArray();
  for (const Row& row : all_rows) {
    if (row.query_class == "all") continue;
    WriteJsonRow(w, row);
  }
  w.EndArray();
  w.Key("overall");
  WriteJsonRow(w, all_rows.back());
  if (const auto cache = cache_counters()) {
    w.Key("cache").BeginObject();
    w.Key("hits").UInt(cache->hits);
    w.Key("misses").UInt(cache->misses);
    w.Key("evictions").UInt(cache->evictions);
    w.Key("hit_rate").Double(cache->HitRate(), 4);
    w.EndObject();
  }
  w.EndObject();
  return w.Take();
}

void ServeStats::Clear() {
  for (obs::Histogram* hist : per_kind_us_) hist->Reset();
  all_us_->Reset();
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.reset();
  }
  registry_->GetGauge("serve.cache.hits").Reset();
  registry_->GetGauge("serve.cache.misses").Reset();
  registry_->GetGauge("serve.cache.evictions").Reset();
}

}  // namespace kg::serve
