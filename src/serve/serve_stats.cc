#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/strings.h"
#include "common/table_printer.h"

namespace kg::serve {

namespace {

ServeStats::Row MakeRow(const std::string& name,
                        std::vector<double> samples) {
  ServeStats::Row row;
  row.query_class = name;
  row.calls = samples.size();
  row.total_seconds =
      std::accumulate(samples.begin(), samples.end(), 0.0);
  row.qps = row.total_seconds > 0.0
                ? static_cast<double>(row.calls) / row.total_seconds
                : 0.0;
  row.p50_us = Percentile(samples, 0.50) * 1e6;
  row.p99_us = Percentile(std::move(samples), 0.99) * 1e6;
  return row;
}

void AppendJsonRow(std::ostringstream* out, const ServeStats::Row& row) {
  *out << "{\"class\":\"" << row.query_class << "\",\"calls\":" << row.calls
       << ",\"qps\":" << FormatDouble(row.qps, 1)
       << ",\"p50_us\":" << FormatDouble(row.p50_us, 3)
       << ",\"p99_us\":" << FormatDouble(row.p99_us, 3) << "}";
}

}  // namespace

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest sample covering fraction q of the mass.
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

void ServeStats::Record(QueryKind kind, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_[static_cast<size_t>(kind)].push_back(seconds);
}

void ServeStats::SetCacheCounters(
    const ShardedLruCache::Counters& counters) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_ = counters;
}

std::vector<ServeStats::Row> ServeStats::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Row> out;
  std::vector<double> all;
  for (size_t i = 0; i < samples_.size(); ++i) {
    if (samples_[i].empty()) continue;
    out.push_back(
        MakeRow(QueryKindName(static_cast<QueryKind>(i)), samples_[i]));
    all.insert(all.end(), samples_[i].begin(), samples_[i].end());
  }
  out.push_back(MakeRow("all", std::move(all)));
  return out;
}

std::optional<ShardedLruCache::Counters> ServeStats::cache_counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_;
}

void ServeStats::Print(std::ostream& os) const {
  TablePrinter table({"query class", "calls", "qps", "p50 us", "p99 us"});
  for (const Row& row : rows()) {
    table.AddRow({row.query_class, FormatCount(static_cast<int64_t>(row.calls)),
                  FormatDouble(row.qps, 0), FormatDouble(row.p50_us, 2),
                  FormatDouble(row.p99_us, 2)});
  }
  table.Print(os);
  if (const auto cache = cache_counters()) {
    os << "cache: " << cache->hits << " hits, " << cache->misses
       << " misses, " << cache->evictions << " evictions (hit rate "
       << FormatDouble(cache->HitRate(), 3) << ")\n";
  }
}

std::string ServeStats::ToJson() const {
  std::ostringstream out;
  const auto all_rows = rows();
  out << "{\"classes\":[";
  bool first = true;
  for (const Row& row : all_rows) {
    if (row.query_class == "all") continue;
    if (!first) out << ',';
    first = false;
    AppendJsonRow(&out, row);
  }
  out << "],\"overall\":";
  AppendJsonRow(&out, all_rows.back());
  if (const auto cache = cache_counters()) {
    out << ",\"cache\":{\"hits\":" << cache->hits
        << ",\"misses\":" << cache->misses
        << ",\"evictions\":" << cache->evictions
        << ",\"hit_rate\":" << FormatDouble(cache->HitRate(), 4) << "}";
  }
  out << "}";
  return out.str();
}

void ServeStats::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : samples_) s.clear();
  cache_.reset();
}

}  // namespace kg::serve
