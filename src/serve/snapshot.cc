#include "serve/snapshot.h"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"
#include "common/strings.h"
#include "graph/serialization.h"
#include "obs/metrics.h"

namespace kg::serve {

namespace {

using graph::NodeKind;

const char* KindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kEntity:
      return "entity";
    case NodeKind::kText:
      return "text";
    case NodeKind::kClass:
      return "class";
  }
  return "entity";
}

Result<NodeKind> ParseKind(const std::string& name) {
  if (name == "entity") return NodeKind::kEntity;
  if (name == "text") return NodeKind::kText;
  if (name == "class") return NodeKind::kClass;
  return Status::InvalidArgument("unknown node kind: " + name);
}

void HashBytes(uint64_t* h, std::string_view bytes) {
  for (char c : bytes) {
    *h ^= static_cast<uint8_t>(c);
    *h *= 1099511628211ULL;
  }
}

void HashU32(uint64_t* h, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    *h ^= (v >> shift) & 0xffu;
    *h *= 1099511628211ULL;
  }
}

inline constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

/// Core row encoder over packed (first << 32 | second) entries, the form
/// the builder's transient per-order buffer holds (uint64 sort order ==
/// (first, second) lexicographic order, so a sorted slice is a sorted
/// row). Format documented at AppendEdgeRow.
void EncodeRowPacked(const uint64_t* begin, const uint64_t* end,
                     std::string* out) {
  if (begin == end) return;  // empty row: zero bytes
  AppendVarint(out, static_cast<uint64_t>(end - begin));
  uint32_t prev_first = 0, prev_second = 0;
  for (const uint64_t* p = begin; p != end; ++p) {
    const uint32_t first = static_cast<uint32_t>(*p >> 32);
    const uint32_t second = static_cast<uint32_t>(*p);
    const uint32_t d1 = first - prev_first;
    AppendVarint(out, d1);
    AppendVarint(out, d1 == 0 ? second - prev_second : second);
    prev_first = first;
    prev_second = second;
  }
}

/// Sizes a flat open-addressing table for `n` names at <= 50% load.
/// Matches the historical NameIndex::Reserve geometry so fingerprint-
/// equal snapshots also probe identically.
size_t IndexCapacity(size_t n) {
  size_t capacity = 4;
  while (capacity < 2 * n) capacity *= 2;
  return capacity;
}

void IndexInsert(std::vector<SnapshotIndexSlot>* slots, uint64_t mask,
                 std::string_view name, uint32_t id) {
  const uint64_t h = Fnv1a64(name);
  uint64_t slot = h & mask;
  while ((*slots)[slot].id_plus_1 != 0) slot = (slot + 1) & mask;
  (*slots)[slot] = SnapshotIndexSlot{h, id + 1, 0};
}

std::string_view ViewOf(const std::string& s) {
  return std::string_view(s.data(), s.size());
}

template <typename T>
std::string_view ViewOf(const std::vector<T>& v) {
  return std::string_view(reinterpret_cast<const char*>(v.data()),
                          v.size() * sizeof(T));
}

}  // namespace

// --- EdgeRange ----------------------------------------------------------

KgSnapshot::EdgeRange::EdgeRange(const uint8_t* begin, const uint8_t* end) {
  if (begin == nullptr || begin >= end) return;
  uint64_t count = 0;
  const size_t n = DecodeVarint(begin, end, &count);
  if (n == 0) return;
  payload_ = begin + n;
  end_ = end;
  // A real edge costs at least two bytes (two varints); clamp a hostile
  // count so size() can never promise more than the payload could hold.
  const uint64_t max_count = static_cast<uint64_t>(end_ - payload_) / 2;
  count_ = count < max_count ? count : max_count;
}

void KgSnapshot::EdgeRange::iterator::Advance() {
  if (left_ == 0) {
    avail_ = false;
    return;
  }
  uint64_t d1 = 0, v2 = 0;
  size_t n = DecodeVarint(p_, end_, &d1);
  if (n == 0) {
    left_ = 0;
    avail_ = false;
    return;
  }
  p_ += n;
  n = DecodeVarint(p_, end_, &v2);
  if (n == 0) {
    left_ = 0;
    avail_ = false;
    return;
  }
  p_ += n;
  const uint64_t first = static_cast<uint64_t>(cur_.first) + d1;
  const uint64_t second = d1 == 0 ? static_cast<uint64_t>(cur_.second) + v2
                                  : v2;
  if (first > UINT32_MAX || second > UINT32_MAX) {  // malformed bytes
    left_ = 0;
    avail_ = false;
    return;
  }
  cur_.first = static_cast<uint32_t>(first);
  cur_.second = static_cast<uint32_t>(second);
  --left_;
  avail_ = true;
}

// --- Row codec ----------------------------------------------------------

void AppendEdgeRow(std::string* out,
                   const std::vector<KgSnapshot::Edge>& edges) {
  std::vector<uint64_t> packed;
  packed.reserve(edges.size());
  for (const KgSnapshot::Edge& e : edges) {
    packed.push_back(static_cast<uint64_t>(e.first) << 32 | e.second);
  }
  EncodeRowPacked(packed.data(), packed.data() + packed.size(), out);
}

bool DecodeEdgeRow(std::string_view bytes,
                   std::vector<KgSnapshot::Edge>* out) {
  out->clear();
  if (bytes.empty()) return true;  // empty row
  const uint8_t* p = reinterpret_cast<const uint8_t*>(bytes.data());
  const uint8_t* end = p + bytes.size();
  uint64_t count = 0;
  size_t n = DecodeVarint(p, end, &count);
  if (n == 0) return false;
  p += n;
  if (count == 0 || count > static_cast<uint64_t>(end - p) / 2) {
    out->clear();
    return false;
  }
  out->reserve(count);
  uint32_t prev_first = 0, prev_second = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t d1 = 0, v2 = 0;
    n = DecodeVarint(p, end, &d1);
    if (n == 0) break;
    p += n;
    n = DecodeVarint(p, end, &v2);
    if (n == 0) break;
    p += n;
    const uint64_t first = static_cast<uint64_t>(prev_first) + d1;
    const uint64_t second =
        d1 == 0 ? static_cast<uint64_t>(prev_second) + v2 : v2;
    if (first > UINT32_MAX || second > UINT32_MAX) break;
    // Sortedness inside an equal-first run is free (unsigned delta); an
    // explicit check guards the cross-run boundary.
    if (i > 0 && d1 == 0 && second < prev_second) break;
    out->push_back(KgSnapshot::Edge{static_cast<uint32_t>(first),
                                    static_cast<uint32_t>(second)});
    prev_first = static_cast<uint32_t>(first);
    prev_second = static_cast<uint32_t>(second);
  }
  if (out->size() != count || p != end) {
    out->clear();
    return false;
  }
  return true;
}

// --- SnapshotBuilder ----------------------------------------------------

struct SnapshotBuilder::Storage {
  std::vector<uint8_t> node_kinds;
  std::vector<uint32_t> node_name_offsets{0};
  std::string node_arena;
  std::vector<uint32_t> pred_name_offsets{0};
  std::string pred_arena;

  std::vector<uint64_t> spo_offsets, pos_offsets, osp_offsets;
  std::string spo_bytes, pos_bytes, osp_bytes;

  std::array<std::vector<SnapshotIndexSlot>, 3> node_index;
  std::vector<SnapshotIndexSlot> pred_index;

  uint64_t num_triples = 0;
  uint64_t fingerprint = 0;
  bool arena_overflow = false;  ///< a name arena would exceed UINT32_MAX

  size_t num_nodes() const { return node_kinds.size(); }
  size_t num_preds() const { return pred_name_offsets.size() - 1; }

  std::string_view NodeNameAt(size_t i) const {
    return std::string_view(node_arena)
        .substr(node_name_offsets[i],
                node_name_offsets[i + 1] - node_name_offsets[i]);
  }
  std::string_view PredNameAt(size_t i) const {
    return std::string_view(pred_arena)
        .substr(pred_name_offsets[i],
                pred_name_offsets[i + 1] - pred_name_offsets[i]);
  }
};

SnapshotBuilder::SnapshotBuilder() : storage_(std::make_shared<Storage>()) {}

void SnapshotBuilder::AddNode(std::string_view name, graph::NodeKind kind) {
  KG_CHECK(!built_);
  storage_->node_kinds.push_back(static_cast<uint8_t>(kind));
  // The offset table is uint32_t, so the arena must stay addressable in
  // 32 bits (the loader enforces the same limit). Stop growing on
  // overflow and let Build() report it, instead of wrapping the offsets
  // into a self-consistent but corrupt snapshot.
  if (name.size() > UINT32_MAX - storage_->node_arena.size()) {
    storage_->arena_overflow = true;
  } else {
    storage_->node_arena.append(name);
  }
  storage_->node_name_offsets.push_back(
      static_cast<uint32_t>(storage_->node_arena.size()));
}

void SnapshotBuilder::AddPredicate(std::string_view name) {
  KG_CHECK(!built_);
  if (name.size() > UINT32_MAX - storage_->pred_arena.size()) {
    storage_->arena_overflow = true;
  } else {
    storage_->pred_arena.append(name);
  }
  storage_->pred_name_offsets.push_back(
      static_cast<uint32_t>(storage_->pred_arena.size()));
}

Result<KgSnapshot> SnapshotBuilder::Build(const TripleStream& stream) {
  if (built_) {
    return Status::InvalidArgument("SnapshotBuilder already built");
  }
  built_ = true;
  Storage& st = *storage_;
  const size_t n = st.num_nodes();
  const size_t m = st.num_preds();
  if (n >= UINT32_MAX || m >= UINT32_MAX) {
    return Status::InvalidArgument("vocabulary exceeds 32-bit id space");
  }
  if (st.arena_overflow) {
    return Status::InvalidArgument("name arena exceeds 32-bit offset space");
  }

  // Fingerprint prefix: the vocabulary in id order (same walk the
  // historical Compile hashed, so fingerprints stay comparable across
  // representation generations).
  uint64_t h = kFnvOffset;
  for (size_t i = 0; i < n; ++i) {
    HashU32(&h, st.node_kinds[i]);
    const std::string_view name = st.NodeNameAt(i);
    HashU32(&h, static_cast<uint32_t>(name.size()));
    HashBytes(&h, name);
  }
  for (size_t i = 0; i < m; ++i) {
    const std::string_view name = st.PredNameAt(i);
    HashU32(&h, static_cast<uint32_t>(name.size()));
    HashBytes(&h, name);
  }

  // Pass 1 over the stream: validate ids and (s, p, o) ordering, encode
  // the SPO order directly (the stream order *is* SPO row order), count
  // rows for the other two orders, and extend the fingerprint with the
  // triple walk.
  std::vector<uint64_t> pos_counts(m, 0), osp_counts(n, 0);
  std::vector<uint64_t> row_edges;  // (p << 32 | o) of the open SPO row
  Status error = Status::OK();
  uint64_t prev_s = 0, prev_p = 0, prev_o = 0;
  bool any = false;
  uint64_t open_row = 0;  // subject of row_edges
  st.spo_offsets.assign(1, 0);
  auto flush_rows_through = [&](uint64_t next_s) {
    // Close the open row, then empty rows up to (excluding) next_s.
    if (!row_edges.empty()) {
      EncodeRowPacked(row_edges.data(), row_edges.data() + row_edges.size(),
                      &st.spo_bytes);
      row_edges.clear();
    }
    while (st.spo_offsets.size() <= next_s) {
      st.spo_offsets.push_back(st.spo_bytes.size());
    }
  };
  stream([&](uint32_t s, uint32_t p, uint32_t o) {
    if (!error.ok()) return;
    if (s >= n || o >= n || p >= m) {
      error = Status::InvalidArgument("triple id out of range");
      return;
    }
    if (any && std::tuple(s, p, o) < std::tuple(static_cast<uint32_t>(prev_s),
                                                static_cast<uint32_t>(prev_p),
                                                static_cast<uint32_t>(prev_o))) {
      error = Status::InvalidArgument("triple stream not sorted by (s,p,o)");
      return;
    }
    if (!any || s != open_row) {
      flush_rows_through(s);
      open_row = s;
    }
    row_edges.push_back(static_cast<uint64_t>(p) << 32 | o);
    ++pos_counts[p];
    ++osp_counts[o];
    ++st.num_triples;
    HashU32(&h, s);
    HashU32(&h, p);
    HashU32(&h, o);
    prev_s = s;
    prev_p = p;
    prev_o = o;
    any = true;
  });
  if (!error.ok()) return error;
  flush_rows_through(n);
  st.fingerprint = h;

  // Passes 2 and 3: for each remaining order, place packed entries into
  // their rows with a cursor array, sort each row, and varint-encode.
  // Transient cost is 8 bytes per posting for exactly one order at a
  // time, independent of how the stream produces the triples.
  const auto build_order = [&](const std::vector<uint64_t>& counts,
                               auto key_row, auto key_packed,
                               std::vector<uint64_t>* offsets,
                               std::string* bytes) -> Status {
    const size_t rows = counts.size();
    std::vector<uint64_t> starts(rows + 1, 0);
    std::partial_sum(counts.begin(), counts.end(), starts.begin() + 1);
    std::vector<uint64_t> cursor(starts.begin(), starts.end() - 1);
    std::vector<uint64_t> packed(st.num_triples);
    Status pass_error = Status::OK();
    stream([&](uint32_t s, uint32_t p, uint32_t o) {
      if (!pass_error.ok()) return;
      const uint64_t row = key_row(s, p, o);
      if (row >= rows || cursor[row] >= starts[row + 1]) {
        pass_error =
            Status::InvalidArgument("triple stream did not replay identically");
        return;
      }
      packed[cursor[row]++] = key_packed(s, p, o);
    });
    if (!pass_error.ok()) return pass_error;
    for (size_t row = 0; row < rows; ++row) {
      if (cursor[row] != starts[row + 1]) {
        return Status::InvalidArgument(
            "triple stream did not replay identically");
      }
    }
    offsets->assign(1, 0);
    offsets->reserve(rows + 1);
    for (size_t row = 0; row < rows; ++row) {
      uint64_t* b = packed.data() + starts[row];
      uint64_t* e = packed.data() + starts[row + 1];
      std::sort(b, e);
      EncodeRowPacked(b, e, bytes);
      offsets->push_back(bytes->size());
    }
    return Status::OK();
  };
  KG_RETURN_IF_ERROR(build_order(
      pos_counts, [](uint32_t, uint32_t p, uint32_t) { return p; },
      [](uint32_t s, uint32_t, uint32_t o) {
        return static_cast<uint64_t>(o) << 32 | s;
      },
      &st.pos_offsets, &st.pos_bytes));
  KG_RETURN_IF_ERROR(build_order(
      osp_counts, [](uint32_t, uint32_t, uint32_t o) { return o; },
      [](uint32_t s, uint32_t p, uint32_t) {
        return static_cast<uint64_t>(p) << 32 | s;
      },
      &st.osp_offsets, &st.osp_bytes));

  // Name indexes, one table per node kind plus one for predicates.
  std::array<size_t, 3> kind_counts{};
  for (const uint8_t kind : st.node_kinds) ++kind_counts[kind <= 2 ? kind : 0];
  for (size_t k = 0; k < 3; ++k) {
    st.node_index[k].assign(IndexCapacity(kind_counts[k]),
                            SnapshotIndexSlot{});
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t k = st.node_kinds[i] <= 2 ? st.node_kinds[i] : 0;
    IndexInsert(&st.node_index[k], st.node_index[k].size() - 1,
                st.NodeNameAt(i), static_cast<uint32_t>(i));
  }
  st.pred_index.assign(IndexCapacity(m), SnapshotIndexSlot{});
  for (size_t i = 0; i < m; ++i) {
    IndexInsert(&st.pred_index, st.pred_index.size() - 1, st.PredNameAt(i),
                static_cast<uint32_t>(i));
  }

  KgSnapshot::RawParts parts;
  parts.num_nodes = n;
  parts.num_predicates = m;
  parts.num_triples = st.num_triples;
  parts.fingerprint = st.fingerprint;
  parts.schema_version = kSnapshotSchemaVersion;
  parts.sections[kSectionNodeKinds] = ViewOf(st.node_kinds);
  parts.sections[kSectionNodeNameOffsets] = ViewOf(st.node_name_offsets);
  parts.sections[kSectionNodeArena] = ViewOf(st.node_arena);
  parts.sections[kSectionPredNameOffsets] = ViewOf(st.pred_name_offsets);
  parts.sections[kSectionPredArena] = ViewOf(st.pred_arena);
  parts.sections[kSectionSpoOffsets] = ViewOf(st.spo_offsets);
  parts.sections[kSectionSpoBytes] = ViewOf(st.spo_bytes);
  parts.sections[kSectionPosOffsets] = ViewOf(st.pos_offsets);
  parts.sections[kSectionPosBytes] = ViewOf(st.pos_bytes);
  parts.sections[kSectionOspOffsets] = ViewOf(st.osp_offsets);
  parts.sections[kSectionOspBytes] = ViewOf(st.osp_bytes);
  parts.sections[kSectionNodeIndexEntity] = ViewOf(st.node_index[0]);
  parts.sections[kSectionNodeIndexText] = ViewOf(st.node_index[1]);
  parts.sections[kSectionNodeIndexClass] = ViewOf(st.node_index[2]);
  parts.sections[kSectionPredIndex] = ViewOf(st.pred_index);
  return KgSnapshot::FromRawParts(parts, storage_);
}

// --- KgSnapshot ---------------------------------------------------------

KgSnapshot KgSnapshot::FromRawParts(const RawParts& parts,
                                    std::shared_ptr<const void> backing) {
  KgSnapshot s;
  s.num_nodes_ = parts.num_nodes;
  s.num_predicates_ = parts.num_predicates;
  s.num_triples_ = parts.num_triples;
  s.fingerprint_ = parts.fingerprint;
  s.schema_version_ = parts.schema_version;
  const auto& sec = parts.sections;
  const auto u8 = [](std::string_view v) {
    return v.empty() ? nullptr : reinterpret_cast<const uint8_t*>(v.data());
  };
  const auto u32 = [](std::string_view v) {
    return v.empty() ? nullptr : reinterpret_cast<const uint32_t*>(v.data());
  };
  const auto u64 = [](std::string_view v) {
    return v.empty() ? nullptr : reinterpret_cast<const uint64_t*>(v.data());
  };
  s.node_kinds_ = u8(sec[kSectionNodeKinds]);
  s.node_name_offsets_ = u32(sec[kSectionNodeNameOffsets]);
  s.node_arena_ = sec[kSectionNodeArena].data();
  s.node_arena_size_ = sec[kSectionNodeArena].size();
  s.pred_name_offsets_ = u32(sec[kSectionPredNameOffsets]);
  s.pred_arena_ = sec[kSectionPredArena].data();
  s.pred_arena_size_ = sec[kSectionPredArena].size();
  s.spo_ = CsrView{u64(sec[kSectionSpoOffsets]),
                   u8(sec[kSectionSpoBytes]), sec[kSectionSpoBytes].size()};
  s.pos_ = CsrView{u64(sec[kSectionPosOffsets]),
                   u8(sec[kSectionPosBytes]), sec[kSectionPosBytes].size()};
  s.osp_ = CsrView{u64(sec[kSectionOspOffsets]),
                   u8(sec[kSectionOspBytes]), sec[kSectionOspBytes].size()};
  const auto index = [](std::string_view v) {
    IndexView out;
    const size_t slots = v.size() / sizeof(SnapshotIndexSlot);
    if (slots != 0) {
      out.slots = reinterpret_cast<const SnapshotIndexSlot*>(v.data());
      out.mask = slots - 1;
    }
    return out;
  };
  s.node_index_[0] = index(sec[kSectionNodeIndexEntity]);
  s.node_index_[1] = index(sec[kSectionNodeIndexText]);
  s.node_index_[2] = index(sec[kSectionNodeIndexClass]);
  s.predicate_index_ = index(sec[kSectionPredIndex]);
  s.backing_ = std::move(backing);
  return s;
}

KgSnapshot KgSnapshot::Compile(const graph::KnowledgeGraph& kg) {
  // 1. Collect the live vocabulary: nodes and predicates that occur in at
  //    least one non-tombstoned triple.
  const auto live = kg.AllTriples();
  std::vector<bool> node_live(kg.num_nodes(), false);
  std::vector<bool> pred_live(kg.num_predicates(), false);
  for (graph::TripleId id : live) {
    const graph::Triple& t = kg.triple(id);
    node_live[t.subject] = true;
    node_live[t.object] = true;
    pred_live[t.predicate] = true;
  }

  // 2. Assign dense ids in (kind, name) / name order. Names are unique per
  //    kind, so the order — and everything derived from it — is independent
  //    of the source KG's insertion history.
  std::vector<graph::NodeId> node_order;
  for (graph::NodeId n = 0; n < kg.num_nodes(); ++n) {
    if (node_live[n]) node_order.push_back(n);
  }
  std::sort(node_order.begin(), node_order.end(),
            [&kg](graph::NodeId a, graph::NodeId b) {
              const auto ka = kg.GetNodeKind(a), kb = kg.GetNodeKind(b);
              if (ka != kb) return ka < kb;
              return kg.NodeName(a) < kg.NodeName(b);
            });
  std::vector<graph::PredicateId> pred_order;
  for (graph::PredicateId p = 0; p < kg.num_predicates(); ++p) {
    if (pred_live[p]) pred_order.push_back(p);
  }
  std::sort(pred_order.begin(), pred_order.end(),
            [&kg](graph::PredicateId a, graph::PredicateId b) {
              return kg.PredicateName(a) < kg.PredicateName(b);
            });

  SnapshotBuilder builder;
  std::vector<NodeId> node_remap(kg.num_nodes(), kInvalidNode);
  for (size_t i = 0; i < node_order.size(); ++i) {
    node_remap[node_order[i]] = static_cast<NodeId>(i);
    builder.AddNode(kg.NodeName(node_order[i]),
                    kg.GetNodeKind(node_order[i]));
  }
  std::vector<PredicateId> pred_remap(kg.num_predicates(), 0);
  for (size_t i = 0; i < pred_order.size(); ++i) {
    pred_remap[pred_order[i]] = static_cast<PredicateId>(i);
    builder.AddPredicate(kg.PredicateName(pred_order[i]));
  }

  // 3. Remap triples into dense id space and sort once; the builder
  //    replays the sorted vector per order.
  std::vector<std::array<uint32_t, 3>> triples;
  triples.reserve(live.size());
  for (graph::TripleId id : live) {
    const graph::Triple& t = kg.triple(id);
    triples.push_back({node_remap[t.subject], pred_remap[t.predicate],
                       node_remap[t.object]});
  }
  std::sort(triples.begin(), triples.end());

  auto built = builder.Build([&triples](const SnapshotBuilder::TripleSink& sink) {
    for (const auto& t : triples) sink(t[0], t[1], t[2]);
  });
  KG_CHECK_OK(built.status());  // ids and order are correct by construction
  return *std::move(built);
}

Result<NodeId> KgSnapshot::FindNode(std::string_view name,
                                    NodeKind kind) const {
  const size_t k = static_cast<size_t>(kind) <= 2
                       ? static_cast<size_t>(kind)
                       : 0;
  const uint32_t id = node_index_[k].Find(
      name, static_cast<uint32_t>(num_nodes_),
      [this](uint32_t i) { return NodeName(i); });
  if (id == UINT32_MAX) {
    return Status::NotFound("node not in snapshot: " + std::string(name));
  }
  return id;
}

Result<PredicateId> KgSnapshot::FindPredicate(std::string_view name) const {
  const uint32_t id = predicate_index_.Find(
      name, static_cast<uint32_t>(num_predicates_),
      [this](uint32_t i) { return PredicateName(i); });
  if (id == UINT32_MAX) {
    return Status::NotFound("predicate not in snapshot: " +
                            std::string(name));
  }
  return id;
}

KgSnapshot::EdgeRange KgSnapshot::Row(const CsrView& csr,
                                      uint64_t row) const {
  if (csr.offsets == nullptr || csr.bytes == nullptr) return EdgeRange();
  uint64_t b = csr.offsets[row], e = csr.offsets[row + 1];
  // Clamp hostile offsets to the physical section so a corrupt table can
  // shorten a row, never escape it.
  if (b > csr.byte_size) b = csr.byte_size;
  if (e > csr.byte_size) e = csr.byte_size;
  if (e < b) e = b;
  return EdgeRange(csr.bytes + b, csr.bytes + e);
}

KgSnapshot::EdgeRange KgSnapshot::OutEdges(NodeId s) const {
  if (s >= num_nodes_) return EdgeRange();
  return Row(spo_, s);
}

KgSnapshot::EdgeRange KgSnapshot::InEdges(NodeId o) const {
  if (o >= num_nodes_) return EdgeRange();
  return Row(osp_, o);
}

KgSnapshot::EdgeRange KgSnapshot::PredicateEdges(PredicateId p) const {
  if (p >= num_predicates_) return EdgeRange();
  return Row(pos_, p);
}

std::vector<NodeId> KgSnapshot::Objects(NodeId s, PredicateId p) const {
  std::vector<NodeId> out;
  for (const Edge& e : OutEdges(s)) {
    if (e.first < p) continue;
    if (e.first > p) break;
    out.push_back(e.second);
  }
  return out;
}

size_t KgSnapshot::CountObjects(NodeId s, PredicateId p) const {
  size_t count = 0;
  for (const Edge& e : OutEdges(s)) {
    if (e.first < p) continue;
    if (e.first > p) break;
    ++count;
  }
  return count;
}

std::vector<NodeId> KgSnapshot::Subjects(PredicateId p, NodeId o) const {
  std::vector<NodeId> out;
  for (const Edge& e : PredicateEdges(p)) {
    if (e.first < o) continue;
    if (e.first > o) break;
    out.push_back(e.second);
  }
  return out;
}

bool KgSnapshot::HasTriple(NodeId s, PredicateId p, NodeId o) const {
  for (const Edge& e : OutEdges(s)) {
    if (e.first < p) continue;
    if (e.first > p) break;
    if (e.second == o) return true;
    if (e.second > o) break;
  }
  return false;
}

KgSnapshot::Footprint KgSnapshot::MemoryFootprint() const {
  const auto sections = SectionBytes();
  Footprint f;
  f.kind_bytes = sections[kSectionNodeKinds].size();
  f.arena_bytes = sections[kSectionNodeArena].size() +
                  sections[kSectionPredArena].size();
  f.offset_bytes = sections[kSectionNodeNameOffsets].size() +
                   sections[kSectionPredNameOffsets].size() +
                   sections[kSectionSpoOffsets].size() +
                   sections[kSectionPosOffsets].size() +
                   sections[kSectionOspOffsets].size();
  f.posting_bytes = sections[kSectionSpoBytes].size() +
                    sections[kSectionPosBytes].size() +
                    sections[kSectionOspBytes].size();
  f.index_bytes = sections[kSectionNodeIndexEntity].size() +
                  sections[kSectionNodeIndexText].size() +
                  sections[kSectionNodeIndexClass].size() +
                  sections[kSectionPredIndex].size();
  return f;
}

std::array<std::string_view, kNumSnapshotSections> KgSnapshot::SectionBytes()
    const {
  std::array<std::string_view, kNumSnapshotSections> out{};
  const auto view = [](const void* p, uint64_t bytes) {
    return p == nullptr ? std::string_view()
                        : std::string_view(static_cast<const char*>(p),
                                           bytes);
  };
  out[kSectionNodeKinds] = view(node_kinds_, num_nodes_);
  out[kSectionNodeNameOffsets] =
      view(node_name_offsets_, (num_nodes_ + 1) * sizeof(uint32_t));
  out[kSectionNodeArena] = view(node_arena_, node_arena_size_);
  out[kSectionPredNameOffsets] =
      view(pred_name_offsets_, (num_predicates_ + 1) * sizeof(uint32_t));
  out[kSectionPredArena] = view(pred_arena_, pred_arena_size_);
  out[kSectionSpoOffsets] =
      view(spo_.offsets, (num_nodes_ + 1) * sizeof(uint64_t));
  out[kSectionSpoBytes] = view(spo_.bytes, spo_.byte_size);
  out[kSectionPosOffsets] =
      view(pos_.offsets, (num_predicates_ + 1) * sizeof(uint64_t));
  out[kSectionPosBytes] = view(pos_.bytes, pos_.byte_size);
  out[kSectionOspOffsets] =
      view(osp_.offsets, (num_nodes_ + 1) * sizeof(uint64_t));
  out[kSectionOspBytes] = view(osp_.bytes, osp_.byte_size);
  const auto index_view = [&view](const IndexView& idx) {
    return idx.slots == nullptr
               ? std::string_view()
               : view(idx.slots, (idx.mask + 1) * sizeof(SnapshotIndexSlot));
  };
  out[kSectionNodeIndexEntity] = index_view(node_index_[0]);
  out[kSectionNodeIndexText] = index_view(node_index_[1]);
  out[kSectionNodeIndexClass] = index_view(node_index_[2]);
  out[kSectionPredIndex] = index_view(predicate_index_);
  return out;
}

uint64_t RecomputeFingerprint(const KgSnapshot& snapshot) {
  uint64_t h = kFnvOffset;
  for (NodeId n = 0; n < snapshot.num_nodes(); ++n) {
    HashU32(&h, static_cast<uint32_t>(snapshot.NodeKindOf(n)));
    const std::string_view name = snapshot.NodeName(n);
    HashU32(&h, static_cast<uint32_t>(name.size()));
    HashBytes(&h, name);
  }
  for (PredicateId p = 0; p < snapshot.num_predicates(); ++p) {
    const std::string_view name = snapshot.PredicateName(p);
    HashU32(&h, static_cast<uint32_t>(name.size()));
    HashBytes(&h, name);
  }
  for (NodeId s = 0; s < snapshot.num_nodes(); ++s) {
    for (const KgSnapshot::Edge& e : snapshot.OutEdges(s)) {
      HashU32(&h, s);
      HashU32(&h, e.first);
      HashU32(&h, e.second);
    }
  }
  return h;
}

void PublishSnapshotFootprint(const KgSnapshot& snapshot,
                              obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const KgSnapshot::Footprint f = snapshot.MemoryFootprint();
  registry->GetGauge("serve.snapshot.bytes.kinds")
      .Set(static_cast<int64_t>(f.kind_bytes));
  registry->GetGauge("serve.snapshot.bytes.arena")
      .Set(static_cast<int64_t>(f.arena_bytes));
  registry->GetGauge("serve.snapshot.bytes.offsets")
      .Set(static_cast<int64_t>(f.offset_bytes));
  registry->GetGauge("serve.snapshot.bytes.postings")
      .Set(static_cast<int64_t>(f.posting_bytes));
  registry->GetGauge("serve.snapshot.bytes.index")
      .Set(static_cast<int64_t>(f.index_bytes));
  registry->GetGauge("serve.snapshot.bytes.total")
      .Set(static_cast<int64_t>(f.total()));
  registry->GetGauge("serve.snapshot.nodes")
      .Set(static_cast<int64_t>(snapshot.num_nodes()));
  registry->GetGauge("serve.snapshot.triples")
      .Set(static_cast<int64_t>(snapshot.num_triples()));
}

// --- TSV serialization --------------------------------------------------

std::string SerializeSnapshot(const KgSnapshot& snapshot) {
  std::ostringstream out;
  out << "kgsnap\t1\t" << snapshot.num_nodes() << '\t'
      << snapshot.num_predicates() << '\t' << snapshot.num_triples()
      << '\n';
  for (NodeId n = 0; n < snapshot.num_nodes(); ++n) {
    out << "N\t" << KindName(snapshot.NodeKindOf(n)) << '\t'
        << graph::EscapeTsvField(snapshot.NodeName(n)) << '\n';
  }
  for (PredicateId p = 0; p < snapshot.num_predicates(); ++p) {
    out << "P\t" << graph::EscapeTsvField(snapshot.PredicateName(p)) << '\n';
  }
  // Triples in canonical (s, p, o) order — exactly the SPO index walk.
  for (NodeId s = 0; s < snapshot.num_nodes(); ++s) {
    for (const KgSnapshot::Edge& e : snapshot.OutEdges(s)) {
      out << "T\t" << s << '\t' << e.first << '\t' << e.second << '\n';
    }
  }
  return out.str();
}

Result<KgSnapshot> DeserializeSnapshot(const std::string& data) {
  const std::vector<std::string> lines = Split(data, '\n');
  size_t line_no = 0;
  auto bad = [&line_no](const std::string& why) {
    return Status::InvalidArgument("snapshot line " +
                                   std::to_string(line_no) + ": " + why);
  };
  if (lines.empty()) return bad("empty input");

  ++line_no;
  const auto header = Split(lines[0], '\t');
  if (header.size() != 5 || header[0] != "kgsnap") {
    return bad("missing kgsnap header");
  }
  size_t version = 0, num_nodes = 0, num_preds = 0, num_triples = 0;
  try {
    version = std::stoul(header[1]);
    num_nodes = std::stoul(header[2]);
    num_preds = std::stoul(header[3]);
    num_triples = std::stoul(header[4]);
  } catch (const std::exception&) {
    return bad("malformed header counts");
  }
  if (version != 1) return bad("unsupported version " + header[1]);
  // Every record occupies one physical line, so the header may not claim
  // more records than the input could hold. Checked before any reserve —
  // a hostile header must not size an allocation.
  if (num_nodes > lines.size() || num_preds > lines.size() ||
      num_triples > lines.size() ||
      num_nodes + num_preds + num_triples > lines.size()) {
    return bad("header counts exceed input size");
  }
  if (num_nodes >= UINT32_MAX || num_preds >= UINT32_MAX) {
    return bad("header counts exceed id space");
  }

  SnapshotBuilder builder;
  size_t seen_nodes = 0, seen_preds = 0;
  std::vector<std::array<uint32_t, 3>> triples;
  triples.reserve(num_triples);
  for (size_t i = 1; i < lines.size(); ++i) {
    ++line_no;
    const std::string& line = lines[i];
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields[0] == "N") {
      if (fields.size() != 3) return bad("N record needs 3 fields");
      if (seen_nodes == num_nodes) return bad("more N records than header");
      KG_ASSIGN_OR_RETURN(const NodeKind kind, ParseKind(fields[1]));
      builder.AddNode(graph::UnescapeTsvField(fields[2]), kind);
      ++seen_nodes;
    } else if (fields[0] == "P") {
      if (fields.size() != 2) return bad("P record needs 2 fields");
      if (seen_preds == num_preds) return bad("more P records than header");
      builder.AddPredicate(graph::UnescapeTsvField(fields[1]));
      ++seen_preds;
    } else if (fields[0] == "T") {
      if (fields.size() != 4) return bad("T record needs 4 fields");
      if (triples.size() == num_triples) {
        return bad("more T records than header");
      }
      std::array<uint32_t, 3> t{};
      try {
        t[0] = static_cast<uint32_t>(std::stoul(fields[1]));
        t[1] = static_cast<uint32_t>(std::stoul(fields[2]));
        t[2] = static_cast<uint32_t>(std::stoul(fields[3]));
      } catch (const std::exception&) {
        return bad("malformed triple ids");
      }
      if (t[0] >= num_nodes || t[2] >= num_nodes || t[1] >= num_preds) {
        return bad("triple id out of range");
      }
      triples.push_back(t);
    } else {
      return bad("unknown record type: " + fields[0]);
    }
  }
  if (seen_nodes != num_nodes) return bad("node count mismatch");
  if (seen_preds != num_preds) return bad("predicate count mismatch");
  if (triples.size() != num_triples) return bad("triple count mismatch");
  std::sort(triples.begin(), triples.end());
  return builder.Build([&triples](const SnapshotBuilder::TripleSink& sink) {
    for (const auto& t : triples) sink(t[0], t[1], t[2]);
  });
}

Status SaveSnapshot(const KgSnapshot& snapshot, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path);
  out << SerializeSnapshot(snapshot);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<KgSnapshot> LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DeserializeSnapshot(buf.str());
}

}  // namespace kg::serve
