#include "serve/snapshot.h"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"
#include "common/strings.h"
#include "graph/serialization.h"

namespace kg::serve {

namespace {

using graph::NodeKind;

const char* KindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kEntity:
      return "entity";
    case NodeKind::kText:
      return "text";
    case NodeKind::kClass:
      return "class";
  }
  return "entity";
}

Result<NodeKind> ParseKind(const std::string& name) {
  if (name == "entity") return NodeKind::kEntity;
  if (name == "text") return NodeKind::kText;
  if (name == "class") return NodeKind::kClass;
  return Status::InvalidArgument("unknown node kind: " + name);
}

// CSR construction: bucket `edges` (already tagged with their row) into
// `num_rows` rows and sort each row by the entry pair. `row_of` extracts
// the row id, `entry_of` the stored pair.
template <typename RowOf, typename EntryOf>
void BuildCsr(const std::vector<std::array<uint32_t, 3>>& triples,
              size_t num_rows, RowOf row_of, EntryOf entry_of,
              std::vector<uint32_t>* offsets,
              std::vector<KgSnapshot::Edge>* entries) {
  offsets->assign(num_rows + 1, 0);
  for (const auto& t : triples) ++(*offsets)[row_of(t) + 1];
  std::partial_sum(offsets->begin(), offsets->end(), offsets->begin());
  entries->resize(triples.size());
  std::vector<uint32_t> cursor(offsets->begin(), offsets->end() - 1);
  for (const auto& t : triples) {
    (*entries)[cursor[row_of(t)]++] = entry_of(t);
  }
  for (size_t row = 0; row < num_rows; ++row) {
    std::sort(entries->begin() + (*offsets)[row],
              entries->begin() + (*offsets)[row + 1],
              [](const KgSnapshot::Edge& a, const KgSnapshot::Edge& b) {
                return a.first != b.first ? a.first < b.first
                                          : a.second < b.second;
              });
  }
}

// The contiguous run of `edges` whose `first` field equals `key`
// (edges are sorted by (first, second)).
std::span<const KgSnapshot::Edge> EqualFirstRange(
    std::span<const KgSnapshot::Edge> edges, uint32_t key) {
  const auto lo = std::partition_point(
      edges.begin(), edges.end(),
      [key](const KgSnapshot::Edge& e) { return e.first < key; });
  const auto hi = std::partition_point(
      lo, edges.end(),
      [key](const KgSnapshot::Edge& e) { return e.first <= key; });
  return edges.subspan(static_cast<size_t>(lo - edges.begin()),
                       static_cast<size_t>(hi - lo));
}

void HashBytes(uint64_t* h, std::string_view bytes) {
  for (char c : bytes) {
    *h ^= static_cast<uint8_t>(c);
    *h *= 1099511628211ULL;
  }
}

void HashU32(uint64_t* h, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    *h ^= (v >> shift) & 0xffu;
    *h *= 1099511628211ULL;
  }
}

}  // namespace

KgSnapshot KgSnapshot::Compile(const graph::KnowledgeGraph& kg) {
  // 1. Collect the live vocabulary: nodes and predicates that occur in at
  //    least one non-tombstoned triple.
  const auto live = kg.AllTriples();
  std::vector<bool> node_live(kg.num_nodes(), false);
  std::vector<bool> pred_live(kg.num_predicates(), false);
  for (graph::TripleId id : live) {
    const graph::Triple& t = kg.triple(id);
    node_live[t.subject] = true;
    node_live[t.object] = true;
    pred_live[t.predicate] = true;
  }

  // 2. Assign dense ids in (kind, name) / name order. Names are unique per
  //    kind, so the order — and everything derived from it — is independent
  //    of the source KG's insertion history.
  std::vector<graph::NodeId> node_order;
  for (graph::NodeId n = 0; n < kg.num_nodes(); ++n) {
    if (node_live[n]) node_order.push_back(n);
  }
  std::sort(node_order.begin(), node_order.end(),
            [&kg](graph::NodeId a, graph::NodeId b) {
              const auto ka = kg.GetNodeKind(a), kb = kg.GetNodeKind(b);
              if (ka != kb) return ka < kb;
              return kg.NodeName(a) < kg.NodeName(b);
            });
  std::vector<graph::PredicateId> pred_order;
  for (graph::PredicateId p = 0; p < kg.num_predicates(); ++p) {
    if (pred_live[p]) pred_order.push_back(p);
  }
  std::sort(pred_order.begin(), pred_order.end(),
            [&kg](graph::PredicateId a, graph::PredicateId b) {
              return kg.PredicateName(a) < kg.PredicateName(b);
            });

  KgSnapshot snap;
  std::vector<NodeId> node_remap(kg.num_nodes(), kInvalidNode);
  snap.node_names_.reserve(node_order.size());
  snap.node_kinds_.reserve(node_order.size());
  for (size_t i = 0; i < node_order.size(); ++i) {
    node_remap[node_order[i]] = static_cast<NodeId>(i);
    snap.node_names_.push_back(kg.NodeName(node_order[i]));
    snap.node_kinds_.push_back(kg.GetNodeKind(node_order[i]));
  }
  std::vector<PredicateId> pred_remap(kg.num_predicates(), 0);
  snap.predicate_names_.reserve(pred_order.size());
  for (size_t i = 0; i < pred_order.size(); ++i) {
    pred_remap[pred_order[i]] = static_cast<PredicateId>(i);
    snap.predicate_names_.push_back(kg.PredicateName(pred_order[i]));
  }

  // 3. Remap triples into dense id space.
  std::vector<std::array<uint32_t, 3>> triples;
  triples.reserve(live.size());
  for (graph::TripleId id : live) {
    const graph::Triple& t = kg.triple(id);
    triples.push_back({node_remap[t.subject], pred_remap[t.predicate],
                       node_remap[t.object]});
  }

  snap.BuildIndexes(std::move(triples));
  return snap;
}

void KgSnapshot::BuildIndexes(
    std::vector<std::array<uint32_t, 3>> triples) {
  std::sort(triples.begin(), triples.end());

  std::array<size_t, 3> kind_counts{};
  for (const graph::NodeKind kind : node_kinds_) {
    ++kind_counts[static_cast<size_t>(kind)];
  }
  for (size_t k = 0; k < node_index_.size(); ++k) {
    node_index_[k].Reserve(kind_counts[k]);
  }
  for (size_t i = 0; i < node_names_.size(); ++i) {
    node_index_[static_cast<size_t>(node_kinds_[i])].Insert(
        node_names_[i], static_cast<uint32_t>(i));
  }
  predicate_index_.Reserve(predicate_names_.size());
  for (size_t i = 0; i < predicate_names_.size(); ++i) {
    predicate_index_.Insert(predicate_names_[i],
                            static_cast<uint32_t>(i));
  }

  BuildCsr(
      triples, num_nodes(), [](const auto& t) { return t[0]; },
      [](const auto& t) { return Edge{t[1], t[2]}; }, &spo_offsets_, &spo_);
  BuildCsr(
      triples, num_predicates(), [](const auto& t) { return t[1]; },
      [](const auto& t) { return Edge{t[2], t[0]}; }, &pos_offsets_, &pos_);
  BuildCsr(
      triples, num_nodes(), [](const auto& t) { return t[2]; },
      [](const auto& t) { return Edge{t[1], t[0]}; }, &osp_offsets_, &osp_);

  // FNV-1a over the canonical content (vocabulary in id order, triples in
  // (s, p, o) order) — the whole snapshot is derivable from these, so
  // equal fingerprints mean identical serving behavior.
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < node_names_.size(); ++i) {
    HashU32(&h, static_cast<uint32_t>(node_kinds_[i]));
    HashU32(&h, static_cast<uint32_t>(node_names_[i].size()));
    HashBytes(&h, node_names_[i]);
  }
  for (const std::string& p : predicate_names_) {
    HashU32(&h, static_cast<uint32_t>(p.size()));
    HashBytes(&h, p);
  }
  for (const auto& t : triples) {
    HashU32(&h, t[0]);
    HashU32(&h, t[1]);
    HashU32(&h, t[2]);
  }
  fingerprint_ = h;
}

void KgSnapshot::NameIndex::Reserve(size_t n) {
  size_t capacity = 4;
  while (capacity < 2 * n) capacity *= 2;
  slots.assign(capacity, {0, 0});
  mask = capacity - 1;
}

void KgSnapshot::NameIndex::Insert(std::string_view name, uint32_t id) {
  const uint64_t h = Fnv1a64(name);
  uint64_t slot = h & mask;
  while (slots[slot].second != 0) slot = (slot + 1) & mask;
  slots[slot] = {h, id + 1};
}

Result<NodeId> KgSnapshot::FindNode(std::string_view name,
                                    NodeKind kind) const {
  const uint32_t id = node_index_[static_cast<size_t>(kind)].Find(
      name,
      [this](uint32_t i) -> const std::string& { return node_names_[i]; });
  if (id == UINT32_MAX) {
    return Status::NotFound("node not in snapshot: " + std::string(name));
  }
  return id;
}

Result<PredicateId> KgSnapshot::FindPredicate(std::string_view name) const {
  const uint32_t id = predicate_index_.Find(
      name, [this](uint32_t i) -> const std::string& {
        return predicate_names_[i];
      });
  if (id == UINT32_MAX) {
    return Status::NotFound("predicate not in snapshot: " +
                            std::string(name));
  }
  return id;
}

std::span<const KgSnapshot::Edge> KgSnapshot::OutEdges(NodeId s) const {
  KG_CHECK(s < num_nodes());
  return {spo_.data() + spo_offsets_[s],
          spo_.data() + spo_offsets_[s + 1]};
}

std::span<const KgSnapshot::Edge> KgSnapshot::InEdges(NodeId o) const {
  KG_CHECK(o < num_nodes());
  return {osp_.data() + osp_offsets_[o],
          osp_.data() + osp_offsets_[o + 1]};
}

std::span<const KgSnapshot::Edge> KgSnapshot::PredicateEdges(
    PredicateId p) const {
  KG_CHECK(p < num_predicates());
  return {pos_.data() + pos_offsets_[p],
          pos_.data() + pos_offsets_[p + 1]};
}

std::span<const KgSnapshot::Edge> KgSnapshot::ObjectEdges(
    NodeId s, PredicateId p) const {
  return EqualFirstRange(OutEdges(s), p);
}

std::vector<NodeId> KgSnapshot::Objects(NodeId s, PredicateId p) const {
  const auto range = ObjectEdges(s, p);
  std::vector<NodeId> out;
  out.reserve(range.size());
  for (const Edge& e : range) out.push_back(e.second);
  return out;
}

std::vector<NodeId> KgSnapshot::Subjects(PredicateId p, NodeId o) const {
  std::vector<NodeId> out;
  for (const Edge& e : EqualFirstRange(PredicateEdges(p), o)) {
    out.push_back(e.second);
  }
  return out;
}

bool KgSnapshot::HasTriple(NodeId s, PredicateId p, NodeId o) const {
  const auto range = EqualFirstRange(OutEdges(s), p);
  return std::binary_search(
      range.begin(), range.end(), Edge{p, o},
      [](const Edge& a, const Edge& b) { return a.second < b.second; });
}

// --- Serialization ------------------------------------------------------

std::string SerializeSnapshot(const KgSnapshot& snapshot) {
  std::ostringstream out;
  out << "kgsnap\t1\t" << snapshot.num_nodes() << '\t'
      << snapshot.num_predicates() << '\t' << snapshot.num_triples()
      << '\n';
  for (NodeId n = 0; n < snapshot.num_nodes(); ++n) {
    out << "N\t" << KindName(snapshot.NodeKindOf(n)) << '\t'
        << graph::EscapeTsvField(snapshot.NodeName(n)) << '\n';
  }
  for (PredicateId p = 0; p < snapshot.num_predicates(); ++p) {
    out << "P\t" << graph::EscapeTsvField(snapshot.PredicateName(p))
        << '\n';
  }
  // Triples in canonical (s, p, o) order — exactly the SPO index walk.
  for (NodeId s = 0; s < snapshot.num_nodes(); ++s) {
    for (const KgSnapshot::Edge& e : snapshot.OutEdges(s)) {
      out << "T\t" << s << '\t' << e.first << '\t' << e.second << '\n';
    }
  }
  return out.str();
}

Result<KgSnapshot> DeserializeSnapshot(const std::string& data) {
  const std::vector<std::string> lines = Split(data, '\n');
  size_t line_no = 0;
  auto bad = [&line_no](const std::string& why) {
    return Status::InvalidArgument("snapshot line " +
                                   std::to_string(line_no) + ": " + why);
  };
  if (lines.empty()) return bad("empty input");

  ++line_no;
  const auto header = Split(lines[0], '\t');
  if (header.size() != 5 || header[0] != "kgsnap") {
    return bad("missing kgsnap header");
  }
  size_t version = 0, num_nodes = 0, num_preds = 0, num_triples = 0;
  try {
    version = std::stoul(header[1]);
    num_nodes = std::stoul(header[2]);
    num_preds = std::stoul(header[3]);
    num_triples = std::stoul(header[4]);
  } catch (const std::exception&) {
    return bad("malformed header counts");
  }
  if (version != 1) return bad("unsupported version " + header[1]);

  KgSnapshot snap;
  std::vector<std::array<uint32_t, 3>> triples;
  triples.reserve(num_triples);
  for (size_t i = 1; i < lines.size(); ++i) {
    ++line_no;
    const std::string& line = lines[i];
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields[0] == "N") {
      if (fields.size() != 3) return bad("N record needs 3 fields");
      KG_ASSIGN_OR_RETURN(const NodeKind kind, ParseKind(fields[1]));
      snap.node_kinds_.push_back(kind);
      snap.node_names_.push_back(graph::UnescapeTsvField(fields[2]));
    } else if (fields[0] == "P") {
      if (fields.size() != 2) return bad("P record needs 2 fields");
      snap.predicate_names_.push_back(graph::UnescapeTsvField(fields[1]));
    } else if (fields[0] == "T") {
      if (fields.size() != 4) return bad("T record needs 4 fields");
      std::array<uint32_t, 3> t{};
      try {
        t[0] = static_cast<uint32_t>(std::stoul(fields[1]));
        t[1] = static_cast<uint32_t>(std::stoul(fields[2]));
        t[2] = static_cast<uint32_t>(std::stoul(fields[3]));
      } catch (const std::exception&) {
        return bad("malformed triple ids");
      }
      if (t[0] >= num_nodes || t[2] >= num_nodes || t[1] >= num_preds) {
        return bad("triple id out of range");
      }
      triples.push_back(t);
    } else {
      return bad("unknown record type: " + fields[0]);
    }
  }
  if (snap.node_names_.size() != num_nodes) {
    return bad("node count mismatch");
  }
  if (snap.predicate_names_.size() != num_preds) {
    return bad("predicate count mismatch");
  }
  if (triples.size() != num_triples) {
    return bad("triple count mismatch");
  }
  snap.BuildIndexes(std::move(triples));
  return snap;
}

Status SaveSnapshot(const KgSnapshot& snapshot, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path);
  out << SerializeSnapshot(snapshot);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<KgSnapshot> LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DeserializeSnapshot(buf.str());
}

}  // namespace kg::serve
