#include "serve/snapshot_binary.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/hash.h"

namespace kg::serve {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

struct ParsedHeader {
  uint32_t container_version = 0;
  uint32_t schema_version = 0;
  uint64_t num_nodes = 0;
  uint64_t num_predicates = 0;
  uint64_t num_triples = 0;
  uint64_t fingerprint = 0;
  struct Section {
    uint64_t offset = 0;
    uint64_t size = 0;
  };
  std::array<Section, kNumSnapshotSections> sections;
  uint32_t payload_checksum = 0;
};

/// Validates everything about `data` except the payload checksum and
/// returns the parsed header. Every check here is O(1); passing means the
/// section table is structurally sound — each section lies inside the
/// file, is aligned for its element type, and has exactly the size the
/// header counts demand — so FromRawParts views can be wired without
/// touching a payload byte.
Result<ParsedHeader> ValidateHeader(std::string_view data) {
  const auto bad = [](const char* why) {
    return Status::InvalidArgument(std::string("binary snapshot: ") + why);
  };
  if (data.size() < kBinarySnapshotHeaderSize) return bad("truncated header");
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  if (std::memcmp(p, kBinarySnapshotMagic, 8) != 0) return bad("bad magic");

  ParsedHeader h;
  h.container_version = ReadU32(p + 8);
  h.schema_version = ReadU32(p + 12);
  h.num_nodes = ReadU64(p + 16);
  h.num_predicates = ReadU64(p + 24);
  h.num_triples = ReadU64(p + 32);
  h.fingerprint = ReadU64(p + 40);
  size_t at = 48;
  for (size_t i = 0; i < kNumSnapshotSections; ++i) {
    h.sections[i].offset = ReadU64(p + at);
    h.sections[i].size = ReadU64(p + at + 8);
    at += 16;
  }
  h.payload_checksum = ReadU32(p + at);
  const uint32_t header_checksum = ReadU32(p + at + 4);

  // The header checksum gates everything parsed above: a flipped bit in
  // a count or a section-table entry is caught before any derived check
  // could be reasoned about with corrupt inputs.
  if (Checksum32(data.substr(0, kBinarySnapshotHeaderSize - 4)) !=
      header_checksum) {
    return bad("header checksum mismatch");
  }
  if (h.container_version != kBinarySnapshotContainerVersion) {
    return Status::Unavailable(
        "binary snapshot: container version " +
        std::to_string(h.container_version) + " newer than supported " +
        std::to_string(kBinarySnapshotContainerVersion));
  }
  if (h.num_nodes >= UINT32_MAX || h.num_predicates >= UINT32_MAX) {
    return bad("counts exceed 32-bit id space");
  }

  // Per-section bounds: overflow-safe (size is checked against the space
  // *after* offset, never via offset + size).
  for (const auto& s : h.sections) {
    if (s.offset < kBinarySnapshotHeaderSize || s.offset > data.size()) {
      return bad("section offset out of bounds");
    }
    if (s.size > data.size() - s.offset) return bad("section overruns file");
  }

  // Exact sizes implied by the counts. These are what make the zero-copy
  // views memory-safe: ArenaSlice may read offsets[id + 1] for any valid
  // id, so the offset arrays must physically hold count + 1 entries.
  const auto expect = [&bad](const ParsedHeader::Section& s, uint64_t bytes,
                             uint64_t align) -> Status {
    if (s.size != bytes) return bad("section size does not match counts");
    if (align > 1 && s.offset % align != 0) return bad("misaligned section");
    return Status::OK();
  };
  const uint64_t n = h.num_nodes, m = h.num_predicates;
  KG_RETURN_IF_ERROR(expect(h.sections[kSectionNodeKinds], n, 1));
  KG_RETURN_IF_ERROR(
      expect(h.sections[kSectionNodeNameOffsets], (n + 1) * 4, 4));
  KG_RETURN_IF_ERROR(
      expect(h.sections[kSectionPredNameOffsets], (m + 1) * 4, 4));
  KG_RETURN_IF_ERROR(expect(h.sections[kSectionSpoOffsets], (n + 1) * 8, 8));
  KG_RETURN_IF_ERROR(expect(h.sections[kSectionPosOffsets], (m + 1) * 8, 8));
  KG_RETURN_IF_ERROR(expect(h.sections[kSectionOspOffsets], (n + 1) * 8, 8));
  // Variable-size sections: arenas and posting bytes are free-form (the
  // accessors clamp), index tables must be whole power-of-two slot
  // arrays so the probe mask is valid.
  for (const SnapshotSection sec :
       {kSectionNodeIndexEntity, kSectionNodeIndexText,
        kSectionNodeIndexClass, kSectionPredIndex}) {
    const auto& s = h.sections[sec];
    if (s.size % sizeof(SnapshotIndexSlot) != 0) {
      return bad("index section not a whole slot array");
    }
    const uint64_t slots = s.size / sizeof(SnapshotIndexSlot);
    if (slots != 0 && (slots & (slots - 1)) != 0) {
      return bad("index slot count not a power of two");
    }
    if (s.size != 0 && s.offset % 8 != 0) return bad("misaligned section");
  }
  for (const SnapshotSection sec : {kSectionNodeArena, kSectionPredArena}) {
    if (h.sections[sec].size > UINT32_MAX) {
      return bad("arena exceeds 32-bit offset space");
    }
  }

  // Sections must be mutually disjoint. The per-section checks above are
  // what memory safety rests on, but a re-stamped header could still
  // alias one section's bytes into another (offsets table over posting
  // bytes, say) — reject so the section table is structurally sound, not
  // merely in-bounds.
  std::array<ParsedHeader::Section, kNumSnapshotSections> sorted = h.sections;
  std::sort(sorted.begin(), sorted.end(),
            [](const ParsedHeader::Section& a, const ParsedHeader::Section& b) {
              return a.offset < b.offset;
            });
  uint64_t prev_end = kBinarySnapshotHeaderSize;
  for (const auto& s : sorted) {
    if (s.size == 0) continue;  // empty sections cannot alias anything
    if (s.offset < prev_end) return bad("overlapping sections");
    prev_end = s.offset + s.size;  // in-bounds per the checks above
  }
  return h;
}

/// Wires a validated header + backing bytes into a snapshot.
KgSnapshot Assemble(const ParsedHeader& h, std::string_view data,
                    std::shared_ptr<const void> backing) {
  KgSnapshot::RawParts parts;
  parts.num_nodes = h.num_nodes;
  parts.num_predicates = h.num_predicates;
  parts.num_triples = h.num_triples;
  parts.fingerprint = h.fingerprint;
  parts.schema_version = h.schema_version;
  for (size_t i = 0; i < kNumSnapshotSections; ++i) {
    parts.sections[i] = data.substr(h.sections[i].offset, h.sections[i].size);
  }
  return KgSnapshot::FromRawParts(parts, std::move(backing));
}

Result<KgSnapshot> ParseBinary(std::string_view data, BinaryVerify verify,
                               std::shared_ptr<const void> backing) {
  KG_ASSIGN_OR_RETURN(const ParsedHeader h, ValidateHeader(data));
  if (verify == BinaryVerify::kChecksum &&
      Checksum32(data.substr(kBinarySnapshotHeaderSize)) !=
          h.payload_checksum) {
    return Status::InvalidArgument("binary snapshot: payload checksum mismatch");
  }
  return Assemble(h, data, std::move(backing));
}

/// An mmap'd file region released with the last snapshot view into it.
struct Mapping {
  void* base = nullptr;
  size_t size = 0;

  ~Mapping() {
    if (base != nullptr) ::munmap(base, size);
  }
};

}  // namespace

std::string SerializeSnapshotBinary(const KgSnapshot& snapshot) {
  const auto sections = snapshot.SectionBytes();

  // Lay out the payload: sections in enum order, each 8-aligned.
  std::array<uint64_t, kNumSnapshotSections> offsets{};
  uint64_t at = kBinarySnapshotHeaderSize;
  for (size_t i = 0; i < kNumSnapshotSections; ++i) {
    at = (at + 7) & ~uint64_t{7};
    offsets[i] = at;
    at += sections[i].size();
  }

  std::string payload;
  payload.reserve(at - kBinarySnapshotHeaderSize);
  for (size_t i = 0; i < kNumSnapshotSections; ++i) {
    payload.append(
        offsets[i] - kBinarySnapshotHeaderSize - payload.size(), '\0');
    payload.append(sections[i]);
  }

  std::string out;
  out.reserve(kBinarySnapshotHeaderSize + payload.size());
  out.append(kBinarySnapshotMagic, 8);
  AppendU32(&out, kBinarySnapshotContainerVersion);
  AppendU32(&out, snapshot.schema_version());
  AppendU64(&out, snapshot.num_nodes());
  AppendU64(&out, snapshot.num_predicates());
  AppendU64(&out, snapshot.num_triples());
  AppendU64(&out, snapshot.Fingerprint());
  for (size_t i = 0; i < kNumSnapshotSections; ++i) {
    AppendU64(&out, offsets[i]);
    AppendU64(&out, sections[i].size());
  }
  AppendU32(&out, Checksum32(payload));
  AppendU32(&out, Checksum32(out));  // header checksum over all bytes so far
  out.append(payload);
  return out;
}

Result<KgSnapshot> DeserializeSnapshotBinary(std::string_view data,
                                             BinaryVerify verify) {
  // Copy into an 8-aligned heap buffer: the u32/u64 section views cast
  // to typed pointers, and a std::string caller buffer guarantees no
  // alignment. uint64_t allocation alignment covers every section type.
  const size_t words = (data.size() + 7) / 8;
  auto buf = std::make_shared<std::vector<uint64_t>>(words, 0);
  if (!data.empty()) {  // empty vector data() may be null; memcpy is nonnull
    std::memcpy(buf->data(), data.data(), data.size());
  }
  const std::string_view aligned(reinterpret_cast<const char*>(buf->data()),
                                 data.size());
  return ParseBinary(aligned, verify, std::move(buf));
}

Status SaveSnapshotBinary(const KgSnapshot& snapshot,
                          const std::string& path) {
  const std::string bytes = SerializeSnapshotBinary(snapshot);
  // mkstemp: concurrent saves to the same path must not stomp each
  // other's in-flight temp file (last rename still wins, atomically).
  std::string tmp = path + ".tmp.XXXXXX";
  const int fd = ::mkstemp(tmp.data());
  if (fd < 0) return Status::IoError("cannot create temp file for " + path);
  Status status = Status::OK();
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      status = Status::IoError("write failed: " + tmp);
      break;
    }
    written += static_cast<size_t>(n);
  }
  // Durability before visibility: the bytes must be on stable storage
  // before rename publishes them under the final name, or a crash right
  // after the rename could leave an empty/partial file at `path`.
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IoError("fsync failed: " + tmp);
  }
  ::close(fd);
  if (status.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::IoError("rename failed: " + path);
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  // Best-effort fsync of the directory so the rename itself survives a
  // crash; some filesystems refuse directory fsync, which is fine.
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

Result<KgSnapshot> LoadSnapshotBinary(const std::string& path,
                                      BinaryVerify verify) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IoError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::InvalidArgument("binary snapshot: empty file");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (base == MAP_FAILED) return Status::IoError("mmap failed: " + path);
  auto mapping = std::make_shared<Mapping>();
  mapping->base = base;
  mapping->size = size;
  // Page alignment of the mapping base satisfies every section's
  // alignment; section offsets were checked relative to it.
  return ParseBinary(
      std::string_view(static_cast<const char*>(base), size), verify,
      std::move(mapping));
}

}  // namespace kg::serve
