#ifndef KGRAPH_SERVE_SNAPSHOT_H_
#define KGRAPH_SERVE_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "graph/knowledge_graph.h"

namespace kg::serve {

/// Dense node handle inside one snapshot. Assigned by sorting the live
/// vocabulary by (kind, name), so equal knowledge always compiles to equal
/// ids regardless of how the source KnowledgeGraph was built.
using NodeId = uint32_t;
/// Dense predicate handle, assigned by sorted name.
using PredicateId = uint32_t;

inline constexpr NodeId kInvalidNode = graph::kInvalidNode;

/// Schema generation of the snapshot format this build compiles and
/// serves. A snapshot stamped with a *newer* generation (a replica fed
/// by an upgraded builder, a file from a future version) must be
/// refused with kUnavailable — never misread — by both the in-process
/// engine (QueryEngine::TryExecute) and the RPC handshake.
inline constexpr uint32_t kSnapshotSchemaVersion = 1;

/// An immutable, read-optimized compilation of a KnowledgeGraph: the live
/// triple set re-interned into dense sorted ids with CSR-style adjacency in
/// the three access orders the serving queries need —
///   SPO (per subject, sorted by predicate then object),
///   POS (per predicate, sorted by object then subject),
///   OSP (per object,  sorted by predicate then subject).
/// Lookups are a binary search inside one contiguous span (O(log degree +
/// answer)), against the builder KG's hash-map-of-vectors scans. Tombstoned
/// triples and nodes/predicates that appear only in tombstones are compiled
/// out, so the snapshot — including `Fingerprint()` — is a pure function of
/// the asserted knowledge.
///
/// Thread-safe for concurrent readers (it never mutates after Compile).
class KgSnapshot {
 public:
  /// One adjacency entry; field meaning depends on the index it lives in.
  struct Edge {
    uint32_t first = 0;
    uint32_t second = 0;

    friend bool operator==(const Edge&, const Edge&) = default;
  };

  /// Compiles the live triples of `kg`. O(V log V + T log T).
  static KgSnapshot Compile(const graph::KnowledgeGraph& kg);

  // --- Vocabulary -------------------------------------------------------

  size_t num_nodes() const { return node_names_.size(); }
  size_t num_predicates() const { return predicate_names_.size(); }
  size_t num_triples() const { return spo_.size(); }

  /// Looks up a node by (name, kind); NotFound when the pair never occurs
  /// in a live triple.
  Result<NodeId> FindNode(std::string_view name,
                          graph::NodeKind kind) const;
  Result<PredicateId> FindPredicate(std::string_view name) const;

  const std::string& NodeName(NodeId id) const { return node_names_[id]; }
  graph::NodeKind NodeKindOf(NodeId id) const { return node_kinds_[id]; }
  const std::string& PredicateName(PredicateId id) const {
    return predicate_names_[id];
  }

  // --- Indexed access ---------------------------------------------------

  /// Out-edges of `s`: Edge{predicate, object}, sorted (p, o).
  std::span<const Edge> OutEdges(NodeId s) const;

  /// In-edges of `o`: Edge{predicate, subject}, sorted (p, s).
  std::span<const Edge> InEdges(NodeId o) const;

  /// All assertions of `p`: Edge{object, subject}, sorted (o, s).
  std::span<const Edge> PredicateEdges(PredicateId p) const;

  /// The (s, p, *) slice of the SPO index: the contiguous out-edges of `s`
  /// whose predicate is `p` (Edge{predicate, object}, objects ascending).
  /// Zero-copy — this is the raw O(log deg(s)) index read the serving
  /// latency claim is about.
  std::span<const Edge> ObjectEdges(NodeId s, PredicateId p) const;

  /// Objects o with (s, p, o), ascending. O(log deg(s) + |answer|).
  std::vector<NodeId> Objects(NodeId s, PredicateId p) const;

  /// Subjects s with (s, p, o), ascending. O(log deg(p) + |answer|).
  std::vector<NodeId> Subjects(PredicateId p, NodeId o) const;

  bool HasTriple(NodeId s, PredicateId p, NodeId o) const;

  size_t OutDegree(NodeId s) const { return OutEdges(s).size(); }
  size_t InDegree(NodeId o) const { return InEdges(o).size(); }

  /// FNV-1a over the sorted vocabulary and triple list; stable across
  /// platforms, runs, and source-KG insertion orders. Two snapshots with
  /// equal fingerprints serve identical answers.
  uint64_t Fingerprint() const { return fingerprint_; }

  /// Schema generation this snapshot claims to be encoded in. Compile()
  /// stamps the build's own kSnapshotSchemaVersion.
  uint32_t schema_version() const { return schema_version_; }

  /// Re-stamps the claimed schema generation. This models receiving a
  /// snapshot from a newer builder (replication, forward-compat tests);
  /// engines must refuse to serve it when the stamp is newer than they
  /// understand.
  void OverrideSchemaVersion(uint32_t version) { schema_version_ = version; }

 private:
  friend Result<KgSnapshot> DeserializeSnapshot(const std::string& data);

  /// Rebuilds the CSR indexes and fingerprint from the vocabulary tables
  /// and `triples` (s, p, o), which must reference valid ids. Shared by
  /// Compile and DeserializeSnapshot.
  void BuildIndexes(std::vector<std::array<uint32_t, 3>> triples);

  /// Flat open-addressing name index: a power-of-two slot array at <= 50%
  /// load, probed linearly. Each slot stores (hash, id + 1) — second == 0
  /// marks an empty slot — so a by-name probe scans one contiguous run of
  /// slots, short-circuits on the 64-bit hash, and dereferences the actual
  /// name at most once. This keeps the resolution step of every by-name
  /// request to a couple of cache lines, where a chained hash map costs a
  /// bucket pointer chase per probe.
  struct NameIndex {
    std::vector<std::pair<uint64_t, uint32_t>> slots;
    uint64_t mask = 0;

    /// Sizes the table for `n` entries and clears it.
    void Reserve(size_t n);
    /// Inserts a name that is not already present (snapshot vocabularies
    /// are unique per table).
    void Insert(std::string_view name, uint32_t id);
    /// Returns the id inserted under `name`, or UINT32_MAX when absent.
    /// `name_of` maps a candidate id back to its name for the final
    /// equality check on hash match.
    template <typename NameOf>
    uint32_t Find(std::string_view name, NameOf&& name_of) const {
      if (slots.empty()) return UINT32_MAX;
      const uint64_t h = Fnv1a64(name);
      for (uint64_t slot = h & mask;; slot = (slot + 1) & mask) {
        const auto& [slot_hash, slot_id] = slots[slot];
        if (slot_id == 0) return UINT32_MAX;
        if (slot_hash == h && name_of(slot_id - 1) == name) {
          return slot_id - 1;
        }
      }
    }
  };

  std::vector<std::string> node_names_;
  std::vector<graph::NodeKind> node_kinds_;
  std::vector<std::string> predicate_names_;
  std::array<NameIndex, 3> node_index_;  ///< One table per NodeKind.
  NameIndex predicate_index_;

  // CSR: offsets_[i]..offsets_[i+1] delimit row i of the entry array.
  std::vector<uint32_t> spo_offsets_;
  std::vector<Edge> spo_;
  std::vector<uint32_t> pos_offsets_;
  std::vector<Edge> pos_;
  std::vector<uint32_t> osp_offsets_;
  std::vector<Edge> osp_;

  uint64_t fingerprint_ = 0;
  uint32_t schema_version_ = kSnapshotSchemaVersion;
};

/// Serializes a snapshot to a versioned TSV text format (vocabulary in id
/// order, then triples as id tuples). Deterministic: equal snapshots
/// serialize byte-identically.
std::string SerializeSnapshot(const KgSnapshot& snapshot);

/// Parses `SerializeSnapshot` output; rejects malformed or out-of-range
/// input with a descriptive status. Round-trips bit-identically
/// (fingerprint, vocabulary, and adjacency all preserved).
Result<KgSnapshot> DeserializeSnapshot(const std::string& data);

/// File convenience wrappers.
Status SaveSnapshot(const KgSnapshot& snapshot, const std::string& path);
Result<KgSnapshot> LoadSnapshot(const std::string& path);

}  // namespace kg::serve

#endif  // KGRAPH_SERVE_SNAPSHOT_H_
