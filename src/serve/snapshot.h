#ifndef KGRAPH_SERVE_SNAPSHOT_H_
#define KGRAPH_SERVE_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "graph/knowledge_graph.h"
#include "serve/varint.h"

namespace kg::obs {
class MetricsRegistry;
}  // namespace kg::obs

namespace kg::serve {

/// Dense node handle inside one snapshot. Assigned by sorting the live
/// vocabulary by (kind, name), so equal knowledge always compiles to equal
/// ids regardless of how the source KnowledgeGraph was built.
using NodeId = uint32_t;
/// Dense predicate handle, assigned by sorted name.
using PredicateId = uint32_t;

inline constexpr NodeId kInvalidNode = graph::kInvalidNode;

/// Schema generation of the snapshot format this build compiles and
/// serves. A snapshot stamped with a *newer* generation (a replica fed
/// by an upgraded builder, a file from a future version) must be
/// refused with kUnavailable — never misread — by both the in-process
/// engine (QueryEngine::TryExecute) and the RPC handshake.
inline constexpr uint32_t kSnapshotSchemaVersion = 1;

/// The sections of a compiled snapshot, in the order they appear in the
/// binary file format (DESIGN.md §15). Exposed so the binary save/load
/// path, the footprint accounting, and the fuzz tests all agree on one
/// enumeration.
enum SnapshotSection : size_t {
  kSectionNodeKinds = 0,     ///< uint8_t[num_nodes]
  kSectionNodeNameOffsets,   ///< uint32_t[num_nodes + 1] into node arena
  kSectionNodeArena,         ///< concatenated node names, id order
  kSectionPredNameOffsets,   ///< uint32_t[num_predicates + 1]
  kSectionPredArena,         ///< concatenated predicate names, id order
  kSectionSpoOffsets,        ///< uint64_t[num_nodes + 1] into SPO bytes
  kSectionSpoBytes,          ///< varint edge rows, Edge{predicate, object}
  kSectionPosOffsets,        ///< uint64_t[num_predicates + 1]
  kSectionPosBytes,          ///< varint edge rows, Edge{object, subject}
  kSectionOspOffsets,        ///< uint64_t[num_nodes + 1]
  kSectionOspBytes,          ///< varint edge rows, Edge{predicate, subject}
  kSectionNodeIndexEntity,   ///< IndexSlot[power of two], kEntity names
  kSectionNodeIndexText,     ///< IndexSlot[power of two], kText names
  kSectionNodeIndexClass,    ///< IndexSlot[power of two], kClass names
  kSectionPredIndex,         ///< IndexSlot[power of two], predicate names
  kNumSnapshotSections,
};

/// One slot of a persisted flat open-addressing name index: the 64-bit
/// FNV-1a of the name, then the owning id + 1 (0 marks an empty slot).
/// Fixed 16-byte layout so the table can live in the mmap'd file.
struct SnapshotIndexSlot {
  uint64_t hash = 0;
  uint32_t id_plus_1 = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(SnapshotIndexSlot) == 16);

/// An immutable, read-optimized compilation of a KnowledgeGraph: the live
/// triple set re-interned into dense sorted ids with CSR-style adjacency in
/// the three access orders the serving queries need —
///   SPO (per subject, sorted by predicate then object),
///   POS (per predicate, sorted by object then subject),
///   OSP (per object,  sorted by predicate then subject).
/// Tombstoned triples and nodes/predicates that appear only in tombstones
/// are compiled out, so the snapshot — including `Fingerprint()` — is a
/// pure function of the asserted knowledge.
///
/// Representation (built for 10M+ node worlds): names live in one string
/// arena addressed by offset (no per-name allocation), and each CSR row is
/// a count-prefixed delta-varint byte string (see AppendEdgeRow), decoded
/// on the fly by EdgeRange. The whole object is a set of views over one
/// backing allocation — either heap storage produced by SnapshotBuilder or
/// an mmap'd snapshot file — so copies are shallow and loads stay
/// O(pages touched).
///
/// Thread-safe for concurrent readers (it never mutates after build).
class KgSnapshot {
 public:
  /// One adjacency entry; field meaning depends on the index it lives in.
  struct Edge {
    uint32_t first = 0;
    uint32_t second = 0;

    friend bool operator==(const Edge&, const Edge&) = default;
  };

  /// A lazily decoded CSR row: forward-iterable, yields Edge in sorted
  /// (first, second) order. Decoding is bounds-clamped — malformed bytes
  /// end the range early rather than reading out of the row.
  class EdgeRange {
   public:
    class iterator {
     public:
      using iterator_category = std::input_iterator_tag;
      using value_type = Edge;
      using difference_type = std::ptrdiff_t;
      using pointer = const Edge*;
      using reference = const Edge&;

      iterator() = default;
      iterator(const uint8_t* p, const uint8_t* end, uint64_t count)
          : p_(p), end_(end), left_(count) {
        Advance();
      }

      reference operator*() const { return cur_; }
      pointer operator->() const { return &cur_; }
      iterator& operator++() {
        Advance();
        return *this;
      }
      iterator operator++(int) {
        iterator copy = *this;
        Advance();
        return copy;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.avail_ == b.avail_ && (!a.avail_ || a.p_ == b.p_);
      }

     private:
      void Advance();

      const uint8_t* p_ = nullptr;
      const uint8_t* end_ = nullptr;
      uint64_t left_ = 0;  ///< entries not yet decoded
      bool avail_ = false;
      Edge cur_{};
    };

    EdgeRange() = default;
    /// Wraps one encoded row (empty bytes == empty row). Clamps a hostile
    /// count to what the payload could physically hold (>= 2 bytes/edge).
    EdgeRange(const uint8_t* begin, const uint8_t* end);

    iterator begin() const { return iterator(payload_, end_, count_); }
    iterator end() const { return iterator(); }
    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

   private:
    const uint8_t* payload_ = nullptr;
    const uint8_t* end_ = nullptr;
    uint64_t count_ = 0;
  };

  KgSnapshot() = default;

  /// Compiles the live triples of `kg`. O(V log V + T log T).
  static KgSnapshot Compile(const graph::KnowledgeGraph& kg);

  // --- Vocabulary -------------------------------------------------------

  size_t num_nodes() const { return num_nodes_; }
  size_t num_predicates() const { return num_predicates_; }
  size_t num_triples() const { return num_triples_; }

  /// Looks up a node by (name, kind); NotFound when the pair never occurs
  /// in a live triple.
  Result<NodeId> FindNode(std::string_view name,
                          graph::NodeKind kind) const;
  Result<PredicateId> FindPredicate(std::string_view name) const;

  /// The name bytes of `id`, viewing into the snapshot's arena. Valid as
  /// long as the snapshot (or any copy of it) is alive. Out-of-range ids
  /// (possible when corrupt postings are served under BinaryVerify::
  /// kHeader) yield an empty name, never an out-of-bounds read.
  std::string_view NodeName(NodeId id) const {
    if (id >= num_nodes_) return {};
    return ArenaSlice(node_name_offsets_, node_arena_, node_arena_size_,
                      id);
  }
  graph::NodeKind NodeKindOf(NodeId id) const {
    if (id >= num_nodes_) return graph::NodeKind::kEntity;
    return static_cast<graph::NodeKind>(node_kinds_[id] <= 2
                                            ? node_kinds_[id]
                                            : 0);
  }
  std::string_view PredicateName(PredicateId id) const {
    if (id >= num_predicates_) return {};
    return ArenaSlice(pred_name_offsets_, pred_arena_, pred_arena_size_,
                      id);
  }

  // --- Indexed access ---------------------------------------------------
  // Out-of-range row ids yield an empty range rather than aborting:
  // corrupt postings served under BinaryVerify::kHeader can put any
  // uint32 into an Edge, and query paths (BFS expansion, merged reads)
  // feed decoded ids straight back into these accessors.

  /// Out-edges of `s`: Edge{predicate, object}, sorted (p, o).
  EdgeRange OutEdges(NodeId s) const;

  /// In-edges of `o`: Edge{predicate, subject}, sorted (p, s).
  EdgeRange InEdges(NodeId o) const;

  /// All assertions of `p`: Edge{object, subject}, sorted (o, s).
  EdgeRange PredicateEdges(PredicateId p) const;

  /// Objects o with (s, p, o), ascending. One pass over row s with early
  /// exit past predicate p: O(deg(s)) worst case, O(prefix) typical.
  std::vector<NodeId> Objects(NodeId s, PredicateId p) const;

  /// |Objects(s, p)| without materializing the vector.
  size_t CountObjects(NodeId s, PredicateId p) const;

  /// Subjects s with (s, p, o), ascending.
  std::vector<NodeId> Subjects(PredicateId p, NodeId o) const;

  bool HasTriple(NodeId s, PredicateId p, NodeId o) const;

  size_t OutDegree(NodeId s) const { return OutEdges(s).size(); }
  size_t InDegree(NodeId o) const { return InEdges(o).size(); }

  /// FNV-1a over the sorted vocabulary and triple list; stable across
  /// platforms, runs, and source-KG insertion orders. Two snapshots with
  /// equal fingerprints serve identical answers.
  uint64_t Fingerprint() const { return fingerprint_; }

  /// Schema generation this snapshot claims to be encoded in. Compile()
  /// stamps the build's own kSnapshotSchemaVersion.
  uint32_t schema_version() const { return schema_version_; }

  /// Re-stamps the claimed schema generation. This models receiving a
  /// snapshot from a newer builder (replication, forward-compat tests);
  /// engines must refuse to serve it when the stamp is newer than they
  /// understand.
  void OverrideSchemaVersion(uint32_t version) { schema_version_ = version; }

  // --- Introspection ----------------------------------------------------

  /// Resident size of the compiled representation, by component.
  struct Footprint {
    uint64_t kind_bytes = 0;      ///< node kind array
    uint64_t arena_bytes = 0;     ///< node + predicate name bytes
    uint64_t offset_bytes = 0;    ///< name-offset + CSR-offset arrays
    uint64_t posting_bytes = 0;   ///< varint edge rows, all three orders
    uint64_t index_bytes = 0;     ///< name index slot arrays

    uint64_t total() const {
      return kind_bytes + arena_bytes + offset_bytes + posting_bytes +
             index_bytes;
    }
  };
  Footprint MemoryFootprint() const;

  /// Raw bytes of every section in SnapshotSection order; zero-copy views
  /// into this snapshot. The binary serializer writes exactly these.
  std::array<std::string_view, kNumSnapshotSections> SectionBytes() const;

  /// Internal-format entry point used by SnapshotBuilder and the binary
  /// loader: assembles a snapshot whose views point into `sections`
  /// (which must outlive the snapshot via `backing` and satisfy the
  /// alignment of their element types). Callers are responsible for the
  /// structural validity of the bytes; the accessors above only promise
  /// memory safety (bounds clamping), not correct answers, for byte
  /// soup.
  struct RawParts {
    uint64_t num_nodes = 0;
    uint64_t num_predicates = 0;
    uint64_t num_triples = 0;
    uint64_t fingerprint = 0;
    uint32_t schema_version = kSnapshotSchemaVersion;
    std::array<std::string_view, kNumSnapshotSections> sections;
  };
  static KgSnapshot FromRawParts(const RawParts& parts,
                                 std::shared_ptr<const void> backing);

 private:
  friend class SnapshotBuilder;

  /// A persisted flat open-addressing name index (power-of-two slots,
  /// linear probing, <= 50% load when built). Probes are capped at the
  /// slot count so corrupt tables terminate.
  struct IndexView {
    const SnapshotIndexSlot* slots = nullptr;
    uint64_t mask = 0;  ///< slot count - 1; slots == nullptr when empty

    template <typename NameOf>
    uint32_t Find(std::string_view name, uint32_t id_limit,
                  NameOf&& name_of) const {
      if (slots == nullptr) return UINT32_MAX;
      const uint64_t h = Fnv1a64(name);
      for (uint64_t probe = 0, slot = h & mask; probe <= mask;
           ++probe, slot = (slot + 1) & mask) {
        const SnapshotIndexSlot& s = slots[slot];
        if (s.id_plus_1 == 0) return UINT32_MAX;
        if (s.hash == h) {
          const uint32_t id = s.id_plus_1 - 1;
          if (id < id_limit && name_of(id) == name) return id;
        }
      }
      return UINT32_MAX;  // corrupt over-full table: every slot probed
    }
  };

  /// One CSR order: row i's encoded bytes are bytes[offsets[i],
  /// offsets[i+1]).
  struct CsrView {
    const uint64_t* offsets = nullptr;  ///< rows + 1 entries
    const uint8_t* bytes = nullptr;
    uint64_t byte_size = 0;
  };

  static std::string_view ArenaSlice(const uint32_t* offsets,
                                     const char* arena, uint64_t arena_size,
                                     uint32_t id) {
    uint64_t b = offsets[id], e = offsets[id + 1];
    if (b > arena_size) b = arena_size;
    if (e > arena_size) e = arena_size;
    if (e < b) e = b;
    return {arena + b, static_cast<size_t>(e - b)};
  }

  EdgeRange Row(const CsrView& csr, uint64_t row) const;

  uint64_t num_nodes_ = 0;
  uint64_t num_predicates_ = 0;
  uint64_t num_triples_ = 0;

  const uint8_t* node_kinds_ = nullptr;
  const uint32_t* node_name_offsets_ = nullptr;
  const char* node_arena_ = nullptr;
  uint64_t node_arena_size_ = 0;
  const uint32_t* pred_name_offsets_ = nullptr;
  const char* pred_arena_ = nullptr;
  uint64_t pred_arena_size_ = 0;

  CsrView spo_{};
  CsrView pos_{};
  CsrView osp_{};

  std::array<IndexView, 3> node_index_{};  ///< One table per NodeKind.
  IndexView predicate_index_{};

  uint64_t fingerprint_ = 0;
  uint32_t schema_version_ = kSnapshotSchemaVersion;

  /// Owns whatever the views point into (heap storage or an mmap).
  std::shared_ptr<const void> backing_;
};

/// Appends the encoding of one CSR row to `out`: varint(edge count), then
/// per edge varint(first - prev.first) followed by varint(second -
/// prev.second) when the first delta is zero, else varint(second).
/// Precondition: `edges` sorted by (first, second). An empty row encodes
/// to zero bytes.
void AppendEdgeRow(std::string* out,
                   const std::vector<KgSnapshot::Edge>& edges);

/// Decodes a full row back to a vector (test/verify helper — the serving
/// path iterates EdgeRange instead). Strict: returns false on malformed
/// bytes, a count mismatch, unsorted edges, or trailing garbage.
bool DecodeEdgeRow(std::string_view bytes,
                   std::vector<KgSnapshot::Edge>* out);

/// Streams a snapshot together without materializing a KnowledgeGraph:
/// feed the vocabulary in dense-id order, then Build() with a triple
/// stream. Peak transient memory is O(vocab + 8 bytes * max per-order
/// postings), independent of how the triples are produced.
class SnapshotBuilder {
 public:
  using TripleSink = std::function<void(uint32_t s, uint32_t p, uint32_t o)>;
  using TripleStream = std::function<void(const TripleSink&)>;

  SnapshotBuilder();

  /// Phase 1: vocabulary, in the exact dense-id order the triples will
  /// reference. For canonical (Compile-equal) snapshots that order is
  /// (kind, name)-sorted nodes and name-sorted predicates.
  void AddNode(std::string_view name, graph::NodeKind kind);
  void AddPredicate(std::string_view name);

  /// Phase 2: `stream` must invoke the sink once per triple, sorted by
  /// (s, p, o) (duplicates allowed), and must replay the identical
  /// sequence each time it is called — Build calls it up to three times,
  /// once per CSR order. Returns InvalidArgument on out-of-range ids,
  /// ordering violations, or a vocabulary whose name arena would exceed
  /// the 32-bit offset space of the snapshot format.
  Result<KgSnapshot> Build(const TripleStream& stream);

 private:
  struct Storage;
  std::shared_ptr<Storage> storage_;
  bool built_ = false;
};

/// Serializes a snapshot to a versioned TSV text format (vocabulary in id
/// order, then triples as id tuples). Deterministic: equal snapshots
/// serialize byte-identically.
std::string SerializeSnapshot(const KgSnapshot& snapshot);

/// Parses `SerializeSnapshot` output; rejects malformed or out-of-range
/// input with a descriptive status. Round-trips bit-identically
/// (fingerprint, vocabulary, and adjacency all preserved). Header counts
/// are bounds-checked against the physical input size before any
/// allocation, so hostile headers cannot drive huge reserves.
Result<KgSnapshot> DeserializeSnapshot(const std::string& data);

/// File convenience wrappers.
Status SaveSnapshot(const KgSnapshot& snapshot, const std::string& path);
Result<KgSnapshot> LoadSnapshot(const std::string& path);

/// Recomputes the canonical FNV-1a fingerprint from the snapshot's
/// vocabulary and SPO walk (the same function Compile evaluates). Used by
/// the binary loader's verify mode and the property tests; O(content).
uint64_t RecomputeFingerprint(const KgSnapshot& snapshot);

/// Publishes the component byte sizes of `snapshot` (MemoryFootprint plus
/// node/triple counts) as `serve.snapshot.*` gauges. No-op when
/// `registry` is null.
void PublishSnapshotFootprint(const KgSnapshot& snapshot,
                              obs::MetricsRegistry* registry);

}  // namespace kg::serve

#endif  // KGRAPH_SERVE_SNAPSHOT_H_
