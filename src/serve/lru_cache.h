#ifndef KGRAPH_SERVE_LRU_CACHE_H_
#define KGRAPH_SERVE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace kg::serve {

/// A sharded LRU result cache for the query path. Keys are canonical query
/// strings (`Query::CacheKey`), values are rendered result rows. Each key
/// maps to one shard by a stable FNV-1a hash — the mapping never depends on
/// thread count or insertion order — and each shard is an independently
/// mutexed LRU list, so concurrent readers only contend when they collide
/// on a shard.
///
/// The cache is transparent by contract: it may only change *when* a result
/// is computed, never *what* it is. `bench_serve` and
/// `serve_property_test` enforce cached == uncached on every replay.
///
/// Counters (hits/misses/evictions/inserts) are updated under the shard
/// lock, so their totals are exact even under concurrency.
class ShardedLruCache {
 public:
  using Value = std::vector<std::string>;

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts = 0;
    /// Entries dropped by Erase/InvalidateShard (explicit invalidation),
    /// counted separately from capacity-driven evictions.
    uint64_t invalidations = 0;

    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  /// A cache holding at most `capacity` entries across `num_shards`
  /// shards (clamped so every shard holds at least one entry; a
  /// `capacity` of 0 disables storage — every Get misses, Put is a
  /// no-op). Capacity is split exactly: shard i holds
  /// capacity/num_shards (+1 for the first capacity%num_shards shards).
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// On hit, copies the value into `*out` (may be null to just probe),
  /// refreshes the entry's recency, and counts a hit; else counts a miss.
  bool Get(const std::string& key, Value* out);

  /// Inserts or refreshes `key`, evicting the shard's least-recently-used
  /// entry when the shard is full. Re-putting an existing key updates the
  /// value and recency without counting an insert.
  void Put(const std::string& key, Value value);

  /// Drops `key` if present; returns whether an entry was dropped.
  /// The exact-key invalidation the versioned store uses when a
  /// mutation changes one query's answer.
  bool Erase(const std::string& key);

  /// Drops every entry of one shard (0 <= shard < num_shards) and
  /// returns how many were dropped. Compaction's coarse invalidation:
  /// only the shards whose keys a folded mutation could touch are
  /// flushed, the rest keep serving hits.
  size_t InvalidateShard(size_t shard);

  /// Live entries across all shards.
  size_t size() const;

  /// Drops all entries; counters are preserved (use `ResetCounters`).
  void Clear();

  void ResetCounters();

  /// Exact totals summed across shards.
  Counters counters() const;

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

  /// The shard `key` maps to — a pure function of the key bytes.
  size_t ShardOf(const std::string& key) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    size_t capacity = 0;
    // Front = most recently used.
    std::list<std::pair<std::string, Value>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, Value>>::iterator>
        index;
    Counters counters;
  };

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace kg::serve

#endif  // KGRAPH_SERVE_LRU_CACHE_H_
