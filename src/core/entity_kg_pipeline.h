#ifndef KGRAPH_CORE_ENTITY_KG_PIPELINE_H_
#define KGRAPH_CORE_ENTITY_KG_PIPELINE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/exec_policy.h"
#include "common/fault.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/stage_timer.h"
#include "core/conversions.h"
#include "graph/knowledge_graph.h"
#include "integrate/fusion.h"
#include "obs/trace.h"
#include "integrate/linkage.h"
#include "synth/structured_source.h"

namespace kg::core {

/// Per-source ingestion report (the rows of the E13 experiment).
struct SourceIngestReport {
  std::string source;
  size_t records = 0;
  size_t linked = 0;        ///< Records merged into existing entities.
  size_t new_entities = 0;  ///< Records that created entities.
  double linkage_precision = 0.0;  ///< Vs hidden truth (when known).
  double linkage_recall = 0.0;
  size_t kg_entities_after = 0;
  size_t kg_triples_after = 0;
};

/// Figure 4a as a runnable pipeline: knowledge transformation of an
/// anchor source, then per-source knowledge integration — schema
/// alignment (manual mapping), RF entity linkage trained on a bounded
/// label budget, and value fusion (vote or ACCU) at the end.
class EntityKgBuilder {
 public:
  struct Options {
    /// Human labels spent training the linker per ingested source.
    size_t linkage_label_budget = 1500;
    double linkage_threshold = 0.6;
    ml::ForestOptions forest;
    bool use_accu_fusion = true;
    /// Sharding of the hot loops (candidate pairing, featurization, RF
    /// scoring, claim staging). Output is bit-identical for any thread
    /// count. When parallel and `forest.num_threads` is 1, tree training
    /// inherits `exec.num_threads`.
    ExecPolicy exec;
    /// Optional per-stage wall-time/throughput registry (not owned).
    StageTimer* metrics = nullptr;
    /// Optional structured tracer (not owned). Each ingest/fuse call
    /// records a root span with per-stage children; span ids are pure
    /// functions of (tracer seed, span path), so seeded builds replay
    /// identical trace structure at any thread count.
    obs::Tracer* tracer = nullptr;
    /// Optional chaos profile applied to every ingested source (not
    /// owned). Null skips the fault layer entirely; a plan with all
    /// rates zero runs the layer but leaves output bit-identical to the
    /// null case. Faulting callers must use the `Try*` entry points.
    const FaultPlan* faults = nullptr;
    /// Retry/backoff/breaker/deadline policy for flaky source fetches.
    /// Jitter is drawn from `Rng::Split(hash(source))`, never wall
    /// clock, so retried runs replay bit-for-bit.
    RetryPolicy retry;
  };

  EntityKgBuilder(synth::SourceDomain domain, const Options& options);

  /// Transforms the anchor source (Wikipedia-infobox role, §2.1): every
  /// record becomes an entity. `truth` = hidden universe ids, used only
  /// for reports and the simulated labeling oracle. Requires a
  /// fault-free configuration (aborts on quarantine); faulting callers
  /// use `TryIngestAnchor`.
  void IngestAnchor(const synth::SourceTable& table, Rng& rng);

  /// Integrates a further source (§2.2): aligns its schema, trains a
  /// linker on `linkage_label_budget` oracle-labeled pairs, links records
  /// to existing entities, creates entities for the rest, and stages all
  /// values as fusion claims. Fault-free configurations only, like
  /// `IngestAnchor`.
  void IngestAndLink(const synth::SourceTable& table, Rng& rng);

  /// Fault-aware `IngestAnchor`: fetches the source through the
  /// retry/backoff/breaker layer of `Options::faults`/`Options::retry`.
  /// Returns OK when the (possibly truncated/corrupted) payload was
  /// ingested; a non-OK status means the source was quarantined — the
  /// builder stays consistent, later sources still ingest, and the
  /// outcome is recorded in `degradation()`. Graceful degradation is the
  /// caller continuing past non-OK returns.
  Status TryIngestAnchor(const synth::SourceTable& table, Rng& rng);

  /// Fault-aware `IngestAndLink` (same quarantine contract as
  /// `TryIngestAnchor`).
  Status TryIngestAndLink(const synth::SourceTable& table, Rng& rng);

  /// Resolves conflicting attribute values across sources and writes the
  /// fused triples into the KG.
  void FuseValues();

  const graph::KnowledgeGraph& kg() const { return kg_; }
  const std::vector<SourceIngestReport>& reports() const {
    return reports_;
  }

  /// Per-source fault/retry/quarantine accounting. Empty unless
  /// `Options::faults` was set (a zero-rate plan still yields one
  /// healthy row per source).
  const DegradationReport& degradation() const { return degradation_; }

  /// Fraction of fused attribute values equal to the universe truth —
  /// computable because entities carry their hidden ids. `truth_of`
  /// supplies canonical values: (universe id, attribute) -> value.
  double KgAccuracy(
      const std::map<std::pair<uint32_t, std::string>, std::string>&
          truth_of) const;

 private:
  struct EntityState {
    graph::NodeId node = 0;
    uint32_t hidden_truth = 0;  ///< Universe id (reporting only).
    integrate::Record merged;   ///< Current attribute view for linkage.
  };

  std::string NextEntityName();

  /// Runs the fault/retry layer for `table` and records a degradation
  /// row. On OK, `*payload` holds the delivered copy only when faults
  /// actually touched it (truncation/corruption); otherwise callers use
  /// the original table unchanged, keeping the zero-fault path
  /// copy-free and bit-identical.
  Status FetchSource(const synth::SourceTable& table, const Rng& rng,
                     std::optional<synth::SourceTable>* payload);

  void IngestAnchorImpl(const synth::SourceTable& table, Rng& rng);
  void IngestAndLinkImpl(const synth::SourceTable& table, Rng& rng);

  synth::SourceDomain domain_;
  Options options_;
  graph::KnowledgeGraph kg_;
  std::vector<EntityState> entities_;
  std::vector<SourceIngestReport> reports_;
  // (entity index, attribute) -> claims from sources.
  std::map<std::pair<size_t, std::string>, std::vector<integrate::Claim>>
      claims_;
  size_t entity_counter_ = 0;
  DegradationReport degradation_;
  /// One breaker per source name, persistent across re-fetches.
  std::map<std::string, CircuitBreaker> breakers_;
};

}  // namespace kg::core

#endif  // KGRAPH_CORE_ENTITY_KG_PIPELINE_H_
