#include "core/extraction_scoring.h"

#include "extract/open_extraction.h"
#include "text/tokenize.h"

namespace kg::core {

void ScoreClosedExtractions(const synth::WebPage& page,
                            const std::vector<extract::Extraction>& found,
                            ExtractionQuality* quality) {
  for (const extract::Extraction& e : found) {
    ++quality->extracted;
    auto it = page.displayed_values.find(e.attribute);
    if (it != page.displayed_values.end() &&
        text::NormalizeForMatch(it->second) ==
            text::NormalizeForMatch(e.value)) {
      ++quality->correct;
    }
  }
}

void ScoreOpenExtractions(const synth::Website& site,
                          const synth::WebPage& page,
                          const std::vector<extract::Extraction>& found,
                          ExtractionQuality* quality) {
  // Reverse the site's label map: normalized label -> canonical attr.
  std::map<std::string, std::string> label_to_attr;
  for (const auto& [attr, label] : site.attr_labels) {
    label_to_attr[extract::NormalizeOpenAttribute(label)] = attr;
  }
  const auto canonical = synth::CanonicalColumns(site.domain);
  for (const extract::Extraction& e : found) {
    ++quality->extracted;
    auto lit = label_to_attr.find(e.attribute);
    if (lit == label_to_attr.end()) continue;  // Filler row: wrong.
    auto vit = page.displayed_values.find(lit->second);
    if (vit == page.displayed_values.end()) continue;
    if (text::NormalizeForMatch(vit->second) !=
        text::NormalizeForMatch(e.value)) {
      continue;
    }
    ++quality->correct;
    // Open gain: attributes outside the canonical schema.
    bool is_canonical = false;
    for (const auto& c : canonical) {
      if (c == lit->second) {
        is_canonical = true;
        break;
      }
    }
    if (!is_canonical) ++quality->correct_open;
  }
}

}  // namespace kg::core
