#ifndef KGRAPH_CORE_TEXTRICH_KG_PIPELINE_H_
#define KGRAPH_CORE_TEXTRICH_KG_PIPELINE_H_

#include "common/exec_policy.h"
#include "common/fault.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/stage_timer.h"
#include "graph/knowledge_graph.h"
#include "obs/trace.h"
#include "synth/behavior_generator.h"
#include "synth/catalog_generator.h"
#include "textrich/taxonomy_mining.h"

namespace kg::core {

/// Figure 4b / AutoKnow-style self-driving collection, end to end.
struct TextRichBuildOptions {
  /// Products used to train the extractor (distant supervision).
  double train_fraction = 0.5;
  /// Merge structured catalog values where extraction found nothing.
  bool backfill_from_catalog = true;
  bool clean = true;
  bool mine_taxonomy = true;
  /// Sharding of the per-page extraction loop (the pipeline's hot path).
  /// Page results land in index-addressed slots and are merged in page
  /// order, so the built KG is bit-identical for any thread count.
  ExecPolicy exec;
  /// Optional per-stage wall-time/throughput registry (not owned).
  StageTimer* metrics = nullptr;
  /// Optional structured tracer (not owned). The build records a
  /// "textrich.build" root with one child per stage, plus a
  /// "chunk@<begin>" child per extraction chunk (named by the chunk's
  /// begin index, so span ids stay deterministic under any schedule).
  obs::Tracer* tracer = nullptr;
  /// Optional chaos profile applied per product page (not owned). Each
  /// page is a "source" (id "page:<product id>"): its fetch retries
  /// under `retry`, and exhausted pages are quarantined — the build
  /// completes on the surviving pages. Fault decisions and jitter are
  /// pure functions of (plan seed, page id, attempt), so a faulted
  /// build is still bit-identical at any thread count.
  const FaultPlan* faults = nullptr;
  RetryPolicy retry;
};

struct TextRichBuildReport {
  size_t products = 0;
  size_t pages_quarantined = 0;
  size_t extracted_assertions = 0;
  size_t after_cleaning = 0;
  /// Value-level accuracy of assertions vs latent truth, before and
  /// after cleaning.
  double accuracy_before_cleaning = 0.0;
  double accuracy_after_cleaning = 0.0;
  size_t synonyms_added = 0;
  size_t hypernyms_mined = 0;
  size_t kg_triples = 0;
  double text_object_fraction = 0.0;
};

struct TextRichKgBuild {
  graph::KnowledgeGraph kg;
  TextRichBuildReport report;
  textrich::MinedTaxonomy mined;
  /// Per-page fault/retry/quarantine rows (page order). Empty unless
  /// `TextRichBuildOptions::faults` was set.
  DegradationReport degradation;
};

/// Runs extract -> clean -> enrich -> assemble over the product world.
/// Requires a fault-free configuration (aborts otherwise); faulting
/// callers use `TryBuildTextRichKg`.
TextRichKgBuild BuildTextRichKg(const synth::ProductCatalog& catalog,
                                const synth::BehaviorLog& behavior,
                                const TextRichBuildOptions& options,
                                Rng& rng);

/// Fault-aware build: pages whose retries/breaker/deadline are exhausted
/// are quarantined (contributing no assertions) and the build completes
/// on the surviving pages, with the losses accounted in
/// `TextRichKgBuild::degradation`. Non-OK only on internal failure,
/// never because pages degraded.
Result<TextRichKgBuild> TryBuildTextRichKg(
    const synth::ProductCatalog& catalog,
    const synth::BehaviorLog& behavior,
    const TextRichBuildOptions& options, Rng& rng);

}  // namespace kg::core

#endif  // KGRAPH_CORE_TEXTRICH_KG_PIPELINE_H_
