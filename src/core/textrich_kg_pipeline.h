#ifndef KGRAPH_CORE_TEXTRICH_KG_PIPELINE_H_
#define KGRAPH_CORE_TEXTRICH_KG_PIPELINE_H_

#include "common/exec_policy.h"
#include "common/rng.h"
#include "common/stage_timer.h"
#include "graph/knowledge_graph.h"
#include "synth/behavior_generator.h"
#include "synth/catalog_generator.h"
#include "textrich/taxonomy_mining.h"

namespace kg::core {

/// Figure 4b / AutoKnow-style self-driving collection, end to end.
struct TextRichBuildOptions {
  /// Products used to train the extractor (distant supervision).
  double train_fraction = 0.5;
  /// Merge structured catalog values where extraction found nothing.
  bool backfill_from_catalog = true;
  bool clean = true;
  bool mine_taxonomy = true;
  /// Sharding of the per-page extraction loop (the pipeline's hot path).
  /// Page results land in index-addressed slots and are merged in page
  /// order, so the built KG is bit-identical for any thread count.
  ExecPolicy exec;
  /// Optional per-stage wall-time/throughput registry (not owned).
  StageTimer* metrics = nullptr;
};

struct TextRichBuildReport {
  size_t products = 0;
  size_t extracted_assertions = 0;
  size_t after_cleaning = 0;
  /// Value-level accuracy of assertions vs latent truth, before and
  /// after cleaning.
  double accuracy_before_cleaning = 0.0;
  double accuracy_after_cleaning = 0.0;
  size_t synonyms_added = 0;
  size_t hypernyms_mined = 0;
  size_t kg_triples = 0;
  double text_object_fraction = 0.0;
};

struct TextRichKgBuild {
  graph::KnowledgeGraph kg;
  TextRichBuildReport report;
  textrich::MinedTaxonomy mined;
};

/// Runs extract -> clean -> enrich -> assemble over the product world.
TextRichKgBuild BuildTextRichKg(const synth::ProductCatalog& catalog,
                                const synth::BehaviorLog& behavior,
                                const TextRichBuildOptions& options,
                                Rng& rng);

}  // namespace kg::core

#endif  // KGRAPH_CORE_TEXTRICH_KG_PIPELINE_H_
