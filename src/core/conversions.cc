#include "core/conversions.h"

#include "common/logging.h"

namespace kg::core {

integrate::SchemaMapping ManualMappingFor(const synth::SourceTable& table) {
  const auto canonical = synth::CanonicalColumns(table.domain);
  const auto dialect =
      synth::DialectColumns(table.domain, table.schema_dialect);
  KG_CHECK(canonical.size() == dialect.size());
  integrate::SchemaMapping mapping;
  for (size_t i = 0; i < canonical.size(); ++i) {
    mapping.source_to_canonical[dialect[i]] = canonical[i];
  }
  return mapping;
}

integrate::RecordSet ToRecordSet(const synth::SourceTable& table,
                                 const integrate::SchemaMapping& mapping,
                                 std::vector<uint32_t>* true_entities) {
  integrate::RecordSet set;
  set.source_name = table.source_name;
  if (true_entities != nullptr) true_entities->clear();
  for (const synth::SourceRecord& rec : table.records) {
    set.records.push_back(
        mapping.Apply(table.source_name, rec.local_id, rec.fields));
    if (true_entities != nullptr) {
      true_entities->push_back(rec.true_entity);
    }
  }
  return set;
}

integrate::LinkageSchema LinkageSchemaFor(synth::SourceDomain domain) {
  integrate::LinkageSchema schema;
  switch (domain) {
    case synth::SourceDomain::kPeople:
      schema.name_attrs = {"name", "known_for"};
      schema.numeric_attrs = {"birth_year"};
      schema.categorical_attrs = {"nationality"};
      schema.blocking_attrs = {"name"};
      break;
    case synth::SourceDomain::kMovies:
      schema.name_attrs = {"title", "director"};
      schema.numeric_attrs = {"release_year"};
      schema.categorical_attrs = {"genre"};
      break;
    case synth::SourceDomain::kMusic:
      schema.name_attrs = {"title", "artist"};
      schema.numeric_attrs = {"year"};
      schema.categorical_attrs = {"genre"};
      break;
  }
  return schema;
}

ml::Dataset BuildLinkagePairs(const integrate::RecordSet& a,
                              const std::vector<uint32_t>& a_truth,
                              const integrate::RecordSet& b,
                              const std::vector<uint32_t>& b_truth,
                              const integrate::LinkageSchema& schema,
                              const ExecPolicy& exec) {
  KG_CHECK(a.records.size() == a_truth.size());
  KG_CHECK(b.records.size() == b_truth.size());
  ml::Dataset data;
  data.feature_names = integrate::LinkageFeatureNames(schema);
  const auto candidates = integrate::BlockCandidates(a, b, schema, exec);
  data.examples.resize(candidates.size());
  ParallelForChunked(exec, candidates.size(),
                     [&](size_t begin, size_t end) {
                       for (size_t c = begin; c < end; ++c) {
                         const auto& [i, j] = candidates[c];
                         data.examples[c].features = integrate::PairFeatures(
                             a.records[i], b.records[j], schema);
                         data.examples[c].label =
                             a_truth[i] == b_truth[j] ? 1 : 0;
                       }
                     });
  return data;
}

}  // namespace kg::core
