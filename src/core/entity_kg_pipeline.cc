#include "core/entity_kg_pipeline.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/logging.h"

namespace kg::core {

EntityKgBuilder::EntityKgBuilder(synth::SourceDomain domain,
                                 const Options& options)
    : domain_(domain), options_(options) {}

std::string EntityKgBuilder::NextEntityName() {
  return "ent:" + std::to_string(entity_counter_++);
}

Status EntityKgBuilder::FetchSource(
    const synth::SourceTable& table, const Rng& rng,
    std::optional<synth::SourceTable>* payload) {
  if (options_.faults == nullptr) return Status::OK();
  obs::Span span =
      obs::Tracer::Start(options_.tracer, "entity.fetch_source");
  span.SetAttr("source", table.source_name);
  const FaultInjector injector(*options_.faults);
  SourceDegradation row;
  row.source = table.source_name;
  CircuitBreaker& breaker =
      breakers_
          .try_emplace(table.source_name,
                       options_.retry.breaker_failure_threshold)
          .first->second;
  const RetryOutcome outcome = RetryWithBackoff(
      options_.retry, rng.Split(Fnv1a64(table.source_name)), &breaker,
      [&](size_t attempt) {
        const FaultInjector::Attempt probe =
            injector.Probe(table.source_name, attempt);
        return AttemptResult{probe.status, probe.latency_ms};
      });
  row.attempts = outcome.attempts;
  row.retries = outcome.retries;
  row.virtual_ms = outcome.virtual_ms;
  span.SetAttr("attempts", static_cast<uint64_t>(outcome.attempts));
  span.SetAttr("quarantined", outcome.status.ok() ? "false" : "true");
  if (options_.metrics != nullptr) {
    options_.metrics->Record("entity.fetch_source",
                             outcome.virtual_ms / 1000.0,
                             outcome.attempts);
  }
  if (!outcome.status.ok()) {
    row.quarantined = true;
    row.final_status = outcome.status;
    for (const synth::SourceRecord& r : table.records) {
      row.claims_dropped += r.fields.size();
    }
    row.records_dropped = table.records.size();
    degradation_.sources.push_back(std::move(row));
    return outcome.status;
  }
  const double keep = injector.KeepFraction(table.source_name);
  const bool corrupting = injector.plan().corrupt_rate > 0.0;
  if (keep < 1.0 || corrupting) {
    synth::SourceTable delivered = table;
    if (keep < 1.0 && !delivered.records.empty()) {
      // Truncated page: the tail of the payload never arrives.
      const size_t kept = std::max<size_t>(
          1, static_cast<size_t>(std::ceil(
                 keep * static_cast<double>(delivered.records.size()))));
      for (size_t i = kept; i < delivered.records.size(); ++i) {
        row.claims_dropped += delivered.records[i].fields.size();
      }
      row.records_dropped = delivered.records.size() - kept;
      delivered.records.resize(kept);
    }
    if (corrupting) {
      for (synth::SourceRecord& record : delivered.records) {
        for (auto& [attr, value] : record.fields) {
          std::string mutated = injector.MaybeCorrupt(
              table.source_name, record.local_id + "\x01" + attr, value);
          if (mutated != value) {
            value = std::move(mutated);
            ++row.claims_corrupted;
          }
        }
      }
    }
    *payload = std::move(delivered);
  }
  degradation_.sources.push_back(std::move(row));
  return Status::OK();
}

Status EntityKgBuilder::TryIngestAnchor(const synth::SourceTable& table,
                                        Rng& rng) {
  std::optional<synth::SourceTable> payload;
  KG_RETURN_IF_ERROR(FetchSource(table, rng, &payload));
  IngestAnchorImpl(payload ? *payload : table, rng);
  return Status::OK();
}

Status EntityKgBuilder::TryIngestAndLink(const synth::SourceTable& table,
                                         Rng& rng) {
  std::optional<synth::SourceTable> payload;
  KG_RETURN_IF_ERROR(FetchSource(table, rng, &payload));
  IngestAndLinkImpl(payload ? *payload : table, rng);
  return Status::OK();
}

void EntityKgBuilder::IngestAnchor(const synth::SourceTable& table,
                                   Rng& rng) {
  KG_CHECK_OK(TryIngestAnchor(table, rng));
}

void EntityKgBuilder::IngestAndLink(const synth::SourceTable& table,
                                    Rng& rng) {
  KG_CHECK_OK(TryIngestAndLink(table, rng));
}

void EntityKgBuilder::IngestAnchorImpl(const synth::SourceTable& table,
                                       Rng& rng) {
  (void)rng;
  StageTimer::Scope stage(options_.metrics, "entity.ingest_anchor",
                          table.records.size());
  obs::Span span =
      obs::Tracer::Start(options_.tracer, "entity.ingest_anchor");
  span.SetAttr("source", table.source_name);
  span.SetAttr("records", static_cast<uint64_t>(table.records.size()));
  const auto mapping = ManualMappingFor(table);
  std::vector<uint32_t> truth;
  const auto records = ToRecordSet(table, mapping, &truth);

  SourceIngestReport report;
  report.source = table.source_name;
  report.records = records.records.size();
  for (size_t i = 0; i < records.records.size(); ++i) {
    EntityState state;
    state.hidden_truth = truth[i];
    state.merged = records.records[i];
    state.node = kg_.AddNode(NextEntityName(), graph::NodeKind::kEntity);
    const size_t entity_index = entities_.size();
    for (const auto& [attr, value] : records.records[i].attrs) {
      claims_[{entity_index, attr}].push_back(
          integrate::Claim{table.source_name, value});
    }
    entities_.push_back(std::move(state));
    ++report.new_entities;
  }
  report.kg_entities_after = entities_.size();
  report.kg_triples_after = kg_.num_triples();
  reports_.push_back(report);
}

void EntityKgBuilder::IngestAndLinkImpl(const synth::SourceTable& table,
                                        Rng& rng) {
  obs::Span span =
      obs::Tracer::Start(options_.tracer, "entity.ingest_and_link");
  span.SetAttr("source", table.source_name);
  span.SetAttr("records", static_cast<uint64_t>(table.records.size()));
  const auto mapping = ManualMappingFor(table);
  std::vector<uint32_t> truth;
  const auto records = ToRecordSet(table, mapping, &truth);
  const auto schema = LinkageSchemaFor(domain_);

  // Current-KG side of the linkage problem.
  integrate::RecordSet kg_side;
  kg_side.source_name = "kg";
  std::vector<uint32_t> kg_truth;
  for (const EntityState& e : entities_) {
    kg_side.records.push_back(e.merged);
    kg_truth.push_back(e.hidden_truth);
  }

  // Oracle-labeled training pairs within the label budget.
  ml::Dataset pool;
  {
    StageTimer::Scope stage(options_.metrics, "entity.pair_pool");
    obs::Span child = span.Child("pair_pool");
    pool = BuildLinkagePairs(records, truth, kg_side, kg_truth, schema,
                             options_.exec);
    stage.AddItems(pool.examples.size());
    child.SetAttr("pairs", static_cast<uint64_t>(pool.examples.size()));
  }
  ml::Dataset train;
  train.feature_names = pool.feature_names;
  if (!pool.examples.empty()) {
    const size_t budget =
        std::min(options_.linkage_label_budget, pool.examples.size());
    for (size_t s : rng.SampleIndices(pool.examples.size(), budget)) {
      train.examples.push_back(pool.examples[s]);
    }
    // Guarantee both classes (tiny budgets can be one-sided).
    bool has_pos = false, has_neg = false;
    for (const auto& ex : train.examples) {
      (ex.label == 1 ? has_pos : has_neg) = true;
    }
    if (!has_pos || !has_neg) {
      for (const auto& ex : pool.examples) {
        if ((ex.label == 1 && !has_pos) || (ex.label == 0 && !has_neg)) {
          train.examples.push_back(ex);
          (ex.label == 1 ? has_pos : has_neg) = true;
          if (has_pos && has_neg) break;
        }
      }
    }
  }

  SourceIngestReport report;
  report.source = table.source_name;
  report.records = records.records.size();

  std::vector<int> linked_to(records.records.size(), -1);
  if (!train.examples.empty()) {
    integrate::EntityLinker linker;
    Rng fit_rng = rng.Fork();
    // Tree training is already scheduling-independent (one pre-forked RNG
    // per tree), so it may inherit the pipeline's thread budget.
    ml::ForestOptions forest_options = options_.forest;
    if (options_.exec.parallel() && forest_options.num_threads <= 1) {
      forest_options.num_threads = options_.exec.num_threads;
    }
    {
      StageTimer::Scope stage(options_.metrics, "entity.train_linker",
                              train.examples.size());
      obs::Span child = span.Child("train_linker");
      child.SetAttr("examples",
                    static_cast<uint64_t>(train.examples.size()));
      linker.Fit(train, forest_options, fit_rng);
    }
    StageTimer::Scope stage(options_.metrics, "entity.link",
                            records.records.size());
    obs::Span link_span = span.Child("link");
    const auto matches =
        linker.Link(records, kg_side, schema, options_.linkage_threshold,
                    options_.exec);
    size_t correct = 0;
    for (const integrate::Match& m : matches) {
      linked_to[m.index_a] = static_cast<int>(m.index_b);
      if (truth[m.index_a] == kg_truth[m.index_b]) ++correct;
    }
    report.linked = matches.size();
    link_span.SetAttr("matches", static_cast<uint64_t>(matches.size()));
    report.linkage_precision =
        matches.empty() ? 0.0
                        : static_cast<double>(correct) / matches.size();
    // Recall: linkable records = those whose truth exists in the KG side.
    std::set<uint32_t> kg_ids(kg_truth.begin(), kg_truth.end());
    size_t linkable = 0;
    for (uint32_t t : truth) {
      if (kg_ids.count(t)) ++linkable;
    }
    report.linkage_recall =
        linkable == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(linkable);
  }

  StageTimer::Scope staging_stage(options_.metrics, "entity.stage_claims",
                                  records.records.size());
  obs::Span staging_span = span.Child("stage_claims");
  // Serial pass: entity creation (the name counter and node ids depend on
  // record order) and merged-view enrichment for linking later sources.
  std::vector<size_t> entity_of(records.records.size());
  for (size_t i = 0; i < records.records.size(); ++i) {
    if (linked_to[i] >= 0) {
      entity_of[i] = static_cast<size_t>(linked_to[i]);
      // Enrich the merged view with newly seen attributes (helps linking
      // later sources).
      for (const auto& [attr, value] : records.records[i].attrs) {
        entities_[entity_of[i]].merged.attrs.emplace(attr, value);
      }
    } else {
      EntityState state;
      state.hidden_truth = truth[i];
      state.merged = records.records[i];
      state.node = kg_.AddNode(NextEntityName(), graph::NodeKind::kEntity);
      entity_of[i] = entities_.size();
      entities_.push_back(std::move(state));
      ++report.new_entities;
    }
  }
  // Sharded pass: stage this source's claims into per-record slots, then
  // merge in record order — per-key claim lists end up in the exact order
  // the serial append produced.
  std::vector<std::vector<std::pair<std::string, integrate::Claim>>>
      staged(records.records.size());
  ParallelForChunked(
      options_.exec, records.records.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          staged[i].reserve(records.records[i].attrs.size());
          for (const auto& [attr, value] : records.records[i].attrs) {
            staged[i].emplace_back(
                attr, integrate::Claim{table.source_name, value});
          }
        }
      });
  for (size_t i = 0; i < staged.size(); ++i) {
    for (auto& [attr, claim] : staged[i]) {
      claims_[{entity_of[i], attr}].push_back(std::move(claim));
    }
  }
  report.kg_entities_after = entities_.size();
  report.kg_triples_after = kg_.num_triples();
  reports_.push_back(report);
}

void EntityKgBuilder::FuseValues() {
  StageTimer::Scope stage(options_.metrics, "entity.fuse",
                          claims_.size());
  obs::Span span = obs::Tracer::Start(options_.tracer, "entity.fuse");
  span.SetAttr("claim_keys", static_cast<uint64_t>(claims_.size()));
  // Re-key claims into string item ids for the fusion engine.
  integrate::ClaimSet claim_set;
  for (const auto& [key, claims] : claims_) {
    claim_set[std::to_string(key.first) + "\x01" + key.second] = claims;
  }
  std::map<std::string, integrate::FusedValue> fused;
  if (options_.use_accu_fusion) {
    fused = integrate::AccuFusion::Run(claim_set, {}).fused;
  } else {
    fused = integrate::MajorityVote(claim_set);
  }
  for (const auto& [key, claims] : claims_) {
    const auto& value =
        fused[std::to_string(key.first) + "\x01" + key.second];
    kg_.AddTriple(entities_[key.first].node, kg_.AddPredicate(key.second),
                  kg_.AddNode(value.value, graph::NodeKind::kText),
                  graph::Provenance{"fusion", value.confidence, 0});
  }
  if (!reports_.empty()) {
    reports_.back().kg_triples_after = kg_.num_triples();
  }
}

double EntityKgBuilder::KgAccuracy(
    const std::map<std::pair<uint32_t, std::string>, std::string>&
        truth_of) const {
  size_t total = 0, correct = 0;
  for (size_t e = 0; e < entities_.size(); ++e) {
    for (graph::TripleId tid : kg_.TriplesWithSubject(entities_[e].node)) {
      const graph::Triple& t = kg_.triple(tid);
      auto it = truth_of.find(
          {entities_[e].hidden_truth, kg_.PredicateName(t.predicate)});
      if (it == truth_of.end()) continue;
      ++total;
      if (kg_.NodeName(t.object) == it->second) ++correct;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

}  // namespace kg::core
