#ifndef KGRAPH_CORE_EXTRACTION_SCORING_H_
#define KGRAPH_CORE_EXTRACTION_SCORING_H_

#include <map>
#include <string>
#include <vector>

#include "extract/dom.h"
#include "synth/website_generator.h"

namespace kg::core {

/// Aggregate extraction quality over a website, in the Figure 3 axes:
/// accuracy (correct / extracted) and yield (triples extracted).
struct ExtractionQuality {
  size_t extracted = 0;
  size_t correct = 0;
  /// Correct extractions of attributes absent from the canonical schema
  /// (OpenIE's "new knowledge").
  size_t correct_open = 0;
  double accuracy = 0.0;

  void Finish() {
    accuracy = extracted == 0
                   ? 0.0
                   : static_cast<double>(correct) /
                         static_cast<double>(extracted);
  }
};

/// Scores closed extractions (attribute names are canonical) against a
/// page's displayed values.
void ScoreClosedExtractions(const synth::WebPage& page,
                            const std::vector<extract::Extraction>& found,
                            ExtractionQuality* quality);

/// Scores open extractions (attribute names are normalized page labels)
/// against the page: an extraction is correct when its label maps to one
/// of the site's attribute labels AND the value matches that attribute's
/// displayed value.
void ScoreOpenExtractions(const synth::Website& site,
                          const synth::WebPage& page,
                          const std::vector<extract::Extraction>& found,
                          ExtractionQuality* quality);

}  // namespace kg::core

#endif  // KGRAPH_CORE_EXTRACTION_SCORING_H_
