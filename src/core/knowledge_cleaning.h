#ifndef KGRAPH_CORE_KNOWLEDGE_CLEANING_H_
#define KGRAPH_CORE_KNOWLEDGE_CLEANING_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "fuse/pra.h"
#include "graph/knowledge_graph.h"
#include "graph/ontology.h"

namespace kg::core {

/// Why a triple was flagged.
enum class CleaningReason {
  kSchemaViolation,       ///< Ontology domain/range/arity check failed.
  kFunctionalConflict,    ///< Lower-confidence value of a functional
                          ///< relation that already has a better value.
  kLinkPredictionOutlier, ///< PRA plausibility far below its peers.
};

struct CleaningFinding {
  graph::TripleId triple = 0;
  CleaningReason reason = CleaningReason::kSchemaViolation;
  std::string detail;
  double score = 0.0;  ///< Reason-specific (validation n/a = 0, PRA = p).
};

/// Knowledge cleaning — one of the paper's four industry successes (§5:
/// "knowledge cleaning, which is important to filter imprecise knowledge
/// from sources and from extractions"). Three passes over a KG:
///   1. schema validation against the ontology (the rule layer);
///   2. functional-relation conflict resolution by provenance confidence;
///   3. link-prediction outlier detection (PRA), the §5-sanctioned use of
///      link prediction — flagging, not inferring.
struct CleaningOptions {
  bool check_schema = true;
  bool check_functional = true;
  /// Predicates to screen with PRA (empty = skip pass 3).
  std::vector<std::string> pra_predicates;
  /// PRA plausibility below which a triple is flagged (absolute).
  double pra_threshold = 0.0;
  /// Margin screen: sample this many alternative objects per triple and
  /// flag the triple when at least `pra_margin_fraction` of them outscore
  /// the asserted object (normalizes for per-subject connectivity).
  size_t pra_alternatives = 10;
  double pra_margin_fraction = 0.8;
  fuse::PraModel::Options pra;
};

struct CleaningReport {
  std::vector<CleaningFinding> findings;
  size_t triples_checked = 0;
  size_t removed = 0;
};

/// Scans `kg` and returns findings; when `remove` is set, flagged triples
/// are tombstoned in place. `ontology` drives pass 1-2 (pass 1 skips
/// predicates the ontology does not declare).
CleaningReport CleanKnowledgeGraph(graph::KnowledgeGraph& kg,
                                   const graph::Ontology& ontology,
                                   const CleaningOptions& options,
                                   Rng& rng, bool remove = false);

}  // namespace kg::core

#endif  // KGRAPH_CORE_KNOWLEDGE_CLEANING_H_
