#include "core/knowledge_cleaning.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace kg::core {

CleaningReport CleanKnowledgeGraph(graph::KnowledgeGraph& kg,
                                   const graph::Ontology& ontology,
                                   const CleaningOptions& options,
                                   Rng& rng, bool remove) {
  CleaningReport report;
  const auto all = kg.AllTriples();
  report.triples_checked = all.size();
  std::set<graph::TripleId> flagged;

  // Pass 1: schema validation. Undeclared relations are not errors (the
  // ontology may be intentionally partial); only declared-and-violated
  // triples are flagged.
  if (options.check_schema) {
    for (graph::TripleId t : all) {
      const std::string& pred =
          kg.PredicateName(kg.triple(t).predicate);
      if (!ontology.FindRelation(pred).ok()) continue;
      const Status status = ontology.ValidateTriple(kg, t);
      if (status.ok()) continue;
      if (status.code() == StatusCode::kFailedPrecondition) {
        continue;  // Arity conflicts handled by pass 2 value-by-value.
      }
      if (flagged.insert(t).second) {
        report.findings.push_back(CleaningFinding{
            t, CleaningReason::kSchemaViolation, status.message(), 0.0});
      }
    }
  }

  // Pass 2: functional relations keep only their best-supported value.
  if (options.check_functional) {
    for (const auto& relation : ontology.relations()) {
      if (!relation.functional) continue;
      auto pred = kg.FindPredicate(relation.name);
      if (!pred.ok()) continue;
      // subject -> triples asserting a value.
      std::map<graph::NodeId, std::vector<graph::TripleId>> by_subject;
      for (graph::TripleId t : kg.TriplesWithPredicate(*pred)) {
        by_subject[kg.triple(t).subject].push_back(t);
      }
      for (const auto& [subject, triples] : by_subject) {
        if (triples.size() < 2) continue;
        // Keep the highest-confidence assertion; flag the rest.
        graph::TripleId best = triples.front();
        for (graph::TripleId t : triples) {
          if (kg.MaxConfidence(t) > kg.MaxConfidence(best)) best = t;
        }
        for (graph::TripleId t : triples) {
          if (t == best) continue;
          if (flagged.insert(t).second) {
            report.findings.push_back(CleaningFinding{
                t, CleaningReason::kFunctionalConflict,
                "conflicts with better-supported value of " +
                    relation.name,
                kg.MaxConfidence(t)});
          }
        }
      }
    }
  }

  // Pass 3: PRA plausibility screening per requested predicate.
  for (const std::string& predicate_name : options.pra_predicates) {
    auto pred = kg.FindPredicate(predicate_name);
    if (!pred.ok()) continue;
    fuse::PraModel model;
    Rng fit_rng = rng.Fork();
    model.Fit(kg, *pred, options.pra, fit_rng);
    // Object pool for alternative sampling.
    std::vector<graph::NodeId> objects;
    for (graph::TripleId t : kg.TriplesWithPredicate(*pred)) {
      objects.push_back(kg.triple(t).object);
    }
    Rng sample_rng = rng.Fork();
    for (graph::TripleId t : kg.TriplesWithPredicate(*pred)) {
      if (flagged.count(t)) continue;
      const auto& triple = kg.triple(t);
      const double p = model.Score(kg, triple.subject, triple.object);
      bool flag = p < options.pra_threshold;
      std::string detail = "PRA plausibility " + std::to_string(p);
      if (!flag && options.pra_alternatives > 0 && !objects.empty()) {
        // Margin screen: does almost any alternative object fit this
        // subject better than the asserted one?
        size_t beaten = 0, tried = 0;
        for (size_t a = 0; a < options.pra_alternatives; ++a) {
          const graph::NodeId alt =
              objects[sample_rng.UniformIndex(objects.size())];
          if (alt == triple.object) continue;
          ++tried;
          if (model.Score(kg, triple.subject, alt) > p) ++beaten;
        }
        if (tried > 0 &&
            static_cast<double>(beaten) / static_cast<double>(tried) >=
                options.pra_margin_fraction) {
          flag = true;
          detail += "; outscored by " + std::to_string(beaten) + "/" +
                    std::to_string(tried) + " alternatives";
        }
      }
      if (!flag) continue;
      flagged.insert(t);
      report.findings.push_back(CleaningFinding{
          t, CleaningReason::kLinkPredictionOutlier,
          detail + " for " + predicate_name, p});
    }
  }

  if (remove) {
    for (graph::TripleId t : flagged) kg.RemoveTriple(t);
    report.removed = flagged.size();
  }
  return report;
}

}  // namespace kg::core
