#include "core/textrich_kg_pipeline.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/strings.h"
#include "extract/opentag.h"
#include "textrich/cleaning.h"
#include "textrich/description_extractor.h"
#include "textrich/example_builder.h"
#include "textrich/product_graph.h"

namespace kg::core {
namespace {

/// Salt for per-page jitter streams, so page backoff draws never collide
/// with the small shard ids other stages pass to `Rng::Split`.
constexpr uint64_t kPageJitterSalt = 0x70616765'6A697474ULL;  // "pagejitt"

}  // namespace

TextRichKgBuild BuildTextRichKg(const synth::ProductCatalog& catalog,
                                const synth::BehaviorLog& behavior,
                                const TextRichBuildOptions& options,
                                Rng& rng) {
  Result<TextRichKgBuild> build =
      TryBuildTextRichKg(catalog, behavior, options, rng);
  KG_CHECK_OK(build.status());
  return std::move(build).value();
}

Result<TextRichKgBuild> TryBuildTextRichKg(
    const synth::ProductCatalog& catalog,
    const synth::BehaviorLog& behavior,
    const TextRichBuildOptions& options, Rng& rng) {
  TextRichKgBuild build;
  build.report.products = catalog.products().size();
  obs::Span root = obs::Tracer::Start(options.tracer, "textrich.build");
  root.SetAttr("products", static_cast<uint64_t>(catalog.products().size()));

  // 1. One-size-fits-all extractor: attribute-conditioned, type-aware,
  //    trained with distant supervision (§3.2-3.3).
  std::vector<size_t> train_idx, all_idx;
  {
    std::vector<size_t> test_idx;
    textrich::SplitIndices(catalog.products().size(),
                           options.train_fraction, &train_idx, &test_idx);
    all_idx.resize(catalog.products().size());
    for (size_t i = 0; i < all_idx.size(); ++i) all_idx[i] = i;
  }
  textrich::ExampleBuildOptions distant;
  distant.label_source = textrich::LabelSource::kDistant;
  const auto train_examples = textrich::FilterDistantExamples(
      textrich::BuildAttributeExamples(catalog, train_idx, "", distant));

  extract::TitleExtractor extractor;
  extract::TitleExtractorOptions extractor_options;
  extractor_options.attribute_conditioned = true;
  extractor_options.use_cluster_features = true;
  extractor_options.type_aware = true;
  extractor_options.tagger.epochs = 5;
  {
    StageTimer::Scope stage(options.metrics, "textrich.fit_extractor",
                            train_examples.size());
    obs::Span child = root.Child("fit_extractor");
    child.SetAttr("examples",
                  static_cast<uint64_t>(train_examples.size()));
    Rng fit_rng = rng.Fork();
    extractor.Fit(train_examples, extractor_options, fit_rng);
  }

  // 2. Extract assertions for every product. Pages are independent given
  //    the trained (immutable) extractor, so the loop shards under
  //    `options.exec`: each page writes its own slot, and the slots merge
  //    in page order below — bit-identical to the serial scan.
  std::map<uint32_t, std::map<std::string, std::string>> assertions;
  const bool faulting = options.faults != nullptr;
  const FaultInjector injector(faulting ? *options.faults : FaultPlan{});
  {
    StageTimer::Scope stage(options.metrics, "textrich.extract_pages",
                            all_idx.size());
    obs::Span extract_span = root.Child("extract_pages");
    extract_span.SetAttr("pages", static_cast<uint64_t>(all_idx.size()));
    std::vector<std::map<std::string, std::string>> page_values(
        all_idx.size());
    // Per-page fault accounting lands in index-addressed slots too, so
    // the degradation report is merged in page order below and stays
    // thread-count independent like the KG itself.
    std::vector<SourceDegradation> page_rows(faulting ? all_idx.size()
                                                      : 0);
    std::vector<char> quarantined(all_idx.size(), 0);
    ParallelForChunked(
        options.exec, all_idx.size(), [&](size_t begin, size_t end) {
          // Named by the chunk's begin index: concurrent same-name
          // siblings would get completion-order sequence numbers, and
          // the begin index is the schedule-independent identity.
          obs::Span chunk_span =
              extract_span.Child("chunk@" + std::to_string(begin));
          chunk_span.SetAttr("pages",
                             static_cast<uint64_t>(end - begin));
          for (size_t slot = begin; slot < end; ++slot) {
            const synth::Product& product =
                catalog.products()[all_idx[slot]];
            // The fault layer treats each page as a flaky source: fetch
            // with retries, then deliver a possibly truncated view. All
            // decisions are pure functions of (plan seed, page id,
            // attempt) — never of thread count or schedule.
            std::string source_id;
            synth::Product faulted_page;
            const synth::Product* view = &product;
            if (faulting) {
              source_id = "page:" + std::to_string(product.id);
              SourceDegradation& row = page_rows[slot];
              row.source = source_id;
              CircuitBreaker breaker(
                  options.retry.breaker_failure_threshold);
              const RetryOutcome outcome = RetryWithBackoff(
                  options.retry,
                  rng.Split(kPageJitterSalt ^ product.id), &breaker,
                  [&](size_t attempt) {
                    const FaultInjector::Attempt probe =
                        injector.Probe(source_id, attempt);
                    return AttemptResult{probe.status, probe.latency_ms};
                  });
              row.attempts = outcome.attempts;
              row.retries = outcome.retries;
              row.virtual_ms = outcome.virtual_ms;
              if (!outcome.status.ok()) {
                row.quarantined = true;
                row.final_status = outcome.status;
                row.claims_dropped =
                    catalog.AttributesForType(product.type).size();
                quarantined[slot] = 1;
                continue;
              }
              const double keep = injector.KeepFraction(source_id);
              if (keep < 1.0) {
                // Truncated page: the tail of the title/description
                // never arrives; catalog values are a separate store
                // and survive.
                faulted_page = product;
                if (!faulted_page.title_tokens.empty()) {
                  faulted_page.title_tokens.resize(std::max<size_t>(
                      1, static_cast<size_t>(std::ceil(
                             keep * static_cast<double>(
                                        faulted_page.title_tokens
                                            .size())))));
                }
                faulted_page.description.resize(static_cast<size_t>(
                    keep * static_cast<double>(
                               faulted_page.description.size())));
                view = &faulted_page;
              }
            }
            std::map<std::string, std::string> ner_stream;
            for (const std::string& attr :
                 catalog.AttributesForType(product.type)) {
              extract::AttributeExample ex;
              ex.tokens = view->title_tokens;
              ex.attribute = attr;
              ex.type_name = catalog.taxonomy().Name(product.type);
              const auto& parents =
                  catalog.taxonomy().Parents(product.type);
              if (!parents.empty()) {
                ex.category_name = catalog.taxonomy().Name(parents[0]);
              }
              for (size_t a = 0; a < catalog.attributes().size(); ++a) {
                if (catalog.attributes()[a] == attr) {
                  ex.attribute_cluster =
                      "c" + std::to_string(catalog.attribute_clusters()[a]);
                }
              }
              const auto values = extractor.ExtractValues(ex);
              if (!values.empty()) {
                ner_stream[attr] = values.front();
              }
            }
            // Lower-priority streams: description rules, then the
            // structured catalog — merged without overriding NER output.
            std::map<std::string, std::string> desc_stream;
            for (const auto& d : textrich::ExtractFromDescription(
                     view->description,
                     catalog.AttributesForType(product.type))) {
              desc_stream.emplace(d.attribute, d.value);
            }
            std::vector<std::map<std::string, std::string>> streams;
            streams.push_back(std::move(ner_stream));
            streams.push_back(std::move(desc_stream));
            if (options.backfill_from_catalog) {
              streams.push_back(product.catalog_values);
            }
            page_values[slot] = textrich::MergeExtractionStreams(streams);
            if (faulting && injector.plan().corrupt_rate > 0.0) {
              for (auto& [attr, value] : page_values[slot]) {
                std::string mutated =
                    injector.MaybeCorrupt(source_id, attr, value);
                if (mutated != value) {
                  value = std::move(mutated);
                  ++page_rows[slot].claims_corrupted;
                }
              }
            }
          }
        });
    for (size_t slot = 0; slot < all_idx.size(); ++slot) {
      if (quarantined[slot]) continue;
      assertions[catalog.products()[all_idx[slot]].id] =
          std::move(page_values[slot]);
    }
    if (faulting) {
      double virtual_ms = 0.0;
      size_t attempts = 0;
      for (const SourceDegradation& row : page_rows) {
        virtual_ms += row.virtual_ms;
        attempts += row.attempts;
        if (row.quarantined) ++build.report.pages_quarantined;
      }
      if (options.metrics != nullptr) {
        options.metrics->Record("textrich.fetch_pages",
                                virtual_ms / 1000.0, attempts);
      }
      extract_span.SetAttr("attempts", static_cast<uint64_t>(attempts));
      extract_span.SetAttr(
          "quarantined",
          static_cast<uint64_t>(build.report.pages_quarantined));
      build.degradation.sources = std::move(page_rows);
    }
  }

  auto accuracy_of = [&](const std::map<
                         uint32_t, std::map<std::string, std::string>>&
                             current) {
    size_t total = 0, correct = 0;
    for (const auto& [pid, attrs] : current) {
      const synth::Product& product = catalog.products()[pid];
      for (const auto& [attr, value] : attrs) {
        ++total;
        auto it = product.true_values.find(attr);
        if (it != product.true_values.end() && it->second == value) {
          ++correct;
        }
      }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
  };
  size_t extracted = 0;
  for (const auto& [pid, attrs] : assertions) extracted += attrs.size();
  build.report.extracted_assertions = extracted;
  build.report.accuracy_before_cleaning = accuracy_of(assertions);

  // 3. Cleaning.
  if (options.clean) {
    StageTimer::Scope stage(options.metrics, "textrich.clean",
                            build.report.extracted_assertions);
    obs::Span child = root.Child("clean");
    child.SetAttr(
        "assertions",
        static_cast<uint64_t>(build.report.extracted_assertions));
    textrich::CatalogCleaner cleaner;
    std::vector<textrich::CatalogAssertion> corpus;
    for (const auto& [pid, attrs] : assertions) {
      const synth::Product& product = catalog.products()[pid];
      for (const auto& [attr, value] : attrs) {
        corpus.push_back(textrich::CatalogAssertion{
            pid, catalog.taxonomy().Name(product.type), attr, value,
            product.title + " " + product.description});
      }
    }
    cleaner.Fit(corpus);
    textrich::CatalogCleaner::Options clean_options;
    std::map<uint32_t, std::map<std::string, std::string>> cleaned;
    for (const textrich::CatalogAssertion& a : corpus) {
      if (!cleaner.ShouldDrop(a, clean_options)) {
        cleaned[a.product_id][a.attribute] = a.value;
      }
    }
    assertions = std::move(cleaned);
  }
  size_t kept = 0;
  for (const auto& [pid, attrs] : assertions) kept += attrs.size();
  build.report.after_cleaning = kept;
  build.report.accuracy_after_cleaning = accuracy_of(assertions);

  // 4. Taxonomy enrichment from behavior logs.
  if (options.mine_taxonomy) {
    StageTimer::Scope stage(options.metrics, "textrich.mine_taxonomy",
                            behavior.searches.size());
    obs::Span child = root.Child("mine_taxonomy");
    child.SetAttr("searches",
                  static_cast<uint64_t>(behavior.searches.size()));
    build.mined = textrich::MineTaxonomy(catalog, behavior, {});
    build.report.synonyms_added = build.mined.synonyms.size();
    build.report.hypernyms_mined = build.mined.hypernyms.size();
  }

  // 5. Assemble the bipartite product KG.
  StageTimer::Scope stage(options.metrics, "textrich.assemble", kept);
  obs::Span assemble_span = root.Child("assemble");
  assemble_span.SetAttr("assertions", static_cast<uint64_t>(kept));
  build.kg = textrich::BuildProductGraph(
      catalog, assertions,
      options.mine_taxonomy ? &build.mined : nullptr);
  build.report.kg_triples = build.kg.num_triples();
  build.report.text_object_fraction =
      textrich::ComputeProductGraphStats(build.kg).text_object_fraction;
  return build;
}

}  // namespace kg::core
