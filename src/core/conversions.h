#ifndef KGRAPH_CORE_CONVERSIONS_H_
#define KGRAPH_CORE_CONVERSIONS_H_

#include <string>
#include <vector>

#include "common/exec_policy.h"
#include "common/rng.h"
#include "integrate/linkage.h"
#include "integrate/record.h"
#include "integrate/schema_alignment.h"
#include "ml/dataset.h"
#include "synth/structured_source.h"

namespace kg::core {

/// The manual schema mapping of a generated source: its dialect columns
/// mapped onto canonical attribute names (what a taxonomist would write,
/// §2.2).
integrate::SchemaMapping ManualMappingFor(const synth::SourceTable& table);

/// Applies the mapping to every record, yielding canonical-space records.
/// `true_entities`, when non-null, receives the hidden universe id of
/// each record (parallel to the result) for experiment scoring.
integrate::RecordSet ToRecordSet(const synth::SourceTable& table,
                                 const integrate::SchemaMapping& mapping,
                                 std::vector<uint32_t>* true_entities);

/// The linkage comparison schema of a domain (which canonical attributes
/// are names / numerics / categoricals).
integrate::LinkageSchema LinkageSchemaFor(synth::SourceDomain domain);

/// Builds a labeled pair dataset for linkage training/evaluation: blocks
/// candidates between `a` and `b`, features each pair, labels it by
/// hidden-entity equality. This is the pool Figure 2's label-budget sweep
/// draws from. Featurization (the hot loop) shards under `exec` into
/// index-addressed examples, so the dataset is identical for any thread
/// count.
ml::Dataset BuildLinkagePairs(const integrate::RecordSet& a,
                              const std::vector<uint32_t>& a_truth,
                              const integrate::RecordSet& b,
                              const std::vector<uint32_t>& b_truth,
                              const integrate::LinkageSchema& schema,
                              const ExecPolicy& exec = {});

}  // namespace kg::core

#endif  // KGRAPH_CORE_CONVERSIONS_H_
