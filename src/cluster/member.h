#ifndef KGRAPH_CLUSTER_MEMBER_H_
#define KGRAPH_CLUSTER_MEMBER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "cluster/shard_log.h"
#include "cluster/wal_receiver.h"
#include "common/status.h"
#include "graph/knowledge_graph.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/transport.h"
#include "serve/query_engine.h"
#include "store/versioned_store.h"

namespace kg::cluster {

/// Router-facing view of one member of a shard group: something that
/// answers queries with an applied-epoch tag (the shipped-WAL byte
/// offset its content provably covers) or refuses with kUnavailable
/// while dead.
class ShardMember {
 public:
  virtual ~ShardMember() = default;
  virtual Result<serve::EpochTaggedResult> Execute(
      const serve::Query& query) const = 0;
  /// Execute under a caller span: `parent_span_id` is the router's
  /// per-attempt "member.<label>" span (0 = untraced). Members with a
  /// tracer nest their own "store.execute" span under it, completing
  /// the router -> shard -> member -> store trace tree. The default
  /// ignores tracing, so test fakes keep working unchanged.
  virtual Result<serve::EpochTaggedResult> ExecuteTraced(
      const serve::Query& query, uint64_t parent_span_id) const {
    (void)parent_span_id;
    return Execute(query);
  }
  virtual bool alive() const = 0;
  virtual const std::string& label() const = 0;
};

struct PrimaryOptions {
  /// Durable store WAL for the primary itself (optional; tests run
  /// in-memory).
  std::string wal_path;
  obs::MetricsRegistry* registry = nullptr;
  /// Shipping-server tuning (see RpcServerOptions).
  int heartbeat_interval_ms = 5;
  size_t wal_batch_max_bytes = 256 * 1024;
  /// Worker threads of the in-process RpcServer (the shipping and
  /// introspection endpoint). Trace determinism is independent of this
  /// knob by construction — the bench proves it at 1/2/8.
  size_t server_worker_threads = 1;
  /// Distributed tracing (not owned): ExecuteTraced nests a
  /// "store.execute" span, and the shipping server roots "wal.ship"
  /// spans for traced subscriptions. kIntrospect(kTrace) against this
  /// primary dumps it.
  obs::Tracer* tracer = nullptr;
  /// Slow-query retention exposed via kIntrospect(kSlowQueries) on the
  /// primary's endpoint (not owned).
  obs::SlowQueryRing* slow_ring = nullptr;
  /// With `registry`, time store stages (cache probe / WAL append /
  /// overlay merge) into "stage_us.*" histograms.
  bool time_stages = false;
};

/// The writable head of a shard group: a VersionedKgStore plus the
/// ShardLog image of every mutation it has applied, fronted by an
/// in-process RpcServer that streams that log to subscribed replicas.
/// Kill() models process death for serving purposes — queries refuse,
/// the shipping listener refuses dials — while state survives for
/// Revive() (durability across a real crash is the replica-WAL story;
/// see ReplicaMember).
class PrimaryMember : public ShardMember {
 public:
  static Result<std::unique_ptr<PrimaryMember>> Create(
      size_t shard, graph::KnowledgeGraph base, PrimaryOptions options = {});
  ~PrimaryMember() override;

  /// Applies one logical commit and appends it to the shipping log;
  /// after return the store's watermark equals log_end(), so the
  /// primary's own answers always pass the freshest staleness gate.
  Status ApplyBatch(std::span<const store::Mutation> mutations);

  uint64_t log_end() const { return log_.EndOffset(); }
  ShardLog& log() { return log_; }
  store::VersionedKgStore& store() { return *store_; }

  /// Dial factory for this primary's shipping endpoint. Dials fail with
  /// kUnavailable while the primary is killed, and reach the *current*
  /// listener after a revive (the factory re-resolves per dial).
  rpc::TransportFactory DialFactory();

  /// Stops serving: queries and dials refuse until Revive().
  void Kill();
  Status Revive();

  // --- ShardMember --------------------------------------------------------
  Result<serve::EpochTaggedResult> Execute(
      const serve::Query& query) const override;
  Result<serve::EpochTaggedResult> ExecuteTraced(
      const serve::Query& query, uint64_t parent_span_id) const override;
  bool alive() const override {
    return !killed_.load(std::memory_order_acquire);
  }
  const std::string& label() const override { return label_; }

 private:
  PrimaryMember(size_t shard, PrimaryOptions options);
  /// Creates a fresh loopback listener + shipping server. Caller holds
  /// `server_mu_`.
  Status StartServerLocked();

  size_t shard_;
  PrimaryOptions options_;
  std::string label_;
  std::unique_ptr<store::VersionedKgStore> store_;
  ShardLog log_;
  std::atomic<bool> killed_{false};

  mutable std::mutex server_mu_;
  rpc::InMemoryTransportServer* loopback_ = nullptr;  ///< Owned by server_.
  std::unique_ptr<rpc::RpcServer> server_;
};

struct ReplicaOptions {
  /// Replica-local WAL. When set, applied mutations persist and —
  /// because shipped bytes are byte-identical to the primary's log —
  /// the file size *is* the resume offset: a recreated replica opens
  /// the file, replays it, and resubscribes from exactly where it left
  /// off (cluster_replication_test proves the bit-identical resume).
  std::string wal_path;
  obs::MetricsRegistry* registry = nullptr;
  WalReceiverOptions receiver;
  /// Distributed tracing (not owned): ExecuteTraced nests a
  /// "store.execute" span under the router's member span.
  obs::Tracer* tracer = nullptr;
  /// With `registry`, time store stages into "stage_us.*" histograms.
  bool time_stages = false;
};

/// A read replica: the shard's base KG plus whatever verified prefix of
/// the primary's log its WalReceiver has applied. Answers carry the
/// applied offset as their epoch tag; the router's staleness gate does
/// the rest.
class ReplicaMember : public ShardMember {
 public:
  /// `base` must be the same shard partition the primary was built
  /// from; `dial` reaches the primary's shipping endpoint (wrap with
  /// ChaosConnectFactory / ChaosTransport for fault drills).
  static Result<std::unique_ptr<ReplicaMember>> Create(
      size_t shard, size_t index, graph::KnowledgeGraph base,
      rpc::TransportFactory dial, ReplicaOptions options = {});
  ~ReplicaMember() override;

  /// Stops the receiver and refuses queries until Revive().
  void Kill();
  /// Resumes serving and resubscribes from the last verified offset.
  void Revive();

  /// Supervisor hook: restarts a receiver whose thread gave up (dial
  /// attempts exhausted while the primary was down). No-op while killed
  /// or while the link is healthy.
  void EnsureLink();

  WalReceiver& receiver() { return *receiver_; }
  const WalReceiver& receiver() const { return *receiver_; }
  uint64_t applied_offset() const { return store_->applied_watermark(); }
  /// Shipped-log bytes known to exist but not yet applied here.
  uint64_t lag_bytes() const;
  store::VersionedKgStore& store() { return *store_; }

  // --- ShardMember --------------------------------------------------------
  Result<serve::EpochTaggedResult> Execute(
      const serve::Query& query) const override;
  Result<serve::EpochTaggedResult> ExecuteTraced(
      const serve::Query& query, uint64_t parent_span_id) const override;
  bool alive() const override {
    return !killed_.load(std::memory_order_acquire);
  }
  const std::string& label() const override { return label_; }

 private:
  ReplicaMember(size_t shard, size_t index, ReplicaOptions options);

  size_t shard_;
  size_t index_;
  ReplicaOptions options_;
  std::string label_;
  std::unique_ptr<store::VersionedKgStore> store_;
  std::unique_ptr<WalReceiver> receiver_;
  std::atomic<bool> killed_{false};
  std::mutex lifecycle_mu_;  ///< Serializes Kill/Revive/EnsureLink.
};

}  // namespace kg::cluster

#endif  // KGRAPH_CLUSTER_MEMBER_H_
