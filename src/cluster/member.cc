#include "cluster/member.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "obs/trace.h"
#include "store/wal.h"

namespace kg::cluster {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

// ---- PrimaryMember -------------------------------------------------------

PrimaryMember::PrimaryMember(size_t shard, PrimaryOptions options)
    : shard_(shard),
      options_(std::move(options)),
      label_("s" + std::to_string(shard) + ".primary") {}

Result<std::unique_ptr<PrimaryMember>> PrimaryMember::Create(
    size_t shard, graph::KnowledgeGraph base, PrimaryOptions options) {
  auto member = std::unique_ptr<PrimaryMember>(
      new PrimaryMember(shard, std::move(options)));
  store::StoreOptions sopts;
  sopts.wal_path = member->options_.wal_path;
  sopts.registry = member->options_.registry;
  sopts.time_stages = member->options_.time_stages;
  KG_ASSIGN_OR_RETURN(member->store_,
                      store::VersionedKgStore::Open(std::move(base), sopts));
  {
    std::lock_guard<std::mutex> lock(member->server_mu_);
    KG_RETURN_IF_ERROR(member->StartServerLocked());
  }
  return member;
}

PrimaryMember::~PrimaryMember() { Kill(); }

Status PrimaryMember::StartServerLocked() {
  auto listener = std::make_unique<rpc::InMemoryTransportServer>();
  loopback_ = listener.get();
  rpc::RpcServerOptions sopts;
  sopts.worker_threads = options_.server_worker_threads;
  sopts.registry = options_.registry;
  sopts.tracer = options_.tracer;
  sopts.slow_ring = options_.slow_ring;
  sopts.wal_source = &log_;
  sopts.wal_heartbeat_interval_ms = options_.heartbeat_interval_ms;
  sopts.wal_batch_max_bytes = options_.wal_batch_max_bytes;
  server_ = std::make_unique<rpc::RpcServer>(
      rpc::StoreHandler(store_.get()), std::move(listener), sopts);
  const Status started = server_->Start();
  if (!started.ok()) {
    server_.reset();
    loopback_ = nullptr;
  }
  return started;
}

Status PrimaryMember::ApplyBatch(std::span<const store::Mutation> mutations) {
  if (killed_.load(std::memory_order_acquire)) {
    return Status::Unavailable(label_ + " is down");
  }
  KG_RETURN_IF_ERROR(store_->ApplyBatch(mutations));
  log_.Append(mutations);
  store_->set_applied_watermark(log_.EndOffset());
  return Status::OK();
}

rpc::TransportFactory PrimaryMember::DialFactory() {
  return [this]() -> Result<std::unique_ptr<rpc::ITransport>> {
    std::lock_guard<std::mutex> lock(server_mu_);
    if (server_ == nullptr || killed_.load(std::memory_order_acquire)) {
      return Status::Unavailable("primary shipping endpoint down");
    }
    return loopback_->Connect();
  };
}

void PrimaryMember::Kill() {
  killed_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(server_mu_);
  if (server_ != nullptr) {
    server_->Stop();
    server_.reset();
    loopback_ = nullptr;
  }
}

Status PrimaryMember::Revive() {
  std::lock_guard<std::mutex> lock(server_mu_);
  if (server_ == nullptr) {
    KG_RETURN_IF_ERROR(StartServerLocked());
  }
  killed_.store(false, std::memory_order_release);
  return Status::OK();
}

Result<serve::EpochTaggedResult> PrimaryMember::Execute(
    const serve::Query& query) const {
  if (killed_.load(std::memory_order_acquire)) {
    return Status::Unavailable(label_ + " is down");
  }
  return store_->TryExecuteTagged(query);
}

Result<serve::EpochTaggedResult> PrimaryMember::ExecuteTraced(
    const serve::Query& query, uint64_t parent_span_id) const {
  obs::Span span = obs::Tracer::StartWithParent(
      options_.tracer, parent_span_id, "store.execute");
  auto result = Execute(query);
  if (span.active()) {
    span.SetAttr("member", label_);
    if (result.ok()) {
      span.SetAttr("epoch", result->epoch);
    } else {
      span.SetAttr("error", result.status().message());
    }
  }
  return result;
}

// ---- ReplicaMember -------------------------------------------------------

ReplicaMember::ReplicaMember(size_t shard, size_t index,
                             ReplicaOptions options)
    : shard_(shard),
      index_(index),
      options_(std::move(options)),
      label_("s" + std::to_string(shard) + ".replica" +
             std::to_string(index)) {}

Result<std::unique_ptr<ReplicaMember>> ReplicaMember::Create(
    size_t shard, size_t index, graph::KnowledgeGraph base,
    rpc::TransportFactory dial, ReplicaOptions options) {
  auto member = std::unique_ptr<ReplicaMember>(
      new ReplicaMember(shard, index, std::move(options)));

  // Recover the resume point *before* the store truncates a torn tail:
  // the verified prefix of the local WAL is exactly the primary-log
  // prefix this replica had applied, and its chain resumes from there.
  uint32_t initial_chain = 0;
  uint64_t resume_offset = 0;
  if (!member->options_.wal_path.empty()) {
    const std::string bytes = ReadFileBytes(member->options_.wal_path);
    if (!bytes.empty()) {
      const store::WalReplay replay = store::ReplayWalBuffer(bytes);
      resume_offset = replay.valid_bytes;
      initial_chain = ShardLog::FoldChain(
          0, std::string_view(bytes).substr(0, replay.valid_bytes));
    }
  }

  store::StoreOptions sopts;
  sopts.wal_path = member->options_.wal_path;
  sopts.registry = member->options_.registry;
  sopts.time_stages = member->options_.time_stages;
  KG_ASSIGN_OR_RETURN(member->store_,
                      store::VersionedKgStore::Open(std::move(base), sopts));
  member->store_->set_applied_watermark(resume_offset);

  WalReceiverOptions ropts = member->options_.receiver;
  ropts.registry = member->options_.registry;
  member->receiver_ = std::make_unique<WalReceiver>(
      std::move(dial), member->store_.get(), initial_chain, member->label_,
      ropts);
  member->receiver_->Start();
  return member;
}

ReplicaMember::~ReplicaMember() {
  if (receiver_ != nullptr) receiver_->Stop();
}

void ReplicaMember::Kill() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  killed_.store(true, std::memory_order_release);
  receiver_->Stop();
}

void ReplicaMember::Revive() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  killed_.store(false, std::memory_order_release);
  receiver_->Start();
}

void ReplicaMember::EnsureLink() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (killed_.load(std::memory_order_acquire)) return;
  if (!receiver_->running()) receiver_->Start();
}

uint64_t ReplicaMember::lag_bytes() const {
  const uint64_t seen = receiver_->last_seen_log_end();
  const uint64_t applied = store_->applied_watermark();
  return seen > applied ? seen - applied : 0;
}

Result<serve::EpochTaggedResult> ReplicaMember::Execute(
    const serve::Query& query) const {
  if (killed_.load(std::memory_order_acquire)) {
    return Status::Unavailable(label_ + " is down");
  }
  return store_->TryExecuteTagged(query);
}

Result<serve::EpochTaggedResult> ReplicaMember::ExecuteTraced(
    const serve::Query& query, uint64_t parent_span_id) const {
  obs::Span span = obs::Tracer::StartWithParent(
      options_.tracer, parent_span_id, "store.execute");
  auto result = Execute(query);
  if (span.active()) {
    span.SetAttr("member", label_);
    if (result.ok()) {
      span.SetAttr("epoch", result->epoch);
    } else {
      span.SetAttr("error", result.status().message());
    }
  }
  return result;
}

}  // namespace kg::cluster
