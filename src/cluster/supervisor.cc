#include "cluster/supervisor.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace kg::cluster {

ClusterSupervisor::ClusterSupervisor(std::vector<ReplicaMember*> replicas,
                                     SupervisorOptions options)
    : replicas_(std::move(replicas)), options_(options) {
  if (options_.registry != nullptr) {
    restarts_metric_ =
        &options_.registry->GetCounter("cluster.supervisor.restarts");
    max_lag_gauge_ =
        &options_.registry->GetGauge("cluster.replica.lag_bytes.max");
    down_gauge_ = &options_.registry->GetGauge("cluster.replicas.down");
  }
}

ClusterSupervisor::~ClusterSupervisor() { Stop(); }

void ClusterSupervisor::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!stop_.load(std::memory_order_acquire)) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      Tick();
      for (int waited = 0;
           waited < options_.interval_ms &&
           !stop_.load(std::memory_order_acquire);
           ++waited) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
}

void ClusterSupervisor::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void ClusterSupervisor::Tick() {
  uint64_t max_lag = 0;
  int64_t down = 0;
  for (ReplicaMember* replica : replicas_) {
    if (!replica->alive()) {
      ++down;
      continue;
    }
    WalReceiver& receiver = replica->receiver();
    if (!receiver.running()) {
      // The receiver exhausted its dial budget while the primary was
      // unreachable and exited. Restart it; the subscribe resumes from
      // the replica's verified offset.
      restarts_.fetch_add(1, std::memory_order_relaxed);
      if (restarts_metric_ != nullptr) restarts_metric_->Inc();
      replica->EnsureLink();
    } else if (receiver.ms_since_progress() > options_.stall_timeout_ms) {
      // Nominally connected but silent well past the heartbeat cadence:
      // kick the session so it re-dials rather than hanging forever.
      restarts_.fetch_add(1, std::memory_order_relaxed);
      if (restarts_metric_ != nullptr) restarts_metric_->Inc();
      receiver.Stop();
      replica->EnsureLink();
    }
    max_lag = std::max(max_lag, replica->lag_bytes());
  }
  if (max_lag_gauge_ != nullptr) {
    max_lag_gauge_->Set(static_cast<int64_t>(max_lag));
  }
  if (down_gauge_ != nullptr) down_gauge_->Set(down);
}

}  // namespace kg::cluster
