#include "cluster/supervisor.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "obs/json.h"

namespace kg::cluster {

ClusterSupervisor::ClusterSupervisor(std::vector<ReplicaMember*> replicas,
                                     SupervisorOptions options)
    : replicas_(std::move(replicas)), options_(options) {
  if (options_.registry != nullptr) {
    restarts_metric_ =
        &options_.registry->GetCounter("cluster.supervisor.restarts");
    max_lag_gauge_ =
        &options_.registry->GetGauge("cluster.replica.lag_bytes.max");
    down_gauge_ = &options_.registry->GetGauge("cluster.replicas.down");
  }
}

ClusterSupervisor::~ClusterSupervisor() { Stop(); }

void ClusterSupervisor::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!stop_.load(std::memory_order_acquire)) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      Tick();
      for (int waited = 0;
           waited < options_.interval_ms &&
           !stop_.load(std::memory_order_acquire);
           ++waited) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
}

void ClusterSupervisor::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void ClusterSupervisor::Tick() {
  uint64_t max_lag = 0;
  int64_t down = 0;
  for (ReplicaMember* replica : replicas_) {
    if (!replica->alive()) {
      ++down;
      continue;
    }
    WalReceiver& receiver = replica->receiver();
    if (!receiver.running()) {
      // The receiver exhausted its dial budget while the primary was
      // unreachable and exited. Restart it; the subscribe resumes from
      // the replica's verified offset.
      restarts_.fetch_add(1, std::memory_order_relaxed);
      if (restarts_metric_ != nullptr) restarts_metric_->Inc();
      replica->EnsureLink();
    } else if (receiver.ms_since_progress() > options_.stall_timeout_ms) {
      // Nominally connected but silent well past the heartbeat cadence:
      // kick the session so it re-dials rather than hanging forever.
      restarts_.fetch_add(1, std::memory_order_relaxed);
      if (restarts_metric_ != nullptr) restarts_metric_->Inc();
      receiver.Stop();
      replica->EnsureLink();
    }
    max_lag = std::max(max_lag, replica->lag_bytes());
  }
  if (max_lag_gauge_ != nullptr) {
    max_lag_gauge_->Set(static_cast<int64_t>(max_lag));
  }
  if (down_gauge_ != nullptr) down_gauge_->Set(down);
}

void ClusterSupervisor::SetScrapeTargets(std::vector<ScrapeTarget> targets) {
  scrape_targets_ = std::move(targets);
}

Result<std::string> ClusterSupervisor::ScrapeCluster(
    rpc::IntrospectWhat what) const {
  // One dial + handshake + introspect round trip per target; results
  // keyed by label in a std::map, so the merged document is identical
  // no matter what order the targets were registered or answered in.
  std::map<std::string, std::pair<bool, std::string>> members;
  for (const ScrapeTarget& target : scrape_targets_) {
    auto scrape = [&target, what]() -> Result<std::string> {
      KG_ASSIGN_OR_RETURN(std::unique_ptr<rpc::ITransport> transport,
                          target.dial());
      rpc::RpcClient client(std::move(transport));
      auto handshake = client.Handshake();
      if (!handshake.ok()) return handshake.status();
      return client.Introspect(what);
    };
    auto result = scrape();
    if (result.ok()) {
      members[target.label] = {true, std::move(*result)};
    } else {
      members[target.label] = {false, result.status().message()};
    }
  }
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("what").String(rpc::IntrospectWhatName(what));
  w.Key("members").BeginObject();
  for (const auto& [label, payload] : members) {
    w.Key(label);
    if (!payload.first) {
      w.BeginObject();
      w.Key("error").String(payload.second);
      w.EndObject();
    } else if (what == rpc::IntrospectWhat::kMetricsPrometheus) {
      // The Prometheus exposition is text, not JSON.
      w.String(payload.second);
    } else {
      w.Raw(payload.second);
    }
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace kg::cluster
