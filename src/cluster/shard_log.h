#ifndef KGRAPH_CLUSTER_SHARD_LOG_H_
#define KGRAPH_CLUSTER_SHARD_LOG_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rpc/server.h"
#include "store/wal.h"

namespace kg::cluster {

/// A shard primary's shipping log: the byte-exact WAL image of every
/// mutation the primary has applied, kept in memory for streaming to
/// replicas (the primary's own durability is its store WAL; this log
/// exists to be *shipped*). Records use the store::AppendWalFrame
/// framing, so a replica that writes the shipped bytes to its local WAL
/// gets a file byte-identical to the primary's log prefix — which is
/// why a replica's persisted resume offset is simply its WAL size.
///
/// Every frame boundary carries a running Checksum32 chain
/// (chain' = Checksum32(le32(chain) ++ frame_bytes), chain 0 at offset
/// 0), so a subscriber can prove its replayed prefix is byte-identical
/// to the primary's before marking itself serveable.
///
/// Thread-safe: the shipping event loop reads while the router appends.
class ShardLog : public rpc::WalSource {
 public:
  ShardLog() = default;
  ShardLog(const ShardLog&) = delete;
  ShardLog& operator=(const ShardLog&) = delete;

  /// Appends one frame per mutation, advancing the chain.
  void Append(std::span<const store::Mutation> mutations);

  // --- rpc::WalSource -----------------------------------------------------

  uint64_t EndOffset() const override;
  bool IsBoundary(uint64_t offset) const override;
  uint32_t ChainAt(uint64_t offset) const override;
  std::string ReadFrom(uint64_t offset, size_t max_bytes,
                       uint64_t* end_offset,
                       uint32_t* chain_after) const override;

  // --- Chain arithmetic (shared with the receiving side) ------------------

  /// One chain step over a complete frame (header + payload bytes).
  static uint32_t ChainStep(uint32_t chain, std::string_view frame_bytes);

  /// Folds the chain over a run of complete frames (the shape a
  /// kWalBatch ships and a replica's WAL file stores). `frames` must be
  /// whole valid frames — callers validate with store::ReplayWalBuffer
  /// first.
  static uint32_t FoldChain(uint32_t chain, std::string_view frames);

 private:
  mutable std::mutex mu_;
  std::string log_;
  /// Per-frame (end offset, chain value there), ascending; offset 0 /
  /// chain 0 is implicit.
  std::vector<std::pair<uint64_t, uint32_t>> boundaries_;
};

}  // namespace kg::cluster

#endif  // KGRAPH_CLUSTER_SHARD_LOG_H_
