#include "cluster/cluster.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "rpc/transport.h"

namespace kg::cluster {

std::vector<graph::KnowledgeGraph> PartitionBySubject(
    const graph::KnowledgeGraph& base, size_t num_shards) {
  std::vector<graph::KnowledgeGraph> shards(num_shards);
  for (graph::TripleId id : base.AllTriples()) {
    const graph::Triple& t = base.triple(id);
    const size_t shard = ShardOf(base.NodeName(t.subject),
                                 base.GetNodeKind(t.subject), num_shards);
    graph::KnowledgeGraph& kg = shards[shard];
    // One AddTriple per provenance entry reproduces the full graph's
    // provenance-append history for this triple, in order.
    for (const graph::Provenance& prov : base.provenance(id)) {
      kg.AddTriple(base.NodeName(t.subject), base.PredicateName(t.predicate),
                   base.NodeName(t.object), base.GetNodeKind(t.subject),
                   base.GetNodeKind(t.object), prov);
    }
    if (base.provenance(id).empty()) {
      kg.AddTriple(base.NodeName(t.subject), base.PredicateName(t.predicate),
                   base.NodeName(t.object), base.GetNodeKind(t.subject),
                   base.GetNodeKind(t.object), graph::Provenance{});
    }
  }
  return shards;
}

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {}

Result<std::unique_ptr<Cluster>> Cluster::Create(
    const graph::KnowledgeGraph& base, ClusterOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  auto cluster = std::unique_ptr<Cluster>(new Cluster(std::move(options)));
  const ClusterOptions& opts = cluster->options_;

  std::vector<graph::KnowledgeGraph> partitions =
      PartitionBySubject(base, opts.num_shards);

  for (size_t shard = 0; shard < opts.num_shards; ++shard) {
    PrimaryOptions popts;
    popts.registry = opts.registry;
    popts.heartbeat_interval_ms = opts.heartbeat_interval_ms;
    popts.wal_batch_max_bytes = opts.wal_batch_max_bytes;
    popts.server_worker_threads = opts.server_worker_threads;
    popts.tracer = opts.tracer;
    popts.slow_ring = opts.slow_ring;
    popts.time_stages = opts.time_stages;
    // Replicas need the same base; the primary takes its own copy.
    KG_ASSIGN_OR_RETURN(
        auto primary,
        PrimaryMember::Create(shard, partitions[shard], popts));
    cluster->primaries_.push_back(std::move(primary));
  }

  for (size_t shard = 0; shard < opts.num_shards; ++shard) {
    for (size_t r = 0; r < opts.replicas_per_shard; ++r) {
      rpc::TransportFactory dial =
          cluster->primaries_[shard]->DialFactory();
      if (opts.injector != nullptr) {
        const std::string channel =
            "ship-s" + std::to_string(shard) + "r" + std::to_string(r);
        // Stream-level chaos: each dialed session gets its own
        // ChaosTransport channel so drops/garbles are deterministic per
        // (seed, session), independent of wall-clock session timing.
        auto sessions = std::make_shared<std::atomic<size_t>>(0);
        const FaultInjector* injector = opts.injector;
        rpc::TransportFactory inner = std::move(dial);
        dial = [inner = std::move(inner), injector, channel,
                sessions]() -> Result<std::unique_ptr<rpc::ITransport>> {
          KG_ASSIGN_OR_RETURN(std::unique_ptr<rpc::ITransport> t, inner());
          const size_t session =
              sessions->fetch_add(1, std::memory_order_relaxed);
          return std::unique_ptr<rpc::ITransport>(
              std::make_unique<rpc::ChaosTransport>(
                  std::move(t), injector,
                  channel + "-" + std::to_string(session)));
        };
        // Dial-level chaos: injected connection refusals.
        dial = rpc::ChaosConnectFactory(std::move(dial), injector, channel);
      }
      ReplicaOptions ropts;
      ropts.registry = opts.registry;
      ropts.receiver = opts.receiver;
      ropts.tracer = opts.tracer;
      ropts.time_stages = opts.time_stages;
      if (!opts.wal_dir.empty()) {
        ropts.wal_path = opts.wal_dir + "/s" + std::to_string(shard) + "r" +
                         std::to_string(r) + ".wal";
      }
      KG_ASSIGN_OR_RETURN(
          auto replica,
          ReplicaMember::Create(shard, r, partitions[shard],
                                std::move(dial), ropts));
      cluster->replicas_.push_back(std::move(replica));
    }
  }

  std::vector<std::vector<ShardMember*>> groups(opts.num_shards);
  std::vector<PrimaryMember*> primaries;
  for (size_t shard = 0; shard < opts.num_shards; ++shard) {
    groups[shard].push_back(cluster->primaries_[shard].get());
    primaries.push_back(cluster->primaries_[shard].get());
    for (size_t r = 0; r < opts.replicas_per_shard; ++r) {
      groups[shard].push_back(
          cluster->replicas_[shard * opts.replicas_per_shard + r].get());
    }
  }
  RouterOptions router_opts;
  router_opts.max_staleness_bytes = opts.max_staleness_bytes;
  router_opts.breaker_failure_threshold = opts.breaker_failure_threshold;
  router_opts.breaker_probe_interval = opts.breaker_probe_interval;
  router_opts.registry = opts.registry;
  router_opts.tracer = opts.tracer;
  router_opts.time_stages = opts.time_stages;
  router_opts.slow_ring = opts.slow_ring;
  cluster->router_ = std::make_unique<QueryRouter>(
      std::move(groups), std::move(primaries), router_opts);

  std::vector<ReplicaMember*> replica_ptrs;
  for (auto& replica : cluster->replicas_) {
    replica_ptrs.push_back(replica.get());
  }
  SupervisorOptions sup_opts = opts.supervisor;
  sup_opts.registry = opts.registry;
  cluster->supervisor_ = std::make_unique<ClusterSupervisor>(
      std::move(replica_ptrs), sup_opts);
  std::vector<ClusterSupervisor::ScrapeTarget> targets;
  targets.reserve(cluster->primaries_.size());
  for (auto& primary : cluster->primaries_) {
    targets.push_back({primary->label(), primary->DialFactory()});
  }
  cluster->supervisor_->SetScrapeTargets(std::move(targets));
  if (!cluster->replicas_.empty()) cluster->supervisor_->Start();

  return cluster;
}

Cluster::~Cluster() {
  if (supervisor_ != nullptr) supervisor_->Stop();
  // Receivers must stop dialing before the primaries (and their
  // listeners) go away.
  for (auto& replica : replicas_) replica->Kill();
}

Status Cluster::Apply(std::span<const store::Mutation> mutations) {
  return router_->Apply(mutations);
}

Result<serve::QueryResult> Cluster::Execute(const serve::Query& query) {
  return router_->Execute(query);
}

void Cluster::KillReplica(size_t shard, size_t replica) {
  this->replica(shard, replica).Kill();
}

void Cluster::ReviveReplica(size_t shard, size_t replica) {
  this->replica(shard, replica).Revive();
}

void Cluster::KillPrimary(size_t shard) { primaries_[shard]->Kill(); }

Status Cluster::RevivePrimary(size_t shard) {
  return primaries_[shard]->Revive();
}

bool Cluster::WaitForCatchUp(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool caught_up = true;
    for (size_t shard = 0; shard < primaries_.size(); ++shard) {
      const uint64_t end = primaries_[shard]->log_end();
      for (size_t r = 0; r < options_.replicas_per_shard; ++r) {
        ReplicaMember& rep = replica(shard, r);
        if (rep.alive() && rep.applied_offset() < end) {
          caught_up = false;
        }
      }
    }
    if (caught_up) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

uint64_t Cluster::MaxReplicaLagBytes() const {
  uint64_t max_lag = 0;
  for (size_t shard = 0; shard < primaries_.size(); ++shard) {
    const uint64_t end = primaries_[shard]->log_end();
    for (size_t r = 0; r < options_.replicas_per_shard; ++r) {
      const ReplicaMember& rep =
          *replicas_[shard * options_.replicas_per_shard + r];
      if (!rep.alive()) continue;
      const uint64_t applied = rep.applied_offset();
      if (end > applied) max_lag = std::max(max_lag, end - applied);
    }
  }
  return max_lag;
}

}  // namespace kg::cluster
