#include "cluster/shard_log.h"

#include <algorithm>

#include "common/hash.h"

namespace kg::cluster {
namespace {

// Reads the u32le payload length at `offset`; the frame spans
// [offset, offset + 8 + length).
uint64_t FrameSpan(std::string_view bytes, uint64_t offset) {
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(
                  static_cast<uint8_t>(bytes[offset + i]))
              << (8 * i);
  }
  return 8 + static_cast<uint64_t>(length);
}

}  // namespace

uint32_t ShardLog::ChainStep(uint32_t chain, std::string_view frame_bytes) {
  std::string seed;
  seed.reserve(4 + frame_bytes.size());
  for (int i = 0; i < 4; ++i) {
    seed.push_back(static_cast<char>((chain >> (8 * i)) & 0xff));
  }
  seed.append(frame_bytes);
  return Checksum32(seed);
}

uint32_t ShardLog::FoldChain(uint32_t chain, std::string_view frames) {
  uint64_t offset = 0;
  while (offset + 8 <= frames.size()) {
    const uint64_t span = FrameSpan(frames, offset);
    if (offset + span > frames.size()) break;  // Caller validated; be safe.
    chain = ChainStep(chain, frames.substr(offset, span));
    offset += span;
  }
  return chain;
}

void ShardLog::Append(std::span<const store::Mutation> mutations) {
  if (mutations.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t chain = boundaries_.empty() ? 0 : boundaries_.back().second;
  for (const store::Mutation& mutation : mutations) {
    const size_t frame_start = log_.size();
    store::AppendWalFrame(&log_, store::EncodeMutation(mutation));
    chain = ChainStep(
        chain, std::string_view(log_).substr(frame_start,
                                             log_.size() - frame_start));
    boundaries_.emplace_back(log_.size(), chain);
  }
}

uint64_t ShardLog::EndOffset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.size();
}

bool ShardLog::IsBoundary(uint64_t offset) const {
  if (offset == 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(
      boundaries_.begin(), boundaries_.end(), offset,
      [](const std::pair<uint64_t, uint32_t>& b, uint64_t o) {
        return b.first < o;
      });
  return it != boundaries_.end() && it->first == offset;
}

uint32_t ShardLog::ChainAt(uint64_t offset) const {
  if (offset == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(
      boundaries_.begin(), boundaries_.end(), offset,
      [](const std::pair<uint64_t, uint32_t>& b, uint64_t o) {
        return b.first < o;
      });
  if (it == boundaries_.end() || it->first != offset) return 0;
  return it->second;
}

std::string ShardLog::ReadFrom(uint64_t offset, size_t max_bytes,
                               uint64_t* end_offset,
                               uint32_t* chain_after) const {
  std::lock_guard<std::mutex> lock(mu_);
  *end_offset = offset;
  *chain_after = 0;
  if (offset >= log_.size()) {
    // Nothing past here (or a bogus offset); report the chain at the
    // requested boundary when we know it.
    if (offset == 0) return {};
    const auto it = std::lower_bound(
        boundaries_.begin(), boundaries_.end(), offset,
        [](const std::pair<uint64_t, uint32_t>& b, uint64_t o) {
          return b.first < o;
        });
    if (it != boundaries_.end() && it->first == offset) {
      *chain_after = it->second;
    }
    return {};
  }
  // Walk whole frames from `offset` until adding the next would exceed
  // max_bytes (always shipping at least one frame so progress is
  // guaranteed even with a tiny budget).
  const auto begin = std::upper_bound(
      boundaries_.begin(), boundaries_.end(), offset,
      [](uint64_t o, const std::pair<uint64_t, uint32_t>& b) {
        return o < b.first;
      });
  uint64_t end = offset;
  uint32_t chain = 0;
  for (auto it = begin; it != boundaries_.end(); ++it) {
    if (it->first - offset > max_bytes && end != offset) break;
    end = it->first;
    chain = it->second;
  }
  *end_offset = end;
  *chain_after = chain;
  return log_.substr(offset, end - offset);
}

}  // namespace kg::cluster
