#include "cluster/wal_receiver.h"

#include <algorithm>
#include <utility>

#include "cluster/shard_log.h"
#include "obs/trace.h"
#include "rpc/frame.h"
#include "serve/snapshot.h"
#include "store/wal.h"

namespace kg::cluster {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Reads one frame off the stream, feeding the persistent decoder.
/// Sets *timed_out when the deadline expired with no complete frame.
Result<rpc::Frame> ReadFrame(rpc::ITransport* transport,
                             rpc::FrameDecoder* decoder, int timeout_ms,
                             bool* timed_out) {
  *timed_out = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::string chunk;
  for (;;) {
    rpc::Frame frame;
    const rpc::FrameDecoder::Step step = decoder->Next(&frame);
    if (step == rpc::FrameDecoder::Step::kFrame) return frame;
    if (step == rpc::FrameDecoder::Step::kError) {
      return Status::Unavailable("wal stream corrupted: " +
                                 decoder->error().message());
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      *timed_out = true;
      return Status::Unavailable("wal stream silent past deadline");
    }
    chunk.clear();
    auto read = transport->Read(&chunk, 64 * 1024,
                                static_cast<int>(left.count()));
    if (!read.ok()) return read.status();
    decoder->Feed(chunk);
  }
}

}  // namespace

WalReceiver::WalReceiver(rpc::TransportFactory dial,
                         store::VersionedKgStore* store,
                         uint32_t initial_chain, std::string label,
                         WalReceiverOptions options)
    : dial_(std::move(dial)),
      store_(store),
      label_(std::move(label)),
      options_(options),
      chain_(initial_chain) {
  last_progress_ms_.store(NowMs(), std::memory_order_relaxed);
  if (options_.registry != nullptr) {
    resubscribes_ = &options_.registry->GetCounter("cluster.resubscribes");
    heartbeats_missed_ =
        &options_.registry->GetCounter("cluster.heartbeats.missed");
    batches_rejected_ =
        &options_.registry->GetCounter("cluster.wal.batches.rejected");
    batches_applied_ =
        &options_.registry->GetCounter("cluster.wal.batches.applied");
  }
}

WalReceiver::~WalReceiver() { Stop(); }

void WalReceiver::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) return;
  if (thread_.joinable()) thread_.join();  // Reap an exited thread.
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  last_progress_ms_.store(NowMs(), std::memory_order_relaxed);
  thread_ = std::thread([this] { Run(); });
}

void WalReceiver::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> tlock(transport_mu_);
    if (live_transport_ != nullptr) live_transport_->Close();
  }
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

int64_t WalReceiver::ms_since_progress() const {
  return NowMs() - last_progress_ms_.load(std::memory_order_relaxed);
}

void WalReceiver::Run() {
  size_t dial_failures = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    auto dialed = dial_();
    if (!dialed.ok()) {
      if (++dial_failures >= options_.max_dial_attempts) break;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.dial_retry_ms));
      continue;
    }
    dial_failures = 0;
    std::unique_ptr<rpc::ITransport> transport = std::move(*dialed);
    {
      std::lock_guard<std::mutex> lock(transport_mu_);
      if (stop_.load(std::memory_order_acquire)) break;
      live_transport_ = transport.get();
    }
    sessions_.fetch_add(1, std::memory_order_relaxed);
    RunSession(transport.get());
    {
      std::lock_guard<std::mutex> lock(transport_mu_);
      live_transport_ = nullptr;
    }
    transport->Close();
    if (!stop_.load(std::memory_order_acquire)) {
      if (resubscribes_ != nullptr) resubscribes_->Inc();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.dial_retry_ms));
    }
  }
  running_.store(false, std::memory_order_release);
}

void WalReceiver::RunSession(rpc::ITransport* transport) {
  rpc::FrameDecoder decoder;
  bool timed_out = false;

  // Handshake: WAL subscribers speak the same front door as query
  // clients, so a schema-incompatible primary refuses us here.
  rpc::HandshakeRequest hs;
  hs.max_schema_version = serve::kSnapshotSchemaVersion;
  std::string frame_bytes;
  rpc::AppendFrame(&frame_bytes, rpc::MessageType::kHandshakeRequest, 1,
                   rpc::EncodeHandshakeRequest(hs));
  if (!transport->Write(frame_bytes).ok()) return;
  auto hs_frame = ReadFrame(transport, &decoder,
                            options_.heartbeat_timeout_ms, &timed_out);
  if (!hs_frame.ok() ||
      hs_frame->type != rpc::MessageType::kHandshakeResponse) {
    return;
  }
  auto hs_resp = rpc::DecodeHandshakeResponse(hs_frame->body);
  if (!hs_resp.ok() || hs_resp->code != StatusCode::kOk) return;

  // Subscribe from the last verified offset. A configured tracer roots
  // one span per session whose id rides the subscribe as trace context,
  // so the primary's ship spans and our apply spans share one tree.
  obs::Span session =
      obs::Tracer::Start(options_.tracer, "wal.session." + label_);
  rpc::TraceContext session_ctx;
  session_ctx.trace_id = session.id();
  session_ctx.parent_span_id = session.id();
  session_ctx.sampled = true;
  rpc::WalSubscribe sub;
  sub.from_offset = store_->applied_watermark();
  frame_bytes.clear();
  rpc::AppendFrame(&frame_bytes, rpc::MessageType::kWalSubscribe, 2,
                   session.active() ? &session_ctx : nullptr,
                   rpc::EncodeWalSubscribe(sub));
  if (!transport->Write(frame_bytes).ok()) return;

  while (!stop_.load(std::memory_order_acquire)) {
    auto frame = ReadFrame(transport, &decoder,
                           options_.heartbeat_timeout_ms, &timed_out);
    if (!frame.ok()) {
      if (timed_out && heartbeats_missed_ != nullptr) {
        heartbeats_missed_->Inc();
      }
      return;
    }
    if (frame->type == rpc::MessageType::kWalHeartbeat) {
      auto hb = rpc::DecodeWalHeartbeat(frame->body);
      if (!hb.ok()) return;
      last_seen_log_end_.store(hb->log_end, std::memory_order_release);
      last_progress_ms_.store(NowMs(), std::memory_order_relaxed);
      if (hb->log_end == store_->applied_watermark() &&
          hb->chain_at_end != chain_) {
        // Our fully-caught-up prefix disagrees with the primary's
        // chain: this session cannot be trusted. Tear down and
        // re-verify from scratch on the next subscribe.
        if (batches_rejected_ != nullptr) batches_rejected_->Inc();
        return;
      }
      continue;
    }
    if (frame->type != rpc::MessageType::kWalBatch) return;
    auto batch = rpc::DecodeWalBatch(frame->body);
    if (!batch.ok()) return;
    if (batch->code != StatusCode::kOk) {
      // The primary refused the subscription (bad offset, no source).
      if (batches_rejected_ != nullptr) batches_rejected_->Inc();
      return;
    }

    // A traced batch carries the primary's ship-span id; the apply span
    // roots under it, so the cross-process tree reads
    // session -> ship -> apply per shipped batch.
    obs::Span apply = obs::Tracer::StartWithParent(
        options_.tracer, frame->has_trace ? frame->trace.parent_span_id : 0,
        "wal.apply");
    if (apply.active()) {
      apply.SetAttr("start_offset", batch->start_offset);
      apply.SetAttr("end_offset", batch->end_offset);
    }

    // Verify before apply: exact continuation, clean replay, chain
    // agreement. A failure means a lost/garbled segment — drop the
    // session and resubscribe from the last verified offset.
    const uint64_t applied = store_->applied_watermark();
    if (batch->start_offset != applied) {
      if (batches_rejected_ != nullptr) batches_rejected_->Inc();
      return;
    }
    const store::WalReplay replay = store::ReplayWalBuffer(batch->frames);
    if (!replay.clean || replay.valid_bytes != batch->frames.size()) {
      if (batches_rejected_ != nullptr) batches_rejected_->Inc();
      return;
    }
    const uint32_t chain_after = ShardLog::FoldChain(chain_, batch->frames);
    if (chain_after != batch->chain_after) {
      if (batches_rejected_ != nullptr) batches_rejected_->Inc();
      return;
    }
    if (!store_->ApplyBatch(replay.mutations).ok()) {
      if (batches_rejected_ != nullptr) batches_rejected_->Inc();
      return;
    }
    store_->set_applied_watermark(batch->end_offset);
    chain_ = chain_after;
    last_seen_log_end_.store(std::max(batch->log_end, batch->end_offset),
                             std::memory_order_release);
    last_progress_ms_.store(NowMs(), std::memory_order_relaxed);
    if (batches_applied_ != nullptr) batches_applied_->Inc();
  }
}

}  // namespace kg::cluster
