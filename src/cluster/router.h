#ifndef KGRAPH_CLUSTER_ROUTER_H_
#define KGRAPH_CLUSTER_ROUTER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "cluster/member.h"
#include "graph/knowledge_graph.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/query_engine.h"
#include "store/wal.h"

namespace kg::cluster {

/// Which shard owns `subject`: every triple lives on its subject's
/// shard (hash of the kind-tagged name, so "E:x" and "T:x" are distinct
/// keys — the same tagging the serving layer renders). Disjoint subject
/// partitioning is what makes scatter-gather exact: point lookups and a
/// node's out-edges live on one known shard, while in-edges and scans
/// spread across all of them and are fanned out + merged.
size_t ShardOf(std::string_view subject, graph::NodeKind kind,
               size_t num_shards);

struct RouterOptions {
  /// How many shipped-log bytes behind the committed offset an answer
  /// may be and still be served. 0 = strict: every answer is provably
  /// byte-identical to the single-store reference at the committed
  /// state (the cluster property suite runs here).
  uint64_t max_staleness_bytes = 0;
  /// Consecutive failures that open a member's circuit breaker.
  size_t breaker_failure_threshold = 3;
  /// While a breaker is open, one probe is let through every this many
  /// selections, so a revived member is rediscovered without waiting on
  /// the supervisor.
  size_t breaker_probe_interval = 4;
  /// "cluster.*" metrics land here when non-null (not owned).
  obs::MetricsRegistry* registry = nullptr;
  /// Distributed tracing (not owned). Each Execute roots a
  /// "route.<class>" span with "shard@<i>" / "member.<label>" children
  /// per attempt; member spans parent the serving member's own
  /// "store.execute" span, so one routed query renders as one connected
  /// tree from router to store.
  obs::Tracer* tracer = nullptr;
  /// With `registry`, time each scatter-gather (fan out + merge wait)
  /// into per-class "stage_us.fanout.<class>" histograms. Opt-in: two
  /// clock reads per fanned-out query.
  bool time_stages = false;
  /// Worst-N retention for routed queries (not owned). Each Execute
  /// offers one entry keyed by its root span id, with the fanout stage
  /// attributed.
  obs::SlowQueryRing* slow_ring = nullptr;
};

/// Scatter-gather front door of the cluster. The router is the sole
/// writer: Apply routes each mutation to its subject's shard primary
/// (preserving order within a shard) and records the resulting log end
/// as that shard's *committed offset*. Reads walk a shard group in
/// failover order (primary, then replicas), skip members whose breaker
/// is open, and accept the first answer whose applied-epoch tag is
/// within max_staleness_bytes of committed — a too-stale replica is
/// not an error, just not proof, so the router keeps looking. When no
/// live member can prove freshness the query is shed with kUnavailable.
///
///   - point lookup        -> the subject's shard only
///   - neighborhood / scan -> every shard, rows merged deterministically
///                            (id-ordered; ties broken by shard index)
///   - top-k related       -> two-phase scatter-gather (the aggregate is
///                            not per-shard decomposable; see DESIGN §14)
///
/// Thread-safe for concurrent Execute; Apply is single-writer.
class QueryRouter {
 public:
  struct Stats {
    uint64_t failovers = 0;      ///< Primary skipped, replica answered.
    uint64_t shed = 0;           ///< No member could serve.
    uint64_t stale_rejects = 0;  ///< Answers refused by the epoch gate.
    uint64_t probes = 0;         ///< Open-breaker probe attempts.
  };

  /// `members[shard][0]` is the shard primary, the rest its replicas,
  /// in failover order. Raw pointers are not owned and must outlive the
  /// router.
  QueryRouter(std::vector<std::vector<ShardMember*>> members,
              std::vector<PrimaryMember*> primaries,
              RouterOptions options = {});

  /// Applies one logical commit, split by subject shard. Mutations for
  /// the same shard keep their relative order; per-shard sub-batches
  /// are applied in shard order.
  Status Apply(std::span<const store::Mutation> mutations);

  Result<serve::QueryResult> Execute(const serve::Query& query);

  uint64_t committed(size_t shard) const {
    return committed_[shard]->load(std::memory_order_acquire);
  }
  size_t num_shards() const { return members_.size(); }
  Stats stats() const;

 private:
  struct MemberHealth {
    std::mutex mu;
    CircuitBreaker breaker;
    size_t skips_while_open = 0;
    explicit MemberHealth(size_t threshold) : breaker(threshold) {}
  };

  /// True when this selection may try the member (breaker closed, or an
  /// open-breaker probe turn).
  bool AllowMember(MemberHealth& health, bool* is_probe);
  void RecordOutcome(MemberHealth& health, bool ok, bool was_probe);

  /// One shard's answer under the staleness gate and failover order.
  /// `parent` (never null; inert without a tracer) gets one "shard@<i>"
  /// child with a "member.<label>" grandchild per attempt.
  Result<serve::QueryResult> AskShard(size_t shard,
                                      const serve::Query& query,
                                      obs::Span* parent);
  /// Fans `query` out to every shard and merges deterministically.
  /// Adds the scatter + merge wall time to `*fanout_us` when non-null
  /// (Execute observes the total once per routed query, so nested
  /// fanouts — top-k's phase queries — attribute to the routed class).
  Result<serve::QueryResult> FanOut(const serve::Query& query,
                                    obs::Span* parent, double* fanout_us);
  Result<serve::QueryResult> TopKRelated(const serve::Query& query,
                                         obs::Span* parent,
                                         double* fanout_us);

  std::vector<std::vector<ShardMember*>> members_;
  std::vector<PrimaryMember*> primaries_;
  RouterOptions options_;
  /// Per-shard committed shipped-log offset (unique_ptr: atomics don't
  /// move, vectors need to).
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> committed_;
  std::vector<std::vector<std::unique_ptr<MemberHealth>>> health_;

  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> stale_rejects_{0};
  std::atomic<uint64_t> probes_{0};

  obs::Counter* failovers_metric_ = nullptr;
  obs::Counter* shed_metric_ = nullptr;
  obs::Counter* stale_metric_ = nullptr;
  /// Per-class fanout stage histograms (null without registry +
  /// time_stages).
  std::array<obs::Histogram*, serve::kNumQueryKinds> stage_fanout_{};
  /// Routed-query order for deterministic slow-ring tie-breaks.
  std::atomic<uint64_t> route_seq_{0};
};

}  // namespace kg::cluster

#endif  // KGRAPH_CLUSTER_ROUTER_H_
