#ifndef KGRAPH_CLUSTER_SUPERVISOR_H_
#define KGRAPH_CLUSTER_SUPERVISOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/member.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/frame.h"

namespace kg::cluster {

struct SupervisorOptions {
  /// Sweep cadence of the background thread.
  int interval_ms = 20;
  /// A running link silent this long (no batch, no heartbeat) is
  /// presumed wedged and torn down for a fresh dial. Keep comfortably
  /// above the shipping heartbeat interval.
  int stall_timeout_ms = 2000;
  obs::MetricsRegistry* registry = nullptr;
};

/// Cluster health loop: watches every replica's WAL link and (a) restarts
/// receiver threads that gave up while their primary was dead — the
/// re-subscribe resumes from the replica's persisted offset, so a revived
/// primary ships only the missing suffix — and (b) kicks links that are
/// nominally running but silent past the stall timeout. Also exports
/// per-sweep lag gauges ("cluster.replica.lag_bytes.max",
/// "cluster.replicas.down"). Sweeps run on a background thread; tests
/// can call Tick() directly for deterministic single-steps.
class ClusterSupervisor {
 public:
  explicit ClusterSupervisor(std::vector<ReplicaMember*> replicas,
                             SupervisorOptions options = {});
  ~ClusterSupervisor();

  ClusterSupervisor(const ClusterSupervisor&) = delete;
  ClusterSupervisor& operator=(const ClusterSupervisor&) = delete;

  void Start();
  void Stop();

  /// One sweep: restart dead links, kick stalled ones, refresh gauges.
  void Tick();

  uint64_t restarts() const {
    return restarts_.load(std::memory_order_relaxed);
  }

  /// One scrapeable member endpoint: a stable label plus a dial to its
  /// RPC listener (e.g. PrimaryMember::DialFactory).
  struct ScrapeTarget {
    std::string label;
    rpc::TransportFactory dial;
  };

  /// Registers the endpoints ScrapeCluster visits. Call before Start()
  /// (the Cluster facade registers every shard primary at build time).
  void SetScrapeTargets(std::vector<ScrapeTarget> targets);

  /// Cluster-wide introspection scrape: dials every registered target
  /// over its own wire, handshakes, issues kIntrospectRequest(`what`),
  /// and merges the per-member payloads into one deterministic JSON
  /// document — members keyed and ordered by label, a member that
  /// cannot be scraped contributing {"error": ...} instead of failing
  /// the whole scrape:
  ///
  ///   {"schema_version":1,"what":"<selector>",
  ///    "members":{"s0.primary":<payload>,...}}
  ///
  /// JSON payloads (metrics JSON, slow queries, trace) embed raw; the
  /// Prometheus exposition embeds as a JSON string.
  Result<std::string> ScrapeCluster(rpc::IntrospectWhat what) const;

 private:
  std::vector<ReplicaMember*> replicas_;
  SupervisorOptions options_;
  std::vector<ScrapeTarget> scrape_targets_;

  std::mutex lifecycle_mu_;
  std::thread thread_;
  std::atomic<bool> stop_{true};
  std::atomic<uint64_t> restarts_{0};

  obs::Counter* restarts_metric_ = nullptr;
  obs::Gauge* max_lag_gauge_ = nullptr;
  obs::Gauge* down_gauge_ = nullptr;
};

}  // namespace kg::cluster

#endif  // KGRAPH_CLUSTER_SUPERVISOR_H_
