#ifndef KGRAPH_CLUSTER_CLUSTER_H_
#define KGRAPH_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/member.h"
#include "cluster/router.h"
#include "cluster/supervisor.h"
#include "common/fault.h"
#include "common/status.h"
#include "graph/knowledge_graph.h"
#include "obs/metrics.h"

namespace kg::cluster {

struct ClusterOptions {
  size_t num_shards = 1;
  size_t replicas_per_shard = 0;
  /// Router staleness bound; 0 = every answer provably matches the
  /// committed state (see RouterOptions).
  uint64_t max_staleness_bytes = 0;
  /// "cluster.*" (and member "store.*"/"rpc.*") metrics land here when
  /// non-null (not owned).
  obs::MetricsRegistry* registry = nullptr;
  /// Distributed tracing (not owned). Wired into the router and every
  /// member, so each routed query renders as one connected span tree
  /// (route -> shard -> member -> store.execute), and into each
  /// primary's RPC endpoint for kIntrospect(kTrace) scrapes. NOT wired
  /// into WAL receivers — shipping spans depend on batch timing; opt in
  /// per-receiver via `receiver.tracer` when forensics beat determinism.
  obs::Tracer* tracer = nullptr;
  /// Worst-N routed-query retention (not owned); also exposed on every
  /// primary endpoint via kIntrospect(kSlowQueries).
  obs::SlowQueryRing* slow_ring = nullptr;
  /// With `registry`, time request-path stages (fanout at the router,
  /// cache probe / WAL append / overlay merge in member stores) into
  /// "stage_us.<stage>[.<class>]" histograms.
  bool time_stages = false;
  /// Worker threads of each primary's in-process RPC endpoint.
  size_t server_worker_threads = 1;
  /// When set, replica r of shard s persists its applied log to
  /// `<wal_dir>/s<s>r<r>.wal`, making its resume offset durable across
  /// member re-creation. Empty keeps everything in memory.
  std::string wal_dir;
  /// Chaos on the WAL shipping links: dials go through
  /// ChaosConnectFactory and every shipped byte stream through a
  /// ChaosTransport, channels "ship-s<s>r<r>[-<session>]". Must outlive
  /// the cluster. Query routing is in-process and unaffected.
  const FaultInjector* injector = nullptr;

  int heartbeat_interval_ms = 5;
  SupervisorOptions supervisor;
  WalReceiverOptions receiver;
  size_t breaker_failure_threshold = 3;
  size_t breaker_probe_interval = 4;
  size_t wal_batch_max_bytes = 256 * 1024;
};

/// Splits `base` into per-shard KnowledgeGraphs by subject hash
/// (ShardOf over the kind-tagged subject name). Triple order and each
/// triple's provenance list survive verbatim, so a shard's sub-graph
/// answers every subject-owned query exactly as the full graph does.
std::vector<graph::KnowledgeGraph> PartitionBySubject(
    const graph::KnowledgeGraph& base, size_t num_shards);

/// An in-process sharded + replicated serving cluster over the
/// VersionedKgStore: N shard groups, each a writable primary plus R
/// read replicas kept in sync by WAL shipping over the rpc framing,
/// fronted by the scatter-gather QueryRouter and watched by the
/// ClusterSupervisor. Kill/Revive model member crashes for failover
/// drills; the cluster property suite proves sharded answers are
/// byte-identical to a single store through all of it.
class Cluster {
 public:
  static Result<std::unique_ptr<Cluster>> Create(
      const graph::KnowledgeGraph& base, ClusterOptions options = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// One logical commit through the router (the cluster's sole writer).
  Status Apply(std::span<const store::Mutation> mutations);

  Result<serve::QueryResult> Execute(const serve::Query& query);

  // --- Failure drills -----------------------------------------------------

  void KillReplica(size_t shard, size_t replica);
  void ReviveReplica(size_t shard, size_t replica);
  void KillPrimary(size_t shard);
  Status RevivePrimary(size_t shard);

  // --- Introspection ------------------------------------------------------

  /// Blocks until every *live* replica has applied its primary's full
  /// log (lag 0); false on timeout. The deterministic barrier the tests
  /// and the bench quiesce on.
  bool WaitForCatchUp(int timeout_ms);

  /// Cluster-wide observability scrape over the wire: every shard
  /// primary's endpoint answers kIntrospectRequest(`what`), merged
  /// deterministically by member label (ClusterSupervisor::ScrapeCluster).
  Result<std::string> ScrapeCluster(rpc::IntrospectWhat what) const {
    return supervisor_->ScrapeCluster(what);
  }

  uint64_t MaxReplicaLagBytes() const;

  size_t num_shards() const { return primaries_.size(); }
  size_t replicas_per_shard() const { return options_.replicas_per_shard; }
  PrimaryMember& primary(size_t shard) { return *primaries_[shard]; }
  ReplicaMember& replica(size_t shard, size_t index) {
    return *replicas_[shard * options_.replicas_per_shard + index];
  }
  QueryRouter& router() { return *router_; }
  ClusterSupervisor& supervisor() { return *supervisor_; }

 private:
  explicit Cluster(ClusterOptions options);

  ClusterOptions options_;
  /// Destruction order matters: supervisor first (it pokes replicas),
  /// then router, then replicas (receivers dial primaries), then
  /// primaries — i.e. members are declared before their watchers.
  std::vector<std::unique_ptr<PrimaryMember>> primaries_;
  std::vector<std::unique_ptr<ReplicaMember>> replicas_;  ///< shard-major.
  std::unique_ptr<QueryRouter> router_;
  std::unique_ptr<ClusterSupervisor> supervisor_;
};

}  // namespace kg::cluster

#endif  // KGRAPH_CLUSTER_CLUSTER_H_
