#ifndef KGRAPH_CLUSTER_WAL_RECEIVER_H_
#define KGRAPH_CLUSTER_WAL_RECEIVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "rpc/client.h"
#include "store/versioned_store.h"

namespace kg::obs {
class Tracer;
}  // namespace kg::obs

namespace kg::cluster {

struct WalReceiverOptions {
  /// How long a subscribed link may go silent (no batch, no heartbeat)
  /// before the receiver declares the session dead and re-dials.
  int heartbeat_timeout_ms = 500;
  /// Pause between dial attempts while the primary is unreachable.
  int dial_retry_ms = 2;
  /// Consecutive failed dials before the receiver thread gives up and
  /// exits (link down); the ClusterSupervisor restarts it later.
  size_t max_dial_attempts = 40;
  obs::MetricsRegistry* registry = nullptr;
  /// Distributed tracing of the shipping link (not owned). Each session
  /// roots a "wal.session" span whose id rides the kWalSubscribe frame
  /// as trace context; the primary parents "wal.ship" spans under it
  /// and echoes the context on every kWalBatch, which this receiver
  /// extracts to root "wal.apply" spans under the originating ship.
  /// Batch boundaries are timing-dependent, so WAL spans are
  /// best-effort forensics, not part of the determinism-gated trace
  /// surfaces — leave this null (the Cluster facade does) when
  /// byte-identical trace JSON matters.
  obs::Tracer* tracer = nullptr;
};

/// One replica's end of the WAL shipping protocol. A background thread
/// dials the shard primary, handshakes, subscribes from the replica's
/// applied offset, and then applies verified kWalBatch frames:
///
///   - the batch must start exactly at our applied offset,
///   - its frames must replay cleanly (store::ReplayWalBuffer), and
///   - folding our Checksum32 chain over the shipped bytes must land on
///     the primary's advertised chain_after.
///
/// Only then is the batch applied and the store's applied watermark
/// advanced — so every epoch a replica ever serves is a verified
/// byte-identical prefix of the primary's log. Any mismatch tears the
/// session down and resubscribes from the last *verified* offset;
/// nothing unverified is ever applied. Heartbeats carry the primary's
/// log end for lag accounting, and a silent link (missed heartbeats)
/// triggers a re-dial.
class WalReceiver {
 public:
  /// `store` must outlive the receiver; `initial_chain` is the chain
  /// value at the store's applied watermark (0 for a fresh replica, or
  /// folded over the local WAL for one recovering from disk).
  WalReceiver(rpc::TransportFactory dial, store::VersionedKgStore* store,
              uint32_t initial_chain, std::string label,
              WalReceiverOptions options = {});
  ~WalReceiver();

  WalReceiver(const WalReceiver&) = delete;
  WalReceiver& operator=(const WalReceiver&) = delete;

  /// Starts (or restarts) the receiver thread. No-op when running.
  void Start();

  /// Stops the thread and closes any in-flight session.
  void Stop();

  /// True while the receiver thread is live (dialing or streaming).
  /// False after Stop() or after dial attempts were exhausted — the
  /// supervisor uses the latter to schedule a restart.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Primary log end as of the last batch/heartbeat seen; lag is this
  /// minus the store's applied watermark.
  uint64_t last_seen_log_end() const {
    return last_seen_log_end_.load(std::memory_order_acquire);
  }

  /// Milliseconds since the link last showed life (batch or heartbeat).
  /// Large values on a "running" receiver mean the session is stalled.
  int64_t ms_since_progress() const;

  uint64_t sessions() const {
    return sessions_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  /// One connected session: handshake, subscribe, stream until the link
  /// breaks, a verification fails, or Stop() is called.
  void RunSession(rpc::ITransport* transport);

  rpc::TransportFactory dial_;
  store::VersionedKgStore* store_;
  std::string label_;
  WalReceiverOptions options_;

  /// Chain value at store_->applied_watermark(); only the receiver
  /// thread touches it while running.
  uint32_t chain_ = 0;

  std::mutex lifecycle_mu_;  ///< Serializes Start/Stop.
  std::thread thread_;

  std::mutex transport_mu_;
  rpc::ITransport* live_transport_ = nullptr;  ///< For Stop() to close.

  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> last_seen_log_end_{0};
  std::atomic<int64_t> last_progress_ms_{0};  ///< steady_clock ms.
  std::atomic<uint64_t> sessions_{0};

  obs::Counter* resubscribes_ = nullptr;
  obs::Counter* heartbeats_missed_ = nullptr;
  obs::Counter* batches_rejected_ = nullptr;
  obs::Counter* batches_applied_ = nullptr;
};

}  // namespace kg::cluster

#endif  // KGRAPH_CLUSTER_WAL_RECEIVER_H_
